//! Majority consensus as a differential signal amplifier.
//!
//! The paper's motivation (Section 1.1): an upstream microbial sub-circuit
//! produces two noisy signals encoded as the initial counts of two engineered
//! strains; the consortium should amplify whichever signal is larger into an
//! all-or-nothing population-level output. This example sweeps the input
//! difference and reports how reliably each competition mechanism amplifies
//! it.
//!
//! ```sh
//! cargo run --release --example signal_amplifier
//! ```

use lv_consensus::lotka::{CompetitionKind, LvModel};
use lv_consensus::sim::report::Table;
use lv_consensus::sim::{MonteCarlo, Seed};

fn main() {
    let n: u64 = 4_000;
    let trials = 300;
    let sd = LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0);
    let nsd = LvModel::neutral(CompetitionKind::NonSelfDestructive, 1.0, 1.0, 1.0);

    let mut table = Table::new(
        format!("signal amplification at n = {n} ({trials} trials per point)"),
        &[
            "input difference ∆",
            "relative difference",
            "P(correct output), self-destructive",
            "P(correct output), non-self-destructive",
        ],
    );

    for gap in [4u64, 16, 64, 128, 256, 512] {
        let a = (n + gap) / 2;
        let b = n - a;
        let mc_sd = MonteCarlo::new(trials, Seed::from(100 + gap));
        let mc_nsd = MonteCarlo::new(trials, Seed::from(200 + gap));
        let p_sd = mc_sd.success_probability(&sd, a, b).point();
        let p_nsd = mc_nsd.success_probability(&nsd, a, b).point();
        table.push_row(&[
            gap.to_string(),
            format!("{:.2}%", 100.0 * gap as f64 / n as f64),
            format!("{p_sd:.3}"),
            format!("{p_nsd:.3}"),
        ]);
    }
    println!("{table}");
    println!(
        "A lysis-based (self-destructive) consortium amplifies differences of a fraction of a percent;\n\
         a contact-killing (non-self-destructive) consortium needs differences an order of magnitude larger."
    );
}
