//! Backend-selectable, early-stopping threshold sweep: the paper's two LV
//! competition mechanisms next to the population-protocol baselines, at
//! small n so the whole comparison runs in seconds.
//!
//! Every probe is adaptive — far from the threshold the Wilson interval
//! clears the target after a handful of trials — and the per-size output
//! shows the trials actually spent, so the early-stopping win is visible
//! directly.
//!
//! ```sh
//! cargo run --release --example threshold_sweep
//! ```

use lv_consensus::lotka::{CompetitionKind, LvModel};
use lv_consensus::sim::report::Table;
use lv_consensus::sim::{ScalingFit, Seed, ThresholdSearch, TwoSpeciesGap};

fn main() {
    let sizes = [64u64, 128, 256];
    let trials = 60;

    // (label, backend, needs a quadratic interaction budget?)
    let series: [(&str, &str, bool); 5] = [
        ("LV self-destructive", "jump-chain", false),
        ("LV non-self-destructive", "jump-chain", false),
        ("approx-majority", "approx-majority", true),
        ("czyzowicz-lv", "czyzowicz-lv", true),
        ("exact-majority", "exact-majority", true),
    ];

    let mut table = Table::new(
        format!("empirical thresholds, adaptive probes ({trials}-trial budget per probe)"),
        &[
            "series",
            "n",
            "threshold ∆",
            "measured ρ",
            "probes",
            "trials spent",
        ],
    );
    for (label, backend, quadratic) in series {
        let model = match label {
            "LV non-self-destructive" => {
                LvModel::neutral(CompetitionKind::NonSelfDestructive, 1.0, 1.0, 1.0)
            }
            // Protocol baselines ignore the rates entirely.
            _ => LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0),
        };
        let search = ThresholdSearch::new(trials, Seed::from(17)).with_backend(backend);
        let mut ns = Vec::new();
        let mut thresholds = Vec::new();
        for &n in &sizes {
            let mut factory = TwoSpeciesGap::new(model, n);
            if quadratic {
                factory = factory.with_max_events(100 * n * n);
            }
            let result = search.find_gap(&factory);
            table.push_row(&[
                label.to_string(),
                n.to_string(),
                result.threshold_cell(),
                format!("{:.3}", result.success_at_threshold),
                result.probes.len().to_string(),
                result.trials_spent().to_string(),
            ]);
            ns.push(n as f64);
            thresholds.push(result.threshold as f64);
        }
        let (best, coefficient, error) = ScalingFit::fit(&ns, &thresholds).best();
        println!("{label:>24}: threshold ≈ {coefficient:6.2} · {best} (rel. RMSE {error:.3})");
    }
    println!();
    println!("{table}");
    println!(
        "The self-destructive LV threshold is polylog-scale, czyzowicz-lv needs a linear gap,\n\
         and exact-majority succeeds at the smallest feasible gap (its cost is ~n² interactions)."
    );
}
