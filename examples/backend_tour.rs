//! Tour of the unified `Scenario`/`Backend` API: describe one majority-
//! consensus run, then execute it on every backend in the registry — the
//! exact jump chain, both exact continuous-time methods, tau-leaping and the
//! deterministic mean-field ODE — and compare what each one reports.
//!
//! ```sh
//! cargo run --release --example backend_tour
//! ```

use lv_consensus::engine::{BackendRegistry, ObserverSpec, Scenario};
use lv_consensus::lotka::{CompetitionKind, LvModel};
use lv_consensus::sim::{MonteCarlo, Seed};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let model = LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0);
    let (a, b) = (550u64, 450u64);

    // One description of *what* to simulate...
    let scenario = Scenario::majority(model, a, b).observe(ObserverSpec::GapTrajectory);

    println!("scenario: {model}, initial ({a}, {b}), stop at consensus\n");
    println!(
        "{:>17} | {:>8} | {:>9} | {:>10} | winner",
        "backend", "events", "steps", "clock"
    );
    println!("{}", "-".repeat(62));

    // ...executed by every *how* in the registry.
    for backend in BackendRegistry::global().iter() {
        let mut rng = StdRng::seed_from_u64(2024);
        let report = backend.run(&scenario, &mut rng);
        println!(
            "{:>17} | {:>8} | {:>9} | {:>10.4} | {:?}",
            backend.name(),
            report.events,
            report.steps,
            report.time,
            report.final_state.winner(),
        );
    }

    // The derived majority view carries the paper's per-run observables.
    let jump = BackendRegistry::global().get("jump-chain").unwrap();
    let outcome = jump
        .run(&scenario, &mut StdRng::seed_from_u64(2024))
        .to_majority_outcome();
    println!(
        "\njump chain observables: T(S) = {}, I(S) = {}, K(S) = {}, J(S) = {}, F = {}",
        outcome.events,
        outcome.individual_events,
        outcome.competitive_events,
        outcome.bad_noncompetitive_events,
        outcome.noise.total(),
    );

    // And the Monte-Carlo layer estimates over scenario batches on any
    // backend — seeded, thread-count independent.
    for name in ["jump-chain", "tau-leaping"] {
        let mc = MonteCarlo::new(400, Seed::from(7)).with_backend(name);
        let rho = mc.success_probability(&model, a, b);
        println!("rho({a}, {b}) on {name:>11}: {:.4}", rho.point());
    }
}
