//! Streaming batch execution with online statistics and early stopping.
//!
//! Near the critical margin the success probability moves by fractions of a
//! percent, so fixed-size batches either waste trials on easy points or
//! starve hard ones. This example sweeps the initial margin and lets each
//! point run *just until* its 95% confidence half-width reaches a target:
//! reports stream off a work-stealing worker pool and fold into online
//! accumulators as trials finish — no batch is ever materialised, and every
//! number is bit-identical at any thread count.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example streaming_batch
//! ```

use lv_consensus::engine::Scenario;
use lv_consensus::lotka::{CompetitionKind, LvModel};
use lv_consensus::sim::{EarlyStop, MonteCarlo, RunMoments, Seed};

fn main() {
    let model = LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0);
    let n = 200u64;
    let budget = 20_000u64; // trial cap per point; early stopping usually stops far sooner
    let rule = EarlyStop::at_half_width(0.04).with_min_trials(32);

    println!("streaming majority-consensus sweep at n = {n}");
    println!("early stop: 95% CI half-width <= 0.04 (trial cap {budget})\n");
    println!(
        "{:>6} {:>6} | {:>9} {:>7} {:>22}",
        "a", "b", "P(win)", "trials", "95% CI"
    );

    for gap in [60i64, 40, 24, 12, 4] {
        let a = (n as i64 + gap) as u64 / 2;
        let b = n - a;
        let mc = MonteCarlo::new(budget, Seed::from(2024));
        let estimate = mc.success_probability_until(&model, a, b, rule);
        let (low, high) = estimate.wilson_interval(1.96);
        println!(
            "{a:>6} {b:>6} | {:>9.4} {:>7} {:>22}",
            estimate.point(),
            estimate.trials(),
            format!("[{low:.4}, {high:.4}]"),
        );
    }

    // The same stream powers arbitrary online statistics: Welford moments of
    // the consensus time and extinction time, with a live progress callback.
    println!("\nconsensus-time moments at the near-critical point (fixed 400 trials):");
    let a = n / 2 + 2;
    let b = n - a;
    let mc = MonteCarlo::new(400, Seed::from(7));
    let scenario = Scenario::majority(model, a, b);
    let mut peak = 0;
    let moments = mc.fold_with(&scenario, RunMoments::new(), None, |progress| {
        // A real CLI would draw a progress bar; sample every 100 trials.
        if progress.trials % 100 == 0 {
            peak = progress.trials;
        }
    });
    assert_eq!(peak, 400, "progress callback saw every trial");
    println!(
        "  T(S): mean {:.1} events (sd {:.1}) over {} completed of {} trials",
        moments.events().mean(),
        moments.events().std_dev(),
        moments.completed(),
        moments.trials(),
    );
    println!(
        "  extinction time: mean {:.1} (jump-chain clock = events)",
        moments.time().mean(),
    );
}
