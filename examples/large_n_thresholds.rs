//! Large-`n` protocol threshold sweeps on the count-based batched backends —
//! an E16-style run at population sizes the agent-list stepper could never
//! afford interactively.
//!
//! ```text
//! cargo run --release --example large_n_thresholds
//! ```
//!
//! Four demonstrations:
//!
//! 1. the adaptive threshold search for the batched 3-state approximate-
//!    majority backend at `n = 10⁵` and `n = 10⁶` (each probe runs whole
//!    epochs of `Θ(√n)` interactions per handful of hypergeometric draws);
//! 2. the Czyzowicz conversion dynamics at smaller `n` for the linear-law
//!    contrast (their `Θ(n²)` interactions per trial — not the simulator —
//!    are what caps the counted stepper's size);
//! 3. the *diffusion-bridged* Czyzowicz backend carrying that same linear
//!    law to `n = 10⁷`: whole stretches of the count random walk are
//!    sampled from their binomial/Gaussian bridge (exact stepping inside a
//!    boundary band, so absorption is never approximated), collapsing the
//!    `Θ(n²)` interactions per trial into polylog-many block draws;
//! 4. a certification that the self-destructive annihilation dynamics
//!    decide correctly at `n = 10⁶` (gap invariance: no threshold exists).
//!
//! Batched and bridged backends agree with the agent-list stepper
//! statistically — same outcome distributions — but not bit-for-bit (the
//! RNG stream differs); see `BackendRegistry` and the `-agents` backends
//! for bit-exact runs.

use lv_consensus::engine::stream::EarlyStop;
use lv_consensus::lotka::LvModel;
use lv_consensus::sim::{
    GapScenario, MonteCarlo, ScalingFit, Seed, ThresholdSearch, TwoSpeciesGap,
};

fn nlogn_budget(n: u64) -> u64 {
    (40.0 * n as f64 * (n as f64).ln()).ceil() as u64
}

fn main() {
    let seed = Seed::from(0xE16);

    // 1. Approximate majority, batched, at 10⁵ and 10⁶.
    println!("== batched approx-majority threshold sweep ==");
    let search = ThresholdSearch::new(16, seed).with_backend("approx-majority");
    let mut ns = Vec::new();
    let mut thresholds = Vec::new();
    for n in [100_000u64, 1_000_000] {
        let factory = TwoSpeciesGap::new(LvModel::default(), n).with_max_events(nlogn_budget(n));
        let result = search.find_gap(&factory);
        println!("{result}");
        ns.push(n as f64);
        thresholds.push(result.threshold as f64);
    }

    // 2. The Czyzowicz conversion dynamics need linear gaps — and Θ(n²)
    // interactions per trial, which is why their sizes stay smaller.
    println!("\n== batched czyzowicz-lv threshold sweep (linear law) ==");
    let czyzowicz = ThresholdSearch::new(20, seed.derive("cz")).with_backend("czyzowicz-lv");
    for n in [1_000u64, 3_000] {
        let factory = TwoSpeciesGap::new(LvModel::default(), n).with_max_events(4 * n * n);
        let result = czyzowicz.find_gap(&factory);
        println!("{result}");
        ns.push(n as f64);
        thresholds.push(result.threshold as f64);
        let fraction = result.threshold as f64 / n as f64;
        println!("   threshold/n = {fraction:.2} — a constant fraction of n");
    }

    // The approximate-majority points alone: sub-linear growth.
    let fit = ScalingFit::fit(&ns[..2], &thresholds[..2]);
    let (law, coefficient, _) = fit.best();
    println!("\napprox-majority threshold fits {coefficient:.3} x {law}");

    // 3. The diffusion-bridged backend runs the same conversion dynamics
    // with whole bridge blocks instead of resolved interactions, so the
    // linear-law sweep continues three decades past the counted stepper —
    // a near-tie trial at n = 10⁷ traverses ~10¹³ interactions in
    // milliseconds.
    println!("\n== bridged czyzowicz-lv threshold sweep to n = 10^7 ==");
    let bridged =
        ThresholdSearch::new(20, seed.derive("cz-bridged")).with_backend("czyzowicz-lv-bridged");
    let mut bridged_ns = Vec::new();
    let mut bridged_thresholds = Vec::new();
    for n in [100_000u64, 1_000_000, 10_000_000] {
        let factory = TwoSpeciesGap::new(LvModel::default(), n).with_max_events(4 * n * n);
        let result = bridged.find_gap(&factory);
        println!("{result}");
        bridged_ns.push(n as f64);
        bridged_thresholds.push(result.threshold as f64);
    }
    let fit = ScalingFit::fit(&bridged_ns, &bridged_thresholds);
    let (law, coefficient, _) = fit.best();
    println!("bridged czyzowicz threshold fits {coefficient:.3} x {law}");
    assert_eq!(
        law,
        lv_consensus::sim::ScalingLaw::Linear,
        "the conversion dynamics must keep their linear gap law at n = 10^7"
    );

    // 4. Gap invariance at n = 10⁶: the annihilation dynamics decide any
    // non-zero gap correctly — certified with an early-stopped probe.
    println!("\n== annihilation-lv certification at n = 10^6 ==");
    let n = 1_000_000u64;
    let mc = MonteCarlo::new(16, seed.derive("sd")).with_backend("annihilation-lv");
    let factory = TwoSpeciesGap::new(LvModel::default(), n).with_max_events(nlogn_budget(n));
    let scenario = factory.scenario(n / 2);
    let rule = EarlyStop::at_half_width(1.0 / 16.0)
        .with_boundary(1.0 - 3.0 / 16.0)
        .with_min_trials(8);
    let estimate = mc.scenario_success_probability_until(&scenario, rule);
    println!(
        "gap n/2 at n = 10^6: {}/{} majority wins (gap-invariant, always correct)",
        estimate.successes(),
        estimate.trials()
    );
    assert_eq!(
        estimate.point(),
        1.0,
        "annihilation must decide every run correctly"
    );
}
