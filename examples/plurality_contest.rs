//! k-species plurality consensus: run the named multi-species scenario
//! presets — 3-species cyclic competition, the planted 4-species plurality
//! and the two-vs-many coalition — on every backend that supports them, and
//! aggregate plurality statistics over a Monte-Carlo batch.
//!
//! ```sh
//! cargo run --release --example plurality_contest
//! ```

use lv_consensus::engine::{presets, BackendRegistry};
use lv_consensus::sim::{MonteCarlo, Seed};

fn main() {
    let n = 600;
    let trials = 200;

    for preset in presets::presets() {
        let scenario = preset.build(n);
        println!(
            "## {} (k = {}, n = {}): {}",
            preset.name(),
            preset.species_count(),
            n,
            preset.description()
        );
        println!("   initial population: {}", scenario.initial());

        for backend in BackendRegistry::global().iter_supporting(preset.species_count()) {
            let mc = MonteCarlo::new(trials, Seed::from(2024)).with_backend(backend.name());
            let stats = mc.plurality_stats(&scenario);
            print!(
                "   {:>16}: leader wins {:.3}, wins by species [",
                backend.name(),
                stats.leader_win_fraction
            );
            for (i, w) in stats.win_fractions.iter().enumerate() {
                if i > 0 {
                    print!(", ");
                }
                print!("{w:.2}");
            }
            println!(
                "], mean T(S) {:.0}, truncated {}/{}",
                stats.mean_events, stats.truncated, stats.trials
            );
        }
        println!();
    }
}
