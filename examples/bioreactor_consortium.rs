//! A two-strain bioreactor consortium, simulated with the full chemical
//! reaction network machinery (continuous time) rather than the specialised
//! jump chain.
//!
//! The scenario follows the paper's biological interpretation (Section 1.3):
//! two engineered E. coli strains in a well-mixed bioreactor during the
//! exponential growth phase, with a lysis-based (self-destructive)
//! interference circuit. We track wall-clock time with the Gillespie direct
//! method, show a full trajectory, and demonstrate what happens when the
//! strains additionally carry an intraspecific-competition circuit (Table 1
//! row 2: the amplification property collapses).
//!
//! ```sh
//! cargo run --release --example bioreactor_consortium
//! ```

use lv_consensus::crn::prelude::*;
use lv_consensus::crn::StopCondition;
use lv_consensus::lotka::{CompetitionKind, LvModel};
use lv_consensus::sim::{MonteCarlo, Seed};
use rand::SeedableRng;

fn main() {
    // Strain parameters: doubling every ~30 min ⇒ β ≈ 1.4 h⁻¹; a small basal
    // death rate; a lysis-mediated interference circuit.
    let (beta, delta, alpha) = (1.4, 0.1, 0.002);
    let model = LvModel::neutral(CompetitionKind::SelfDestructive, beta, delta, alpha);
    let network = model
        .to_reaction_network()
        .expect("the model has positive rates");
    let x0 = network.species_by_name("X0").unwrap();
    let x1 = network.species_by_name("X1").unwrap();

    // Inoculate with 620 vs 580 cells (a ~3% difference).
    let initial = State::from(vec![620, 580]);
    let rng = rand::rngs::StdRng::seed_from_u64(33);
    let mut sim = GillespieDirect::new(&network, initial, rng);
    let (outcome, trajectory) =
        sim.run_recording(&StopCondition::any_species_extinct().with_max_events(5_000_000));

    println!("bioreactor run ({}):", model);
    println!(
        "  consensus after {:.2} simulated hours and {} reactions",
        outcome.time, outcome.events
    );
    println!(
        "  final composition: X0 = {}, X1 = {}",
        outcome.final_state.count(x0),
        outcome.final_state.count(x1)
    );

    // Print a coarse time series of the two strains.
    println!("  time series (every ~tenth of the run):");
    let points = trajectory.points();
    for i in (0..points.len()).step_by((points.len() / 10).max(1)) {
        let p = &points[i];
        println!(
            "    t = {:6.2} h   X0 = {:6}   X1 = {:6}   gap = {:5}",
            p.time,
            p.state.count(x0),
            p.state.count(x1),
            p.state.count(x0) as i64 - p.state.count(x1) as i64
        );
    }

    // How reliable is the 3% read-out? Compare against the same circuit with
    // an added intraspecific-competition plasmid (the regime of Theorem 20).
    let trials = 200;
    let mc = MonteCarlo::new(trials, Seed::from(9));
    let p_clean = mc.success_probability(&model, 620, 580).point();
    let with_intra = LvModel::with_intraspecific(
        CompetitionKind::SelfDestructive,
        beta,
        delta,
        alpha,
        2.0 * alpha,
    );
    let p_intra = mc.success_probability(&with_intra, 620, 580).point();
    println!("\nreliability of the 3% differential read-out over {trials} runs:");
    println!("  interspecific interference only : {p_clean:.3}");
    println!(
        "  + balanced intraspecific circuit: {p_intra:.3} (collapses towards a/(a+b) = 0.517)"
    );
}
