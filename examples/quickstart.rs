//! Quickstart: build a competitive Lotka–Volterra model, run one trajectory,
//! and estimate the probability of majority consensus.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lv_consensus::lotka::{run_majority_with_trajectory, CompetitionKind, LvModel};
use lv_consensus::sim::{MonteCarlo, Seed};
use rand::SeedableRng;

fn main() {
    // A neutral self-destructive Lotka–Volterra system (Eq. 1 of the paper)
    // with unit birth, death and competition rates.
    let model = LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0);
    println!("model: {model}");

    // One trajectory from (550, 450): total population n = 1000, gap ∆ = 100.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let (outcome, gaps) = run_majority_with_trajectory(&model, 550, 450, &mut rng, 10_000_000);
    println!(
        "single run: consensus after {} events, winner = {:?}, J(S) = {}, noise F = {}",
        outcome.events,
        outcome.winner,
        outcome.bad_noncompetitive_events,
        outcome.noise.total()
    );
    println!(
        "gap trajectory: start {} -> min {} -> end {}",
        gaps.first().unwrap(),
        gaps.iter().min().unwrap(),
        gaps.last().unwrap()
    );

    // Monte-Carlo estimate of the majority-consensus probability ρ(S).
    let mc = MonteCarlo::new(500, Seed::from(7));
    let estimate = mc.success_probability(&model, 550, 450);
    println!("ρ(550, 450) ≈ {estimate}");

    // The same gap under non-self-destructive competition does much worse —
    // the paper's headline separation.
    let nsd = LvModel::neutral(CompetitionKind::NonSelfDestructive, 1.0, 1.0, 1.0);
    let estimate_nsd = mc.success_probability(&nsd, 550, 450);
    println!("ρ_non-self-destructive(550, 450) ≈ {estimate_nsd}");
}
