//! Empirical majority-consensus thresholds and their scaling in n.
//!
//! A compact version of experiments E1/E2: for each population size, find the
//! smallest initial gap that reaches the `1 − 1/n` success criterion, then fit
//! the thresholds against the candidate asymptotic laws of Table 1.
//!
//! ```sh
//! cargo run --release --example threshold_scaling
//! ```

use lv_consensus::lotka::{CompetitionKind, LvModel};
use lv_consensus::sim::report::Table;
use lv_consensus::sim::{ScalingFit, Seed, ThresholdSearch};

fn main() {
    let sizes = [256u64, 1_024, 4_096, 16_384];
    let search = ThresholdSearch::new(150, Seed::from(11));

    let mut table = Table::new(
        "empirical thresholds (success criterion 1 − 1/n, 150 trials per probe)",
        &["n", "∆* self-destructive", "∆* non-self-destructive"],
    );
    let mut sd_series = Vec::new();
    let mut nsd_series = Vec::new();
    for &n in &sizes {
        let sd = search.find(
            &LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0),
            n,
        );
        let nsd = search.find(
            &LvModel::neutral(CompetitionKind::NonSelfDestructive, 1.0, 1.0, 1.0),
            n,
        );
        sd_series.push((n as f64, sd.threshold as f64));
        nsd_series.push((n as f64, nsd.threshold as f64));
        table.push_row(&[
            n.to_string(),
            sd.threshold.to_string(),
            nsd.threshold.to_string(),
        ]);
    }
    println!("{table}");

    for (label, series) in [
        ("self-destructive", &sd_series),
        ("non-self-destructive", &nsd_series),
    ] {
        let ns: Vec<f64> = series.iter().map(|&(n, _)| n).collect();
        let ys: Vec<f64> = series.iter().map(|&(_, y)| y).collect();
        let fit = ScalingFit::fit(&ns, &ys);
        let (best, coefficient, error) = fit.best();
        println!("{label}: threshold ≈ {coefficient:.2} · {best} (relative RMSE {error:.3})");
        print!("{fit}");
        println!();
    }
}
