//! Deterministic Lotka–Volterra ODE vs the stochastic jump chain.
//!
//! Section 2.1 of the paper: under deterministic mass-action kinetics with
//! `α′ > γ′` the species with the higher initial density *always* wins, so the
//! ODE model cannot express the failure probabilities that demographic noise
//! causes in finite populations. This example integrates the ODE with the
//! in-repo RK4/RKF45 integrators and compares its all-or-nothing prediction
//! with the stochastic success probability at the same initial conditions.
//!
//! ```sh
//! cargo run --release --example deterministic_vs_stochastic
//! ```

use lv_consensus::lotka::{CompetitionKind, LvModel};
use lv_consensus::ode::{CompetitiveLv, OdeIntegrator, Rk4, Rkf45};
use lv_consensus::sim::report::Table;
use lv_consensus::sim::{MonteCarlo, Seed};

fn main() {
    let n: u64 = 2_000;
    let model = LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0);
    // Deterministic counterpart (Eq. 4): r = β − δ = 0, α′ = α_total, γ′ = 0.
    let ode = CompetitiveLv::from_rates(1.0, 1.0, model.rates().alpha_total(), 0.0);

    // Sanity check the two integrators against each other on one trajectory.
    let horizon = 20.0 / n as f64;
    let initial = [1_010.0, 990.0];
    let rk4 = Rk4::new(horizon / 10_000.0).integrate(&ode, initial, 0.0, horizon);
    let rkf = Rkf45::new(1e-10).integrate(&ode, initial, 0.0, horizon);
    let a = rk4.last_state();
    let b = rkf.last_state();
    println!(
        "integrator agreement at t = {horizon:.4}: RK4 ({:.3}, {:.3}) vs RKF45 ({:.3}, {:.3})",
        a[0], a[1], b[0], b[1]
    );

    let mut table = Table::new(
        format!("deterministic prediction vs stochastic ρ at n = {n}"),
        &["∆", "ODE winner", "stochastic ρ (300 trials)"],
    );
    for gap in [2u64, 10, 40, 160, 640] {
        let x0 = (n + gap) / 2;
        let x1 = n - x0;
        let winner = match ode.predicted_winner([x0 as f64, x1 as f64]) {
            Some(0) => "species 0 (always)",
            Some(1) => "species 1 (always)",
            _ => "tie",
        };
        let mc = MonteCarlo::new(300, Seed::from(1_000 + gap));
        let rho = mc.success_probability(&model, x0, x1).point();
        table.push_row(&[gap.to_string(), winner.to_string(), format!("{rho:.3}")]);
    }
    println!("{table}");
    println!(
        "The ODE is blind to demographic noise: it declares the majority the certain winner for any ∆ > 0,\n\
         while the stochastic probability only approaches 1 once ∆ reaches the paper's threshold scale."
    );
}
