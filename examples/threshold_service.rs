//! The threshold-surface service end to end: start a server on a Unix
//! socket, query one cell cold, watch the identical re-query come back as a
//! pure cache hit, tighten the interval incrementally, sweep a small
//! surface, and read an off-lattice point by interpolation.
//!
//! ```sh
//! cargo run --release --example threshold_service
//! ```

use lv_consensus::lotka::{CompetitionKind, LvModel};
use lv_consensus::server::{
    BindAddr, Client, EstimateRequest, InProcessExecutor, ScenarioSpec, Server, ServiceConfig,
    SweepRequest, ThresholdService,
};
use std::time::Instant;

fn main() {
    let spec = ScenarioSpec::two_species(
        LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0),
        "jump-chain",
    );

    // An in-process service behind a Unix socket; `lv-serve --workers N`
    // runs the same service with a multi-process worker pool instead.
    let socket =
        std::env::temp_dir().join(format!("lv-consensus-example-{}.sock", std::process::id()));
    let service = ThresholdService::new(
        Box::new(InProcessExecutor::new(0)),
        ServiceConfig::default(),
    );
    let server = Server::bind(service, &BindAddr::Unix(socket.clone())).expect("bind");
    let handle = std::thread::spawn(move || server.serve().expect("serve"));
    let mut client = Client::connect_unix(&socket).expect("connect");

    // Cold: the server spends fresh trials to reach the requested width.
    let request = EstimateRequest {
        spec: spec.clone(),
        n: 512,
        gap: 8,
        target_ci: 0.05,
        max_trials: 0,
    };
    let start = Instant::now();
    let cold = client.estimate(request.clone()).expect("estimate");
    let cold_elapsed = start.elapsed();
    println!(
        "cold : ρ(512, 8) = {:.3} ± {:.3}  ({} fresh trials, {:.1?})",
        cold.point, cold.half_width, cold.fresh_trials, cold_elapsed
    );

    // Hot: the identical query is served from the cache with zero trials.
    let start = Instant::now();
    let hot = client.estimate(request.clone()).expect("estimate");
    let hot_elapsed = start.elapsed();
    println!(
        "hot  : ρ(512, 8) = {:.3} ± {:.3}  ({} fresh trials, cache_hit={}, {:.1?})",
        hot.point, hot.half_width, hot.fresh_trials, hot.cache_hit, hot_elapsed
    );
    assert!(hot.cache_hit && hot.fresh_trials == 0);

    // Tighter: the cell's RNG stream is extended, never restarted, so the
    // refinement costs exactly the difference in trial counts.
    let mut tighter = request.clone();
    tighter.target_ci = 0.015;
    let refined = client.estimate(tighter).expect("estimate");
    println!(
        "tight: ρ(512, 8) = {:.3} ± {:.3}  ({} fresh of {} total trials)",
        refined.point, refined.half_width, refined.fresh_trials, refined.trials
    );
    assert_eq!(refined.fresh_trials, refined.trials - cold.trials);

    // A small surface sweep; requested gaps snap to the feasible lattice
    // and duplicate cells are probed once.
    let sweep = client
        .sweep(SweepRequest {
            spec: spec.clone(),
            n_lattice: vec![256, 512],
            gap_lattice: vec![2, 8, 16],
            target_ci: 0.1,
        })
        .expect("sweep");
    println!(
        "sweep: {} cells, {} fresh trials",
        sweep.cells.len(),
        sweep.fresh_trials
    );
    for cell in &sweep.cells {
        println!(
            "       ρ({:>3}, {:>2}) = {:.3} ± {:.3}",
            cell.n, cell.gap, cell.point, cell.half_width
        );
    }

    // Off the feasible lattice the server interpolates bilinearly from the
    // cached corners — honestly widened, and without running a single trial.
    let mid = client
        .estimate(EstimateRequest {
            spec,
            n: 384,
            gap: 9,
            target_ci: 0.2,
            max_trials: 0,
        })
        .expect("interpolate");
    println!(
        "mid  : ρ(384, 9) ≈ {:.3} ± {:.3}  (interpolated={}, fresh trials={})",
        mid.point, mid.half_width, mid.interpolated, mid.fresh_trials
    );

    let stats = client.cache_stats().expect("cache stats");
    println!(
        "cache: {} cells, {} trials banked, {} hits / {} misses",
        stats.cells, stats.trials, stats.hits, stats.misses
    );

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}
