//! # lv-consensus
//!
//! A reproduction of *“Majority consensus thresholds in competitive
//! Lotka–Volterra populations”* (Függer, Nowak, Rybicki; PODC 2024).
//!
//! This facade crate re-exports the member crates of the workspace so that a
//! downstream user can depend on a single crate:
//!
//! * [`crn`] — chemical reaction networks with mass-action stochastic kinetics
//!   (Gillespie direct method, next-reaction method, tau-leaping, jump chain).
//! * [`chains`] — single-species birth–death chains, the “nice chain”
//!   abstraction, the dominating chain of §5.2 and the asynchronous
//!   pseudo-coupling of §5.1.
//! * [`lotka`] — the competitive Lotka–Volterra models: the paper's
//!   two-species models of §1.3, the general `k`-species
//!   [`lotka::MultiLvModel`] (k×k attack matrix) with the dense
//!   [`lotka::Population`] state, and the majority/plurality observables
//!   (consensus time, winner, margin trajectory, noise decomposition).
//! * [`ode`] — the deterministic competitive Lotka–Volterra ODE (Eq. 4), its
//!   `k`-species generalisation with the Champagnat–Jabin–Raoul interior
//!   equilibrium solver, and in-repo Runge–Kutta integrators.
//! * [`engine`] — the unified simulation API: a `k`-species
//!   [`engine::Scenario`] description (model + initial population + stop
//!   condition + observers) executed by any [`engine::Backend`] from the
//!   open string-keyed registry (`"jump-chain"`, `"gillespie-direct"`,
//!   `"next-reaction"`, `"tau-leaping"`, `"ode"`, the batched protocol
//!   baselines `"approx-majority"`, `"exact-majority"`, `"czyzowicz-lv"`,
//!   `"annihilation-lv"`, `"czyzowicz-lv-k"`, the diffusion-bridged
//!   conversion backends `"czyzowicz-lv-bridged"` /
//!   `"czyzowicz-lv-k-bridged"` and the bit-exact `-agents` legacy
//!   variants), plus named multi-species scenario presets
//!   ([`engine::presets`]).
//! * [`protocols`] — baseline protocols from related work (3-state approximate
//!   majority, 4-state exact majority, Czyzowicz et al. LV population
//!   protocol, the self-destructive annihilation dynamics, Andaur et al.
//!   resource-consumer model), with the count-based batched simulation
//!   engine ([`protocols::CountedDynamics`] / [`protocols::CountedSimulation`]
//!   and the birthday-bound/hypergeometric samplers in
//!   [`protocols::sampling`]) that pushes protocol runs to `n = 10⁷⁺`, and
//!   the diffusion-bridged first-passage sampler
//!   ([`protocols::BridgedConversionWalk`]) that collapses the `Θ(n²)`
//!   interactions of a conversion trial into `Õ(poly log n)` bridge blocks.
//! * [`server`] — the threshold-surface service: a memoized sweep server
//!   ([`server::ThresholdService`]) over a versioned length-prefixed wire
//!   format (TCP or Unix sockets), with incremental Wilson refinement,
//!   single-flight request coalescing, bilinear off-lattice interpolation,
//!   snapshot warm starts and an optional multi-process
//!   [`server::WorkerPool`] that shards trial ranges bit-identically across
//!   spawned worker processes (binaries `lv-serve` / `lv-client`).
//! * [`sim`] — Monte-Carlo engine over scenario batches, estimators
//!   (including `k`-species [`sim::PluralityStats`]), the backend-generic
//!   adaptive threshold search ([`sim::ThresholdSearch`] over
//!   [`sim::GapScenario`] factories), scaling fits and the experiment suite
//!   that regenerates Table 1 of the paper plus the multi-species plurality
//!   suite, the per-backend threshold-scaling comparison and the large-`n`
//!   batched protocol sweeps (E16).
//!
//! # Quick start
//!
//! Estimate a success probability through the Monte-Carlo layer (which runs
//! every trial through the engine's jump-chain backend):
//!
//! ```
//! use lv_consensus::lotka::{CompetitionKind, LvModel};
//! use lv_consensus::sim::{MonteCarlo, Seed};
//!
//! // Neutral self-destructive Lotka–Volterra system with initial state (550, 450).
//! let model = LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0);
//! let mc = MonteCarlo::new(200, Seed::from(42));
//! let estimate = mc.success_probability(&model, 550, 450);
//! assert!(estimate.point() > 0.5);
//! ```
//!
//! Or describe the run once as a [`engine::Scenario`] and execute it on any
//! backend from the registry:
//!
//! ```
//! use lv_consensus::engine::{backend, ObserverSpec, Scenario};
//! use lv_consensus::lotka::{CompetitionKind, LvModel};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let model = LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0);
//! let scenario = Scenario::majority(model, 550, 450).observe(ObserverSpec::GapTrajectory);
//! for name in ["jump-chain", "gillespie-direct", "tau-leaping"] {
//!     let mut rng = StdRng::seed_from_u64(42);
//!     let report = backend(name).unwrap().run(&scenario, &mut rng);
//!     assert!(report.consensus_reached(), "{name}");
//!     // The derived view reproduces the classic MajorityOutcome fields.
//!     let outcome = report.to_majority_outcome();
//!     assert_eq!(outcome.consensus_reached, true);
//! }
//! ```

#![forbid(unsafe_code)]

pub use lv_chains as chains;
pub use lv_crn as crn;
pub use lv_engine as engine;
pub use lv_lotka as lotka;
pub use lv_ode as ode;
pub use lv_protocols as protocols;
pub use lv_server as server;
pub use lv_sim as sim;
