//! # lv-consensus
//!
//! A reproduction of *“Majority consensus thresholds in competitive
//! Lotka–Volterra populations”* (Függer, Nowak, Rybicki; PODC 2024).
//!
//! This facade crate re-exports the member crates of the workspace so that a
//! downstream user can depend on a single crate:
//!
//! * [`crn`] — chemical reaction networks with mass-action stochastic kinetics
//!   (Gillespie direct method, next-reaction method, tau-leaping, jump chain).
//! * [`chains`] — single-species birth–death chains, the “nice chain”
//!   abstraction, the dominating chain of §5.2 and the asynchronous
//!   pseudo-coupling of §5.1.
//! * [`lotka`] — the two-species competitive Lotka–Volterra models of §1.3 and
//!   the majority-consensus observables (consensus time, winner, gap
//!   trajectory, noise decomposition).
//! * [`ode`] — the deterministic competitive Lotka–Volterra ODE (Eq. 4) with
//!   in-repo Runge–Kutta integrators.
//! * [`protocols`] — baseline protocols from related work (3-state approximate
//!   majority, 4-state exact majority, Czyzowicz et al. LV population
//!   protocol, Andaur et al. resource-consumer model).
//! * [`sim`] — Monte-Carlo engine, estimators, threshold search, scaling fits
//!   and the experiment suite that regenerates Table 1 of the paper.
//!
//! # Quick start
//!
//! ```
//! use lv_consensus::lotka::{CompetitionKind, LvModel};
//! use lv_consensus::sim::{MonteCarlo, Seed};
//!
//! // Neutral self-destructive Lotka–Volterra system with initial state (550, 450).
//! let model = LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0);
//! let mc = MonteCarlo::new(200, Seed::from(42));
//! let estimate = mc.success_probability(&model, 550, 450);
//! assert!(estimate.point() > 0.5);
//! ```

pub use lv_chains as chains;
pub use lv_crn as crn;
pub use lv_lotka as lotka;
pub use lv_ode as ode;
pub use lv_protocols as protocols;
pub use lv_sim as sim;
