/// An autonomous first-order ODE system `dy/dt = f(y)` with a fixed number of
/// state variables, given as a const generic dimension.
///
/// ```
/// use lv_ode::OdeSystem;
///
/// /// Exponential decay dy/dt = -y.
/// #[derive(Debug)]
/// struct Decay;
/// impl OdeSystem<1> for Decay {
///     fn derivative(&self, y: &[f64; 1]) -> [f64; 1] {
///         [-y[0]]
///     }
/// }
/// assert_eq!(Decay.derivative(&[2.0]), [-2.0]);
/// ```
pub trait OdeSystem<const D: usize> {
    /// The derivative `f(y)` at state `y`.
    fn derivative(&self, y: &[f64; D]) -> [f64; D];
}

impl<const D: usize, T: OdeSystem<D> + ?Sized> OdeSystem<D> for &T {
    fn derivative(&self, y: &[f64; D]) -> [f64; D] {
        (**self).derivative(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Harmonic;

    impl OdeSystem<2> for Harmonic {
        fn derivative(&self, y: &[f64; 2]) -> [f64; 2] {
            [y[1], -y[0]]
        }
    }

    #[test]
    fn derivative_is_evaluated() {
        assert_eq!(Harmonic.derivative(&[1.0, 0.0]), [0.0, -1.0]);
        assert_eq!(Harmonic.derivative(&[0.0, 2.0]), [2.0, 0.0]);
    }

    #[test]
    fn references_implement_the_trait() {
        fn f<S: OdeSystem<2>>(s: S) -> [f64; 2] {
            s.derivative(&[1.0, 1.0])
        }
        assert_eq!(f(&Harmonic), [1.0, -1.0]);
    }
}
