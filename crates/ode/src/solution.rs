/// A recorded ODE solution: a sequence of `(t, y)` samples produced by an
/// integrator.
#[derive(Debug, Clone, PartialEq)]
pub struct OdeSolution<const D: usize> {
    times: Vec<f64>,
    states: Vec<[f64; D]>,
}

impl<const D: usize> OdeSolution<D> {
    /// Creates an empty solution.
    pub fn new() -> Self {
        OdeSolution {
            times: Vec::new(),
            states: Vec::new(),
        }
    }

    /// Appends a sample.
    pub fn push(&mut self, time: f64, state: [f64; D]) {
        self.times.push(time);
        self.states.push(state);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the solution has no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The recorded time points.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The recorded states.
    pub fn states(&self) -> &[[f64; D]] {
        &self.states
    }

    /// The final recorded state.
    ///
    /// # Panics
    ///
    /// Panics if the solution is empty.
    pub fn last_state(&self) -> [f64; D] {
        *self
            .states
            .last()
            .expect("solution has at least one sample")
    }

    /// The final recorded time.
    ///
    /// # Panics
    ///
    /// Panics if the solution is empty.
    pub fn last_time(&self) -> f64 {
        *self.times.last().expect("solution has at least one sample")
    }

    /// The state at time `t`, linearly interpolated between samples. Clamps to
    /// the first/last sample outside the recorded range.
    ///
    /// # Panics
    ///
    /// Panics if the solution is empty.
    pub fn state_at(&self, t: f64) -> [f64; D] {
        assert!(!self.is_empty(), "solution has at least one sample");
        if t <= self.times[0] {
            return self.states[0];
        }
        if t >= *self.times.last().unwrap() {
            return *self.states.last().unwrap();
        }
        let idx = self.times.partition_point(|&x| x < t);
        let (t0, t1) = (self.times[idx - 1], self.times[idx]);
        let (y0, y1) = (self.states[idx - 1], self.states[idx]);
        let w = if t1 > t0 { (t - t0) / (t1 - t0) } else { 0.0 };
        let mut out = [0.0; D];
        for i in 0..D {
            out[i] = y0[i] + w * (y1[i] - y0[i]);
        }
        out
    }

    /// The time series of one component.
    pub fn component(&self, index: usize) -> Vec<(f64, f64)> {
        self.times
            .iter()
            .zip(self.states.iter())
            .map(|(&t, y)| (t, y[index]))
            .collect()
    }
}

impl<const D: usize> Default for OdeSolution<D> {
    fn default() -> Self {
        OdeSolution::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> OdeSolution<2> {
        let mut s = OdeSolution::new();
        s.push(0.0, [0.0, 10.0]);
        s.push(1.0, [1.0, 20.0]);
        s.push(2.0, [4.0, 40.0]);
        s
    }

    #[test]
    fn push_and_access() {
        let s = sample();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.last_state(), [4.0, 40.0]);
        assert_eq!(s.last_time(), 2.0);
        assert_eq!(s.times(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn interpolation_is_linear_between_samples() {
        let s = sample();
        assert_eq!(s.state_at(0.5), [0.5, 15.0]);
        assert_eq!(s.state_at(1.5), [2.5, 30.0]);
    }

    #[test]
    fn interpolation_clamps_outside_range() {
        let s = sample();
        assert_eq!(s.state_at(-1.0), [0.0, 10.0]);
        assert_eq!(s.state_at(99.0), [4.0, 40.0]);
    }

    #[test]
    fn component_extracts_a_series() {
        let s = sample();
        assert_eq!(s.component(1), vec![(0.0, 10.0), (1.0, 20.0), (2.0, 40.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_solution_panics_on_last_state() {
        let s: OdeSolution<1> = OdeSolution::new();
        let _ = s.last_state();
    }
}
