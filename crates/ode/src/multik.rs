use serde::{Deserialize, Serialize};
use std::fmt;

/// The deterministic `k`-species competitive Lotka–Volterra system
///
/// ```text
/// dx_i/dt = x_i (r_i − Σ_j a_ij x_j),      i ∈ {0, …, k−1},
/// ```
///
/// with per-species intrinsic growth rates `r_i` and a `k×k` interaction
/// matrix `a` (row-major; `a_ii` is intraspecific, `a_ij` interspecific).
/// This is the mean-field counterpart of the stochastic `k`-species models
/// and the system whose convergence to equilibrium Champagnat–Jabin–Raoul
/// analyse: when the interaction matrix is positive definite the dynamics
/// converge to the unique saturated equilibrium, and the interior coexistence
/// equilibrium (when it exists with positive entries) solves the linear
/// system `a x = r` — see [`CompetitiveLvK::interior_equilibrium`].
///
/// Unlike [`CompetitiveLv`](crate::CompetitiveLv), the dimension is a runtime
/// value, so the system does not implement the const-generic
/// [`OdeSystem`](crate::OdeSystem) trait; use
/// [`derivative_into`](CompetitiveLvK::derivative_into) with the slice-based
/// [`DynRk4`] stepper instead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompetitiveLvK {
    growth: Vec<f64>,
    interaction: Vec<f64>,
}

impl CompetitiveLvK {
    /// Creates the system from growth rates `r` (length `k`) and the
    /// row-major interaction matrix `a` (length `k²`).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, the matrix is not `k×k`, or any entry is
    /// non-finite.
    pub fn new(growth: Vec<f64>, interaction: Vec<f64>) -> Self {
        let k = growth.len();
        assert!(k > 0, "the system needs at least one species");
        assert_eq!(
            interaction.len(),
            k * k,
            "interaction matrix must be k×k (row-major)"
        );
        assert!(
            growth.iter().chain(&interaction).all(|v| v.is_finite()),
            "parameters must be finite"
        );
        CompetitiveLvK {
            growth,
            interaction,
        }
    }

    /// Number of species `k`.
    pub fn dimension(&self) -> usize {
        self.growth.len()
    }

    /// The intrinsic growth rate `r_i`.
    pub fn growth(&self, i: usize) -> f64 {
        self.growth[i]
    }

    /// The interaction coefficient `a_ij`.
    pub fn coefficient(&self, i: usize, j: usize) -> f64 {
        self.interaction[i * self.dimension() + j]
    }

    /// Evaluates the derivative `f(y)` into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `y` or `out` has the wrong length.
    pub fn derivative_into(&self, y: &[f64], out: &mut [f64]) {
        let k = self.dimension();
        assert_eq!(y.len(), k, "state dimension mismatch");
        assert_eq!(out.len(), k, "output dimension mismatch");
        for i in 0..k {
            let mut pressure = 0.0;
            let row = &self.interaction[i * k..(i + 1) * k];
            for (a, &yj) in row.iter().zip(y) {
                pressure += a * yj;
            }
            out[i] = y[i] * (self.growth[i] - pressure);
        }
    }

    /// The interior (all-species) coexistence equilibrium: the solution `x`
    /// of `a x = r`, computed by Gaussian elimination with partial pivoting.
    ///
    /// Returns `None` when the interaction matrix is (numerically) singular.
    /// Note the solution may have non-positive entries, in which case no
    /// feasible interior equilibrium exists — callers who need feasibility
    /// should check the signs (Champagnat–Jabin–Raoul's saturated equilibrium
    /// then lives on a boundary face).
    pub fn interior_equilibrium(&self) -> Option<Vec<f64>> {
        let k = self.dimension();
        // Augmented system [a | r], eliminated in place.
        let mut m = vec![0.0; k * (k + 1)];
        for i in 0..k {
            m[i * (k + 1)..i * (k + 1) + k].copy_from_slice(&self.interaction[i * k..(i + 1) * k]);
            m[i * (k + 1) + k] = self.growth[i];
        }
        let width = k + 1;
        for col in 0..k {
            let pivot_row = (col..k)
                .max_by(|&a, &b| {
                    m[a * width + col]
                        .abs()
                        .total_cmp(&m[b * width + col].abs())
                })
                .unwrap();
            let pivot = m[pivot_row * width + col];
            if pivot.abs() < 1e-12 {
                return None;
            }
            if pivot_row != col {
                for j in 0..width {
                    m.swap(col * width + j, pivot_row * width + j);
                }
            }
            for row in 0..k {
                if row == col {
                    continue;
                }
                let factor = m[row * width + col] / m[col * width + col];
                if factor == 0.0 {
                    continue;
                }
                for j in col..width {
                    m[row * width + j] -= factor * m[col * width + j];
                }
            }
        }
        Some(
            (0..k)
                .map(|i| m[i * width + k] / m[i * width + i])
                .collect(),
        )
    }
}

impl fmt::Display for CompetitiveLvK {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-species competitive LV ODE", self.dimension())
    }
}

/// A classical RK4 stepper over runtime-dimensioned states, with reusable
/// stage buffers so stepping never allocates.
///
/// The tableau is identical to [`Rk4::single_step`](crate::Rk4::single_step);
/// only the state representation differs (slices instead of const-generic
/// arrays).
///
/// ```
/// use lv_ode::{CompetitiveLvK, DynRk4};
/// // Two uncoupled logistic species: dy/dt = y (1 − y).
/// let sys = CompetitiveLvK::new(vec![1.0, 1.0], vec![1.0, 0.0, 0.0, 1.0]);
/// let mut stepper = DynRk4::new(2);
/// let mut y = vec![0.1, 0.5];
/// for _ in 0..2_000 {
///     stepper.step(&sys, &mut y, 0.01);
/// }
/// assert!((y[0] - 1.0).abs() < 1e-6 && (y[1] - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct DynRk4 {
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    k4: Vec<f64>,
    scratch: Vec<f64>,
}

impl DynRk4 {
    /// Creates a stepper for `dimension`-dimensional states.
    pub fn new(dimension: usize) -> Self {
        DynRk4 {
            k1: vec![0.0; dimension],
            k2: vec![0.0; dimension],
            k3: vec![0.0; dimension],
            k4: vec![0.0; dimension],
            scratch: vec![0.0; dimension],
        }
    }

    /// Advances `y` in place by one RK4 step of length `h`.
    ///
    /// # Panics
    ///
    /// Panics if `y`'s length differs from the stepper's dimension or the
    /// system's.
    pub fn step(&mut self, system: &CompetitiveLvK, y: &mut [f64], h: f64) {
        let d = self.k1.len();
        assert_eq!(y.len(), d, "state dimension mismatch");
        system.derivative_into(y, &mut self.k1);
        for ((s, &yi), &k) in self.scratch.iter_mut().zip(y.iter()).zip(&self.k1) {
            *s = yi + h / 2.0 * k;
        }
        system.derivative_into(&self.scratch, &mut self.k2);
        for ((s, &yi), &k) in self.scratch.iter_mut().zip(y.iter()).zip(&self.k2) {
            *s = yi + h / 2.0 * k;
        }
        system.derivative_into(&self.scratch, &mut self.k3);
        for ((s, &yi), &k) in self.scratch.iter_mut().zip(y.iter()).zip(&self.k3) {
            *s = yi + h * k;
        }
        system.derivative_into(&self.scratch, &mut self.k4);
        for (i, yi) in y.iter_mut().enumerate() {
            *yi += h / 6.0 * (self.k1[i] + 2.0 * self.k2[i] + 2.0 * self.k3[i] + self.k4[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompetitiveLv, OdeSystem, Rk4};

    fn symmetric_3(r: f64, alpha: f64, gamma: f64) -> CompetitiveLvK {
        let mut a = vec![alpha; 9];
        for i in 0..3 {
            a[i * 3 + i] = gamma;
        }
        CompetitiveLvK::new(vec![r; 3], a)
    }

    #[test]
    fn derivative_matches_equation() {
        let sys = symmetric_3(1.0, 0.5, 0.25);
        let y = [2.0, 4.0, 1.0];
        let mut out = [0.0; 3];
        sys.derivative_into(&y, &mut out);
        let expected0 = 2.0 * (1.0 - 0.25 * 2.0 - 0.5 * 4.0 - 0.5 * 1.0);
        assert!((out[0] - expected0).abs() < 1e-12, "{out:?}");
    }

    #[test]
    fn two_species_case_agrees_with_competitive_lv() {
        let sym = CompetitiveLv::new(1.0, 0.5, 0.25);
        let dynamic = CompetitiveLvK::new(vec![1.0, 1.0], vec![0.25, 0.5, 0.5, 0.25]);
        let y = [3.0, 7.0];
        let reference = sym.derivative(&y);
        let mut out = [0.0; 2];
        dynamic.derivative_into(&y, &mut out);
        assert!((out[0] - reference[0]).abs() < 1e-12);
        assert!((out[1] - reference[1]).abs() < 1e-12);
    }

    #[test]
    fn dyn_rk4_matches_const_generic_rk4() {
        let sym = CompetitiveLv::new(1.0, 0.1, 0.05);
        let dynamic = CompetitiveLvK::new(vec![1.0, 1.0], vec![0.05, 0.1, 0.1, 0.05]);
        let mut stepper = DynRk4::new(2);
        let mut y_dyn = vec![5.0, 3.0];
        let mut y_const = [5.0, 3.0];
        for _ in 0..500 {
            stepper.step(&dynamic, &mut y_dyn, 0.01);
            y_const = Rk4::single_step(&sym, y_const, 0.01);
        }
        assert!((y_dyn[0] - y_const[0]).abs() < 1e-12);
        assert!((y_dyn[1] - y_const[1]).abs() < 1e-12);
    }

    #[test]
    fn interior_equilibrium_solves_the_linear_system() {
        // Symmetric stable-coexistence regime: γ > α ⇒ the interior
        // equilibrium x_i = r / (γ + (k−1) α) exists and is positive.
        let sys = symmetric_3(1.0, 0.1, 0.5);
        let x = sys.interior_equilibrium().unwrap();
        let expected = 1.0 / (0.5 + 2.0 * 0.1);
        for v in &x {
            assert!((v - expected).abs() < 1e-9, "{x:?}");
        }
        // The trajectory converges to it.
        let mut stepper = DynRk4::new(3);
        let mut y = vec![1.0, 0.5, 2.0];
        for _ in 0..20_000 {
            stepper.step(&sys, &mut y, 0.01);
        }
        for v in &y {
            assert!((v - expected).abs() < 1e-4, "{y:?}");
        }
    }

    #[test]
    fn singular_interaction_matrix_has_no_interior_equilibrium() {
        let sys = CompetitiveLvK::new(vec![1.0, 1.0], vec![1.0, 1.0, 1.0, 1.0]);
        assert_eq!(sys.interior_equilibrium(), None);
    }

    #[test]
    fn equilibrium_can_be_infeasible() {
        // Strong asymmetric competition: the "interior" solution has a
        // negative entry, signalling exclusion.
        let sys = CompetitiveLvK::new(vec![1.0, 0.1], vec![1.0, 2.0, 2.0, 1.0]);
        let x = sys.interior_equilibrium().unwrap();
        assert!(x.iter().any(|&v| v < 0.0), "{x:?}");
    }

    #[test]
    fn accessors_report_parameters() {
        let sys = symmetric_3(0.75, 0.5, 0.25);
        assert_eq!(sys.dimension(), 3);
        assert_eq!(sys.growth(1), 0.75);
        assert_eq!(sys.coefficient(0, 0), 0.25);
        assert_eq!(sys.coefficient(0, 2), 0.5);
        assert!(sys.to_string().contains("3-species"));
    }

    #[test]
    #[should_panic(expected = "k×k")]
    fn wrong_matrix_shape_is_rejected() {
        let _ = CompetitiveLvK::new(vec![1.0; 3], vec![0.0; 6]);
    }
}
