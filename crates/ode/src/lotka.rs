use crate::system::OdeSystem;
use serde::{Deserialize, Serialize};

/// The deterministic two-species competitive Lotka–Volterra equations of
/// Section 2.1 (Eq. 4), for the neutral case:
///
/// ```text
/// dx_i/dt = x_i (r − α′ x_{1−i} − γ′ x_i),      i ∈ {0, 1},
/// ```
///
/// with intrinsic growth rate `r = β − δ`, interspecific coefficient `α′` and
/// intraspecific coefficient `γ′`.
///
/// The paper's observation about this model (end of Section 2.1): when
/// `α′ > γ′`, the species with the higher initial density deterministically
/// always wins — the model has no notion of the stochastic failure
/// probabilities the paper quantifies. [`CompetitiveLv::predicted_winner`]
/// implements exactly that prediction, and experiment E10 compares it against
/// the stochastic majority-consensus probability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompetitiveLv {
    r: f64,
    alpha: f64,
    gamma: f64,
}

/// Classification of the fixed points of the deterministic system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Equilibrium {
    /// The origin `(0, 0)`.
    Extinction,
    /// A single-species equilibrium `(r/γ′, 0)` or `(0, r/γ′)` (requires
    /// `γ′ > 0`).
    Exclusion {
        /// Which species survives (0 or 1).
        survivor: usize,
        /// Its equilibrium density.
        density: f64,
    },
    /// The interior coexistence equilibrium `x_0 = x_1 = r/(α′ + γ′)`.
    Coexistence {
        /// The common equilibrium density of both species.
        density: f64,
    },
}

impl CompetitiveLv {
    /// Creates the system with intrinsic growth rate `r = β − δ`,
    /// interspecific coefficient `alpha` and intraspecific coefficient
    /// `gamma`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` or `gamma` is negative or any parameter is
    /// non-finite.
    pub fn new(r: f64, alpha: f64, gamma: f64) -> Self {
        assert!(
            r.is_finite() && alpha.is_finite() && gamma.is_finite(),
            "parameters must be finite"
        );
        assert!(
            alpha >= 0.0 && gamma >= 0.0,
            "competition coefficients must be non-negative"
        );
        CompetitiveLv { r, alpha, gamma }
    }

    /// Builds the deterministic counterpart of a stochastic model's rates:
    /// `r = β − δ`, `α′ = α_0 + α_1` for self-destructive competition
    /// (both reactions remove an individual of each species) and
    /// `α′ = α_0 = α_1` for non-self-destructive competition, `γ′ = γ_i`
    /// (see Section 2.1).
    pub fn from_rates(beta: f64, delta: f64, alpha_prime: f64, gamma_prime: f64) -> Self {
        CompetitiveLv::new(beta - delta, alpha_prime, gamma_prime)
    }

    /// The intrinsic growth rate `r`.
    pub fn growth_rate(&self) -> f64 {
        self.r
    }

    /// The interspecific coefficient `α′`.
    pub fn interspecific(&self) -> f64 {
        self.alpha
    }

    /// The intraspecific coefficient `γ′`.
    pub fn intraspecific(&self) -> f64 {
        self.gamma
    }

    /// The fixed points of the system (for `r > 0`): extinction, the two
    /// exclusion equilibria when `γ′ > 0`, and the coexistence equilibrium
    /// when `α′ + γ′ > 0`.
    pub fn equilibria(&self) -> Vec<Equilibrium> {
        let mut out = vec![Equilibrium::Extinction];
        if self.r > 0.0 && self.gamma > 0.0 {
            for survivor in 0..2 {
                out.push(Equilibrium::Exclusion {
                    survivor,
                    density: self.r / self.gamma,
                });
            }
        }
        if self.r > 0.0 && self.alpha + self.gamma > 0.0 {
            out.push(Equilibrium::Coexistence {
                density: self.r / (self.alpha + self.gamma),
            });
        }
        out
    }

    /// Whether the coexistence equilibrium is stable (`γ′ > α′`) — in that
    /// regime both species persist deterministically. When `α′ > γ′`
    /// competitive exclusion operates and the initial majority wins.
    pub fn coexistence_is_stable(&self) -> bool {
        self.gamma > self.alpha
    }

    /// The deterministic winner from the given initial densities: the species
    /// with the higher initial density when competitive exclusion operates
    /// (`α′ > γ′`), `None` when the densities are equal or when coexistence is
    /// stable.
    pub fn predicted_winner(&self, initial: [f64; 2]) -> Option<usize> {
        if self.coexistence_is_stable() || self.alpha == self.gamma {
            return None;
        }
        if initial[0] > initial[1] {
            Some(0)
        } else if initial[1] > initial[0] {
            Some(1)
        } else {
            None
        }
    }
}

impl OdeSystem<2> for CompetitiveLv {
    fn derivative(&self, y: &[f64; 2]) -> [f64; 2] {
        [
            y[0] * (self.r - self.alpha * y[1] - self.gamma * y[0]),
            y[1] * (self.r - self.alpha * y[0] - self.gamma * y[1]),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrators::{OdeIntegrator, Rk4, Rkf45};

    #[test]
    fn derivative_matches_equation_4() {
        let sys = CompetitiveLv::new(1.0, 0.5, 0.25);
        let d = sys.derivative(&[2.0, 4.0]);
        assert!((d[0] - 2.0 * (1.0 - 0.5 * 4.0 - 0.25 * 2.0)).abs() < 1e-12);
        assert!((d[1] - 4.0 * (1.0 - 0.5 * 2.0 - 0.25 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn exclusion_regime_picks_the_larger_initial_density() {
        // α′ > γ′: competitive exclusion; the majority deterministically wins.
        let sys = CompetitiveLv::new(1.0, 0.01, 0.001);
        assert_eq!(sys.predicted_winner([6.0, 4.0]), Some(0));
        assert_eq!(sys.predicted_winner([4.0, 6.0]), Some(1));
        assert_eq!(sys.predicted_winner([5.0, 5.0]), None);
        assert!(!sys.coexistence_is_stable());

        // The trajectory confirms it: the minority density collapses.
        let solution = Rk4::new(0.01).integrate(&sys, [6.0, 4.0], 0.0, 100.0);
        let end = solution.last_state();
        assert!(end[0] > 10.0 * end[1], "end state {end:?}");
    }

    #[test]
    fn coexistence_regime_preserves_both_species() {
        // γ′ > α′: stable coexistence at density r/(α′+γ′).
        let sys = CompetitiveLv::new(1.0, 0.001, 0.01);
        assert!(sys.coexistence_is_stable());
        assert_eq!(sys.predicted_winner([6.0, 4.0]), None);
        let solution = Rkf45::new(1e-8).integrate(&sys, [6.0, 4.0], 0.0, 200.0);
        let end = solution.last_state();
        let expected = 1.0 / 0.011;
        assert!((end[0] - expected).abs() < 0.5, "end state {end:?}");
        assert!((end[1] - expected).abs() < 0.5, "end state {end:?}");
    }

    #[test]
    fn equilibria_enumeration() {
        let sys = CompetitiveLv::new(1.0, 0.5, 0.25);
        let eqs = sys.equilibria();
        assert!(eqs.contains(&Equilibrium::Extinction));
        assert!(eqs
            .iter()
            .any(|e| matches!(e, Equilibrium::Coexistence { density } if (density - 1.0/0.75).abs() < 1e-12)));
        assert_eq!(
            eqs.iter()
                .filter(|e| matches!(e, Equilibrium::Exclusion { .. }))
                .count(),
            2
        );

        // Without growth there is only extinction.
        let dead = CompetitiveLv::new(-0.5, 0.5, 0.25);
        assert_eq!(dead.equilibria(), vec![Equilibrium::Extinction]);
    }

    #[test]
    fn exponential_phase_matches_closed_form_when_no_competition() {
        // With α′ = γ′ = 0 the equation is pure exponential growth.
        let sys = CompetitiveLv::new(0.5, 0.0, 0.0);
        let solution = Rk4::new(0.001).integrate(&sys, [1.0, 2.0], 0.0, 3.0);
        let end = solution.last_state();
        assert!((end[0] - (1.5f64).exp()).abs() < 1e-6);
        assert!((end[1] - 2.0 * (1.5f64).exp()).abs() < 1e-6);
    }

    #[test]
    fn accessors_report_parameters() {
        let sys = CompetitiveLv::from_rates(1.5, 0.5, 0.2, 0.1);
        assert_eq!(sys.growth_rate(), 1.0);
        assert_eq!(sys.interspecific(), 0.2);
        assert_eq!(sys.intraspecific(), 0.1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_competition_is_rejected() {
        let _ = CompetitiveLv::new(1.0, -0.1, 0.0);
    }
}
