//! # lv-ode — deterministic competitive Lotka–Volterra dynamics
//!
//! The paper compares its stochastic models against the classical
//! deterministic mass-action approximation (Section 2.1, Eq. 4):
//!
//! ```text
//! dx_i/dt = x_i (r − α′ x_{1−i} − γ′ x_i),        i ∈ {0, 1},
//! ```
//!
//! where `r = β − δ` is the intrinsic growth rate, `α′` the interspecific and
//! `γ′` the intraspecific competition coefficient. When `α′ > γ′` the species
//! with the higher initial density deterministically wins — the ODE model
//! cannot express the stochastic failure probabilities the paper is about,
//! which is exactly the comparison experiment E10 makes.
//!
//! The crate provides:
//!
//! * [`OdeSystem`] — a minimal trait for autonomous first-order systems;
//! * [`Rk4`] — the classical fixed-step fourth-order Runge–Kutta integrator;
//! * [`Rkf45`] — an adaptive Runge–Kutta–Fehlberg 4(5) integrator;
//! * [`CompetitiveLv`] — Eq. (4) with equilibrium analysis and the
//!   deterministic winner prediction;
//! * [`CompetitiveLvK`] — the `k`-species generalisation
//!   `dx_i/dt = x_i (r_i − Σ_j a_ij x_j)` with a runtime dimension, the
//!   interior-equilibrium solver (`a x = r`, Champagnat–Jabin–Raoul) and the
//!   allocation-free [`DynRk4`] stepper;
//! * [`OdeSolution`] — a recorded solution with interpolation helpers.
//!
//! No third-party ODE crate is used; both integrators are implemented here
//! and validated against closed-form solutions in the tests.
//!
//! # Example
//!
//! ```
//! use lv_ode::{CompetitiveLv, Rk4, OdeIntegrator};
//!
//! // Strong interspecific competition: higher initial density wins.
//! let system = CompetitiveLv::new(1.0, 0.002, 0.0005);
//! let solution = Rk4::new(0.01).integrate(&system, [0.6, 0.4], 0.0, 40.0);
//! let end = solution.last_state();
//! assert!(end[0] > 100.0 * end[1]);
//! assert_eq!(system.predicted_winner([0.6, 0.4]), Some(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod integrators;
mod lotka;
mod multik;
mod solution;
mod system;

pub use integrators::{OdeIntegrator, Rk4, Rkf45};
pub use lotka::{CompetitiveLv, Equilibrium};
pub use multik::{CompetitiveLvK, DynRk4};
pub use solution::OdeSolution;
pub use system::OdeSystem;
