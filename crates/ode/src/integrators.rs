use crate::solution::OdeSolution;
use crate::system::OdeSystem;

/// A numerical integrator for autonomous ODE systems.
pub trait OdeIntegrator {
    /// Integrates `system` from state `y0` at time `t0` to time `t1`,
    /// recording the solution at every accepted step.
    ///
    /// # Panics
    ///
    /// Panics if `t1 < t0`.
    fn integrate<const D: usize, S: OdeSystem<D>>(
        &self,
        system: &S,
        y0: [f64; D],
        t0: f64,
        t1: f64,
    ) -> OdeSolution<D>;
}

/// The classical fixed-step fourth-order Runge–Kutta method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rk4 {
    step: f64,
}

impl Rk4 {
    /// Creates an integrator with the given step size.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not a positive finite number.
    pub fn new(step: f64) -> Self {
        assert!(step.is_finite() && step > 0.0, "step must be positive");
        Rk4 { step }
    }

    /// The configured step size.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// One classical RK4 step of length `h` from state `y`, without
    /// recording a solution. Exposed so external drivers (e.g. the engine's
    /// ODE backend, which interleaves stop-condition checks with stepping)
    /// share this tableau instead of duplicating it.
    pub fn single_step<const D: usize, S: OdeSystem<D>>(
        system: &S,
        y: [f64; D],
        h: f64,
    ) -> [f64; D] {
        let k1 = system.derivative(&y);
        let k2 = system.derivative(&add(y, scale(k1, h / 2.0)));
        let k3 = system.derivative(&add(y, scale(k2, h / 2.0)));
        let k4 = system.derivative(&add(y, scale(k3, h)));
        let mut out = y;
        for i in 0..D {
            out[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        out
    }
}

impl OdeIntegrator for Rk4 {
    fn integrate<const D: usize, S: OdeSystem<D>>(
        &self,
        system: &S,
        y0: [f64; D],
        t0: f64,
        t1: f64,
    ) -> OdeSolution<D> {
        assert!(t1 >= t0, "integration interval must be forward in time");
        let mut solution = OdeSolution::new();
        let mut t = t0;
        let mut y = y0;
        solution.push(t, y);
        while t < t1 {
            let h = self.step.min(t1 - t);
            y = Rk4::single_step(system, y, h);
            t += h;
            solution.push(t, y);
        }
        solution
    }
}

/// The adaptive Runge–Kutta–Fehlberg 4(5) method with step-size control.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rkf45 {
    tolerance: f64,
    initial_step: f64,
    min_step: f64,
    max_step: f64,
}

impl Rkf45 {
    /// Creates an adaptive integrator with the given local error tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not a positive finite number.
    pub fn new(tolerance: f64) -> Self {
        assert!(
            tolerance.is_finite() && tolerance > 0.0,
            "tolerance must be positive"
        );
        Rkf45 {
            tolerance,
            initial_step: 1e-2,
            min_step: 1e-10,
            max_step: 1.0,
        }
    }

    /// Sets the initial, minimum and maximum step sizes.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_step <= initial_step <= max_step`.
    pub fn with_steps(mut self, initial_step: f64, min_step: f64, max_step: f64) -> Self {
        assert!(
            min_step > 0.0 && min_step <= initial_step && initial_step <= max_step,
            "step sizes must satisfy 0 < min <= initial <= max"
        );
        self.initial_step = initial_step;
        self.min_step = min_step;
        self.max_step = max_step;
        self
    }

    /// The configured tolerance.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// One Fehlberg step: returns the 5th-order estimate and the local error
    /// estimate.
    fn rkf_step<const D: usize, S: OdeSystem<D>>(
        system: &S,
        y: [f64; D],
        h: f64,
    ) -> ([f64; D], f64) {
        // Fehlberg coefficients.
        let k1 = system.derivative(&y);
        let k2 = system.derivative(&add(y, scale(k1, h / 4.0)));
        let k3 = system.derivative(&add(
            y,
            add(scale(k1, 3.0 * h / 32.0), scale(k2, 9.0 * h / 32.0)),
        ));
        let k4 = system.derivative(&add(
            y,
            add(
                add(
                    scale(k1, 1932.0 * h / 2197.0),
                    scale(k2, -7200.0 * h / 2197.0),
                ),
                scale(k3, 7296.0 * h / 2197.0),
            ),
        ));
        let k5 = system.derivative(&add(
            y,
            add(
                add(scale(k1, 439.0 * h / 216.0), scale(k2, -8.0 * h)),
                add(
                    scale(k3, 3680.0 * h / 513.0),
                    scale(k4, -845.0 * h / 4104.0),
                ),
            ),
        ));
        let k6 = system.derivative(&add(
            y,
            add(
                add(scale(k1, -8.0 * h / 27.0), scale(k2, 2.0 * h)),
                add(
                    add(
                        scale(k3, -3544.0 * h / 2565.0),
                        scale(k4, 1859.0 * h / 4104.0),
                    ),
                    scale(k5, -11.0 * h / 40.0),
                ),
            ),
        ));

        let mut order5 = y;
        let mut error = 0.0f64;
        for i in 0..D {
            let y5 = y[i]
                + h * (16.0 / 135.0 * k1[i] + 6656.0 / 12825.0 * k3[i] + 28561.0 / 56430.0 * k4[i]
                    - 9.0 / 50.0 * k5[i]
                    + 2.0 / 55.0 * k6[i]);
            let y4 = y[i]
                + h * (25.0 / 216.0 * k1[i] + 1408.0 / 2565.0 * k3[i] + 2197.0 / 4104.0 * k4[i]
                    - 1.0 / 5.0 * k5[i]);
            order5[i] = y5;
            error = error.max((y5 - y4).abs());
        }
        (order5, error)
    }
}

impl OdeIntegrator for Rkf45 {
    fn integrate<const D: usize, S: OdeSystem<D>>(
        &self,
        system: &S,
        y0: [f64; D],
        t0: f64,
        t1: f64,
    ) -> OdeSolution<D> {
        assert!(t1 >= t0, "integration interval must be forward in time");
        let mut solution = OdeSolution::new();
        let mut t = t0;
        let mut y = y0;
        let mut h = self.initial_step;
        solution.push(t, y);
        while t < t1 {
            h = h.min(t1 - t).min(self.max_step);
            let (candidate, error) = Rkf45::rkf_step(system, y, h);
            if error <= self.tolerance || h <= self.min_step {
                // Accept the step.
                t += h;
                y = candidate;
                solution.push(t, y);
            }
            // Standard step-size update with safety factor, clamped to a
            // factor-4 change per step.
            let scale_factor = if error > 0.0 {
                (0.9 * (self.tolerance / error).powf(0.2)).clamp(0.25, 4.0)
            } else {
                4.0
            };
            h = (h * scale_factor).clamp(self.min_step, self.max_step);
        }
        solution
    }
}

fn add<const D: usize>(a: [f64; D], b: [f64; D]) -> [f64; D] {
    let mut out = a;
    for i in 0..D {
        out[i] += b[i];
    }
    out
}

fn scale<const D: usize>(a: [f64; D], s: f64) -> [f64; D] {
    let mut out = a;
    for v in out.iter_mut() {
        *v *= s;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// dy/dt = -y, solution y(t) = y0 e^{-t}.
    #[derive(Debug)]
    struct Decay;
    impl OdeSystem<1> for Decay {
        fn derivative(&self, y: &[f64; 1]) -> [f64; 1] {
            [-y[0]]
        }
    }

    /// Harmonic oscillator, solution (cos t, -sin t) from (1, 0).
    #[derive(Debug)]
    struct Harmonic;
    impl OdeSystem<2> for Harmonic {
        fn derivative(&self, y: &[f64; 2]) -> [f64; 2] {
            [y[1], -y[0]]
        }
    }

    /// Logistic growth dy/dt = y(1 - y), solution with y(0)=0.1 approaches 1.
    #[derive(Debug)]
    struct Logistic;
    impl OdeSystem<1> for Logistic {
        fn derivative(&self, y: &[f64; 1]) -> [f64; 1] {
            [y[0] * (1.0 - y[0])]
        }
    }

    #[test]
    fn rk4_matches_exponential_decay() {
        let solution = Rk4::new(0.01).integrate(&Decay, [1.0], 0.0, 5.0);
        let expected = (-5.0f64).exp();
        assert!((solution.last_state()[0] - expected).abs() < 1e-8);
        assert!((solution.last_time() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rk4_has_fourth_order_convergence() {
        // Halving the step should reduce the error by about 2^4 = 16.
        let error = |h: f64| {
            let solution = Rk4::new(h).integrate(&Decay, [1.0], 0.0, 2.0);
            (solution.last_state()[0] - (-2.0f64).exp()).abs()
        };
        let e1 = error(0.1);
        let e2 = error(0.05);
        let ratio = e1 / e2;
        assert!(
            ratio > 10.0 && ratio < 25.0,
            "convergence ratio {ratio} not ≈ 16"
        );
    }

    #[test]
    fn rk4_conserves_harmonic_oscillator_energy() {
        let solution = Rk4::new(0.001).integrate(&Harmonic, [1.0, 0.0], 0.0, 20.0);
        let [x, v] = solution.last_state();
        let energy = x * x + v * v;
        assert!((energy - 1.0).abs() < 1e-6, "energy drifted to {energy}");
        assert!((x - (20.0f64).cos()).abs() < 1e-5);
    }

    #[test]
    fn rkf45_matches_exponential_decay() {
        let solution = Rkf45::new(1e-9).integrate(&Decay, [1.0], 0.0, 5.0);
        assert!((solution.last_state()[0] - (-5.0f64).exp()).abs() < 1e-6);
    }

    #[test]
    fn rkf45_takes_fewer_steps_than_fixed_rk4_at_same_accuracy() {
        let rk4 = Rk4::new(0.001).integrate(&Logistic, [0.1], 0.0, 20.0);
        let rkf = Rkf45::new(1e-8).integrate(&Logistic, [0.1], 0.0, 20.0);
        assert!((rk4.last_state()[0] - 1.0).abs() < 1e-6);
        assert!((rkf.last_state()[0] - 1.0).abs() < 1e-5);
        assert!(
            rkf.len() < rk4.len() / 2,
            "adaptive method took {} steps vs {}",
            rkf.len(),
            rk4.len()
        );
    }

    #[test]
    fn integrating_zero_length_interval_returns_initial_state() {
        let solution = Rk4::new(0.1).integrate(&Decay, [3.0], 1.0, 1.0);
        assert_eq!(solution.len(), 1);
        assert_eq!(solution.last_state(), [3.0]);
    }

    #[test]
    #[should_panic(expected = "forward in time")]
    fn backward_interval_panics() {
        let _ = Rk4::new(0.1).integrate(&Decay, [1.0], 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn rk4_rejects_bad_step() {
        let _ = Rk4::new(0.0);
    }

    #[test]
    #[should_panic(expected = "tolerance must be positive")]
    fn rkf_rejects_bad_tolerance() {
        let _ = Rkf45::new(-1.0);
    }
}
