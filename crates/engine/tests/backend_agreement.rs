//! Cross-backend integration tests: one `Scenario` description must run
//! unmodified on every registered backend, the jump-chain backend must
//! reproduce the legacy `lv_lotka::run_majority` loop bit for bit, and all
//! backends must honor the same stop conditions identically.

use lv_crn::{StopCondition, StopReason};
use lv_engine::{backend, BackendRegistry, ObserverSpec, Scenario};
use lv_lotka::{run_majority, CompetitionKind, LvModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// The acceptance criterion of the redesign: the same scenario value runs on
/// every backend through the registry — the five LV kernels plus the
/// protocol baselines (batched and agent-list) — and every model-faithful
/// backend agrees on the qualitative outcome (a 4:1 majority wins).
#[test]
fn one_scenario_runs_on_every_backend() {
    let model = LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0);
    let scenario = Scenario::majority(model, 400, 100).observe(ObserverSpec::GapTrajectory);
    let registry = BackendRegistry::global();
    assert_eq!(registry.names().len(), 15);
    // The Czyzowicz conversion baselines follow the proportional law (a 4:1
    // majority wins only 80% of runs) and need ~n² interactions, so neither
    // a win nor consensus within the default budget is guaranteed for them —
    // for every other backend both are.
    let proportional = [
        "czyzowicz-lv",
        "czyzowicz-lv-agents",
        "czyzowicz-lv-k",
        "czyzowicz-lv-bridged",
        "czyzowicz-lv-k-bridged",
    ];
    for backend in registry.iter() {
        let report = backend.run(&scenario, &mut rng(11));
        assert_eq!(report.backend, backend.name());
        if !proportional.contains(&backend.name()) {
            assert!(
                report.majority_won(),
                "backend {} did not reach majority consensus: {report:?}",
                backend.name()
            );
        }
        let trajectory = report.gap_trajectory().expect("trajectory was observed");
        assert_eq!(trajectory[0], 300, "backend {}", backend.name());
    }
}

/// The jump-chain backend is the migration of the bespoke `run_majority`
/// loop: on the same RNG stream every derived observable must be identical.
#[test]
fn jump_chain_backend_reproduces_run_majority_bit_for_bit() {
    let models = [
        LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0),
        LvModel::neutral(CompetitionKind::NonSelfDestructive, 1.0, 1.0, 1.0),
        LvModel::with_intraspecific(CompetitionKind::SelfDestructive, 1.0, 0.5, 1.0, 2.0),
        LvModel::balanced_intra_inter(CompetitionKind::NonSelfDestructive, 1.0, 1.0, 1.0),
    ];
    let backend = backend("jump-chain").unwrap();
    for (m, model) in models.iter().enumerate() {
        for seed in 0..10u64 {
            let (a, b) = (60 + m as u64, 40);
            let budget = lv_engine::default_majority_budget(a + b);
            let legacy = run_majority(model, a, b, &mut rng(seed), budget);
            let scenario = Scenario::majority(*model, a, b);
            let report = backend.run(&scenario, &mut rng(seed));
            assert_eq!(
                report.to_majority_outcome(),
                legacy,
                "model {m} seed {seed} diverged"
            );
        }
    }
}

/// A tie start and an immediate-consensus start behave like `run_majority`.
#[test]
fn degenerate_starts_match_legacy_semantics() {
    let model = LvModel::default();
    let backend = backend("jump-chain").unwrap();
    for (a, b) in [(25, 25), (10, 0), (0, 0)] {
        let legacy = run_majority(&model, a, b, &mut rng(3), 100_000);
        let report = backend.run(
            &Scenario::majority(model, a, b)
                .with_stop(StopCondition::any_species_extinct().with_max_events(100_000)),
            &mut rng(3),
        );
        assert_eq!(report.to_majority_outcome(), legacy, "start ({a}, {b})");
    }
}

/// Every backend stops immediately (zero steps) when the stop condition
/// already holds in the initial configuration.
#[test]
fn all_backends_stop_immediately_when_condition_already_met() {
    let model = LvModel::default();
    let scenario = Scenario::new(model, (40, 0));
    for backend in BackendRegistry::global().iter() {
        let report = backend.run(&scenario, &mut rng(5));
        assert_eq!(
            report.reason,
            StopReason::ConditionMet,
            "{}",
            backend.name()
        );
        assert_eq!(report.steps, 0, "{}", backend.name());
        assert_eq!(report.final_state.counts(), &[40, 0], "{}", backend.name());
    }
}

/// An `or`-composed condition (consensus OR total ≥ threshold) is honored by
/// every model-simulating backend: each run ends in a state satisfying the
/// disjunction, never by budget exhaustion. (The protocol baseline ignores
/// the model's growth rates, so it is exercised separately.)
#[test]
fn all_backends_honor_or_composed_conditions_identically() {
    let model = LvModel::no_competition(2.0, 1.0); // supercritical growth
    let stop = StopCondition::any_species_extinct()
        .or(StopCondition::total_at_least(5_000))
        .with_max_events(10_000_000);
    let scenario = Scenario::new(model, (100, 100)).with_stop(stop.clone());
    for backend in BackendRegistry::global()
        .iter()
        .filter(|b| b.models_kinetics())
    {
        if backend.name() == "ode" {
            // The deterministic mean-field of a no-competition model grows
            // exponentially; it hits the population threshold too.
            let report = backend.run(&scenario, &mut rng(6));
            assert_eq!(report.reason, StopReason::ConditionMet);
            assert!(report.final_state.total() >= 5_000);
            continue;
        }
        let report = backend.run(&scenario, &mut rng(6));
        assert_eq!(
            report.reason,
            StopReason::ConditionMet,
            "{}",
            backend.name()
        );
        let state = &report.final_state;
        assert!(
            state.is_consensus() || state.total() >= 5_000,
            "backend {} stopped in {state:?} without meeting either condition",
            backend.name()
        );
    }
}

/// `max_events` truncation: with a tiny event budget every stochastic
/// backend stops with `MaxEventsReached` without overshooting the budget by
/// more than one step's worth of firings.
#[test]
fn all_backends_honor_the_event_budget() {
    let model = LvModel::default();
    let stop = StopCondition::any_species_extinct().with_max_events(16);
    let scenario = Scenario::new(model, (5_000, 4_990)).with_stop(stop);
    for name in [
        "jump-chain",
        "gillespie-direct",
        "next-reaction",
        "approx-majority",
        "exact-majority",
        "czyzowicz-lv",
        "czyzowicz-lv-bridged",
    ] {
        let report = backend(name).unwrap().run(&scenario, &mut rng(7));
        assert_eq!(report.reason, StopReason::MaxEventsReached, "{name}");
        assert_eq!(report.events, 16, "{name}");
        assert!(report.truncated(), "{name}");
    }
    // Tau-leaping fires whole leaps, so the budget check happens between
    // leaps: the final count is at least the budget.
    let report = backend("tau-leaping").unwrap().run(&scenario, &mut rng(7));
    assert_eq!(report.reason, StopReason::MaxEventsReached);
    assert!(report.events >= 16);
}

/// `max_time` truncation for the continuous-clock backends, and the
/// interaction rule: whichever budget binds first wins.
#[test]
fn continuous_backends_honor_the_time_budget() {
    let model = LvModel::default();
    let tight_time = StopCondition::any_species_extinct()
        .with_max_events(1_000_000)
        .with_max_time(1e-7);
    let scenario = Scenario::new(model, (2_000, 1_990)).with_stop(tight_time);
    for name in ["gillespie-direct", "next-reaction", "tau-leaping", "ode"] {
        let report = backend(name).unwrap().run(&scenario, &mut rng(8));
        assert_eq!(report.reason, StopReason::MaxTimeReached, "{name}");
        assert!(report.truncated(), "{name}");
    }
    // The jump chain's clock is its event count; the budget check runs
    // before each step (and time starts at 0), so exactly one event fires
    // before a 1e-7 time budget binds. The protocol baselines use the same
    // interaction-count clock — including the batched ones, which translate
    // the time budget into an interaction cap instead of overshooting by an
    // epoch.
    for name in [
        "jump-chain",
        "approx-majority",
        "exact-majority",
        "czyzowicz-lv",
        "annihilation-lv",
        "czyzowicz-lv-k",
        "czyzowicz-lv-bridged",
        "czyzowicz-lv-k-bridged",
        "approx-majority-agents",
    ] {
        let report = backend(name).unwrap().run(&scenario, &mut rng(8));
        assert_eq!(report.reason, StopReason::MaxTimeReached, "{name}");
        assert_eq!(report.events, 1, "{name}");
    }
}

/// Predicate stop conditions run on every model-simulating backend.
#[test]
fn all_backends_honor_predicate_conditions() {
    let model = LvModel::no_competition(2.0, 1.0);
    // Stop once species 0 at least doubles.
    let stop = StopCondition::predicate(|state: &lv_crn::State| {
        state.count(lv_crn::SpeciesId::new(0)) >= 400
    })
    .with_max_events(10_000_000);
    let scenario = Scenario::new(model, (200, 200)).with_stop(stop);
    for backend in BackendRegistry::global()
        .iter()
        .filter(|b| b.models_kinetics())
    {
        let report = backend.run(&scenario, &mut rng(9));
        assert_eq!(
            report.reason,
            StopReason::ConditionMet,
            "{}",
            backend.name()
        );
        assert!(report.final_state.count(0) >= 400, "{}", backend.name());
    }
}

/// Seeded runs are reproducible per backend (same seed, same report).
#[test]
fn seeded_runs_are_reproducible_on_every_backend() {
    let scenario = Scenario::majority(LvModel::default(), 80, 60);
    for backend in BackendRegistry::global().iter() {
        let a = backend.run(&scenario, &mut rng(42));
        let b = backend.run(&scenario, &mut rng(42));
        assert_eq!(a, b, "{}", backend.name());
    }
}

/// The exact backends agree with each other *in distribution*: the majority
/// win rate over a batch of seeds differs by at most a few percentage
/// points between the jump chain, the direct method and the next-reaction
/// method (they simulate the same chain with different clocks).
#[test]
fn exact_backends_agree_in_distribution() {
    let model = LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0);
    let scenario = Scenario::majority(model, 33, 27);
    let trials = 300u64;
    let mut rates = Vec::new();
    for name in ["jump-chain", "gillespie-direct", "next-reaction"] {
        let backend = backend(name).unwrap();
        let wins = (0..trials)
            .filter(|&seed| backend.run(&scenario, &mut rng(seed)).majority_won())
            .count();
        rates.push(wins as f64 / trials as f64);
    }
    for pair in rates.windows(2) {
        assert!(
            (pair[0] - pair[1]).abs() < 0.12,
            "win rates diverged: {rates:?}"
        );
    }
}

/// The ODE backend has no reaction events, so a scenario's `max_events`
/// budget bounds its integration steps instead of being a silent no-op.
#[test]
fn ode_backend_applies_the_event_budget_to_steps() {
    // Stable coexistence regime (γ' > α' after mapping): the mean field
    // never reaches rounded extinction, so only the budget can stop it.
    let model =
        LvModel::with_intraspecific(CompetitionKind::NonSelfDestructive, 2.0, 1.0, 0.1, 2.0);
    let stop = StopCondition::any_species_extinct().with_max_events(25);
    let scenario = Scenario::new(model, (500, 400)).with_stop(stop);
    let report = backend("ode").unwrap().run(&scenario, &mut rng(10));
    assert_eq!(report.reason, StopReason::MaxEventsReached);
    assert_eq!(report.steps, 25);
    assert_eq!(report.events, 0);
    assert!(report.truncated());
}

/// Tau-leaping reports leap-aggregated noise as `unclassified` instead of
/// corrupting the `F_ind`/`F_comp` split, and the telescoping identity
/// `F_total = ∆_0 − ∆_T` still holds over all three buckets.
#[test]
fn tau_leaping_noise_stays_honest() {
    let model = LvModel::neutral(CompetitionKind::NonSelfDestructive, 1.0, 1.0, 1.0);
    let scenario = Scenario::majority(model, 300, 240).with_tau(0.02);
    let report = backend("tau-leaping").unwrap().run(&scenario, &mut rng(12));
    assert!(report.consensus_reached());
    let noise = report.noise().unwrap();
    assert_ne!(
        noise.unclassified, 0,
        "leaps produced no unclassified noise"
    );
    let counts = report.final_state.counts();
    let delta_final = counts[0] as i64 - counts[1] as i64;
    assert_eq!(noise.total(), 60 - delta_final);
}
