//! `k`-species engine tests: the acceptance end-to-end run on every
//! Lotka–Volterra backend, property-based invariants across backends and
//! species counts, and the regression pinning the two-species jump-chain
//! path bit-identical to the pre-refactor `run_majority` loop.

use lv_engine::{backend, BackendRegistry, ObserverSpec, Scenario};
use lv_lotka::{run_majority_with_trajectory, CompetitionKind, LvModel, MultiLvModel, Population};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Acceptance criterion: a k = 3 scenario runs end-to-end on all five LV
/// backends via `Scenario` and yields a `PluralityOutcome`.
#[test]
fn k3_scenario_runs_end_to_end_on_all_five_lv_backends() {
    let model = MultiLvModel::symmetric(CompetitionKind::SelfDestructive, 3, 1.0, 1.0, 1.0);
    let scenario =
        Scenario::plurality(model, vec![120, 40, 40]).observe(ObserverSpec::GapTrajectory);
    let k3_backends: Vec<_> = BackendRegistry::global().iter_supporting(3).collect();
    // Five LV kernels plus the k-opinion Czyzowicz protocol baseline, in
    // both counted and diffusion-bridged execution modes.
    assert_eq!(k3_backends.len(), 7);
    let lv_backends: Vec<_> = k3_backends
        .into_iter()
        .filter(|b| b.models_kinetics())
        .collect();
    assert_eq!(lv_backends.len(), 5);
    for backend in lv_backends {
        let report = backend.run(&scenario, &mut rng(2));
        assert_eq!(report.backend, backend.name());
        assert_eq!(report.species_count(), 3);
        let outcome = report.to_plurality_outcome();
        assert_eq!(outcome.initial_leader, Some(0), "{}", backend.name());
        assert!(
            outcome.consensus_reached,
            "{} did not reach plurality consensus: {outcome:?}",
            backend.name()
        );
        // A 3:1 planted majority wins on every kernel (seed-checked).
        assert_eq!(outcome.winner, Some(0), "{}", backend.name());
        assert!(outcome.margin > 0, "{}", backend.name());
        assert!(outcome.plurality_won(), "{}", backend.name());
        // The margin trajectory starts at the planted lead.
        assert_eq!(
            report.gap_trajectory().unwrap()[0],
            80,
            "{}",
            backend.name()
        );
    }
}

/// The cyclic three-species model ends with a single survivor (or truncates
/// honestly) on the exact kernels: once a species dies its predator is safe
/// and the chase collapses.
#[test]
fn cyclic_competition_collapses_to_one_survivor() {
    let model = MultiLvModel::cyclic(CompetitionKind::NonSelfDestructive, 3, 1.0, 1.0, 1.0);
    let scenario = Scenario::plurality(model, vec![40, 30, 30]);
    for name in ["jump-chain", "gillespie-direct", "next-reaction"] {
        let report = backend(name).unwrap().run(&scenario, &mut rng(4));
        let outcome = report.to_plurality_outcome();
        assert!(
            outcome.consensus_reached || outcome.truncated,
            "{name}: {outcome:?}"
        );
        if outcome.consensus_reached {
            assert!(outcome.final_state.alive_count() <= 1, "{name}");
        }
    }
}

fn proptest_model(kind: CompetitionKind, k: usize, alpha: f64) -> MultiLvModel {
    MultiLvModel::symmetric(kind, k, 1.0, 1.0, alpha)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Invariants that must hold for every backend on every k-species run:
    /// the final population has the scenario's dimension, the total never
    /// exceeds the observed max population, a winner (if any) is a live
    /// species with index < k, and event counts respect the budget
    /// accounting.
    #[test]
    fn k_species_runs_preserve_invariants(
        k in 2usize..5,
        seed in 0u64..1_000,
        leader_count in 20u64..60,
        other_count in 1u64..20,
        alpha in 0.5f64..2.0,
        self_destructive in prop_oneof![Just(true), Just(false)],
    ) {
        let kind = if self_destructive {
            CompetitionKind::SelfDestructive
        } else {
            CompetitionKind::NonSelfDestructive
        };
        let mut counts = vec![other_count; k];
        counts[0] = leader_count;
        let initial = Population::new(counts);
        let scenario = Scenario::plurality(proptest_model(kind, k, alpha), initial.clone())
            .with_tau(0.01);
        let budget = scenario.stop().max_events().unwrap();
        for backend in BackendRegistry::global().iter_supporting(k) {
            let report = backend.run(&scenario, &mut rng(seed));
            let name = backend.name();
            prop_assert_eq!(report.species_count(), k, "{}", name);
            prop_assert_eq!(report.initial.counts(), initial.counts(), "{}", name);
            let max_population = report.max_population().unwrap();
            prop_assert!(
                report.final_state.total() <= max_population,
                "{}: final total above observed max",
                name
            );
            prop_assert!(max_population >= initial.total(), "{}", name);
            if let Some(winner) = report.final_state.winner() {
                prop_assert!(winner < k, "{}: winner index out of range", name);
                prop_assert!(report.final_state.count(winner) > 0, "{}", name);
                prop_assert!(report.consensus_reached(), "{}", name);
            }
            let counts = report.event_counts().unwrap();
            prop_assert_eq!(
                counts.individual + counts.competitive + counts.unclassified,
                report.events,
                "{}: event classes must partition the firings",
                name
            );
            if name != "tau-leaping" && name != "ode" {
                prop_assert!(report.events <= budget, "{}: budget overshot", name);
            }
            // The derived view is total (never panics) for any k.
            let outcome = report.to_plurality_outcome();
            prop_assert_eq!(outcome.events, report.events, "{}", name);
        }
    }

    /// Regression: the two-species jump-chain path — states, events, margin
    /// trajectory and every derived observable — is bit-identical to the
    /// pre-refactor `lv_lotka::run_majority` loop on the same seed.
    #[test]
    fn two_species_jump_chain_is_bit_identical_to_the_legacy_loop(
        seed in 0u64..10_000,
        a in 1u64..120,
        b in 1u64..120,
        self_destructive in prop_oneof![Just(true), Just(false)],
    ) {
        let kind = if self_destructive {
            CompetitionKind::SelfDestructive
        } else {
            CompetitionKind::NonSelfDestructive
        };
        let model = LvModel::neutral(kind, 1.0, 1.0, 1.0);
        let budget = lv_engine::default_majority_budget(a + b);
        let (legacy, legacy_trajectory) =
            run_majority_with_trajectory(&model, a, b, &mut rng(seed), budget);
        let scenario = Scenario::majority(model, a, b).observe(ObserverSpec::GapTrajectory);
        let report = backend("jump-chain").unwrap().run(&scenario, &mut rng(seed));
        prop_assert_eq!(report.to_majority_outcome(), legacy);
        prop_assert_eq!(report.gap_trajectory().unwrap(), legacy_trajectory.as_slice());
    }
}
