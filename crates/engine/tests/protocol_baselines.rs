//! Protocol-baseline backends vs the raw `lv_protocols` steppers: the
//! `-agents` legacy backends must be thin drivers around
//! `ProtocolSimulation` — bit-identical to a hand-written stepper loop on
//! the same RNG stream — while the batched default backends must agree with
//! them *statistically* (same outcome distributions; the RNG stream differs
//! by design). The Czyzowicz backends must reproduce the proportional law
//! `P(A wins) = a/n` in both modes.

use lv_crn::StopCondition;
use lv_engine::{backend, Scenario};
use lv_lotka::LvModel;
use lv_protocols::{
    ApproximateMajority, CzyzowiczLvProtocol, ExactMajority4State, PopulationProtocol,
    ProtocolSimulation,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Drives `ProtocolSimulation` by hand with the backend's stop semantics:
/// stop as soon as a committed-opinion count hits zero (the two-species
/// "any species extinct" condition over the reported counts), or once the
/// interaction budget is exhausted — checked *before* each step, in the
/// driver's order (state condition first, then the event budget).
fn reference_run<P: PopulationProtocol>(
    protocol: &P,
    a: u64,
    b: u64,
    seed: u64,
    max_interactions: u64,
) -> ([u64; 2], u64) {
    let mut sim = ProtocolSimulation::new(protocol, a, b);
    let mut rng = StdRng::seed_from_u64(seed);
    loop {
        let (x, y) = sim.opinion_counts();
        if x == 0 || y == 0 || sim.interactions() >= max_interactions {
            return ([x, y], sim.interactions());
        }
        sim.step(&mut rng);
    }
}

fn backend_run(name: &str, a: u64, b: u64, seed: u64, max_interactions: u64) -> ([u64; 2], u64) {
    let scenario = Scenario::new(LvModel::default(), (a, b))
        .with_stop(StopCondition::any_species_extinct().with_max_events(max_interactions));
    let report = backend(name)
        .unwrap()
        .run(&scenario, &mut StdRng::seed_from_u64(seed));
    (
        [report.final_state.count(0), report.final_state.count(1)],
        report.events,
    )
}

/// The `-agents` backends consume randomness only through
/// `ProtocolSimulation::step`, so on the same seed they must reproduce a
/// hand-driven stepper loop bit for bit — final committed counts and
/// interaction counts alike. (The batched defaults deliberately do not:
/// their RNG stream is a different object; see the statistical tests below.)
#[test]
fn agent_list_backends_match_a_direct_stepper_loop_bit_for_bit() {
    for seed in 0..8u64 {
        for (a, b) in [(30u64, 20u64), (25, 25), (40, 8)] {
            let budget = 500_000;
            assert_eq!(
                backend_run("approx-majority-agents", a, b, seed, budget),
                reference_run(&ApproximateMajority::new(), a, b, seed, budget),
                "approx-majority-agents diverged at seed {seed}, ({a}, {b})"
            );
            assert_eq!(
                backend_run("czyzowicz-lv-agents", a, b, seed, budget),
                reference_run(&CzyzowiczLvProtocol::new(), a, b, seed, budget),
                "czyzowicz-lv-agents diverged at seed {seed}, ({a}, {b})"
            );
            if a != b {
                // Ties can absorb all-weak without any count reaching zero;
                // the reference loop does not model that, so pin the
                // non-degenerate starts only.
                assert_eq!(
                    backend_run("exact-majority-agents", a, b, seed, budget),
                    reference_run(&ExactMajority4State::new(), a, b, seed, budget),
                    "exact-majority-agents diverged at seed {seed}, ({a}, {b})"
                );
            }
        }
    }
}

/// The Czyzowicz dynamics are a fair gambler's ruin in the count of A, so
/// the majority wins with probability *exactly* `a/n` — the statistical
/// check behind the backend's linear-gap threshold scaling. Both execution
/// modes must reproduce it.
#[test]
fn czyzowicz_backends_follow_the_proportional_law() {
    for name in ["czyzowicz-lv", "czyzowicz-lv-agents"] {
        let czyzowicz = backend(name).unwrap();
        for (a, b) in [(30u64, 10u64), (10, 30)] {
            let n = a + b;
            let scenario = Scenario::new(LvModel::default(), (a, b))
                .with_stop(StopCondition::any_species_extinct().with_max_events(10_000_000));
            let trials = 400u64;
            let wins = (0..trials)
                .filter(|&seed| {
                    let report = czyzowicz.run(&scenario, &mut StdRng::seed_from_u64(seed));
                    assert!(report.consensus_reached(), "{name}: seed {seed} truncated");
                    report.final_state.winner() == Some(0)
                })
                .count();
            let fraction = wins as f64 / trials as f64;
            let expected = a as f64 / n as f64;
            assert!(
                (fraction - expected).abs() < 0.07,
                "{name}: A won {fraction} of runs from ({a}, {b}); the proportional law \
                 says {expected}"
            );
        }
    }
}

/// Batched and agent-list execution of the same protocol agree on the
/// outcome distribution at equal configurations — the registry-level view
/// of the distributional cross-validation (the stepper-level TVD tests live
/// in `lv-protocols`). The population is large enough that the batched
/// backends really run birthday-bound epochs.
#[test]
fn batched_backends_match_agent_list_win_rates() {
    let trials = 300u64;
    let scenario = Scenario::new(LvModel::default(), (110, 90))
        .with_stop(StopCondition::any_species_extinct().with_max_events(10_000_000));
    for (batched, agents) in [
        ("approx-majority", "approx-majority-agents"),
        ("czyzowicz-lv", "czyzowicz-lv-agents"),
    ] {
        let rate = |name: &str, offset: u64| {
            let b = backend(name).unwrap();
            (0..trials)
                .filter(|&seed| {
                    b.run(&scenario, &mut StdRng::seed_from_u64(offset + seed))
                        .final_state
                        .winner()
                        == Some(0)
                })
                .count() as f64
                / trials as f64
        };
        let p_batched = rate(batched, 10_000);
        let p_agents = rate(agents, 20_000);
        assert!(
            (p_batched - p_agents).abs() < 0.11,
            "{batched} won {p_batched} vs {agents} {p_agents}"
        );
    }
}

/// Batched backends do far fewer driver steps than events on large
/// populations — the structural property the ≥50× speedup comes from.
#[test]
fn batched_backends_aggregate_steps() {
    let scenario = Scenario::new(LvModel::default(), (3_000, 2_000))
        .with_stop(StopCondition::any_species_extinct().with_max_events(100_000_000));
    let report = backend("approx-majority")
        .unwrap()
        .run(&scenario, &mut StdRng::seed_from_u64(5));
    assert!(report.consensus_reached());
    assert!(
        report.steps * 20 < report.events,
        "expected ≳√n-fold aggregation, got {} steps for {} events",
        report.steps,
        report.events
    );
}
