//! # lv-engine — one scenario description, six execution backends
//!
//! Every experiment in the reproduction of *“Majority consensus thresholds
//! in competitive Lotka–Volterra populations”* (Függer, Nowak, Rybicki; PODC
//! 2024) reduces to the same shape: *run a model under some kinetics until a
//! stop condition, collect observables, aggregate over trials*. This crate
//! is that shape, made explicit — over populations of any `k ≥ 2` species:
//!
//! * [`Scenario`] — the *what*: a model (the paper's two-species
//!   [`lv_lotka::LvModel`] or the general `k`-species
//!   [`lv_lotka::MultiLvModel`]), an initial [`lv_lotka::Population`], a
//!   [`lv_crn::StopCondition`] and a set of composable [`ObserverSpec`]s;
//! * [`Backend`] — the *how*: an object-safe execution engine. Fifteen are
//!   built in — the exact specialised jump chain (the paper's chain `S`),
//!   the Gillespie direct method, the next-reaction method, tau-leaping,
//!   the deterministic mean-field ODE, five count-based *batched*
//!   population-protocol baselines (3-state approximate majority, 4-state
//!   exact majority, the 2-state Czyzowicz et al. discrete LV dynamics, the
//!   self-destructive annihilation dynamics, and the `k`-opinion Czyzowicz
//!   dynamics), the two diffusion-bridged conversion backends
//!   (`"czyzowicz-lv-bridged"` / `"czyzowicz-lv-k-bridged"`, which sample
//!   the conversion count walk in first-passage bridge blocks at
//!   `Õ(poly log n)` per trial), plus bit-exact agent-list legacy variants
//!   of the first three protocol baselines ([`Backend::batched`] reports
//!   the mode);
//! * [`BackendRegistry`] — string-keyed backend selection for CLIs and
//!   benches (`"jump-chain"`, `"gillespie-direct"`, `"next-reaction"`,
//!   `"tau-leaping"`, `"ode"`, `"approx-majority"`, `"exact-majority"`,
//!   `"czyzowicz-lv"`, `"annihilation-lv"`, `"czyzowicz-lv-k"`, the
//!   `-bridged` first-passage variants, the `-agents` legacy variants,
//!   plus aliases), open for external registration via
//!   [`BackendRegistry::register`];
//! * [`presets`] — named multi-species scenario presets (3-species cyclic
//!   competition, planted `k`-species plurality, two-vs-many coalition);
//! * [`RunReport`] — the uniform result: summary fields plus one
//!   [`Observation`] per observer, with
//!   [`RunReport::to_plurality_outcome`] as the derived plurality-consensus
//!   view and [`RunReport::to_majority_outcome`] as its two-species
//!   projection;
//! * [`stream`] — streaming sharded batch execution: a work-stealing
//!   [`ShardQueue`], a [`ReportStream`] yielding reports in trial order as
//!   trials finish, [`OnlineAccumulator`]s folded incrementally (no batch
//!   is ever materialised) and [`EarlyStop`], a sequential stopping rule on
//!   the success-probability confidence width.
//!
//! The Monte-Carlo layer (`lv_sim::MonteCarlo`), the experiment suite and
//! the benchmark harness are all thin adapters over scenario batches, so a
//! new kind of kinetics — or a new `k`-species workload — is *one new
//! backend or preset*, not a new bespoke simulation loop.
//!
//! # Example: one scenario, every backend
//!
//! ```
//! use lv_engine::{BackendRegistry, Scenario};
//! use lv_lotka::{CompetitionKind, LvModel};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let model = LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0);
//! let scenario = Scenario::majority(model, 80, 20);
//! for backend in BackendRegistry::global().iter() {
//!     let mut rng = StdRng::seed_from_u64(7);
//!     let report = backend.run(&scenario, &mut rng);
//!     // Every backend — LV kernels and protocol baselines alike — drives
//!     // the run to consensus. (Who wins is another matter: the Czyzowicz
//!     // baseline follows the proportional law, so a 4:1 majority only
//!     // wins 80% of its runs.)
//!     assert!(report.consensus_reached(), "{}", backend.name());
//! }
//! ```
//!
//! # Example: a three-species plurality contest
//!
//! ```
//! use lv_engine::{backend, Scenario};
//! use lv_lotka::{CompetitionKind, MultiLvModel};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let model = MultiLvModel::symmetric(CompetitionKind::SelfDestructive, 3, 1.0, 1.0, 1.0);
//! let scenario = Scenario::plurality(model, vec![70, 20, 10]);
//! let mut rng = StdRng::seed_from_u64(1);
//! let outcome = backend("jump-chain")
//!     .unwrap()
//!     .run(&scenario, &mut rng)
//!     .to_plurality_outcome();
//! assert_eq!(outcome.initial_leader, Some(0));
//! assert!(outcome.consensus_reached);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backend;
mod backends;
mod observer;
pub mod presets;
mod protocol_backend;
mod registry;
mod report;
mod scenario;
pub mod stream;
pub mod wilson;

pub use backend::Backend;
pub use backends::{
    GillespieDirectBackend, JumpChainBackend, NextReactionBackend, OdeBackend, TauLeapingBackend,
};
pub use observer::{
    EventCounts, NoiseObservation, Observation, Observer, ObserverSpec, StepRecord,
};
pub use presets::{preset, ScenarioPreset};
pub use protocol_backend::{
    AnnihilationLvBackend, ApproxMajorityAgentsBackend, ApproxMajorityBackend, CzyzowiczKBackend,
    CzyzowiczLvAgentsBackend, CzyzowiczLvBackend, ExactMajorityAgentsBackend, ExactMajorityBackend,
};
pub use registry::{backend, BackendRegistry, DuplicateBackendError};
pub use report::{PluralityOutcome, RunReport};
pub use scenario::{default_majority_budget, majority_budget, Scenario, ScenarioModel};
pub use stream::{
    EarlyStop, OnlineAccumulator, PluralityTally, Progress, ReportStream, RunMoments, ShardQueue,
    StreamConfig, SuccessTally, TrialRngFactory, Welford,
};
