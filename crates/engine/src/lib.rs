//! # lv-engine — one scenario description, five execution backends
//!
//! Every experiment in the reproduction of *“Majority consensus thresholds
//! in competitive Lotka–Volterra populations”* (Függer, Nowak, Rybicki; PODC
//! 2024) reduces to the same shape: *run a model under some kinetics until a
//! stop condition, collect observables, aggregate over trials*. This crate
//! is that shape, made explicit:
//!
//! * [`Scenario`] — the *what*: a model ([`lv_lotka::LvModel`]), an initial
//!   configuration, a [`lv_crn::StopCondition`] and a set of composable
//!   [`ObserverSpec`]s;
//! * [`Backend`] — the *how*: an object-safe execution engine. Five are
//!   built in — the exact specialised jump chain (the paper's chain `S`),
//!   the Gillespie direct method, the next-reaction method, tau-leaping and
//!   the deterministic mean-field ODE;
//! * [`BackendRegistry`] — string-keyed backend selection for CLIs and
//!   benches (`"jump-chain"`, `"gillespie-direct"`, `"next-reaction"`,
//!   `"tau-leaping"`, `"ode"`, plus aliases);
//! * [`RunReport`] — the uniform result: summary fields plus one
//!   [`Observation`] per observer, with
//!   [`RunReport::to_majority_outcome`] as the derived majority-consensus
//!   view.
//!
//! The Monte-Carlo layer (`lv_sim::MonteCarlo`), the experiment suite and
//! the benchmark harness are all thin adapters over scenario batches, so a
//! new kind of kinetics (or a k-species model) is *one new backend* — not a
//! new bespoke simulation loop.
//!
//! # Example: one scenario, every backend
//!
//! ```
//! use lv_engine::{BackendRegistry, Scenario};
//! use lv_lotka::{CompetitionKind, LvModel};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let model = LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0);
//! let scenario = Scenario::majority(model, 80, 20);
//! for backend in BackendRegistry::global().iter() {
//!     let mut rng = StdRng::seed_from_u64(7);
//!     let report = backend.run(&scenario, &mut rng);
//!     // A 4:1 initial majority wins under every backend.
//!     assert!(report.majority_won(), "{}", backend.name());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backend;
mod backends;
mod observer;
mod registry;
mod report;
mod scenario;

pub use backend::Backend;
pub use backends::{
    GillespieDirectBackend, JumpChainBackend, NextReactionBackend, OdeBackend, TauLeapingBackend,
};
pub use observer::{
    EventCounts, NoiseObservation, Observation, Observer, ObserverSpec, StepRecord,
};
pub use registry::{backend, BackendRegistry};
pub use report::RunReport;
pub use scenario::{default_majority_budget, majority_budget, Scenario};
