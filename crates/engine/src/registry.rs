//! The string-keyed backend registry used for CLI and bench selection.

use crate::backend::Backend;
use crate::backends::{
    GillespieDirectBackend, JumpChainBackend, NextReactionBackend, OdeBackend, TauLeapingBackend,
};
use std::sync::OnceLock;

/// The set of available [`Backend`]s, addressable by name or alias.
///
/// ```
/// use lv_engine::BackendRegistry;
///
/// let registry = BackendRegistry::global();
/// assert_eq!(registry.names().len(), 5);
/// assert!(registry.get("gillespie-direct").is_some());
/// // Aliases resolve to the same backend.
/// assert_eq!(
///     registry.get("ssa").unwrap().name(),
///     "gillespie-direct"
/// );
/// ```
pub struct BackendRegistry {
    entries: Vec<Box<dyn Backend>>,
}

impl std::fmt::Debug for BackendRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendRegistry")
            .field("names", &self.names())
            .finish()
    }
}

impl BackendRegistry {
    /// Builds a registry holding the five built-in backends.
    fn builtin() -> Self {
        BackendRegistry {
            entries: vec![
                Box::new(JumpChainBackend),
                Box::new(GillespieDirectBackend),
                Box::new(NextReactionBackend),
                Box::new(TauLeapingBackend),
                Box::new(OdeBackend),
            ],
        }
    }

    /// The process-wide registry of built-in backends.
    pub fn global() -> &'static BackendRegistry {
        static REGISTRY: OnceLock<BackendRegistry> = OnceLock::new();
        REGISTRY.get_or_init(BackendRegistry::builtin)
    }

    /// Canonical names of every registered backend, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|b| b.name()).collect()
    }

    /// Looks a backend up by canonical name or alias (case-sensitive).
    pub fn get(&self, name: &str) -> Option<&dyn Backend> {
        self.entries
            .iter()
            .find(|b| b.name() == name || b.aliases().contains(&name))
            .map(|b| b.as_ref())
    }

    /// Iterates over the registered backends.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Backend> {
        self.entries.iter().map(|b| b.as_ref())
    }
}

/// Shorthand for [`BackendRegistry::global`]`().get(name)`.
pub fn backend(name: &str) -> Option<&'static dyn Backend> {
    BackendRegistry::global().get(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_holds_all_five_backends() {
        let names = BackendRegistry::global().names();
        assert_eq!(
            names,
            vec![
                "jump-chain",
                "gillespie-direct",
                "next-reaction",
                "tau-leaping",
                "ode"
            ]
        );
        for name in names {
            assert!(backend(name).is_some(), "missing backend {name}");
        }
    }

    #[test]
    fn aliases_resolve_and_unknown_names_do_not() {
        assert_eq!(backend("exact").unwrap().name(), "jump-chain");
        assert_eq!(backend("tau").unwrap().name(), "tau-leaping");
        assert_eq!(backend("mean-field").unwrap().name(), "ode");
        assert!(backend("does-not-exist").is_none());
    }

    #[test]
    fn descriptions_are_nonempty() {
        for backend in BackendRegistry::global().iter() {
            assert!(!backend.description().is_empty(), "{}", backend.name());
        }
    }
}
