//! The string-keyed backend registry used for CLI and bench selection, open
//! for external registration.

use crate::backend::Backend;
use crate::backends::{
    GillespieDirectBackend, JumpChainBackend, NextReactionBackend, OdeBackend, TauLeapingBackend,
};
use crate::protocol_backend::{
    AnnihilationLvBackend, ApproxMajorityAgentsBackend, ApproxMajorityBackend, CzyzowiczKBackend,
    CzyzowiczKBridgedBackend, CzyzowiczLvAgentsBackend, CzyzowiczLvBackend,
    CzyzowiczLvBridgedBackend, ExactMajorityAgentsBackend, ExactMajorityBackend,
};
use std::fmt;
use std::sync::OnceLock;

/// Error returned by [`BackendRegistry::register`] when a backend's name or
/// alias collides with one already registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicateBackendError {
    /// The colliding name or alias.
    pub name: String,
}

impl fmt::Display for DuplicateBackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "a backend named or aliased {:?} is already registered",
            self.name
        )
    }
}

impl std::error::Error for DuplicateBackendError {}

/// The set of available [`Backend`]s, addressable by name or alias.
///
/// The process-wide [`BackendRegistry::global`] holds the fifteen built-ins:
/// five Lotka–Volterra kernels, five count-based *batched* protocol
/// baselines (including the `k`-species `"czyzowicz-lv-k"` dynamics), the
/// two diffusion-bridged conversion backends (`"czyzowicz-lv-bridged"` and
/// `"czyzowicz-lv-k-bridged"`), and the bit-exact agent-list legacy variants
/// of the original three protocol baselines (`-agents` names —
/// [`Backend::batched`] reports which mode a backend uses). Downstream
/// crates can build their own registries and plug
/// in custom backends with [`BackendRegistry::register`] /
/// [`BackendRegistry::with_backend`] — duplicate names or aliases are
/// rejected with a [`DuplicateBackendError`] instead of silently shadowing.
///
/// ```
/// use lv_engine::BackendRegistry;
///
/// let registry = BackendRegistry::global();
/// assert_eq!(registry.names().len(), 15);
/// assert!(registry.get("gillespie-direct").is_some());
/// // Aliases resolve to the same backend.
/// assert_eq!(
///     registry.get("ssa").unwrap().name(),
///     "gillespie-direct"
/// );
/// // Batched vs agent-list protocol execution is a reported capability.
/// assert!(registry.get("approx-majority").unwrap().batched());
/// assert!(!registry.get("approx-majority-agents").unwrap().batched());
/// ```
pub struct BackendRegistry {
    entries: Vec<Box<dyn Backend>>,
}

impl std::fmt::Debug for BackendRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendRegistry")
            .field("names", &self.names())
            .finish()
    }
}

impl Default for BackendRegistry {
    fn default() -> Self {
        BackendRegistry::builtin()
    }
}

impl BackendRegistry {
    /// An empty registry; populate it with [`BackendRegistry::register`].
    pub fn empty() -> Self {
        BackendRegistry {
            entries: Vec::new(),
        }
    }

    /// A registry holding the fifteen built-in backends: the five
    /// Lotka–Volterra kernels, the batched `"approx-majority"`,
    /// `"exact-majority"`, `"czyzowicz-lv"`, `"annihilation-lv"` and
    /// `"czyzowicz-lv-k"` protocol baselines, the diffusion-bridged
    /// `"czyzowicz-lv-bridged"` / `"czyzowicz-lv-k-bridged"` conversion
    /// backends, and the bit-exact `-agents` legacy variants of the first
    /// three protocol baselines.
    pub fn builtin() -> Self {
        let mut registry = BackendRegistry::empty();
        let builtins: Vec<Box<dyn Backend>> = vec![
            Box::new(JumpChainBackend),
            Box::new(GillespieDirectBackend),
            Box::new(NextReactionBackend),
            Box::new(TauLeapingBackend),
            Box::new(OdeBackend),
            Box::new(ApproxMajorityBackend),
            Box::new(ExactMajorityBackend),
            Box::new(CzyzowiczLvBackend),
            Box::new(AnnihilationLvBackend),
            Box::new(CzyzowiczKBackend),
            Box::new(CzyzowiczLvBridgedBackend),
            Box::new(CzyzowiczKBridgedBackend),
            Box::new(ApproxMajorityAgentsBackend),
            Box::new(ExactMajorityAgentsBackend),
            Box::new(CzyzowiczLvAgentsBackend),
        ];
        for backend in builtins {
            registry
                .register(backend)
                .expect("built-in backend names are distinct");
        }
        registry
    }

    /// The process-wide registry of built-in backends.
    pub fn global() -> &'static BackendRegistry {
        static REGISTRY: OnceLock<BackendRegistry> = OnceLock::new();
        REGISTRY.get_or_init(BackendRegistry::builtin)
    }

    /// Registers a backend, rejecting any name or alias that collides with
    /// an already-registered backend's name or alias.
    ///
    /// # Errors
    ///
    /// Returns [`DuplicateBackendError`] naming the colliding key; the
    /// registry is unchanged in that case.
    pub fn register(&mut self, backend: Box<dyn Backend>) -> Result<(), DuplicateBackendError> {
        let mut keys = std::iter::once(backend.name()).chain(backend.aliases().iter().copied());
        if let Some(duplicate) = keys.find(|key| self.get(key).is_some()) {
            return Err(DuplicateBackendError {
                name: duplicate.to_string(),
            });
        }
        self.entries.push(backend);
        Ok(())
    }

    /// Builder-style [`BackendRegistry::register`]: returns the extended
    /// registry.
    ///
    /// # Errors
    ///
    /// Returns [`DuplicateBackendError`] naming the colliding key (the
    /// registry is consumed in that case).
    pub fn with_backend(
        mut self,
        backend: Box<dyn Backend>,
    ) -> Result<Self, DuplicateBackendError> {
        self.register(backend)?;
        Ok(self)
    }

    /// Canonical names of every registered backend, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|b| b.name()).collect()
    }

    /// Looks a backend up by canonical name or alias (case-sensitive).
    pub fn get(&self, name: &str) -> Option<&dyn Backend> {
        self.entries
            .iter()
            .find(|b| b.name() == name || b.aliases().contains(&name))
            .map(|b| b.as_ref())
    }

    /// Iterates over the registered backends.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Backend> {
        self.entries.iter().map(|b| b.as_ref())
    }

    /// Iterates over the backends that can run `species`-species scenarios
    /// (see [`Backend::supports_species`]).
    pub fn iter_supporting(&self, species: usize) -> impl Iterator<Item = &dyn Backend> {
        self.iter().filter(move |b| b.supports_species(species))
    }
}

/// Shorthand for [`BackendRegistry::global`]`().get(name)`.
pub fn backend(name: &str) -> Option<&'static dyn Backend> {
    BackendRegistry::global().get(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::RunReport;
    use crate::scenario::Scenario;
    use rand::rngs::StdRng;

    #[test]
    fn registry_holds_all_builtin_backends() {
        let names = BackendRegistry::global().names();
        assert_eq!(
            names,
            vec![
                "jump-chain",
                "gillespie-direct",
                "next-reaction",
                "tau-leaping",
                "ode",
                "approx-majority",
                "exact-majority",
                "czyzowicz-lv",
                "annihilation-lv",
                "czyzowicz-lv-k",
                "czyzowicz-lv-bridged",
                "czyzowicz-lv-k-bridged",
                "approx-majority-agents",
                "exact-majority-agents",
                "czyzowicz-lv-agents"
            ]
        );
        for name in names {
            assert!(backend(name).is_some(), "missing backend {name}");
        }
    }

    #[test]
    fn aliases_resolve_and_unknown_names_do_not() {
        assert_eq!(backend("exact").unwrap().name(), "jump-chain");
        assert_eq!(backend("tau").unwrap().name(), "tau-leaping");
        assert_eq!(backend("mean-field").unwrap().name(), "ode");
        assert_eq!(backend("am").unwrap().name(), "approx-majority");
        assert_eq!(backend("em").unwrap().name(), "exact-majority");
        assert_eq!(backend("4-state").unwrap().name(), "exact-majority");
        assert_eq!(backend("cz").unwrap().name(), "czyzowicz-lv");
        assert_eq!(backend("2-state-lv").unwrap().name(), "czyzowicz-lv");
        assert_eq!(backend("sd-lv").unwrap().name(), "annihilation-lv");
        assert_eq!(backend("cz-k").unwrap().name(), "czyzowicz-lv-k");
        assert_eq!(backend("k-opinion-lv").unwrap().name(), "czyzowicz-lv-k");
        assert_eq!(
            backend("cz-bridged").unwrap().name(),
            "czyzowicz-lv-bridged"
        );
        assert_eq!(
            backend("cz-k-bridged").unwrap().name(),
            "czyzowicz-lv-k-bridged"
        );
        assert_eq!(
            backend("am-agents").unwrap().name(),
            "approx-majority-agents"
        );
        assert_eq!(
            backend("em-agents").unwrap().name(),
            "exact-majority-agents"
        );
        assert_eq!(backend("cz-agents").unwrap().name(), "czyzowicz-lv-agents");
        assert!(backend("does-not-exist").is_none());
    }

    #[test]
    fn descriptions_are_nonempty() {
        for backend in BackendRegistry::global().iter() {
            assert!(!backend.description().is_empty(), "{}", backend.name());
        }
    }

    #[test]
    fn iter_supporting_filters_by_species_count() {
        let registry = BackendRegistry::global();
        let all: Vec<_> = registry.iter_supporting(2).map(|b| b.name()).collect();
        assert_eq!(all.len(), 15);
        let k3: Vec<_> = registry.iter_supporting(3).map(|b| b.name()).collect();
        assert_eq!(
            k3,
            vec![
                "jump-chain",
                "gillespie-direct",
                "next-reaction",
                "tau-leaping",
                "ode",
                "czyzowicz-lv-k",
                "czyzowicz-lv-k-bridged"
            ]
        );
    }

    #[test]
    fn batched_capability_is_reported_per_backend() {
        let registry = BackendRegistry::global();
        let batched: Vec<_> = registry
            .iter()
            .filter(|b| b.batched())
            .map(|b| b.name())
            .collect();
        assert_eq!(
            batched,
            vec![
                "approx-majority",
                "exact-majority",
                "czyzowicz-lv",
                "annihilation-lv",
                "czyzowicz-lv-k",
                "czyzowicz-lv-bridged",
                "czyzowicz-lv-k-bridged"
            ]
        );
        // The LV kernels and the legacy agent-list baselines resolve every
        // event individually.
        for name in ["jump-chain", "ode", "approx-majority-agents"] {
            assert!(!registry.get(name).unwrap().batched(), "{name}");
        }
    }

    /// A downstream backend for registration tests.
    struct NullBackend {
        name: &'static str,
        aliases: &'static [&'static str],
    }

    impl crate::Backend for NullBackend {
        fn name(&self) -> &'static str {
            self.name
        }

        fn aliases(&self) -> &'static [&'static str] {
            self.aliases
        }

        fn description(&self) -> &'static str {
            "test double"
        }

        fn run(&self, _scenario: &Scenario, _rng: &mut StdRng) -> RunReport {
            unimplemented!("never executed in these tests")
        }
    }

    #[test]
    fn external_backends_can_be_registered() {
        let registry = BackendRegistry::builtin()
            .with_backend(Box::new(NullBackend {
                name: "custom",
                aliases: &["c"],
            }))
            .unwrap();
        assert_eq!(registry.names().len(), 16);
        assert_eq!(registry.get("c").unwrap().name(), "custom");
        // The global registry is unaffected.
        assert!(BackendRegistry::global().get("custom").is_none());
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut registry = BackendRegistry::builtin();
        let err = registry
            .register(Box::new(NullBackend {
                name: "jump-chain",
                aliases: &[],
            }))
            .unwrap_err();
        assert_eq!(err.name, "jump-chain");
        assert_eq!(
            registry.names().len(),
            15,
            "failed registration must not mutate"
        );
        assert!(err.to_string().contains("jump-chain"));
    }

    #[test]
    fn duplicate_aliases_are_rejected_both_ways() {
        // New backend's name collides with an existing alias.
        let err = BackendRegistry::builtin()
            .with_backend(Box::new(NullBackend {
                name: "ssa",
                aliases: &[],
            }))
            .unwrap_err();
        assert_eq!(err.name, "ssa");
        // New backend's alias collides with an existing name.
        let err = BackendRegistry::builtin()
            .with_backend(Box::new(NullBackend {
                name: "fresh",
                aliases: &["ode"],
            }))
            .unwrap_err();
        assert_eq!(err.name, "ode");
    }

    #[test]
    fn empty_registry_grows_incrementally() {
        let mut registry = BackendRegistry::empty();
        assert!(registry.names().is_empty());
        registry
            .register(Box::new(NullBackend {
                name: "only",
                aliases: &[],
            }))
            .unwrap();
        assert_eq!(registry.names(), vec!["only"]);
    }
}
