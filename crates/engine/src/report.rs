//! The [`RunReport`] produced by every backend, plus the derived
//! plurality- and majority-consensus views.

use crate::observer::{EventCounts, NoiseObservation, Observation, ObserverSpec};
use lv_crn::StopReason;
use lv_lotka::{MajorityOutcome, NoiseDecomposition, Population, SpeciesIndex};
use serde::Serialize;

/// The backend-independent result of running a [`Scenario`](crate::Scenario).
///
/// Every backend fills the same summary fields; whatever else was measured
/// arrives as [`Observation`]s, one per observer attached to the scenario.
// No `Deserialize`: `backend` is a `&'static str` registry key, which real
// serde cannot deserialize into (the compat shims must stay swappable for
// the real crates without code changes).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunReport {
    /// Registry name of the backend that produced this report.
    pub backend: &'static str,
    /// The initial population.
    pub initial: Population,
    /// The population when the run stopped.
    pub final_state: Population,
    /// Why the run stopped.
    pub reason: StopReason,
    /// Number of reaction firings (0 for the deterministic ODE backend).
    pub events: u64,
    /// Number of driver steps: equals `events` for per-event backends, the
    /// number of leaps/integration steps for aggregating backends.
    pub steps: u64,
    /// The backend clock when the run stopped (continuous time for
    /// Gillespie-style backends and the ODE; the event count for the jump
    /// chain).
    pub time: f64,
    observations: Vec<(ObserverSpec, Observation)>,
}

impl RunReport {
    /// Assembles a report (used by backend implementations).
    #[allow(clippy::too_many_arguments)] // one argument per report field
    pub fn new(
        backend: &'static str,
        initial: Population,
        final_state: Population,
        reason: StopReason,
        events: u64,
        steps: u64,
        time: f64,
        observations: Vec<(ObserverSpec, Observation)>,
    ) -> Self {
        RunReport {
            backend,
            initial,
            final_state,
            reason,
            events,
            steps,
            time,
            observations,
        }
    }

    /// Number of species in the simulated population.
    pub fn species_count(&self) -> usize {
        self.initial.species_count()
    }

    /// All recorded observations in scenario order.
    pub fn observations(&self) -> &[(ObserverSpec, Observation)] {
        &self.observations
    }

    /// The observation recorded for the given spec, if that observer was
    /// attached.
    pub fn observation(&self, spec: ObserverSpec) -> Option<&Observation> {
        self.observations
            .iter()
            .find(|(s, _)| *s == spec)
            .map(|(_, o)| o)
    }

    /// The recorded margin (gap) trajectory, if observed.
    pub fn gap_trajectory(&self) -> Option<&[i64]> {
        match self.observation(ObserverSpec::GapTrajectory)? {
            Observation::GapTrajectory(t) => Some(t),
            _ => None,
        }
    }

    /// The recorded noise observation (classified decomposition plus any
    /// unclassified leap noise), if observed.
    pub fn noise(&self) -> Option<NoiseObservation> {
        match self.observation(ObserverSpec::NoiseDecomposition)? {
            Observation::Noise(n) => Some(*n),
            _ => None,
        }
    }

    /// The recorded event counts, if observed.
    pub fn event_counts(&self) -> Option<EventCounts> {
        match self.observation(ObserverSpec::EventCounts)? {
            Observation::Events(c) => Some(*c),
            _ => None,
        }
    }

    /// The recorded maximum population, if observed.
    pub fn max_population(&self) -> Option<u64> {
        match self.observation(ObserverSpec::MaxPopulation)? {
            Observation::MaxPopulation(m) => Some(*m),
            _ => None,
        }
    }

    /// Whether the final state is a consensus state (at most one species
    /// alive).
    pub fn consensus_reached(&self) -> bool {
        self.final_state.is_consensus()
    }

    /// Whether the run exhausted an event or time budget before its stop
    /// condition was met.
    pub fn truncated(&self) -> bool {
        matches!(
            self.reason,
            StopReason::MaxEventsReached | StopReason::MaxTimeReached
        )
    }

    /// Whether the run reached consensus with the *initial leader* winning —
    /// the paper's "majority wins" for `k = 2`, plurality for `k > 2`.
    pub fn plurality_won(&self) -> bool {
        let initial_leader = self.initial.leader();
        initial_leader.is_some()
            && self.consensus_reached()
            && self.final_state.winner() == initial_leader
    }

    /// Alias of [`RunReport::plurality_won`], keeping the paper's two-species
    /// vocabulary.
    pub fn majority_won(&self) -> bool {
        self.plurality_won()
    }

    /// The derived plurality-consensus view: winner index, final margin,
    /// truncation and the event/noise observables, assembled from the report
    /// summary plus the event-count / noise / max-population observations
    /// (fields whose observer was not attached are zero).
    pub fn to_plurality_outcome(&self) -> PluralityOutcome {
        let counts = self.event_counts().unwrap_or_default();
        let noise = self.noise().unwrap_or_default();
        PluralityOutcome {
            initial: self.initial.clone(),
            final_state: self.final_state.clone(),
            initial_leader: self.initial.leader(),
            winner: self.final_state.winner(),
            margin: self.final_state.margin(),
            consensus_reached: self.consensus_reached(),
            truncated: self.truncated(),
            events: self.events,
            individual_events: counts.individual,
            competitive_events: counts.competitive,
            bad_noncompetitive_events: counts.bad_noncompetitive,
            noise: noise.classified,
            max_population: self.max_population().unwrap_or(0),
        }
    }

    /// The derived majority-consensus view of a *two-species* report: the
    /// same [`MajorityOutcome`] the bespoke `lv_lotka::run_majority` loop
    /// produces.
    ///
    /// For per-event backends on the same RNG stream this reproduces
    /// `run_majority` bit for bit (asserted by the engine's integration
    /// tests). For aggregating backends the per-event-class fields are lower
    /// bounds, with the remainder in
    /// [`EventCounts::unclassified`](crate::EventCounts::unclassified).
    ///
    /// # Panics
    ///
    /// Panics if the report has more than two species; use
    /// [`RunReport::to_plurality_outcome`] there.
    pub fn to_majority_outcome(&self) -> MajorityOutcome {
        self.to_plurality_outcome()
            .to_majority_outcome()
            .expect("to_majority_outcome requires a two-species report")
    }
}

/// The observables of one plurality-consensus run over `k` species: who led
/// initially, who won, by what margin, whether the run was truncated, plus
/// the event-class counts and the demographic-noise decomposition measured
/// against the initial leader's margin.
///
/// [`MajorityOutcome`] is exactly the `k = 2` projection
/// ([`PluralityOutcome::to_majority_outcome`]).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PluralityOutcome {
    /// The initial population.
    pub initial: Population,
    /// The final population when the run stopped.
    pub final_state: Population,
    /// The initial plurality leader (`None` if the run started from a tie).
    pub initial_leader: Option<usize>,
    /// The winning species, if consensus was reached with a positive count.
    pub winner: Option<usize>,
    /// The final plurality margin: the current leader's count minus the
    /// runner-up's (0 on a tie or total extinction).
    pub margin: i64,
    /// Whether consensus (at most one species alive) was reached within the
    /// budget.
    pub consensus_reached: bool,
    /// Whether the run exhausted its event or time budget before consensus.
    pub truncated: bool,
    /// The consensus time `T(S)`: number of reactions until the run stopped.
    pub events: u64,
    /// Number of individual (birth/death) reactions, the paper's `I(S)`.
    pub individual_events: u64,
    /// Number of competitive reactions, the paper's `K(S)`.
    pub competitive_events: u64,
    /// Number of *bad non-competitive* reactions — individual reactions that
    /// decreased the absolute margin — the paper's `J(S)`.
    pub bad_noncompetitive_events: u64,
    /// The demographic-noise decomposition `F = F_ind + F_comp` over the
    /// initial leader's margin.
    pub noise: NoiseDecomposition,
    /// The largest total population observed during the run.
    pub max_population: u64,
}

impl PluralityOutcome {
    /// Number of species.
    pub fn species_count(&self) -> usize {
        self.initial.species_count()
    }

    /// Whether the run reached consensus with the initial leader winning.
    pub fn plurality_won(&self) -> bool {
        self.consensus_reached
            && self.initial_leader.is_some()
            && self.winner == self.initial_leader
    }

    /// The `k = 2` projection onto the paper's [`MajorityOutcome`], or
    /// `None` for more than two species.
    pub fn to_majority_outcome(&self) -> Option<MajorityOutcome> {
        let initial = self.initial.as_lv_configuration()?;
        let final_state = self.final_state.as_lv_configuration()?;
        let species = |index: Option<usize>| index.map(SpeciesIndex::from_index);
        Some(MajorityOutcome {
            initial,
            final_state,
            initial_majority: species(self.initial_leader),
            winner: species(self.winner),
            consensus_reached: self.consensus_reached,
            truncated: self.truncated,
            events: self.events,
            individual_events: self.individual_events,
            competitive_events: self.competitive_events,
            bad_noncompetitive_events: self.bad_noncompetitive_events,
            noise: self.noise,
            max_population: self.max_population,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_lotka::NoiseDecomposition;

    fn observations() -> Vec<(ObserverSpec, Observation)> {
        vec![
            (
                ObserverSpec::EventCounts,
                Observation::Events(EventCounts {
                    individual: 9,
                    competitive: 3,
                    bad_noncompetitive: 2,
                    unclassified: 0,
                }),
            ),
            (
                ObserverSpec::NoiseDecomposition,
                Observation::Noise(NoiseObservation {
                    classified: NoiseDecomposition {
                        individual: -1,
                        competitive: 0,
                    },
                    unclassified: 0,
                }),
            ),
            (ObserverSpec::MaxPopulation, Observation::MaxPopulation(11)),
        ]
    }

    fn report(final_state: (u64, u64), reason: StopReason) -> RunReport {
        RunReport::new(
            "test",
            Population::new(vec![6, 4]),
            Population::from(final_state),
            reason,
            12,
            12,
            12.0,
            observations(),
        )
    }

    fn three_species_report(final_counts: Vec<u64>, reason: StopReason) -> RunReport {
        RunReport::new(
            "test",
            Population::new(vec![5, 3, 2]),
            Population::new(final_counts),
            reason,
            12,
            12,
            12.0,
            observations(),
        )
    }

    #[test]
    fn accessors_find_observations() {
        let report = report((7, 0), StopReason::ConditionMet);
        assert_eq!(report.event_counts().unwrap().individual, 9);
        assert_eq!(report.noise().unwrap().classified.individual, -1);
        assert_eq!(report.max_population(), Some(11));
        assert_eq!(report.gap_trajectory(), None);
        assert_eq!(report.species_count(), 2);
    }

    #[test]
    fn majority_view_matches_run_summary() {
        let outcome = report((7, 0), StopReason::ConditionMet).to_majority_outcome();
        assert!(outcome.consensus_reached);
        assert!(!outcome.truncated);
        assert!(outcome.majority_won());
        assert_eq!(outcome.events, 12);
        assert_eq!(outcome.individual_events, 9);
        assert_eq!(outcome.max_population, 11);
    }

    #[test]
    fn truncated_runs_do_not_win() {
        let report = report((5, 4), StopReason::MaxEventsReached);
        assert!(report.truncated());
        assert!(!report.majority_won());
        assert!(!report.to_majority_outcome().consensus_reached);
    }

    #[test]
    fn plurality_view_reports_winner_and_margin() {
        let report = three_species_report(vec![0, 8, 0], StopReason::ConditionMet);
        let outcome = report.to_plurality_outcome();
        assert_eq!(outcome.species_count(), 3);
        assert_eq!(outcome.initial_leader, Some(0));
        assert_eq!(outcome.winner, Some(1));
        assert_eq!(outcome.margin, 8);
        assert!(outcome.consensus_reached);
        assert!(!outcome.plurality_won(), "the initial leader lost");
        assert_eq!(outcome.individual_events, 9);
        // No k = 2 projection for three species.
        assert_eq!(outcome.to_majority_outcome(), None);
    }

    #[test]
    fn plurality_margin_before_consensus_is_the_current_lead() {
        let report = three_species_report(vec![4, 3, 1], StopReason::MaxEventsReached);
        let outcome = report.to_plurality_outcome();
        assert_eq!(outcome.winner, None);
        assert_eq!(outcome.margin, 1);
        assert!(outcome.truncated);
        assert!(!outcome.plurality_won());
    }

    #[test]
    fn two_species_plurality_projects_onto_majority() {
        let report = report((7, 0), StopReason::ConditionMet);
        let plurality = report.to_plurality_outcome();
        assert_eq!(
            plurality.to_majority_outcome().unwrap(),
            report.to_majority_outcome()
        );
        assert_eq!(plurality.margin, 7);
        assert!(plurality.plurality_won());
    }

    #[test]
    #[should_panic(expected = "two-species report")]
    fn majority_view_rejects_k_species_reports() {
        let _ = three_species_report(vec![0, 8, 0], StopReason::ConditionMet).to_majority_outcome();
    }
}
