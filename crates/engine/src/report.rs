//! The [`RunReport`] produced by every backend, plus the derived
//! majority-consensus view.

use crate::observer::{EventCounts, NoiseObservation, Observation, ObserverSpec};
use lv_crn::StopReason;
use lv_lotka::{LvConfiguration, MajorityOutcome};
use serde::Serialize;

/// The backend-independent result of running a [`Scenario`](crate::Scenario).
///
/// Every backend fills the same summary fields; whatever else was measured
/// arrives as [`Observation`]s, one per observer attached to the scenario.
// No `Deserialize`: `backend` is a `&'static str` registry key, which real
// serde cannot deserialize into (the compat shims must stay swappable for
// the real crates without code changes).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunReport {
    /// Registry name of the backend that produced this report.
    pub backend: &'static str,
    /// The initial configuration.
    pub initial: LvConfiguration,
    /// The configuration when the run stopped.
    pub final_state: LvConfiguration,
    /// Why the run stopped.
    pub reason: StopReason,
    /// Number of reaction firings (0 for the deterministic ODE backend).
    pub events: u64,
    /// Number of driver steps: equals `events` for per-event backends, the
    /// number of leaps/integration steps for aggregating backends.
    pub steps: u64,
    /// The backend clock when the run stopped (continuous time for
    /// Gillespie-style backends and the ODE; the event count for the jump
    /// chain).
    pub time: f64,
    observations: Vec<(ObserverSpec, Observation)>,
}

impl RunReport {
    /// Assembles a report (used by backend implementations).
    #[allow(clippy::too_many_arguments)] // one argument per report field
    pub fn new(
        backend: &'static str,
        initial: LvConfiguration,
        final_state: LvConfiguration,
        reason: StopReason,
        events: u64,
        steps: u64,
        time: f64,
        observations: Vec<(ObserverSpec, Observation)>,
    ) -> Self {
        RunReport {
            backend,
            initial,
            final_state,
            reason,
            events,
            steps,
            time,
            observations,
        }
    }

    /// All recorded observations in scenario order.
    pub fn observations(&self) -> &[(ObserverSpec, Observation)] {
        &self.observations
    }

    /// The observation recorded for the given spec, if that observer was
    /// attached.
    pub fn observation(&self, spec: ObserverSpec) -> Option<&Observation> {
        self.observations
            .iter()
            .find(|(s, _)| *s == spec)
            .map(|(_, o)| o)
    }

    /// The recorded gap trajectory, if observed.
    pub fn gap_trajectory(&self) -> Option<&[i64]> {
        match self.observation(ObserverSpec::GapTrajectory)? {
            Observation::GapTrajectory(t) => Some(t),
            _ => None,
        }
    }

    /// The recorded noise observation (classified decomposition plus any
    /// unclassified leap noise), if observed.
    pub fn noise(&self) -> Option<NoiseObservation> {
        match self.observation(ObserverSpec::NoiseDecomposition)? {
            Observation::Noise(n) => Some(*n),
            _ => None,
        }
    }

    /// The recorded event counts, if observed.
    pub fn event_counts(&self) -> Option<EventCounts> {
        match self.observation(ObserverSpec::EventCounts)? {
            Observation::Events(c) => Some(*c),
            _ => None,
        }
    }

    /// The recorded maximum population, if observed.
    pub fn max_population(&self) -> Option<u64> {
        match self.observation(ObserverSpec::MaxPopulation)? {
            Observation::MaxPopulation(m) => Some(*m),
            _ => None,
        }
    }

    /// Whether the final state is a consensus state (some species extinct).
    pub fn consensus_reached(&self) -> bool {
        self.final_state.is_consensus()
    }

    /// Whether the run exhausted an event or time budget before its stop
    /// condition was met.
    pub fn truncated(&self) -> bool {
        matches!(
            self.reason,
            StopReason::MaxEventsReached | StopReason::MaxTimeReached
        )
    }

    /// Whether the run reached consensus with the *initial majority* winning.
    pub fn majority_won(&self) -> bool {
        let initial_majority = self.initial.majority();
        initial_majority.is_some()
            && self.consensus_reached()
            && self.final_state.winner() == initial_majority
    }

    /// The derived majority-consensus view: the same [`MajorityOutcome`] the
    /// bespoke `lv_lotka::run_majority` loop produces, reassembled from the
    /// report summary plus the event-count / noise / max-population
    /// observations (fields whose observer was not attached are zero).
    ///
    /// For per-event backends on the same RNG stream this reproduces
    /// `run_majority` bit for bit (asserted by the engine's integration
    /// tests). For aggregating backends the per-event-class fields are lower
    /// bounds, with the remainder in
    /// [`EventCounts::unclassified`](crate::EventCounts::unclassified).
    pub fn to_majority_outcome(&self) -> MajorityOutcome {
        let counts = self.event_counts().unwrap_or_default();
        let noise = self.noise().unwrap_or_default();
        MajorityOutcome {
            initial: self.initial,
            final_state: self.final_state,
            initial_majority: self.initial.majority(),
            winner: self.final_state.winner(),
            consensus_reached: self.consensus_reached(),
            truncated: self.truncated(),
            events: self.events,
            individual_events: counts.individual,
            competitive_events: counts.competitive,
            bad_noncompetitive_events: counts.bad_noncompetitive,
            noise: noise.classified,
            max_population: self.max_population().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_lotka::NoiseDecomposition;

    fn report(final_state: (u64, u64), reason: StopReason) -> RunReport {
        RunReport::new(
            "test",
            LvConfiguration::new(6, 4),
            final_state.into(),
            reason,
            12,
            12,
            12.0,
            vec![
                (
                    ObserverSpec::EventCounts,
                    Observation::Events(EventCounts {
                        individual: 9,
                        competitive: 3,
                        bad_noncompetitive: 2,
                        unclassified: 0,
                    }),
                ),
                (
                    ObserverSpec::NoiseDecomposition,
                    Observation::Noise(NoiseObservation {
                        classified: NoiseDecomposition {
                            individual: -1,
                            competitive: 0,
                        },
                        unclassified: 0,
                    }),
                ),
                (ObserverSpec::MaxPopulation, Observation::MaxPopulation(11)),
            ],
        )
    }

    #[test]
    fn accessors_find_observations() {
        let report = report((7, 0), StopReason::ConditionMet);
        assert_eq!(report.event_counts().unwrap().individual, 9);
        assert_eq!(report.noise().unwrap().classified.individual, -1);
        assert_eq!(report.max_population(), Some(11));
        assert_eq!(report.gap_trajectory(), None);
    }

    #[test]
    fn majority_view_matches_run_summary() {
        let outcome = report((7, 0), StopReason::ConditionMet).to_majority_outcome();
        assert!(outcome.consensus_reached);
        assert!(!outcome.truncated);
        assert!(outcome.majority_won());
        assert_eq!(outcome.events, 12);
        assert_eq!(outcome.individual_events, 9);
        assert_eq!(outcome.max_population, 11);
    }

    #[test]
    fn truncated_runs_do_not_win() {
        let report = report((5, 4), StopReason::MaxEventsReached);
        assert!(report.truncated());
        assert!(!report.majority_won());
        assert!(!report.to_majority_outcome().consensus_reached);
    }
}
