//! The [`Scenario`] description: *what* to simulate, independent of *how*.

use crate::observer::ObserverSpec;
use lv_crn::{StopCondition, ValidatedNetwork};
use lv_lotka::{LvConfiguration, LvEvent, LvModel};
use std::sync::{Arc, OnceLock};

/// The CRN form of a scenario's model: the validated network plus the
/// reaction-index → event map, built once per scenario and shared by every
/// run (Monte-Carlo batches run thousands of trials against one scenario).
#[derive(Debug)]
pub(crate) struct CrnForm {
    pub(crate) network: ValidatedNetwork,
    pub(crate) events: Vec<LvEvent>,
}

/// A complete, backend-independent description of one simulation run: a
/// model, an initial configuration, a [`StopCondition`] and a set of
/// observers.
///
/// The same `Scenario` value runs unmodified on every registered
/// [`Backend`](crate::Backend) — the exact jump chain, the Gillespie direct
/// method, the next-reaction method, tau-leaping and the deterministic ODE —
/// which is what lets the Monte-Carlo layer, the experiment suite and the
/// benchmarks share one execution path.
///
/// ```
/// use lv_engine::{backend, Scenario};
/// use lv_lotka::{CompetitionKind, LvModel};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let model = LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0);
/// let scenario = Scenario::majority(model, 60, 40);
/// let mut rng = StdRng::seed_from_u64(7);
/// let report = backend("jump-chain").unwrap().run(&scenario, &mut rng);
/// assert!(report.final_state.is_consensus());
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    model: LvModel,
    initial: LvConfiguration,
    stop: StopCondition,
    observers: Vec<ObserverSpec>,
    tau: f64,
    ode_step: f64,
    ode_horizon: f64,
    /// Lazily-built CRN form shared across runs (cloning a scenario shares
    /// the already-built network through the `Arc`).
    crn: OnceLock<Arc<CrnForm>>,
}

/// Event budget for a majority run over total population `n`:
/// `events_per_individual · max(n, 16)` events, at least 100 000 — the one
/// formula both [`Scenario::majority`] and `MonteCarlo`'s configurable
/// `max_events_factor` derive from.
pub fn majority_budget(n: u64, events_per_individual: u64) -> u64 {
    events_per_individual.saturating_mul(n.max(16)).max(100_000)
}

/// Default event budget for [`Scenario::majority`]:
/// [`majority_budget`]`(n, 200)`, generous relative to the `O(n)` consensus
/// time of Theorem 13.
pub fn default_majority_budget(n: u64) -> u64 {
    majority_budget(n, 200)
}

impl Scenario {
    /// Creates a scenario with the given model and initial configuration.
    ///
    /// The default stop condition is consensus (any species extinct); no
    /// observers are attached.
    pub fn new(model: LvModel, initial: impl Into<LvConfiguration>) -> Self {
        Scenario {
            model,
            initial: initial.into(),
            stop: StopCondition::any_species_extinct(),
            observers: Vec::new(),
            tau: 1e-3,
            ode_step: 0.5,
            ode_horizon: 1_000.0,
            crn: OnceLock::new(),
        }
    }

    /// The cached CRN form of the model (network + reaction → event map),
    /// built on first use.
    ///
    /// # Panics
    ///
    /// Panics if every rate of the model is zero (no reaction network
    /// exists); such a model cannot be simulated by any CRN backend.
    pub(crate) fn crn_form(&self) -> Arc<CrnForm> {
        Arc::clone(self.crn.get_or_init(|| {
            let network = self
                .model
                .to_reaction_network()
                .expect("a model with at least one positive rate has a valid network");
            let events = crate::backend::reaction_event_map(&self.model);
            debug_assert_eq!(events.len(), network.reaction_count());
            Arc::new(CrnForm { network, events })
        }))
    }

    /// The standard majority-consensus scenario from `(a, b)`: run until one
    /// species is extinct (with the default event budget of
    /// [`default_majority_budget`]), observing event counts, the noise
    /// decomposition and the maximum population — everything
    /// [`RunReport::to_majority_outcome`](crate::RunReport::to_majority_outcome)
    /// needs.
    pub fn majority(model: LvModel, a: u64, b: u64) -> Self {
        Scenario::new(model, (a, b))
            .with_stop(
                StopCondition::any_species_extinct()
                    .with_max_events(default_majority_budget(a + b)),
            )
            .observe(ObserverSpec::EventCounts)
            .observe(ObserverSpec::NoiseDecomposition)
            .observe(ObserverSpec::MaxPopulation)
    }

    /// Replaces the stop condition.
    pub fn with_stop(mut self, stop: StopCondition) -> Self {
        self.stop = stop;
        self
    }

    /// Adds an observer (duplicates are ignored).
    pub fn observe(mut self, spec: ObserverSpec) -> Self {
        if !self.observers.contains(&spec) {
            self.observers.push(spec);
        }
        self
    }

    /// Sets the leap length used by the tau-leaping backend.
    ///
    /// # Panics
    ///
    /// Panics if `tau` is not a positive finite number.
    pub fn with_tau(mut self, tau: f64) -> Self {
        assert!(tau.is_finite() && tau > 0.0, "tau must be positive");
        self.tau = tau;
        self
    }

    /// Sets the *maximum* integration step of the ODE backend (the backend
    /// adapts its step to the local dynamics below this cap).
    ///
    /// # Panics
    ///
    /// Panics if `step` is not a positive finite number.
    pub fn with_ode_step(mut self, step: f64) -> Self {
        assert!(step.is_finite() && step > 0.0, "step must be positive");
        self.ode_step = step;
        self
    }

    /// Sets the ODE backend's fallback time horizon, used when the stop
    /// condition carries no `max_time` budget.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is not a positive finite number.
    pub fn with_ode_horizon(mut self, horizon: f64) -> Self {
        assert!(
            horizon.is_finite() && horizon > 0.0,
            "horizon must be positive"
        );
        self.ode_horizon = horizon;
        self
    }

    /// The model to simulate.
    pub fn model(&self) -> &LvModel {
        &self.model
    }

    /// The initial configuration.
    pub fn initial(&self) -> LvConfiguration {
        self.initial
    }

    /// The stop condition.
    pub fn stop(&self) -> &StopCondition {
        &self.stop
    }

    /// The attached observer specs.
    pub fn observers(&self) -> &[ObserverSpec] {
        &self.observers
    }

    /// The tau-leaping leap length.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// The ODE maximum integration step.
    pub fn ode_step(&self) -> f64 {
        self.ode_step
    }

    /// The ODE fallback horizon.
    pub fn ode_horizon(&self) -> f64 {
        self.ode_horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_scenario_attaches_the_derived_view_observers() {
        let scenario = Scenario::majority(LvModel::default(), 60, 40);
        assert_eq!(scenario.initial().counts(), (60, 40));
        assert_eq!(scenario.observers().len(), 3);
        assert_eq!(scenario.stop().max_events(), Some(100_000));
    }

    #[test]
    fn observe_deduplicates() {
        let scenario = Scenario::new(LvModel::default(), (10, 10))
            .observe(ObserverSpec::GapTrajectory)
            .observe(ObserverSpec::GapTrajectory);
        assert_eq!(scenario.observers(), &[ObserverSpec::GapTrajectory]);
    }

    #[test]
    fn budget_grows_with_population() {
        assert_eq!(default_majority_budget(0), 100_000);
        assert_eq!(default_majority_budget(1_000), 200_000);
    }

    #[test]
    #[should_panic(expected = "tau must be positive")]
    fn invalid_tau_is_rejected() {
        let _ = Scenario::new(LvModel::default(), (1, 1)).with_tau(0.0);
    }
}
