//! The [`Scenario`] description: *what* to simulate, independent of *how*.

use crate::observer::ObserverSpec;
use lv_crn::{StopCondition, ValidatedNetwork};
use lv_lotka::{LvModel, MultiLvModel, Population, PopulationEvent};
use std::sync::{Arc, OnceLock};

/// The model a scenario simulates: the paper's two-species model, or the
/// general `k`-species model.
///
/// The two-species variant is kept distinct (rather than eagerly embedded
/// into [`MultiLvModel`]) so backends with a specialised two-species path —
/// the exact jump chain — can keep using it bit-for-bit; the CRN form of an
/// embedded two-species model is identical either way, so the generic
/// backends do not care.
#[derive(Debug, Clone)]
pub enum ScenarioModel {
    /// The paper's two-species competitive Lotka–Volterra model.
    TwoSpecies(LvModel),
    /// A general `k`-species competitive Lotka–Volterra model.
    MultiSpecies(MultiLvModel),
}

impl ScenarioModel {
    /// Number of species of the model.
    pub fn species_count(&self) -> usize {
        match self {
            ScenarioModel::TwoSpecies(_) => 2,
            ScenarioModel::MultiSpecies(model) => model.species_count(),
        }
    }

    /// The two-species model, when this is one.
    pub fn as_two_species(&self) -> Option<&LvModel> {
        match self {
            ScenarioModel::TwoSpecies(model) => Some(model),
            ScenarioModel::MultiSpecies(_) => None,
        }
    }

    /// The `k`-species model, when this is one.
    pub fn as_multi_species(&self) -> Option<&MultiLvModel> {
        match self {
            ScenarioModel::MultiSpecies(model) => Some(model),
            ScenarioModel::TwoSpecies(_) => None,
        }
    }

    /// The `k`-species view of the model (the exact embedding for the
    /// two-species variant).
    pub fn to_multi(&self) -> MultiLvModel {
        match self {
            ScenarioModel::TwoSpecies(model) => MultiLvModel::from(*model),
            ScenarioModel::MultiSpecies(model) => model.clone(),
        }
    }
}

impl From<LvModel> for ScenarioModel {
    fn from(model: LvModel) -> Self {
        ScenarioModel::TwoSpecies(model)
    }
}

impl From<MultiLvModel> for ScenarioModel {
    fn from(model: MultiLvModel) -> Self {
        ScenarioModel::MultiSpecies(model)
    }
}

/// The CRN form of a scenario's model: the validated network plus the
/// reaction-index → event map, built once per scenario and shared by every
/// run (Monte-Carlo batches run thousands of trials against one scenario).
#[derive(Debug)]
pub(crate) struct CrnForm {
    pub(crate) network: ValidatedNetwork,
    pub(crate) events: Vec<PopulationEvent>,
}

/// A complete, backend-independent description of one simulation run: a
/// model over `k ≥ 2` species, an initial [`Population`], a
/// [`StopCondition`] and a set of observers.
///
/// The same `Scenario` value runs unmodified on every registered
/// [`Backend`](crate::Backend) — the exact jump chain, the Gillespie direct
/// method, the next-reaction method, tau-leaping and the deterministic ODE —
/// which is what lets the Monte-Carlo layer, the experiment suite and the
/// benchmarks share one execution path.
///
/// ```
/// use lv_engine::{backend, Scenario};
/// use lv_lotka::{CompetitionKind, LvModel};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let model = LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0);
/// let scenario = Scenario::majority(model, 60, 40);
/// let mut rng = StdRng::seed_from_u64(7);
/// let report = backend("jump-chain").unwrap().run(&scenario, &mut rng);
/// assert!(report.final_state.is_consensus());
/// ```
///
/// `k`-species scenarios are built the same way from a
/// [`MultiLvModel`]:
///
/// ```
/// use lv_engine::{backend, Scenario};
/// use lv_lotka::{CompetitionKind, MultiLvModel};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let model = MultiLvModel::symmetric(CompetitionKind::SelfDestructive, 3, 1.0, 1.0, 1.0);
/// let scenario = Scenario::plurality(model, vec![70, 20, 10]);
/// let mut rng = StdRng::seed_from_u64(7);
/// let report = backend("jump-chain").unwrap().run(&scenario, &mut rng);
/// assert!(report.to_plurality_outcome().consensus_reached);
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    model: ScenarioModel,
    initial: Population,
    stop: StopCondition,
    observers: Vec<ObserverSpec>,
    tau: f64,
    ode_step: f64,
    ode_horizon: f64,
    /// Lazily-built CRN form shared across runs (cloning a scenario shares
    /// the already-built network through the `Arc`).
    crn: OnceLock<Arc<CrnForm>>,
}

/// Event budget for a consensus run over total population `n`:
/// `events_per_individual · max(n, 16)` events, at least 100 000 — the one
/// formula [`Scenario::majority`], [`Scenario::plurality`] and
/// `MonteCarlo`'s configurable `max_events_factor` derive from.
pub fn majority_budget(n: u64, events_per_individual: u64) -> u64 {
    events_per_individual.saturating_mul(n.max(16)).max(100_000)
}

/// Default event budget for [`Scenario::majority`] and
/// [`Scenario::plurality`]: [`majority_budget`]`(n, 200)`, generous relative
/// to the `O(n)` consensus time of Theorem 13.
pub fn default_majority_budget(n: u64) -> u64 {
    majority_budget(n, 200)
}

impl Scenario {
    /// Creates a scenario with the given model and initial population.
    ///
    /// The default stop condition is consensus (at most one species alive;
    /// for two species this is the paper's "any species extinct"); no
    /// observers are attached.
    ///
    /// # Panics
    ///
    /// Panics if the initial population's species count differs from the
    /// model's.
    pub fn new(model: impl Into<ScenarioModel>, initial: impl Into<Population>) -> Self {
        let model = model.into();
        let initial = initial.into();
        assert_eq!(
            initial.species_count(),
            model.species_count(),
            "initial population must have one count per model species"
        );
        Scenario {
            model,
            initial,
            stop: StopCondition::consensus(),
            observers: Vec::new(),
            tau: 1e-3,
            ode_step: 0.5,
            ode_horizon: 1_000.0,
            crn: OnceLock::new(),
        }
    }

    /// The cached CRN form of the model (network + reaction → event map),
    /// built on first use.
    ///
    /// # Panics
    ///
    /// Panics if every rate of the model is zero (no reaction network
    /// exists); such a model cannot be simulated by any CRN backend.
    pub(crate) fn crn_form(&self) -> Arc<CrnForm> {
        Arc::clone(self.crn.get_or_init(|| {
            let multi = self.model.to_multi();
            let network = multi
                .to_reaction_network()
                .expect("a model with at least one positive rate has a valid network");
            let events = multi.reaction_events();
            debug_assert_eq!(events.len(), network.reaction_count());
            Arc::new(CrnForm { network, events })
        }))
    }

    /// The standard majority-consensus scenario from `(a, b)`: run until one
    /// species is extinct (with the default event budget of
    /// [`default_majority_budget`]), observing event counts, the noise
    /// decomposition and the maximum population — everything
    /// [`RunReport::to_majority_outcome`](crate::RunReport::to_majority_outcome)
    /// needs.
    pub fn majority(model: LvModel, a: u64, b: u64) -> Self {
        // The two-species special case of the plurality scenario: for k = 2,
        // "at most one species alive" is exactly "any species extinct".
        Scenario::plurality(model, (a, b))
    }

    /// The `k`-species plurality-consensus scenario: run until at most one
    /// species is alive (with the default event budget), observing
    /// everything
    /// [`RunReport::to_plurality_outcome`](crate::RunReport::to_plurality_outcome)
    /// uses — the `k`-species generalisation of [`Scenario::majority`].
    pub fn plurality(model: impl Into<ScenarioModel>, initial: impl Into<Population>) -> Self {
        let scenario = Scenario::new(model, initial);
        let budget = default_majority_budget(scenario.initial.total());
        scenario
            .with_stop(StopCondition::consensus().with_max_events(budget))
            .observe(ObserverSpec::EventCounts)
            .observe(ObserverSpec::NoiseDecomposition)
            .observe(ObserverSpec::MaxPopulation)
    }

    /// Replaces the stop condition.
    pub fn with_stop(mut self, stop: StopCondition) -> Self {
        self.stop = stop;
        self
    }

    /// Adds an observer (duplicates are ignored).
    pub fn observe(mut self, spec: ObserverSpec) -> Self {
        if !self.observers.contains(&spec) {
            self.observers.push(spec);
        }
        self
    }

    /// Sets the leap length used by the tau-leaping backend.
    ///
    /// # Panics
    ///
    /// Panics if `tau` is not a positive finite number.
    pub fn with_tau(mut self, tau: f64) -> Self {
        assert!(tau.is_finite() && tau > 0.0, "tau must be positive");
        self.tau = tau;
        self
    }

    /// Sets the *maximum* integration step of the ODE backend (the backend
    /// adapts its step to the local dynamics below this cap).
    ///
    /// # Panics
    ///
    /// Panics if `step` is not a positive finite number.
    pub fn with_ode_step(mut self, step: f64) -> Self {
        assert!(step.is_finite() && step > 0.0, "step must be positive");
        self.ode_step = step;
        self
    }

    /// Sets the ODE backend's fallback time horizon, used when the stop
    /// condition carries no `max_time` budget.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is not a positive finite number.
    pub fn with_ode_horizon(mut self, horizon: f64) -> Self {
        assert!(
            horizon.is_finite() && horizon > 0.0,
            "horizon must be positive"
        );
        self.ode_horizon = horizon;
        self
    }

    /// The model to simulate.
    pub fn model(&self) -> &ScenarioModel {
        &self.model
    }

    /// Number of species in the scenario.
    pub fn species_count(&self) -> usize {
        self.model.species_count()
    }

    /// The initial population.
    pub fn initial(&self) -> &Population {
        &self.initial
    }

    /// The stop condition.
    pub fn stop(&self) -> &StopCondition {
        &self.stop
    }

    /// The attached observer specs.
    pub fn observers(&self) -> &[ObserverSpec] {
        &self.observers
    }

    /// The tau-leaping leap length.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// The ODE maximum integration step.
    pub fn ode_step(&self) -> f64 {
        self.ode_step
    }

    /// The ODE fallback horizon.
    pub fn ode_horizon(&self) -> f64 {
        self.ode_horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_lotka::CompetitionKind;

    #[test]
    fn majority_scenario_attaches_the_derived_view_observers() {
        let scenario = Scenario::majority(LvModel::default(), 60, 40);
        assert_eq!(scenario.initial().counts(), &[60, 40]);
        assert_eq!(scenario.species_count(), 2);
        assert_eq!(scenario.observers().len(), 3);
        assert_eq!(scenario.stop().max_events(), Some(100_000));
        assert!(scenario.model().as_two_species().is_some());
    }

    #[test]
    fn plurality_scenario_covers_k_species() {
        let model = MultiLvModel::symmetric(CompetitionKind::SelfDestructive, 4, 1.0, 1.0, 1.0);
        let scenario = Scenario::plurality(model, vec![40, 20, 20, 20]);
        assert_eq!(scenario.species_count(), 4);
        assert_eq!(scenario.initial().counts(), &[40, 20, 20, 20]);
        assert_eq!(scenario.observers().len(), 3);
        assert_eq!(scenario.stop().max_events(), Some(100_000));
        assert!(scenario.model().as_multi_species().is_some());
        assert!(scenario.model().as_two_species().is_none());
    }

    #[test]
    fn crn_form_of_an_embedded_model_matches_the_two_species_network() {
        let model = LvModel::default();
        let scenario = Scenario::new(model, (10, 10));
        let form = scenario.crn_form();
        assert_eq!(&form.network, &model.to_reaction_network().unwrap());
        assert_eq!(form.events.len(), form.network.reaction_count());
    }

    #[test]
    fn observe_deduplicates() {
        let scenario = Scenario::new(LvModel::default(), (10, 10))
            .observe(ObserverSpec::GapTrajectory)
            .observe(ObserverSpec::GapTrajectory);
        assert_eq!(scenario.observers(), &[ObserverSpec::GapTrajectory]);
    }

    #[test]
    fn budget_grows_with_population() {
        assert_eq!(default_majority_budget(0), 100_000);
        assert_eq!(default_majority_budget(1_000), 200_000);
    }

    #[test]
    #[should_panic(expected = "tau must be positive")]
    fn invalid_tau_is_rejected() {
        let _ = Scenario::new(LvModel::default(), (1, 1)).with_tau(0.0);
    }

    #[test]
    #[should_panic(expected = "one count per model species")]
    fn mismatched_initial_dimension_is_rejected() {
        let model = MultiLvModel::symmetric(CompetitionKind::SelfDestructive, 3, 1.0, 1.0, 1.0);
        let _ = Scenario::new(model, (10, 10));
    }
}
