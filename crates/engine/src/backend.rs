//! The [`Backend`] trait and the shared run driver every backend uses.

use crate::observer::{Observer, ObserverSpec, StepRecord};
use crate::report::RunReport;
use crate::scenario::Scenario;
use lv_crn::{State, StopReason};
use lv_lotka::{LvConfiguration, LvEvent, SpeciesIndex};
use rand::rngs::StdRng;

/// A pluggable execution engine for [`Scenario`]s.
///
/// The trait is object-safe so backends can live behind the string-keyed
/// [`registry`](crate::BackendRegistry) and be selected at runtime (CLI
/// flags, bench parameters, config files). All stochastic backends draw
/// every random decision from the `rng` argument, so a fixed seed fully
/// determines a run.
pub trait Backend: Send + Sync {
    /// The canonical registry name (kebab-case, e.g. `"jump-chain"`).
    fn name(&self) -> &'static str;

    /// Alternative registry names accepted by lookup.
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }

    /// One-line human description shown by CLI listings.
    fn description(&self) -> &'static str;

    /// Whether this backend ignores the RNG (same scenario, same report,
    /// every run). Batch runners use this to execute deterministic backends
    /// once instead of once per trial.
    fn deterministic(&self) -> bool {
        false
    }

    /// Executes the scenario to completion.
    ///
    /// The deterministic ODE backend accepts the RNG for interface uniformity
    /// and ignores it.
    fn run(&self, scenario: &Scenario, rng: &mut StdRng) -> RunReport;
}

/// Shared driver state: stop-condition evaluation, observer dispatch and
/// report assembly. Backends own the stepping; everything else lives here so
/// all five backends honor a scenario identically.
pub(crate) struct Driver<'a> {
    scenario: &'a Scenario,
    observers: Vec<(ObserverSpec, Box<dyn Observer>)>,
    /// Two-species scratch state kept in sync with `state` so the CRN
    /// [`StopCondition`](lv_crn::StopCondition) can be evaluated without
    /// per-step allocation.
    scratch: State,
    state: LvConfiguration,
    events: u64,
    steps: u64,
    time: f64,
}

impl<'a> Driver<'a> {
    pub(crate) fn new(scenario: &'a Scenario) -> Self {
        let initial = scenario.initial();
        let mut observers: Vec<(ObserverSpec, Box<dyn Observer>)> = scenario
            .observers()
            .iter()
            .map(|spec| (*spec, spec.build()))
            .collect();
        for (_, observer) in &mut observers {
            observer.on_start(initial);
        }
        let (x0, x1) = initial.counts();
        Driver {
            scenario,
            observers,
            scratch: State::from(vec![x0, x1]),
            state: initial,
            events: 0,
            steps: 0,
            time: 0.0,
        }
    }

    /// Reaction firings so far.
    pub(crate) fn events(&self) -> u64 {
        self.events
    }

    /// Driver steps so far (leaps/integration steps for aggregating
    /// backends).
    pub(crate) fn steps(&self) -> u64 {
        self.steps
    }

    /// Checks the scenario's stop condition and budgets, in the same order
    /// as `StochasticSimulator::run_with_observer`: state condition first,
    /// then the event budget, then the time budget.
    pub(crate) fn check_stop(&self) -> Option<StopReason> {
        let stop = self.scenario.stop();
        if stop.is_met(&self.scratch) {
            return Some(StopReason::ConditionMet);
        }
        if let Some(max_events) = stop.max_events() {
            if self.events >= max_events {
                return Some(StopReason::MaxEventsReached);
            }
        }
        if let Some(max_time) = stop.max_time() {
            if self.time >= max_time {
                return Some(StopReason::MaxTimeReached);
            }
        }
        None
    }

    /// Records one completed step: advances the clocks, updates the tracked
    /// state and notifies every observer.
    pub(crate) fn record(
        &mut self,
        event: Option<LvEvent>,
        after: LvConfiguration,
        time: f64,
        firings: u64,
    ) {
        let record = StepRecord {
            event,
            before: self.state,
            after,
            time,
            firings,
        };
        for (_, observer) in &mut self.observers {
            observer.on_step(&record);
        }
        self.state = after;
        let (x0, x1) = after.counts();
        self.scratch.set_count(lv_crn::SpeciesId::new(0), x0);
        self.scratch.set_count(lv_crn::SpeciesId::new(1), x1);
        self.events += firings;
        self.steps += 1;
        self.time = time;
    }

    /// Finalizes every observer and assembles the report.
    pub(crate) fn finish(mut self, backend: &'static str, reason: StopReason) -> RunReport {
        let observations = self
            .observers
            .iter_mut()
            .map(|(spec, observer)| (*spec, observer.finish()))
            .collect();
        RunReport::new(
            backend,
            self.scenario.initial(),
            self.state,
            reason,
            self.events,
            self.steps,
            self.time,
            observations,
        )
    }
}

/// The reaction-index → [`LvEvent`] map for the network built by
/// [`LvModel::to_reaction_network`](lv_lotka::LvModel::to_reaction_network),
/// which adds (per species, in order) birth, death, interspecific and
/// intraspecific reactions, skipping those with rate zero.
pub(crate) fn reaction_event_map(model: &lv_lotka::LvModel) -> Vec<LvEvent> {
    let rates = model.rates();
    let mut map = Vec::with_capacity(8);
    for species in [SpeciesIndex::Zero, SpeciesIndex::One] {
        if rates.beta > 0.0 {
            map.push(LvEvent::Birth(species));
        }
        if rates.delta > 0.0 {
            map.push(LvEvent::Death(species));
        }
        if rates.alpha[species.index()] > 0.0 {
            map.push(LvEvent::Interspecific { attacker: species });
        }
        if rates.gamma[species.index()] > 0.0 {
            map.push(LvEvent::Intraspecific(species));
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_lotka::{CompetitionKind, LvModel};

    #[test]
    fn event_map_matches_network_reaction_order() {
        let model =
            LvModel::with_intraspecific(CompetitionKind::SelfDestructive, 1.0, 0.5, 2.0, 1.0);
        let network = model.to_reaction_network().unwrap();
        let map = reaction_event_map(&model);
        assert_eq!(map.len(), network.reaction_count());
        // Spot-check against the names lv-lotka assigns.
        for (event, reaction) in map.iter().zip(network.reactions()) {
            let name = reaction.name().expect("lv-lotka names every reaction");
            let expected = match event {
                LvEvent::Birth(_) => "birth",
                LvEvent::Death(_) => "death",
                LvEvent::Interspecific { .. } => "interspecific",
                LvEvent::Intraspecific(_) => "intraspecific",
            };
            assert!(
                name.starts_with(expected),
                "event {event:?} mapped to reaction {name}"
            );
        }
    }

    #[test]
    fn event_map_skips_zero_rate_reactions() {
        let model = LvModel::no_competition(1.0, 1.0);
        let map = reaction_event_map(&model);
        assert_eq!(
            map,
            vec![
                LvEvent::Birth(SpeciesIndex::Zero),
                LvEvent::Death(SpeciesIndex::Zero),
                LvEvent::Birth(SpeciesIndex::One),
                LvEvent::Death(SpeciesIndex::One),
            ]
        );
    }
}
