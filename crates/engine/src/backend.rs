//! The [`Backend`] trait and the shared run driver every backend uses.

use crate::observer::{Observer, ObserverSpec, StepRecord};
use crate::report::RunReport;
use crate::scenario::Scenario;
use lv_crn::{State, StopReason};
use lv_lotka::{Population, PopulationEvent};
use rand::rngs::StdRng;

/// A pluggable execution engine for [`Scenario`]s.
///
/// The trait is object-safe so backends can live behind the string-keyed
/// [`registry`](crate::BackendRegistry) and be selected at runtime (CLI
/// flags, bench parameters, config files). All stochastic backends draw
/// every random decision from the `rng` argument, so a fixed seed fully
/// determines a run.
pub trait Backend: Send + Sync {
    /// The canonical registry name (kebab-case, e.g. `"jump-chain"`).
    fn name(&self) -> &'static str;

    /// Alternative registry names accepted by lookup.
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }

    /// One-line human description shown by CLI listings.
    fn description(&self) -> &'static str;

    /// Whether this backend ignores the RNG (same scenario, same report,
    /// every run). Batch runners use this to execute deterministic backends
    /// once instead of once per trial.
    fn deterministic(&self) -> bool {
        false
    }

    /// Whether this backend can run scenarios over `species` species. The
    /// five Lotka–Volterra backends support any `k ≥ 2`; protocol baselines
    /// like `"approx-majority"` are two-opinion only.
    fn supports_species(&self, species: usize) -> bool {
        species >= 2
    }

    /// Whether this backend simulates the scenario's kinetic *model*.
    /// Protocol-baseline backends use only the initial configuration and
    /// the stop budgets; model-sensitive comparisons should skip them.
    fn models_kinetics(&self) -> bool {
        true
    }

    /// Whether this backend executes in count-based *batches* (epochs of
    /// `Θ(√n)` collision-free interactions applied as count deltas) rather
    /// than resolving every event individually. Batched backends agree with
    /// their per-event counterparts *statistically* — equal outcome
    /// distributions — but not bit-for-bit: the RNG stream differs, steps
    /// aggregate many firings (`StepRecord::firings > 1`, `event = None`),
    /// and absorption is detected at epoch granularity. Registries report
    /// this flag so callers can pick bit-exact legacy execution (e.g.
    /// `"approx-majority-agents"`) when they need it.
    fn batched(&self) -> bool {
        false
    }

    /// Executes the scenario to completion.
    ///
    /// The deterministic ODE backend accepts the RNG for interface uniformity
    /// and ignores it.
    fn run(&self, scenario: &Scenario, rng: &mut StdRng) -> RunReport;
}

/// Shared driver state: stop-condition evaluation, observer dispatch and
/// report assembly. Backends own the stepping; everything else lives here so
/// every backend honors a scenario identically.
pub(crate) struct Driver<'a> {
    scenario: &'a Scenario,
    observers: Vec<(ObserverSpec, Box<dyn Observer>)>,
    /// Scratch state kept in sync with `state` so the CRN
    /// [`StopCondition`](lv_crn::StopCondition) can be evaluated without
    /// per-step allocation.
    scratch: State,
    /// Current counts, one per species.
    state: Vec<u64>,
    /// Staging buffer for the after-step counts (swapped with `state` after
    /// observers run, so recording never allocates).
    staging: Vec<u64>,
    events: u64,
    steps: u64,
    time: f64,
}

impl<'a> Driver<'a> {
    pub(crate) fn new(scenario: &'a Scenario) -> Self {
        let initial = scenario.initial();
        let mut observers: Vec<(ObserverSpec, Box<dyn Observer>)> = scenario
            .observers()
            .iter()
            .map(|spec| (*spec, spec.build()))
            .collect();
        for (_, observer) in &mut observers {
            observer.on_start(initial);
        }
        let counts = initial.counts().to_vec();
        Driver {
            scenario,
            observers,
            scratch: State::from(initial.counts()),
            staging: counts.clone(),
            state: counts,
            events: 0,
            steps: 0,
            time: 0.0,
        }
    }

    /// Reaction firings so far.
    pub(crate) fn events(&self) -> u64 {
        self.events
    }

    /// Driver steps so far (leaps/integration steps for aggregating
    /// backends).
    pub(crate) fn steps(&self) -> u64 {
        self.steps
    }

    /// Checks the scenario's stop condition and budgets, in the same order
    /// as `StochasticSimulator::run_with_observer`: state condition first,
    /// then the event budget, then the time budget.
    pub(crate) fn check_stop(&self) -> Option<StopReason> {
        let stop = self.scenario.stop();
        if stop.is_met(&self.scratch) {
            return Some(StopReason::ConditionMet);
        }
        if let Some(max_events) = stop.max_events() {
            if self.events >= max_events {
                return Some(StopReason::MaxEventsReached);
            }
        }
        if let Some(max_time) = stop.max_time() {
            if self.time >= max_time {
                return Some(StopReason::MaxTimeReached);
            }
        }
        None
    }

    /// Records one completed step: advances the clocks, updates the tracked
    /// state and notifies every observer.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `after` has the wrong species count.
    pub(crate) fn record(
        &mut self,
        event: Option<PopulationEvent>,
        after: &[u64],
        time: f64,
        firings: u64,
    ) {
        debug_assert_eq!(after.len(), self.state.len());
        self.staging.copy_from_slice(after);
        let record = StepRecord {
            event,
            before: &self.state,
            after: &self.staging,
            time,
            firings,
        };
        for (_, observer) in &mut self.observers {
            observer.on_step(&record);
        }
        std::mem::swap(&mut self.state, &mut self.staging);
        for (index, &count) in self.state.iter().enumerate() {
            self.scratch.set_count(lv_crn::SpeciesId::new(index), count);
        }
        self.events += firings;
        self.steps += 1;
        self.time = time;
    }

    /// Finalizes every observer and assembles the report.
    pub(crate) fn finish(mut self, backend: &'static str, reason: StopReason) -> RunReport {
        let observations = self
            .observers
            .iter_mut()
            .map(|(spec, observer)| (*spec, observer.finish()))
            .collect();
        RunReport::new(
            backend,
            self.scenario.initial().clone(),
            Population::new(self.state),
            reason,
            self.events,
            self.steps,
            self.time,
            observations,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_lotka::{CompetitionKind, LvModel, MultiLvModel};

    #[test]
    fn scenario_crn_form_event_map_matches_network_reaction_order() {
        let model =
            LvModel::with_intraspecific(CompetitionKind::SelfDestructive, 1.0, 0.5, 2.0, 1.0);
        let scenario = Scenario::new(model, (5, 5));
        let crn = scenario.crn_form();
        assert_eq!(crn.events.len(), crn.network.reaction_count());
        // Spot-check against the names lv-lotka assigns.
        for (event, reaction) in crn.events.iter().zip(crn.network.reactions()) {
            let name = reaction.name().expect("lv-lotka names every reaction");
            let expected = match event {
                PopulationEvent::Birth(_) => "birth",
                PopulationEvent::Death(_) => "death",
                PopulationEvent::Interspecific { .. } => "interspecific",
                PopulationEvent::Intraspecific(_) => "intraspecific",
            };
            assert!(
                name.starts_with(expected),
                "event {event:?} mapped to reaction {name}"
            );
        }
    }

    #[test]
    fn driver_tracks_multi_species_state_and_stops_at_consensus() {
        let model = MultiLvModel::symmetric(CompetitionKind::SelfDestructive, 3, 1.0, 1.0, 1.0);
        let scenario = Scenario::plurality(model, vec![4, 2, 0]);
        let mut driver = Driver::new(&scenario);
        // Not yet consensus: two species alive.
        assert_eq!(driver.check_stop(), None);
        driver.record(
            Some(PopulationEvent::Interspecific {
                attacker: 0,
                victim: 1,
            }),
            &[3, 1, 0],
            1.0,
            1,
        );
        assert_eq!(driver.check_stop(), None);
        driver.record(
            Some(PopulationEvent::Interspecific {
                attacker: 0,
                victim: 1,
            }),
            &[2, 0, 0],
            2.0,
            1,
        );
        assert_eq!(driver.check_stop(), Some(StopReason::ConditionMet));
        assert_eq!(driver.events(), 2);
        assert_eq!(driver.steps(), 2);
        let report = driver.finish("test", StopReason::ConditionMet);
        assert_eq!(report.final_state.counts(), &[2, 0, 0]);
        assert_eq!(report.final_state.winner(), Some(0));
    }
}
