//! Protocol baselines as backends: population protocols behind the same
//! [`Backend`] interface as the Lotka–Volterra kernels, so protocol-vs-LV
//! comparisons (E11, E15/E16 threshold sweeps) run through one registry and
//! one Monte-Carlo harness.
//!
//! Five protocol baselines are built in:
//!
//! * [`ApproxMajorityBackend`] — the 3-state approximate-majority protocol
//!   of Angluin–Aspnes–Eisenstat (`"approx-majority"`);
//! * [`ExactMajorityBackend`] — the 4-state exact-majority protocol of
//!   Draief–Vojnović / Mertzios et al. (`"exact-majority"`): always correct
//!   for any non-zero gap, at `Θ(n²)` expected interactions;
//! * [`CzyzowiczLvBackend`] — the two-state discrete Lotka–Volterra
//!   dynamics of Czyzowicz et al. (`"czyzowicz-lv"`): the proportional law
//!   `P(majority wins) = a/n`, so high-probability consensus needs a
//!   *linear* gap;
//! * [`AnnihilationLvBackend`] — the *self-destructive* discrete LV
//!   dynamics (`"annihilation-lv"`): a competitive encounter destroys both
//!   participants, the gap is invariant, and any non-zero gap decides
//!   correctly in `Θ(n log n)` interactions;
//! * [`CzyzowiczKBackend`] — the `k`-opinion Czyzowicz conversion dynamics
//!   (`"czyzowicz-lv-k"`), the `k`-species protocol baseline over
//!   [`Population`](lv_lotka::Population) counts.
//!
//! # Batched vs agent-list execution
//!
//! The default protocol backends execute **count-based and batched**
//! ([`lv_protocols::CountedSimulation`]): an epoch samples a collision-free
//! batch of `Θ(√n)` interactions from the birthday-bound distribution,
//! applies the transitions as count deltas via hypergeometric splits, and
//! resolves the one colliding interaction exactly. Epochs are equal *in
//! distribution* to the same number of per-interaction steps, but consume a
//! different RNG stream and report aggregated [`StepRecord`]s
//! (`event = None`, `firings = epoch length` — the same vocabulary as
//! tau-leaping), so agreement with the agent-list stepper is statistical,
//! not bit-exact. Absorption — no schedulable pair can change any state —
//! is detected by an `O(#states²)` count check at epoch boundaries, which
//! subsumes the per-protocol monitors (committed consensus, exhausted
//! strong tokens) of the agent-list path.
//!
//! The legacy agent-list backends are kept and registered under `-agents`
//! names ([`ApproxMajorityAgentsBackend`], [`ExactMajorityAgentsBackend`],
//! [`CzyzowiczLvAgentsBackend`]) for bit-exact runs against hand-driven
//! [`ProtocolSimulation`] loops; [`Backend::batched`] reports which
//! execution mode a backend uses.
//!
//! [`StepRecord`]: crate::StepRecord

use crate::backend::{Backend, Driver};
use crate::report::RunReport;
use crate::scenario::Scenario;
use lv_crn::StopReason;
use lv_lotka::PopulationEvent;
use lv_protocols::{
    ApproximateMajority, BridgeStep, BridgedConversionWalk, CountedDynamics, CountedSimulation,
    CzyzowiczLvProtocol, ExactMajority4State, FourState, Interaction, Opinion, PopulationProtocol,
    ProtocolSimulation, SelfDestructiveLvProtocol,
};
use rand::rngs::StdRng;

/// Populations below this size are single-stepped even by the batched
/// backends: birthday-bound batches hold only a handful of interactions
/// there (`E[ℓ] = Θ(√n)`), so the epoch set-up cost is not amortised — the
/// regime "near absorption" where batches degenerate.
const BATCH_MIN_POPULATION: u64 = 64;

/// Protocol-specific absorption bookkeeping for the generic agent-list
/// stepper: decides when the configuration is *absorbed* (no future
/// interaction can change any agent's state), optionally maintaining
/// incremental state from the observed interactions.
///
/// Without this exit, an unsatisfiable stop condition with no budget would
/// spin forever on inert interactions — the LV backends escape the same
/// situation through their zero-propensity absorption check. (The counted
/// path needs no monitors: it checks pair inertness over the counts in
/// `O(#states²)`.)
trait ProtocolMonitor<P: PopulationProtocol> {
    /// Whether the current configuration is absorbed.
    fn absorbed(&self, sim: &ProtocolSimulation<P>) -> bool;

    /// Observes one applied interaction (for incremental bookkeeping).
    fn observe(&mut self, _interaction: &Interaction<P::State>) {}
}

/// Absorption by committed consensus: every agent outputs the same opinion.
/// Correct for protocols where any mixed-output configuration can still
/// react (approximate majority, the two-state Czyzowicz dynamics). O(1) via
/// the incrementally maintained committed counts.
struct CommittedConsensus;

impl<P: PopulationProtocol> ProtocolMonitor<P> for CommittedConsensus {
    fn absorbed(&self, sim: &ProtocolSimulation<P>) -> bool {
        let (a, b) = sim.opinion_counts();
        a + b == sim.population() && (a == 0 || b == 0)
    }
}

/// Absorption for the 4-state exact-majority protocol: every transition
/// needs a strong (token-carrying) agent, so the chain is absorbed once the
/// strong tokens are exhausted (possible only from a tied start, since the
/// strong-A/strong-B difference is invariant) or once one opinion has died
/// out. The strong count is maintained in O(1) from the interactions —
/// cancellation `(StrongA, StrongB) → (WeakA, WeakB)` is the only
/// strong-consuming transition.
struct StrongTokens {
    strongs: u64,
}

impl ProtocolMonitor<ExactMajority4State> for StrongTokens {
    fn absorbed(&self, sim: &ProtocolSimulation<ExactMajority4State>) -> bool {
        let (a, b) = sim.opinion_counts();
        self.strongs == 0 || a == 0 || b == 0
    }

    fn observe(&mut self, interaction: &Interaction<FourState>) {
        if matches!(
            (interaction.initiator_before, interaction.responder_before),
            (FourState::StrongA, FourState::StrongB) | (FourState::StrongB, FourState::StrongA)
        ) {
            self.strongs -= 2;
        }
    }
}

/// Runs any two-opinion [`PopulationProtocol`] as an execution backend with
/// the legacy *agent-list* stepper: the scenario's initial configuration
/// `(a, b)` seeds `a` agents with opinion A and `b` with opinion B, each
/// pairwise interaction counts as one event, and the reported state is the
/// pair of *committed* counts `(#output A, #output B)` read through
/// `PopulationProtocol::output` (undecided agents are internal). The model's
/// rates are ignored ([`Backend::models_kinetics`] is `false` on all
/// protocol backends).
fn run_two_opinion_protocol<P, M>(
    protocol: &P,
    name: &'static str,
    scenario: &Scenario,
    rng: &mut StdRng,
    mut monitor: M,
) -> RunReport
where
    P: PopulationProtocol,
    M: ProtocolMonitor<P>,
{
    assert_eq!(
        scenario.species_count(),
        2,
        "the {name} backend runs two-species scenarios only"
    );
    let initial = scenario.initial();
    let (a, b) = (initial.count(0), initial.count(1));
    let mut driver = Driver::new(scenario);
    // Degenerate starts must stop before the first interaction, like every
    // other backend.
    if let Some(reason) = driver.check_stop() {
        return driver.finish(name, reason);
    }
    // The pairwise scheduler cannot run on fewer than two agents: no
    // interaction can ever fire, which is an absorbed state in every
    // backend's vocabulary.
    if a + b < 2 {
        return driver.finish(name, StopReason::Absorbed);
    }
    let mut sim = ProtocolSimulation::new(protocol, a, b);
    loop {
        if let Some(reason) = driver.check_stop() {
            return driver.finish(name, reason);
        }
        if monitor.absorbed(&sim) {
            return driver.finish(name, StopReason::Absorbed);
        }
        let interaction = sim.step(rng);
        monitor.observe(&interaction);
        let (after_a, after_b) = sim.opinion_counts();
        // Classify the interaction for the observers by the agents' output
        // transitions. Protocol rules may change either agent — the
        // exact-majority strong-recruits-weak rule flips the *initiator*
        // when the weak agent is scheduled first — so both sides are
        // considered (at most one output changes in the built-in protocols).
        let event = classify(
            protocol.output(interaction.initiator_before).map(species),
            protocol.output(interaction.initiator_after).map(species),
            protocol.output(interaction.responder_before).map(species),
            protocol.output(interaction.responder_after).map(species),
        );
        driver.record(event, &[after_a, after_b], sim.interactions() as f64, 1);
    }
}

/// Runs compiled [`CountedDynamics`] as an execution backend: count-based
/// state, batched epochs above [`BATCH_MIN_POPULATION`] agents, exact
/// single-stepping below it and whenever a sampled epoch would overrun the
/// event budget. Single steps report classified per-event records exactly
/// like the agent-list path; epochs report one aggregated record
/// (`event = None`, `firings` = epoch length).
fn run_counted(
    dynamics: &CountedDynamics,
    name: &'static str,
    scenario: &Scenario,
    rng: &mut StdRng,
) -> RunReport {
    assert_eq!(
        scenario.species_count(),
        dynamics.species_count(),
        "the {name} backend cannot run {}-species scenarios",
        scenario.species_count()
    );
    let mut driver = Driver::new(scenario);
    if let Some(reason) = driver.check_stop() {
        return driver.finish(name, reason);
    }
    let initial = scenario.initial();
    if initial.total() < 2 {
        return driver.finish(name, StopReason::Absorbed);
    }
    let mut sim = CountedSimulation::new(dynamics, initial.counts());
    let mut opinions = vec![0u64; dynamics.species_count()];
    loop {
        if let Some(reason) = driver.check_stop() {
            return driver.finish(name, reason);
        }
        if sim.is_absorbed() {
            return driver.finish(name, StopReason::Absorbed);
        }
        // check_stop just passed, so the budget has at least one event left.
        let mut remaining = scenario
            .stop()
            .max_events()
            .map_or(u64::MAX, |max| max - driver.events());
        if let Some(max_time) = scenario.stop().max_time() {
            // The protocol clock *is* the interaction count, so a time
            // budget is an interaction budget: the smallest number of
            // further interactions m with interactions + m ≥ max_time.
            let more = (max_time - sim.interactions() as f64).ceil().max(1.0);
            if more < u64::MAX as f64 {
                remaining = remaining.min(more as u64);
            }
        }
        if sim.total() >= BATCH_MIN_POPULATION {
            if let Some(fired) = sim.step_epoch(rng, remaining) {
                sim.opinion_counts_into(&mut opinions);
                driver.record(None, &opinions, sim.interactions() as f64, fired);
                continue;
            }
            // The sampled epoch would overrun the event budget; the run ends
            // within `remaining` interactions either way, so finish it one
            // exact interaction at a time (no bias in the truncated prefix).
        }
        let interaction = sim.step(rng);
        sim.opinion_counts_into(&mut opinions);
        let event = classify(
            dynamics.output(interaction.initiator_before),
            dynamics.output(interaction.initiator_after),
            dynamics.output(interaction.responder_before),
            dynamics.output(interaction.responder_after),
        );
        driver.record(event, &opinions, sim.interactions() as f64, 1);
    }
}

/// Runs the conversion dynamics through the diffusion-bridged count walk of
/// [`BridgedConversionWalk`]: large blocks of conversions advanced as
/// binomial bridges away from the boundaries (reported as aggregated
/// records, `event = None`, `firings` = block interactions), exact
/// geometric-plus-conversion steps inside the boundary band (classified as
/// competitive attacks when they resolve a single interaction), and exact
/// budget truncation — an inert stretch cut at the budget freezes the
/// counts, so `max_events` is honored to the interaction, exactly like the
/// epoch refusal of [`run_counted`].
fn run_bridged(name: &'static str, scenario: &Scenario, rng: &mut StdRng) -> RunReport {
    let mut driver = Driver::new(scenario);
    if let Some(reason) = driver.check_stop() {
        return driver.finish(name, reason);
    }
    let initial = scenario.initial();
    if initial.total() < 2 {
        return driver.finish(name, StopReason::Absorbed);
    }
    let mut walk = BridgedConversionWalk::new(initial.counts());
    loop {
        if let Some(reason) = driver.check_stop() {
            return driver.finish(name, reason);
        }
        if walk.is_absorbed() {
            return driver.finish(name, StopReason::Absorbed);
        }
        // check_stop just passed, so the budget has at least one event left.
        let mut remaining = scenario
            .stop()
            .max_events()
            .map_or(u64::MAX, |max| max - driver.events());
        if let Some(max_time) = scenario.stop().max_time() {
            // The protocol clock *is* the interaction count (see
            // `run_counted`).
            let more = (max_time - walk.interactions() as f64).ceil().max(1.0);
            if more < u64::MAX as f64 {
                remaining = remaining.min(more as u64);
            }
        }
        let step = walk.advance(rng, remaining);
        let time = walk.interactions() as f64;
        let event = match step {
            BridgeStep::Exact {
                fired: 1,
                attacker,
                victim,
            } => Some(PopulationEvent::Interspecific { attacker, victim }),
            _ => None,
        };
        driver.record(event, walk.counts(), time, step.fired());
    }
}

fn species(opinion: Opinion) -> usize {
    match opinion {
        Opinion::A => 0,
        Opinion::B => 1,
    }
}

/// Maps one interaction onto the LV event vocabulary by output transitions
/// (species indices): cancellation and direct conversion are competitive
/// attacks, recruitment of an undecided agent is a birth, death of a
/// committed agent against a rival (the annihilation dynamics) is also a
/// competitive attack, anything else unclassified. Whichever agent's output
/// changed determines the class — the other agent is the attacker/recruiter
/// — so conversions count identically no matter which of the pair the
/// scheduler drew as initiator.
fn classify(
    initiator_before: Option<usize>,
    initiator_after: Option<usize>,
    responder_before: Option<usize>,
    responder_after: Option<usize>,
) -> Option<PopulationEvent> {
    if responder_before != responder_after {
        classify_transition(initiator_before, responder_before, responder_after)
    } else if initiator_before != initiator_after {
        classify_transition(responder_before, initiator_before, initiator_after)
    } else {
        None
    }
}

/// Classifies one agent's output transition given the unchanged `other`
/// agent of the pair.
fn classify_transition(
    other: Option<usize>,
    before: Option<usize>,
    after: Option<usize>,
) -> Option<PopulationEvent> {
    match (other, before, after) {
        // (X, Y) → (X, blank): X cancelled Y.
        (Some(attacker), Some(victim), None) if attacker != victim => {
            Some(PopulationEvent::Interspecific { attacker, victim })
        }
        // (X, blank) → (X, X): X recruited a blank.
        (Some(opinion), None, Some(recruited)) if opinion == recruited => {
            Some(PopulationEvent::Birth(opinion))
        }
        // (X, Y) → (X, X): X converted Y directly (Czyzowicz predation, the
        // exact-majority strong-recruits-weak rule).
        (Some(attacker), Some(victim), Some(converted))
            if attacker != victim && converted == attacker =>
        {
            Some(PopulationEvent::Interspecific { attacker, victim })
        }
        _ => None,
    }
}

/// The 3-state approximate-majority protocol of Angluin–Aspnes–Eisenstat as
/// an execution backend for *two-species* scenarios, in count-based batched
/// mode (see the [module docs](self)).
///
/// The backend is a baseline, not a Lotka–Volterra simulator: it reads only
/// the scenario's initial configuration `(a, b)` — `a` agents with opinion A,
/// `b` with opinion B — and its stop budgets; the model's rates are ignored
/// ([`Backend::models_kinetics`] is `false`). Each pairwise interaction
/// counts as one event, and the reported state is the pair of *committed*
/// counts `(#A, #B)` (blank agents are internal). A committed count hitting
/// zero is irrevocable — that opinion can never reappear — so the consensus
/// semantics of the two-species stop conditions carry over: the survivor is
/// the protocol's decision.
///
/// For bit-exact agreement with hand-driven [`ProtocolSimulation`] loops use
/// [`ApproxMajorityAgentsBackend`] (`"approx-majority-agents"`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ApproxMajorityBackend;

impl Backend for ApproxMajorityBackend {
    fn name(&self) -> &'static str {
        "approx-majority"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["am", "3-state"]
    }

    fn description(&self) -> &'static str {
        "3-state approximate-majority protocol baseline (two-species, batched counts)"
    }

    fn supports_species(&self, species: usize) -> bool {
        species == 2
    }

    fn models_kinetics(&self) -> bool {
        false
    }

    fn batched(&self) -> bool {
        true
    }

    fn run(&self, scenario: &Scenario, rng: &mut StdRng) -> RunReport {
        run_counted(
            &CountedDynamics::from_protocol(&ApproximateMajority::new()),
            self.name(),
            scenario,
            rng,
        )
    }
}

/// The legacy agent-list stepper behind `"approx-majority"`, registered as
/// `"approx-majority-agents"`: bit-identical to a hand-driven
/// [`ProtocolSimulation`] loop on the same RNG stream — the reference the
/// batched [`ApproxMajorityBackend`] is cross-validated against.
#[derive(Debug, Clone, Copy, Default)]
pub struct ApproxMajorityAgentsBackend;

impl Backend for ApproxMajorityAgentsBackend {
    fn name(&self) -> &'static str {
        "approx-majority-agents"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["am-agents"]
    }

    fn description(&self) -> &'static str {
        "3-state approximate-majority baseline, per-interaction agent list (bit-exact legacy)"
    }

    fn supports_species(&self, species: usize) -> bool {
        species == 2
    }

    fn models_kinetics(&self) -> bool {
        false
    }

    fn run(&self, scenario: &Scenario, rng: &mut StdRng) -> RunReport {
        run_two_opinion_protocol(
            &ApproximateMajority::new(),
            self.name(),
            scenario,
            rng,
            CommittedConsensus,
        )
    }
}

/// The 4-state exact-majority protocol of Draief–Vojnović / Mertzios et al.
/// as an execution backend for *two-species* scenarios, in count-based
/// batched mode.
///
/// The strong-token difference is invariant, so the protocol decides the
/// true initial majority for *any* non-zero gap — there is no threshold to
/// find — but pays `Θ(n²)` expected interactions when the gap is small
/// (Table 1, Section 2.2). Like every protocol baseline it ignores the
/// model's rates and reports committed opinion counts; a tied start can
/// exhaust its strong tokens and freeze in a mixed weak configuration,
/// which the count-level absorption check reports as an absorbed
/// (non-consensus) run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactMajorityBackend;

impl Backend for ExactMajorityBackend {
    fn name(&self) -> &'static str {
        "exact-majority"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["em", "4-state"]
    }

    fn description(&self) -> &'static str {
        "4-state exact-majority protocol baseline (always correct, ~n^2 interactions, batched)"
    }

    fn supports_species(&self, species: usize) -> bool {
        species == 2
    }

    fn models_kinetics(&self) -> bool {
        false
    }

    fn batched(&self) -> bool {
        true
    }

    fn run(&self, scenario: &Scenario, rng: &mut StdRng) -> RunReport {
        run_counted(
            &CountedDynamics::from_protocol(&ExactMajority4State::new()),
            self.name(),
            scenario,
            rng,
        )
    }
}

/// The legacy agent-list stepper behind `"exact-majority"`, registered as
/// `"exact-majority-agents"` (bit-exact, strong-token absorption monitor).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactMajorityAgentsBackend;

impl Backend for ExactMajorityAgentsBackend {
    fn name(&self) -> &'static str {
        "exact-majority-agents"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["em-agents"]
    }

    fn description(&self) -> &'static str {
        "4-state exact-majority baseline, per-interaction agent list (bit-exact legacy)"
    }

    fn supports_species(&self, species: usize) -> bool {
        species == 2
    }

    fn models_kinetics(&self) -> bool {
        false
    }

    fn run(&self, scenario: &Scenario, rng: &mut StdRng) -> RunReport {
        let initial = scenario.initial();
        let strongs = initial.count(0) + initial.count(1);
        run_two_opinion_protocol(
            &ExactMajority4State::new(),
            self.name(),
            scenario,
            rng,
            StrongTokens { strongs },
        )
    }
}

/// The two-state discrete Lotka–Volterra dynamics of Czyzowicz et al.
/// (`(A, B) → (A, A)`, `(B, A) → (B, B)`) as an execution backend for
/// *two-species* scenarios, in count-based batched mode.
///
/// On a static population these conversions are an unbiased random walk in
/// the count of A, so the majority wins with probability exactly `a/n` —
/// the proportional law — and high-probability majority consensus needs a
/// gap *linear* in `n`, the baseline E15/E16's threshold sweeps contrast
/// with the paper's polylogarithmic self-destructive threshold.
#[derive(Debug, Clone, Copy, Default)]
pub struct CzyzowiczLvBackend;

impl Backend for CzyzowiczLvBackend {
    fn name(&self) -> &'static str {
        "czyzowicz-lv"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["cz", "2-state-lv"]
    }

    fn description(&self) -> &'static str {
        "2-state Czyzowicz et al. discrete LV baseline (proportional law, linear gap, batched)"
    }

    fn supports_species(&self, species: usize) -> bool {
        species == 2
    }

    fn models_kinetics(&self) -> bool {
        false
    }

    fn batched(&self) -> bool {
        true
    }

    fn run(&self, scenario: &Scenario, rng: &mut StdRng) -> RunReport {
        run_counted(
            &CountedDynamics::from_protocol(&CzyzowiczLvProtocol::new()),
            self.name(),
            scenario,
            rng,
        )
    }
}

/// The legacy agent-list stepper behind `"czyzowicz-lv"`, registered as
/// `"czyzowicz-lv-agents"` (bit-exact).
#[derive(Debug, Clone, Copy, Default)]
pub struct CzyzowiczLvAgentsBackend;

impl Backend for CzyzowiczLvAgentsBackend {
    fn name(&self) -> &'static str {
        "czyzowicz-lv-agents"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["cz-agents"]
    }

    fn description(&self) -> &'static str {
        "2-state Czyzowicz et al. baseline, per-interaction agent list (bit-exact legacy)"
    }

    fn supports_species(&self, species: usize) -> bool {
        species == 2
    }

    fn models_kinetics(&self) -> bool {
        false
    }

    fn run(&self, scenario: &Scenario, rng: &mut StdRng) -> RunReport {
        run_two_opinion_protocol(
            &CzyzowiczLvProtocol::new(),
            self.name(),
            scenario,
            rng,
            CommittedConsensus,
        )
    }
}

/// The *self-destructive* discrete Lotka–Volterra dynamics
/// (`(A, B) → (∅, ∅)`) as an execution backend for *two-species* scenarios,
/// in count-based batched mode.
///
/// Pairwise annihilation preserves the signed gap `a − b`, so the initial
/// majority wins for **any** non-zero gap — the population-protocol
/// rendition of the paper's claim that self-destructive interference
/// collapses the consensus threshold — and consensus (the minority's
/// committed count reaching zero) takes only `Θ(n log n)` interactions,
/// which keeps threshold sweeps tractable at `n = 10⁷` under batching,
/// unlike the `Θ(n²)` conversion dynamics of `"czyzowicz-lv"`. Destroyed
/// agents have no output, so a tied start annihilates completely (both
/// committed counts reach zero — mutual extinction, exactly like the
/// continuous model's `δ = 0` cancellation).
#[derive(Debug, Clone, Copy, Default)]
pub struct AnnihilationLvBackend;

impl Backend for AnnihilationLvBackend {
    fn name(&self) -> &'static str {
        "annihilation-lv"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["sd-lv", "annihilation"]
    }

    fn description(&self) -> &'static str {
        "self-destructive discrete LV baseline (gap-invariant annihilation, batched)"
    }

    fn supports_species(&self, species: usize) -> bool {
        species == 2
    }

    fn models_kinetics(&self) -> bool {
        false
    }

    fn batched(&self) -> bool {
        true
    }

    fn run(&self, scenario: &Scenario, rng: &mut StdRng) -> RunReport {
        run_counted(
            &CountedDynamics::from_protocol(&SelfDestructiveLvProtocol::new()),
            self.name(),
            scenario,
            rng,
        )
    }
}

/// The `k`-opinion Czyzowicz conversion dynamics as an execution backend
/// for scenarios over **any** `k ≥ 2` species — the `k`-species protocol
/// baseline, running directly over [`Population`](lv_lotka::Population)
/// counts in count-based batched mode.
///
/// One state per opinion; an initiator of a different opinion converts the
/// responder. Each pairwise conversion between species `i` and `j` is an
/// unbiased step in their counts, so species `i` wins the plurality contest
/// with probability exactly `cᵢ/n` — the `k`-species proportional law — and
/// plurality-margin thresholds scale *linearly*, the `k`-species contrast
/// to the paper's self-destructive amplification (E15's plurality sweeps).
#[derive(Debug, Clone, Copy, Default)]
pub struct CzyzowiczKBackend;

impl Backend for CzyzowiczKBackend {
    fn name(&self) -> &'static str {
        "czyzowicz-lv-k"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["cz-k", "k-opinion-lv"]
    }

    fn description(&self) -> &'static str {
        "k-opinion Czyzowicz conversion dynamics (k-species proportional law, batched)"
    }

    fn models_kinetics(&self) -> bool {
        false
    }

    fn batched(&self) -> bool {
        true
    }

    fn run(&self, scenario: &Scenario, rng: &mut StdRng) -> RunReport {
        run_counted(
            &CountedDynamics::k_opinion_czyzowicz(scenario.species_count()),
            self.name(),
            scenario,
            rng,
        )
    }
}

/// The two-state Czyzowicz conversion dynamics executed by **diffusion-
/// bridged first-passage sampling** (`"czyzowicz-lv-bridged"`): the A-count
/// performs an unbiased ±1 walk on conversions, advanced in binomial-bridge
/// blocks away from the boundaries with a CLT-sampled interaction clock, and
/// stepped exactly (geometric inert stretch + fair-coin conversion) inside
/// the boundary-proximity band, so absorption is never approximated.
///
/// Agreement with `"czyzowicz-lv"` (counted) and `"czyzowicz-lv-agents"`
/// (agent list) is statistical — identical outcome laws, e.g. the exact
/// proportional law `P(A wins) = a/n`, on a different RNG stream — but
/// per-trial cost is `Õ(poly log n)` instead of the `Θ(n²)` interactions the
/// other execution modes must walk through, which is what pushes the
/// linear-gap-law sweeps of E16 to `n = 10⁷`. Both exact variants stay
/// registered for cross-validation.
#[derive(Debug, Clone, Copy, Default)]
pub struct CzyzowiczLvBridgedBackend;

impl Backend for CzyzowiczLvBridgedBackend {
    fn name(&self) -> &'static str {
        "czyzowicz-lv-bridged"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["cz-bridged"]
    }

    fn description(&self) -> &'static str {
        "2-state Czyzowicz baseline via diffusion-bridged first-passage sampling (polylog/trial)"
    }

    fn supports_species(&self, species: usize) -> bool {
        species == 2
    }

    fn models_kinetics(&self) -> bool {
        false
    }

    fn batched(&self) -> bool {
        true
    }

    fn run(&self, scenario: &Scenario, rng: &mut StdRng) -> RunReport {
        assert_eq!(
            scenario.species_count(),
            2,
            "the {} backend cannot run {}-species scenarios",
            self.name(),
            scenario.species_count()
        );
        run_bridged(self.name(), scenario, rng)
    }
}

/// The `k`-opinion Czyzowicz conversion dynamics executed by diffusion-
/// bridged first-passage sampling (`"czyzowicz-lv-k-bridged"`): the
/// `(k−1)`-dimensional count walk is bridged per unordered species pair
/// (multinomial split of each block's conversions at the block-start pair
/// intensities, then a fair-coin binomial bridge per pair) under a
/// per-species boundary band, so no opinion's extinction is ever
/// approximated. See [`CzyzowiczLvBridgedBackend`] for the two-species
/// contract; `"czyzowicz-lv-k"` stays registered for cross-validation.
#[derive(Debug, Clone, Copy, Default)]
pub struct CzyzowiczKBridgedBackend;

impl Backend for CzyzowiczKBridgedBackend {
    fn name(&self) -> &'static str {
        "czyzowicz-lv-k-bridged"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["cz-k-bridged"]
    }

    fn description(&self) -> &'static str {
        "k-opinion Czyzowicz dynamics via per-pair diffusion bridging (polylog/trial)"
    }

    fn models_kinetics(&self) -> bool {
        false
    }

    fn batched(&self) -> bool {
        true
    }

    fn run(&self, scenario: &Scenario, rng: &mut StdRng) -> RunReport {
        run_bridged(self.name(), scenario, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_crn::StopCondition;
    use lv_lotka::LvModel;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn all_protocol_backends() -> Vec<&'static dyn Backend> {
        vec![
            &ApproxMajorityBackend,
            &ExactMajorityBackend,
            &CzyzowiczLvBackend,
            &AnnihilationLvBackend,
            &CzyzowiczKBackend,
            &CzyzowiczLvBridgedBackend,
            &CzyzowiczKBridgedBackend,
            &ApproxMajorityAgentsBackend,
            &ExactMajorityAgentsBackend,
            &CzyzowiczLvAgentsBackend,
        ]
    }

    #[test]
    fn clear_majority_wins_and_reports_interactions() {
        let scenario = Scenario::majority(LvModel::default(), 400, 100);
        for backend in [
            &ApproxMajorityBackend as &dyn Backend,
            &ApproxMajorityAgentsBackend,
        ] {
            let report = backend.run(&scenario, &mut rng(1));
            assert_eq!(report.backend, backend.name());
            assert!(report.consensus_reached(), "{}", backend.name());
            assert!(report.majority_won(), "{}", backend.name());
            assert!(report.events > 0, "{}", backend.name());
            let outcome = report.to_majority_outcome();
            assert!(outcome.majority_won());
        }
        // The agent-list path resolves every event: one step per event and
        // classified births/attacks for the derived view.
        let report = ApproxMajorityAgentsBackend.run(&scenario, &mut rng(1));
        assert_eq!(report.events, report.steps);
        let outcome = report.to_majority_outcome();
        assert!(outcome.individual_events > 0, "recruitments happened");
        assert!(outcome.competitive_events > 0, "cancellations happened");
        // The batched path aggregates: far fewer steps than events, and the
        // aggregated firings land in the unclassified counter (the
        // tau-leaping vocabulary).
        let report = ApproxMajorityBackend.run(&scenario, &mut rng(1));
        assert!(
            report.steps < report.events / 4,
            "batching did not aggregate: {} steps for {} events",
            report.steps,
            report.events
        );
        let counts = report.event_counts().unwrap();
        assert!(counts.unclassified > 0);
    }

    #[test]
    fn committed_counts_never_exceed_the_population() {
        let scenario = Scenario::majority(LvModel::default(), 30, 20);
        let report = ApproxMajorityBackend.run(&scenario, &mut rng(2));
        assert!(report.max_population().unwrap() <= 50);
        assert!(report.final_state.total() <= 50);
    }

    #[test]
    fn event_budget_truncates_runs_exactly() {
        // Also on the batched path: a sampled epoch that would overrun the
        // budget falls back to single exact steps, so the event count is
        // exact, not epoch-granular.
        let scenario = Scenario::new(LvModel::default(), (500, 480))
            .with_stop(StopCondition::any_species_extinct().with_max_events(25));
        for backend in [
            &ApproxMajorityBackend as &dyn Backend,
            &ApproxMajorityAgentsBackend,
        ] {
            let report = backend.run(&scenario, &mut rng(3));
            assert_eq!(
                report.reason,
                StopReason::MaxEventsReached,
                "{}",
                backend.name()
            );
            assert_eq!(report.events, 25, "{}", backend.name());
        }
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let scenario = Scenario::majority(LvModel::default(), 60, 40);
        for backend in all_protocol_backends() {
            let a = backend.run(&scenario, &mut rng(4));
            let b = backend.run(&scenario, &mut rng(4));
            assert_eq!(a, b, "{}", backend.name());
        }
    }

    #[test]
    fn converged_runs_absorb_under_unsatisfiable_stop_conditions() {
        // Committed counts are capped at the population, so total ≥ 1000 can
        // never hold; once the protocol converges every interaction is inert
        // and the run must end as absorbed rather than spinning forever.
        let scenario = Scenario::new(LvModel::default(), (60, 40))
            .with_stop(StopCondition::total_at_least(1_000));
        for backend in [
            &ApproxMajorityBackend as &dyn Backend,
            &ApproxMajorityAgentsBackend,
        ] {
            let report = backend.run(&scenario, &mut rng(7));
            assert_eq!(report.reason, StopReason::Absorbed, "{}", backend.name());
            assert!(report.final_state.is_consensus(), "{}", backend.name());
            assert_eq!(report.final_state.total(), 100, "everyone committed");
        }
    }

    #[test]
    fn sub_scheduler_populations_absorb_instead_of_panicking() {
        // Fewer than two agents and a stop condition that is not already
        // met: the scheduler can never fire an interaction, so the run is
        // absorbed (not a panic, unlike the steppers' constructors).
        let scenario =
            Scenario::new(LvModel::default(), (1, 0)).with_stop(StopCondition::total_at_least(10));
        for backend in all_protocol_backends() {
            let report = backend.run(&scenario, &mut rng(6));
            assert_eq!(report.reason, StopReason::Absorbed, "{}", backend.name());
            assert_eq!(report.events, 0, "{}", backend.name());
            assert_eq!(report.final_state.counts(), &[1, 0], "{}", backend.name());
        }
    }

    #[test]
    fn capability_flags_mark_the_baselines() {
        for backend in all_protocol_backends() {
            assert!(backend.supports_species(2), "{}", backend.name());
            assert!(!backend.models_kinetics(), "{}", backend.name());
            assert!(!backend.deterministic(), "{}", backend.name());
        }
        // Two-opinion protocols are two-species only; the k-opinion
        // dynamics run any k.
        assert!(!ApproxMajorityBackend.supports_species(3));
        assert!(!CzyzowiczLvBackend.supports_species(3));
        assert!(!CzyzowiczLvBridgedBackend.supports_species(3));
        assert!(CzyzowiczKBackend.supports_species(3));
        assert!(CzyzowiczKBackend.supports_species(6));
        assert!(CzyzowiczKBridgedBackend.supports_species(3));
        assert!(CzyzowiczKBridgedBackend.supports_species(6));
        // Batched vs agent-list execution is reported.
        assert!(ApproxMajorityBackend.batched());
        assert!(ExactMajorityBackend.batched());
        assert!(CzyzowiczLvBackend.batched());
        assert!(AnnihilationLvBackend.batched());
        assert!(CzyzowiczKBackend.batched());
        assert!(CzyzowiczLvBridgedBackend.batched());
        assert!(CzyzowiczKBridgedBackend.batched());
        assert!(!ApproxMajorityAgentsBackend.batched());
        assert!(!ExactMajorityAgentsBackend.batched());
        assert!(!CzyzowiczLvAgentsBackend.batched());
    }

    #[test]
    #[should_panic(expected = "cannot run 3-species")]
    fn k_species_scenarios_are_rejected_by_two_opinion_backends() {
        use lv_lotka::{CompetitionKind, MultiLvModel};
        let model = MultiLvModel::symmetric(CompetitionKind::SelfDestructive, 3, 1.0, 1.0, 1.0);
        let scenario = Scenario::plurality(model, vec![10, 10, 10]);
        let _ = ApproxMajorityBackend.run(&scenario, &mut rng(5));
    }

    #[test]
    fn exact_majority_decides_the_true_majority_even_for_tiny_gaps() {
        // The defining property: the strong-token difference is invariant,
        // so any non-zero gap decides correctly — no threshold exists.
        let scenario = Scenario::majority(LvModel::default(), 26, 25);
        for seed in 0..10 {
            let report = ExactMajorityBackend.run(&scenario, &mut rng(seed));
            assert_eq!(report.backend, "exact-majority");
            assert!(report.consensus_reached(), "seed {seed} truncated");
            assert!(report.majority_won(), "seed {seed} decided the minority");
        }
    }

    #[test]
    fn annihilation_decides_any_gap_and_preserves_it() {
        let scenario = Scenario::majority(LvModel::default(), 51, 50);
        for seed in 0..10 {
            let report = AnnihilationLvBackend.run(&scenario, &mut rng(seed));
            assert!(report.consensus_reached(), "seed {seed} truncated");
            assert!(report.majority_won(), "seed {seed} decided the minority");
            // The gap is invariant: exactly ∆ majority agents survive.
            assert_eq!(report.final_state.counts(), &[1, 0], "seed {seed}");
        }
    }

    #[test]
    fn tied_annihilation_runs_end_in_mutual_extinction() {
        let scenario = Scenario::majority(LvModel::default(), 40, 40);
        let report = AnnihilationLvBackend.run(&scenario, &mut rng(8));
        assert!(report.consensus_reached());
        assert_eq!(
            report.final_state.counts(),
            &[0, 0],
            "complete annihilation"
        );
        assert_eq!(report.final_state.winner(), None);
    }

    #[test]
    fn conversions_are_classified_whichever_agent_the_scheduler_flips() {
        // Responder-side conversion: (StrongA, WeakB) → (StrongA, WeakA).
        let responder_side = classify(Some(0), Some(0), Some(1), Some(0));
        // Initiator-side conversion: (WeakB, StrongA) → (WeakA, StrongA) —
        // the regression case: the weak agent is the scheduled initiator,
        // so *its* output flips while the responder is unchanged.
        let initiator_side = classify(Some(1), Some(0), Some(0), Some(0));
        let expected = Some(PopulationEvent::Interspecific {
            attacker: 0,
            victim: 1,
        });
        assert_eq!(responder_side, expected);
        assert_eq!(initiator_side, expected, "initiator-side conversion lost");
        // Cancellation leaves both outputs unchanged: unclassified.
        assert_eq!(classify(Some(0), Some(0), Some(1), Some(1)), None);
        // Approx-majority shapes are untouched: cancel and recruit.
        assert_eq!(
            classify(Some(0), Some(0), Some(1), None),
            Some(PopulationEvent::Interspecific {
                attacker: 0,
                victim: 1
            })
        );
        assert_eq!(
            classify(Some(1), Some(1), None, Some(1)),
            Some(PopulationEvent::Birth(1))
        );
    }

    #[test]
    fn exact_majority_agents_counts_conversions_from_both_scheduling_orders() {
        // Statistical regression for the initiator-side classification: to
        // reach consensus from (a, b), every one of the b minority agents
        // (and the majority agents weakened by cancellation) must be
        // converted individually, and roughly half of those conversions
        // schedule the weak agent as initiator. Consensus from (40, 20)
        // needs at least 20 + 2·(cancellations) conversions; with only
        // responder-side events classified the count halves, so requiring
        // the full minimum catches the regression deterministically.
        let scenario = Scenario::majority(LvModel::default(), 40, 20);
        for seed in 0..5 {
            let report = ExactMajorityAgentsBackend.run(&scenario, &mut rng(seed));
            assert!(report.consensus_reached(), "seed {seed}");
            let outcome = report.to_majority_outcome();
            assert!(
                outcome.competitive_events >= 20,
                "seed {seed}: only {} conversions classified — initiator-side \
                 conversions are being dropped",
                outcome.competitive_events
            );
        }
    }

    #[test]
    fn exact_majority_agents_classifies_conversions_as_competitive() {
        let scenario = Scenario::majority(LvModel::default(), 40, 20);
        let report = ExactMajorityAgentsBackend.run(&scenario, &mut rng(9));
        let outcome = report.to_majority_outcome();
        // Cancellations leave both outputs unchanged (strong → weak of the
        // same opinion), so the competitive events are the conversions.
        assert!(
            outcome.competitive_events > 0,
            "strong-recruits-weak conversions are competitive"
        );
        // The 4-state protocol never creates agents from blanks.
        assert_eq!(outcome.individual_events, 0);
    }

    #[test]
    fn tied_exact_majority_runs_absorb_when_the_tokens_run_out() {
        // From a tie the strong difference is 0: cancellations can exhaust
        // every token and freeze a mixed weak configuration. Without the
        // absorption check (strong-token monitor on the agent-list path,
        // pair-inertness count check on the counted path) this would spin
        // forever on the unsatisfiable stop condition below.
        let scenario = Scenario::new(LvModel::default(), (20, 20))
            .with_stop(StopCondition::total_at_least(1_000));
        for backend in [
            &ExactMajorityBackend as &dyn Backend,
            &ExactMajorityAgentsBackend,
        ] {
            let report = backend.run(&scenario, &mut rng(10));
            assert_eq!(report.reason, StopReason::Absorbed, "{}", backend.name());
            assert_eq!(report.final_state.total(), 40, "agents never disappear");
        }
    }

    #[test]
    fn czyzowicz_conversions_preserve_the_population() {
        let scenario = Scenario::majority(LvModel::default(), 30, 20);
        let report = CzyzowiczLvBackend.run(&scenario, &mut rng(11));
        assert_eq!(report.backend, "czyzowicz-lv");
        assert!(report.consensus_reached());
        assert_eq!(report.final_state.total(), 50, "conversions preserve n");
        let outcome = report.to_majority_outcome();
        assert!(outcome.competitive_events > 0, "conversions are attacks");
        assert_eq!(
            outcome.individual_events, 0,
            "no births in a static population"
        );
    }

    #[test]
    fn czyzowicz_minority_can_win() {
        // The proportional law: from (30, 20) the minority wins 40% of runs,
        // so some seed in a small window must decide B.
        let scenario = Scenario::majority(LvModel::default(), 30, 20);
        let minority_wins = (0..20)
            .filter(|&seed| {
                let report = CzyzowiczLvBackend.run(&scenario, &mut rng(100 + seed));
                report.consensus_reached() && report.final_state.winner() == Some(1)
            })
            .count();
        assert!(minority_wins > 0, "no minority win in 20 seeded runs");
    }

    #[test]
    fn k_opinion_backend_runs_plurality_scenarios() {
        use lv_lotka::{CompetitionKind, MultiLvModel};
        let model = MultiLvModel::symmetric(CompetitionKind::SelfDestructive, 3, 1.0, 1.0, 1.0);
        let scenario = Scenario::plurality(model, vec![120, 40, 40]);
        let report = CzyzowiczKBackend.run(&scenario, &mut rng(12));
        assert_eq!(report.backend, "czyzowicz-lv-k");
        assert!(report.consensus_reached());
        assert_eq!(
            report.final_state.total(),
            200,
            "conversions preserve the population"
        );
        assert!(report.final_state.is_consensus());
    }

    #[test]
    fn k_opinion_backend_follows_the_k_species_proportional_law() {
        use lv_lotka::{CompetitionKind, MultiLvModel};
        let model = MultiLvModel::symmetric(CompetitionKind::SelfDestructive, 3, 1.0, 1.0, 1.0);
        // Species 0 holds half the population: it should win half the runs.
        let scenario = Scenario::plurality(model, vec![60, 30, 30])
            .with_stop(StopCondition::consensus().with_max_events(10_000_000));
        let trials = 300u64;
        let wins = (0..trials)
            .filter(|&seed| {
                let report = CzyzowiczKBackend.run(&scenario, &mut rng(300 + seed));
                assert!(report.consensus_reached(), "seed {seed} truncated");
                report.final_state.winner() == Some(0)
            })
            .count();
        let fraction = wins as f64 / trials as f64;
        assert!(
            (fraction - 0.5).abs() < 0.09,
            "leader won {fraction}, k-species proportional law says 0.5"
        );
    }

    #[test]
    fn batched_runs_match_agent_list_runs_statistically() {
        // The engine-level distributional cross-validation: batched and
        // agent-list backends must estimate the same win probability. The
        // population is above BATCH_MIN_POPULATION so epochs really batch.
        let scenario = Scenario::new(LvModel::default(), (90, 70))
            .with_stop(StopCondition::any_species_extinct().with_max_events(10_000_000));
        let trials = 400u64;
        let measure = |backend: &dyn Backend, offset: u64| {
            (0..trials)
                .filter(|&seed| {
                    let report = backend.run(&scenario, &mut rng(offset + seed));
                    report.final_state.winner() == Some(0)
                })
                .count() as f64
                / trials as f64
        };
        for (batched, agents) in [
            (
                &ApproxMajorityBackend as &dyn Backend,
                &ApproxMajorityAgentsBackend as &dyn Backend,
            ),
            (&CzyzowiczLvBackend, &CzyzowiczLvAgentsBackend),
            (&CzyzowiczLvBridgedBackend, &CzyzowiczLvAgentsBackend),
        ] {
            let p_batched = measure(batched, 1_000);
            let p_agents = measure(agents, 2_000);
            assert!(
                (p_batched - p_agents).abs() < 0.1,
                "{}: batched {p_batched} vs agent-list {p_agents}",
                batched.name()
            );
        }
    }

    #[test]
    fn bridged_backend_preserves_the_population_and_decides() {
        // Large enough that block bridging (not just band stepping) carries
        // most of the run.
        let scenario = Scenario::new(LvModel::default(), (60_000, 40_000))
            .with_stop(StopCondition::any_species_extinct().with_max_events(u64::MAX / 2));
        let report = CzyzowiczLvBridgedBackend.run(&scenario, &mut rng(13));
        assert_eq!(report.backend, "czyzowicz-lv-bridged");
        assert!(report.consensus_reached());
        assert_eq!(
            report.final_state.total(),
            100_000,
            "conversions preserve n"
        );
        // A conversion trial near this gap needs Ω(n) interactions but the
        // bridged walk resolves them in very few recorded steps.
        assert!(report.events >= 100_000, "{} interactions", report.events);
        assert!(
            report.steps < 100_000,
            "bridging did not aggregate: {} steps for {} events",
            report.steps,
            report.events
        );
    }

    #[test]
    fn bridged_event_budget_is_exact_even_on_the_block_path() {
        // The budget is far above MIN_BLOCK so bridge blocks really fire,
        // yet truncation must land on the exact event count: oversized
        // blocks are refused (falling back to exact band stepping), never
        // clipped or overshot.
        let scenario = Scenario::new(LvModel::default(), (500_000, 480_000))
            .with_stop(StopCondition::any_species_extinct().with_max_events(123_456));
        for backend in [
            &CzyzowiczLvBridgedBackend as &dyn Backend,
            &CzyzowiczKBridgedBackend,
        ] {
            let report = backend.run(&scenario, &mut rng(14));
            assert_eq!(
                report.reason,
                StopReason::MaxEventsReached,
                "{}",
                backend.name()
            );
            assert_eq!(report.events, 123_456, "{}", backend.name());
        }
    }

    #[test]
    fn bridged_backend_follows_the_proportional_law() {
        // P(A wins) = a/n exactly for the conversion dynamics; at n = 1000
        // the bridged walk mixes block and band regimes. 300 trials at
        // p = 0.6 give a ~±0.055 (2σ) band.
        let scenario = Scenario::new(LvModel::default(), (600, 400))
            .with_stop(StopCondition::any_species_extinct().with_max_events(u64::MAX / 2));
        let trials = 300u64;
        let wins = (0..trials)
            .filter(|&seed| {
                let report = CzyzowiczLvBridgedBackend.run(&scenario, &mut rng(500 + seed));
                assert!(report.consensus_reached(), "seed {seed} truncated");
                report.final_state.winner() == Some(0)
            })
            .count();
        let fraction = wins as f64 / trials as f64;
        assert!(
            (fraction - 0.6).abs() < 0.09,
            "majority won {fraction}, proportional law says 0.6"
        );
    }

    #[test]
    fn k_bridged_backend_follows_the_k_species_proportional_law() {
        use lv_lotka::{CompetitionKind, MultiLvModel};
        let model = MultiLvModel::symmetric(CompetitionKind::SelfDestructive, 3, 1.0, 1.0, 1.0);
        let scenario = Scenario::plurality(model, vec![300, 150, 150])
            .with_stop(StopCondition::consensus().with_max_events(u64::MAX / 2));
        let trials = 300u64;
        let wins = (0..trials)
            .filter(|&seed| {
                let report = CzyzowiczKBridgedBackend.run(&scenario, &mut rng(700 + seed));
                assert!(report.consensus_reached(), "seed {seed} truncated");
                report.final_state.winner() == Some(0)
            })
            .count();
        let fraction = wins as f64 / trials as f64;
        assert!(
            (fraction - 0.5).abs() < 0.09,
            "leader won {fraction}, k-species proportional law says 0.5"
        );
    }
}
