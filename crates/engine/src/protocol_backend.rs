//! Protocol baselines as backends: the 3-state approximate-majority
//! population protocol behind the same [`Backend`] interface as the
//! Lotka–Volterra kernels, so E11-style protocol-vs-LV comparisons run
//! through one registry and one Monte-Carlo harness.

use crate::backend::{Backend, Driver};
use crate::report::RunReport;
use crate::scenario::Scenario;
use lv_crn::StopReason;
use lv_lotka::PopulationEvent;
use lv_protocols::{ApproximateMajority, Opinion, ProtocolSimulation};
use rand::rngs::StdRng;

/// The 3-state approximate-majority protocol of Angluin–Aspnes–Eisenstat as
/// an execution backend for *two-species* scenarios.
///
/// The backend is a baseline, not a Lotka–Volterra simulator: it reads only
/// the scenario's initial configuration `(a, b)` — `a` agents with opinion A,
/// `b` with opinion B — and its stop budgets; the model's rates are ignored
/// ([`Backend::models_kinetics`] is `false`). Each pairwise interaction
/// counts as one event, and the reported state is the pair of *committed*
/// counts `(#A, #B)` (blank agents are internal). A committed count hitting
/// zero is irrevocable — that opinion can never reappear — so the consensus
/// semantics of the two-species stop conditions carry over: the survivor is
/// the protocol's decision.
///
/// Interactions map onto the two-species event vocabulary: a cancellation
/// `(A, B) → (A, blank)` is a competitive attack by the initiator, a
/// recruitment `(A, blank) → (A, A)` is a birth, and inert interactions are
/// unclassified firings.
#[derive(Debug, Clone, Copy, Default)]
pub struct ApproxMajorityBackend;

impl Backend for ApproxMajorityBackend {
    fn name(&self) -> &'static str {
        "approx-majority"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["am", "3-state"]
    }

    fn description(&self) -> &'static str {
        "3-state approximate-majority population protocol baseline (two-species, ignores rates)"
    }

    fn supports_species(&self, species: usize) -> bool {
        species == 2
    }

    fn models_kinetics(&self) -> bool {
        false
    }

    fn run(&self, scenario: &Scenario, rng: &mut StdRng) -> RunReport {
        assert_eq!(
            scenario.species_count(),
            2,
            "the approx-majority backend runs two-species scenarios only"
        );
        let initial = scenario.initial();
        let (a, b) = (initial.count(0), initial.count(1));
        let mut driver = Driver::new(scenario);
        // Degenerate starts must stop before the first interaction, like
        // every other backend.
        if let Some(reason) = driver.check_stop() {
            return driver.finish(self.name(), reason);
        }
        // The pairwise scheduler cannot run on fewer than two agents: no
        // interaction can ever fire, which is an absorbed state in every
        // backend's vocabulary.
        if a + b < 2 {
            return driver.finish(self.name(), StopReason::Absorbed);
        }
        let protocol = ApproximateMajority::new();
        let mut sim = ProtocolSimulation::new(&protocol, a, b);
        loop {
            if let Some(reason) = driver.check_stop() {
                return driver.finish(self.name(), reason);
            }
            // Once every agent is committed to one opinion, every further
            // interaction is inert: the chain is absorbed. Without this exit
            // an unsatisfiable stop condition with no budget would spin
            // forever — the LV backends escape the same situation through
            // their zero-propensity absorption check. O(1) via the
            // incrementally maintained committed counts.
            let (committed_a, committed_b) = sim.opinion_counts();
            if committed_a + committed_b == sim.population()
                && (committed_a == 0 || committed_b == 0)
            {
                return driver.finish(self.name(), StopReason::Absorbed);
            }
            let interaction = sim.step(rng);
            let (after_a, after_b) = sim.opinion_counts();
            // Classify the interaction for the observers. The initiator is
            // never changed by the protocol's rules, so the responder's
            // transition determines the class.
            let event = classify(
                protocol_output(interaction.initiator_before),
                protocol_output(interaction.responder_before),
                protocol_output(interaction.responder_after),
            );
            driver.record(event, &[after_a, after_b], sim.interactions() as f64, 1);
        }
    }
}

fn protocol_output(state: lv_protocols::TriState) -> Option<Opinion> {
    use lv_protocols::PopulationProtocol;
    ApproximateMajority::new().output(state)
}

fn species(opinion: Opinion) -> usize {
    match opinion {
        Opinion::A => 0,
        Opinion::B => 1,
    }
}

/// Maps one interaction onto the LV event vocabulary: cancellation is a
/// competitive attack, recruitment a birth, anything else unclassified.
fn classify(
    initiator: Option<Opinion>,
    responder_before: Option<Opinion>,
    responder_after: Option<Opinion>,
) -> Option<PopulationEvent> {
    match (initiator, responder_before, responder_after) {
        // (X, Y) → (X, blank): X cancelled Y.
        (Some(attacker), Some(victim), None) if attacker != victim => {
            Some(PopulationEvent::Interspecific {
                attacker: species(attacker),
                victim: species(victim),
            })
        }
        // (X, blank) → (X, X): X recruited a blank.
        (Some(opinion), None, Some(recruited)) if opinion == recruited => {
            Some(PopulationEvent::Birth(species(opinion)))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_crn::StopCondition;
    use lv_lotka::LvModel;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn clear_majority_wins_and_reports_interactions() {
        let scenario = Scenario::majority(LvModel::default(), 400, 100);
        let report = ApproxMajorityBackend.run(&scenario, &mut rng(1));
        assert_eq!(report.backend, "approx-majority");
        assert!(report.consensus_reached());
        assert!(report.majority_won());
        assert!(report.events > 0);
        assert_eq!(report.events, report.steps);
        // The derived view works exactly like for the LV backends.
        let outcome = report.to_majority_outcome();
        assert!(outcome.majority_won());
        assert!(outcome.individual_events > 0, "recruitments happened");
        assert!(outcome.competitive_events > 0, "cancellations happened");
    }

    #[test]
    fn committed_counts_never_exceed_the_population() {
        let scenario = Scenario::majority(LvModel::default(), 30, 20);
        let report = ApproxMajorityBackend.run(&scenario, &mut rng(2));
        assert!(report.max_population().unwrap() <= 50);
        assert!(report.final_state.total() <= 50);
    }

    #[test]
    fn event_budget_truncates_runs() {
        let scenario = Scenario::new(LvModel::default(), (500, 480))
            .with_stop(StopCondition::any_species_extinct().with_max_events(25));
        let report = ApproxMajorityBackend.run(&scenario, &mut rng(3));
        assert_eq!(report.reason, StopReason::MaxEventsReached);
        assert_eq!(report.events, 25);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let scenario = Scenario::majority(LvModel::default(), 60, 40);
        let a = ApproxMajorityBackend.run(&scenario, &mut rng(4));
        let b = ApproxMajorityBackend.run(&scenario, &mut rng(4));
        assert_eq!(a, b);
    }

    #[test]
    fn converged_runs_absorb_under_unsatisfiable_stop_conditions() {
        // Committed counts are capped at the population, so total ≥ 1000 can
        // never hold; once the protocol converges every interaction is inert
        // and the run must end as absorbed rather than spinning forever.
        let scenario = Scenario::new(LvModel::default(), (60, 40))
            .with_stop(StopCondition::total_at_least(1_000));
        let report = ApproxMajorityBackend.run(&scenario, &mut rng(7));
        assert_eq!(report.reason, StopReason::Absorbed);
        assert!(report.final_state.is_consensus());
        assert_eq!(report.final_state.total(), 100, "everyone committed");
    }

    #[test]
    fn sub_scheduler_populations_absorb_instead_of_panicking() {
        // Fewer than two agents and a stop condition that is not already
        // met: the scheduler can never fire an interaction, so the run is
        // absorbed (not a panic, unlike ProtocolSimulation::new).
        let scenario =
            Scenario::new(LvModel::default(), (1, 0)).with_stop(StopCondition::total_at_least(10));
        let report = ApproxMajorityBackend.run(&scenario, &mut rng(6));
        assert_eq!(report.reason, StopReason::Absorbed);
        assert_eq!(report.events, 0);
        assert_eq!(report.final_state.counts(), &[1, 0]);
    }

    #[test]
    fn capability_flags_mark_the_baseline() {
        let backend = ApproxMajorityBackend;
        assert!(backend.supports_species(2));
        assert!(!backend.supports_species(3));
        assert!(!backend.models_kinetics());
        assert!(!backend.deterministic());
    }

    #[test]
    #[should_panic(expected = "two-species scenarios only")]
    fn k_species_scenarios_are_rejected() {
        use lv_lotka::{CompetitionKind, MultiLvModel};
        let model = MultiLvModel::symmetric(CompetitionKind::SelfDestructive, 3, 1.0, 1.0, 1.0);
        let scenario = Scenario::plurality(model, vec![10, 10, 10]);
        let _ = ApproxMajorityBackend.run(&scenario, &mut rng(5));
    }
}
