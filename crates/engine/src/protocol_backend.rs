//! Protocol baselines as backends: population protocols behind the same
//! [`Backend`] interface as the Lotka–Volterra kernels, so protocol-vs-LV
//! comparisons (E11, E15 threshold sweeps) run through one registry and one
//! Monte-Carlo harness.
//!
//! Three baselines are built in:
//!
//! * [`ApproxMajorityBackend`] — the 3-state approximate-majority protocol
//!   of Angluin–Aspnes–Eisenstat (`"approx-majority"`);
//! * [`ExactMajorityBackend`] — the 4-state exact-majority protocol of
//!   Draief–Vojnović / Mertzios et al. (`"exact-majority"`): always correct
//!   for any non-zero gap, at `Θ(n²)` expected interactions;
//! * [`CzyzowiczLvBackend`] — the two-state discrete Lotka–Volterra
//!   dynamics of Czyzowicz et al. (`"czyzowicz-lv"`): the proportional law
//!   `P(majority wins) = a/n`, so high-probability consensus needs a
//!   *linear* gap.
//!
//! All three share one generic stepper, [`run_two_opinion_protocol`]: the
//! protocol-specific parts are the [`PopulationProtocol`] itself (stepped
//! through [`ProtocolSimulation`], with opinions read through
//! `PopulationProtocol::output`) and an absorption [`ProtocolMonitor`] that
//! knows when no future interaction can change any state.

use crate::backend::{Backend, Driver};
use crate::report::RunReport;
use crate::scenario::Scenario;
use lv_crn::StopReason;
use lv_lotka::PopulationEvent;
use lv_protocols::{
    ApproximateMajority, CzyzowiczLvProtocol, ExactMajority4State, FourState, Interaction, Opinion,
    PopulationProtocol, ProtocolSimulation,
};
use rand::rngs::StdRng;

/// Protocol-specific absorption bookkeeping for the generic stepper: decides
/// when the configuration is *absorbed* (no future interaction can change
/// any agent's state), optionally maintaining incremental state from the
/// observed interactions.
///
/// Without this exit, an unsatisfiable stop condition with no budget would
/// spin forever on inert interactions — the LV backends escape the same
/// situation through their zero-propensity absorption check.
trait ProtocolMonitor<P: PopulationProtocol> {
    /// Whether the current configuration is absorbed.
    fn absorbed(&self, sim: &ProtocolSimulation<P>) -> bool;

    /// Observes one applied interaction (for incremental bookkeeping).
    fn observe(&mut self, _interaction: &Interaction<P::State>) {}
}

/// Absorption by committed consensus: every agent outputs the same opinion.
/// Correct for protocols where any mixed-output configuration can still
/// react (approximate majority, the two-state Czyzowicz dynamics). O(1) via
/// the incrementally maintained committed counts.
struct CommittedConsensus;

impl<P: PopulationProtocol> ProtocolMonitor<P> for CommittedConsensus {
    fn absorbed(&self, sim: &ProtocolSimulation<P>) -> bool {
        let (a, b) = sim.opinion_counts();
        a + b == sim.population() && (a == 0 || b == 0)
    }
}

/// Absorption for the 4-state exact-majority protocol: every transition
/// needs a strong (token-carrying) agent, so the chain is absorbed once the
/// strong tokens are exhausted (possible only from a tied start, since the
/// strong-A/strong-B difference is invariant) or once one opinion has died
/// out. The strong count is maintained in O(1) from the interactions —
/// cancellation `(StrongA, StrongB) → (WeakA, WeakB)` is the only
/// strong-consuming transition.
struct StrongTokens {
    strongs: u64,
}

impl ProtocolMonitor<ExactMajority4State> for StrongTokens {
    fn absorbed(&self, sim: &ProtocolSimulation<ExactMajority4State>) -> bool {
        let (a, b) = sim.opinion_counts();
        self.strongs == 0 || a == 0 || b == 0
    }

    fn observe(&mut self, interaction: &Interaction<FourState>) {
        if matches!(
            (interaction.initiator_before, interaction.responder_before),
            (FourState::StrongA, FourState::StrongB) | (FourState::StrongB, FourState::StrongA)
        ) {
            self.strongs -= 2;
        }
    }
}

/// Runs any two-opinion [`PopulationProtocol`] as an execution backend: the
/// scenario's initial configuration `(a, b)` seeds `a` agents with opinion A
/// and `b` with opinion B, each pairwise interaction counts as one event,
/// and the reported state is the pair of *committed* counts
/// `(#output A, #output B)` read through `PopulationProtocol::output`
/// (undecided agents are internal). The model's rates are ignored
/// ([`Backend::models_kinetics`] is `false` on all protocol backends).
fn run_two_opinion_protocol<P, M>(
    protocol: &P,
    name: &'static str,
    scenario: &Scenario,
    rng: &mut StdRng,
    mut monitor: M,
) -> RunReport
where
    P: PopulationProtocol,
    M: ProtocolMonitor<P>,
{
    assert_eq!(
        scenario.species_count(),
        2,
        "the {name} backend runs two-species scenarios only"
    );
    let initial = scenario.initial();
    let (a, b) = (initial.count(0), initial.count(1));
    let mut driver = Driver::new(scenario);
    // Degenerate starts must stop before the first interaction, like every
    // other backend.
    if let Some(reason) = driver.check_stop() {
        return driver.finish(name, reason);
    }
    // The pairwise scheduler cannot run on fewer than two agents: no
    // interaction can ever fire, which is an absorbed state in every
    // backend's vocabulary.
    if a + b < 2 {
        return driver.finish(name, StopReason::Absorbed);
    }
    let mut sim = ProtocolSimulation::new(protocol, a, b);
    loop {
        if let Some(reason) = driver.check_stop() {
            return driver.finish(name, reason);
        }
        if monitor.absorbed(&sim) {
            return driver.finish(name, StopReason::Absorbed);
        }
        let interaction = sim.step(rng);
        monitor.observe(&interaction);
        let (after_a, after_b) = sim.opinion_counts();
        // Classify the interaction for the observers by the agents' output
        // transitions. Protocol rules may change either agent — the
        // exact-majority strong-recruits-weak rule flips the *initiator*
        // when the weak agent is scheduled first — so both sides are
        // considered (at most one output changes in the built-in protocols).
        let event = classify(
            protocol.output(interaction.initiator_before),
            protocol.output(interaction.initiator_after),
            protocol.output(interaction.responder_before),
            protocol.output(interaction.responder_after),
        );
        driver.record(event, &[after_a, after_b], sim.interactions() as f64, 1);
    }
}

fn species(opinion: Opinion) -> usize {
    match opinion {
        Opinion::A => 0,
        Opinion::B => 1,
    }
}

/// Maps one interaction onto the LV event vocabulary by output transitions:
/// cancellation and direct conversion are competitive attacks, recruitment
/// of an undecided agent is a birth, anything else unclassified. Whichever
/// agent's output changed determines the class — the other agent is the
/// attacker/recruiter — so conversions count identically no matter which of
/// the pair the scheduler drew as initiator.
fn classify(
    initiator_before: Option<Opinion>,
    initiator_after: Option<Opinion>,
    responder_before: Option<Opinion>,
    responder_after: Option<Opinion>,
) -> Option<PopulationEvent> {
    if responder_before != responder_after {
        classify_transition(initiator_before, responder_before, responder_after)
    } else if initiator_before != initiator_after {
        classify_transition(responder_before, initiator_before, initiator_after)
    } else {
        None
    }
}

/// Classifies one agent's output transition given the unchanged `other`
/// agent of the pair.
fn classify_transition(
    other: Option<Opinion>,
    before: Option<Opinion>,
    after: Option<Opinion>,
) -> Option<PopulationEvent> {
    match (other, before, after) {
        // (X, Y) → (X, blank): X cancelled Y.
        (Some(attacker), Some(victim), None) if attacker != victim => {
            Some(PopulationEvent::Interspecific {
                attacker: species(attacker),
                victim: species(victim),
            })
        }
        // (X, blank) → (X, X): X recruited a blank.
        (Some(opinion), None, Some(recruited)) if opinion == recruited => {
            Some(PopulationEvent::Birth(species(opinion)))
        }
        // (X, Y) → (X, X): X converted Y directly (Czyzowicz predation, the
        // exact-majority strong-recruits-weak rule).
        (Some(attacker), Some(victim), Some(converted))
            if attacker != victim && converted == attacker =>
        {
            Some(PopulationEvent::Interspecific {
                attacker: species(attacker),
                victim: species(victim),
            })
        }
        _ => None,
    }
}

/// The 3-state approximate-majority protocol of Angluin–Aspnes–Eisenstat as
/// an execution backend for *two-species* scenarios.
///
/// The backend is a baseline, not a Lotka–Volterra simulator: it reads only
/// the scenario's initial configuration `(a, b)` — `a` agents with opinion A,
/// `b` with opinion B — and its stop budgets; the model's rates are ignored
/// ([`Backend::models_kinetics`] is `false`). Each pairwise interaction
/// counts as one event, and the reported state is the pair of *committed*
/// counts `(#A, #B)` (blank agents are internal). A committed count hitting
/// zero is irrevocable — that opinion can never reappear — so the consensus
/// semantics of the two-species stop conditions carry over: the survivor is
/// the protocol's decision.
///
/// Interactions map onto the two-species event vocabulary: a cancellation
/// `(A, B) → (A, blank)` is a competitive attack by the initiator, a
/// recruitment `(A, blank) → (A, A)` is a birth, and inert interactions are
/// unclassified firings.
#[derive(Debug, Clone, Copy, Default)]
pub struct ApproxMajorityBackend;

impl Backend for ApproxMajorityBackend {
    fn name(&self) -> &'static str {
        "approx-majority"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["am", "3-state"]
    }

    fn description(&self) -> &'static str {
        "3-state approximate-majority population protocol baseline (two-species, ignores rates)"
    }

    fn supports_species(&self, species: usize) -> bool {
        species == 2
    }

    fn models_kinetics(&self) -> bool {
        false
    }

    fn run(&self, scenario: &Scenario, rng: &mut StdRng) -> RunReport {
        run_two_opinion_protocol(
            &ApproximateMajority::new(),
            self.name(),
            scenario,
            rng,
            CommittedConsensus,
        )
    }
}

/// The 4-state exact-majority protocol of Draief–Vojnović / Mertzios et al.
/// as an execution backend for *two-species* scenarios.
///
/// The strong-token difference is invariant, so the protocol decides the
/// true initial majority for *any* non-zero gap — there is no threshold to
/// find — but pays `Θ(n²)` expected interactions when the gap is small
/// (Table 1, Section 2.2). Like every protocol baseline it ignores the
/// model's rates and reports committed opinion counts; a tied start can
/// exhaust its strong tokens and freeze in a mixed weak configuration,
/// which the backend reports as an absorbed (non-consensus) run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactMajorityBackend;

impl Backend for ExactMajorityBackend {
    fn name(&self) -> &'static str {
        "exact-majority"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["em", "4-state"]
    }

    fn description(&self) -> &'static str {
        "4-state exact-majority population protocol baseline (always correct, ~n^2 interactions)"
    }

    fn supports_species(&self, species: usize) -> bool {
        species == 2
    }

    fn models_kinetics(&self) -> bool {
        false
    }

    fn run(&self, scenario: &Scenario, rng: &mut StdRng) -> RunReport {
        let initial = scenario.initial();
        let strongs = initial.count(0) + initial.count(1);
        run_two_opinion_protocol(
            &ExactMajority4State::new(),
            self.name(),
            scenario,
            rng,
            StrongTokens { strongs },
        )
    }
}

/// The two-state discrete Lotka–Volterra dynamics of Czyzowicz et al.
/// (`(A, B) → (A, A)`, `(B, A) → (B, B)`) as an execution backend for
/// *two-species* scenarios.
///
/// On a static population these conversions are an unbiased random walk in
/// the count of A, so the majority wins with probability exactly `a/n` —
/// the proportional law — and high-probability majority consensus needs a
/// gap *linear* in `n`, the baseline E15's threshold sweep contrasts with
/// the paper's polylogarithmic self-destructive threshold.
#[derive(Debug, Clone, Copy, Default)]
pub struct CzyzowiczLvBackend;

impl Backend for CzyzowiczLvBackend {
    fn name(&self) -> &'static str {
        "czyzowicz-lv"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["cz", "2-state-lv"]
    }

    fn description(&self) -> &'static str {
        "2-state Czyzowicz et al. discrete LV protocol baseline (proportional law, linear gap)"
    }

    fn supports_species(&self, species: usize) -> bool {
        species == 2
    }

    fn models_kinetics(&self) -> bool {
        false
    }

    fn run(&self, scenario: &Scenario, rng: &mut StdRng) -> RunReport {
        run_two_opinion_protocol(
            &CzyzowiczLvProtocol::new(),
            self.name(),
            scenario,
            rng,
            CommittedConsensus,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_crn::StopCondition;
    use lv_lotka::LvModel;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn clear_majority_wins_and_reports_interactions() {
        let scenario = Scenario::majority(LvModel::default(), 400, 100);
        let report = ApproxMajorityBackend.run(&scenario, &mut rng(1));
        assert_eq!(report.backend, "approx-majority");
        assert!(report.consensus_reached());
        assert!(report.majority_won());
        assert!(report.events > 0);
        assert_eq!(report.events, report.steps);
        // The derived view works exactly like for the LV backends.
        let outcome = report.to_majority_outcome();
        assert!(outcome.majority_won());
        assert!(outcome.individual_events > 0, "recruitments happened");
        assert!(outcome.competitive_events > 0, "cancellations happened");
    }

    #[test]
    fn committed_counts_never_exceed_the_population() {
        let scenario = Scenario::majority(LvModel::default(), 30, 20);
        let report = ApproxMajorityBackend.run(&scenario, &mut rng(2));
        assert!(report.max_population().unwrap() <= 50);
        assert!(report.final_state.total() <= 50);
    }

    #[test]
    fn event_budget_truncates_runs() {
        let scenario = Scenario::new(LvModel::default(), (500, 480))
            .with_stop(StopCondition::any_species_extinct().with_max_events(25));
        let report = ApproxMajorityBackend.run(&scenario, &mut rng(3));
        assert_eq!(report.reason, StopReason::MaxEventsReached);
        assert_eq!(report.events, 25);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let scenario = Scenario::majority(LvModel::default(), 60, 40);
        for backend in [
            &ApproxMajorityBackend as &dyn Backend,
            &ExactMajorityBackend,
            &CzyzowiczLvBackend,
        ] {
            let a = backend.run(&scenario, &mut rng(4));
            let b = backend.run(&scenario, &mut rng(4));
            assert_eq!(a, b, "{}", backend.name());
        }
    }

    #[test]
    fn converged_runs_absorb_under_unsatisfiable_stop_conditions() {
        // Committed counts are capped at the population, so total ≥ 1000 can
        // never hold; once the protocol converges every interaction is inert
        // and the run must end as absorbed rather than spinning forever.
        let scenario = Scenario::new(LvModel::default(), (60, 40))
            .with_stop(StopCondition::total_at_least(1_000));
        let report = ApproxMajorityBackend.run(&scenario, &mut rng(7));
        assert_eq!(report.reason, StopReason::Absorbed);
        assert!(report.final_state.is_consensus());
        assert_eq!(report.final_state.total(), 100, "everyone committed");
    }

    #[test]
    fn sub_scheduler_populations_absorb_instead_of_panicking() {
        // Fewer than two agents and a stop condition that is not already
        // met: the scheduler can never fire an interaction, so the run is
        // absorbed (not a panic, unlike ProtocolSimulation::new).
        let scenario =
            Scenario::new(LvModel::default(), (1, 0)).with_stop(StopCondition::total_at_least(10));
        for backend in [
            &ApproxMajorityBackend as &dyn Backend,
            &ExactMajorityBackend,
            &CzyzowiczLvBackend,
        ] {
            let report = backend.run(&scenario, &mut rng(6));
            assert_eq!(report.reason, StopReason::Absorbed, "{}", backend.name());
            assert_eq!(report.events, 0, "{}", backend.name());
            assert_eq!(report.final_state.counts(), &[1, 0], "{}", backend.name());
        }
    }

    #[test]
    fn capability_flags_mark_the_baselines() {
        for backend in [
            &ApproxMajorityBackend as &dyn Backend,
            &ExactMajorityBackend,
            &CzyzowiczLvBackend,
        ] {
            assert!(backend.supports_species(2), "{}", backend.name());
            assert!(!backend.supports_species(3), "{}", backend.name());
            assert!(!backend.models_kinetics(), "{}", backend.name());
            assert!(!backend.deterministic(), "{}", backend.name());
        }
    }

    #[test]
    #[should_panic(expected = "two-species scenarios only")]
    fn k_species_scenarios_are_rejected() {
        use lv_lotka::{CompetitionKind, MultiLvModel};
        let model = MultiLvModel::symmetric(CompetitionKind::SelfDestructive, 3, 1.0, 1.0, 1.0);
        let scenario = Scenario::plurality(model, vec![10, 10, 10]);
        let _ = ApproxMajorityBackend.run(&scenario, &mut rng(5));
    }

    #[test]
    fn exact_majority_decides_the_true_majority_even_for_tiny_gaps() {
        // The defining property: the strong-token difference is invariant,
        // so any non-zero gap decides correctly — no threshold exists.
        let scenario = Scenario::majority(LvModel::default(), 26, 25);
        for seed in 0..10 {
            let report = ExactMajorityBackend.run(&scenario, &mut rng(seed));
            assert_eq!(report.backend, "exact-majority");
            assert!(report.consensus_reached(), "seed {seed} truncated");
            assert!(report.majority_won(), "seed {seed} decided the minority");
        }
    }

    #[test]
    fn conversions_are_classified_whichever_agent_the_scheduler_flips() {
        use Opinion::{A, B};
        // Responder-side conversion: (StrongA, WeakB) → (StrongA, WeakA).
        let responder_side = classify(Some(A), Some(A), Some(B), Some(A));
        // Initiator-side conversion: (WeakB, StrongA) → (WeakA, StrongA) —
        // the regression case: the weak agent is the scheduled initiator,
        // so *its* output flips while the responder is unchanged.
        let initiator_side = classify(Some(B), Some(A), Some(A), Some(A));
        let expected = Some(PopulationEvent::Interspecific {
            attacker: 0,
            victim: 1,
        });
        assert_eq!(responder_side, expected);
        assert_eq!(initiator_side, expected, "initiator-side conversion lost");
        // Cancellation leaves both outputs unchanged: unclassified.
        assert_eq!(classify(Some(A), Some(A), Some(B), Some(B)), None);
        // Approx-majority shapes are untouched: cancel and recruit.
        assert_eq!(
            classify(Some(A), Some(A), Some(B), None),
            Some(PopulationEvent::Interspecific {
                attacker: 0,
                victim: 1
            })
        );
        assert_eq!(
            classify(Some(B), Some(B), None, Some(B)),
            Some(PopulationEvent::Birth(1))
        );
    }

    #[test]
    fn exact_majority_counts_conversions_from_both_scheduling_orders() {
        // Statistical regression for the initiator-side classification: to
        // reach consensus from (a, b), every one of the b minority agents
        // (and the majority agents weakened by cancellation) must be
        // converted individually, and roughly half of those conversions
        // schedule the weak agent as initiator. Consensus from (40, 20)
        // needs at least 20 + 2·(cancellations) conversions; with only
        // responder-side events classified the count halves, so requiring
        // the full minimum catches the regression deterministically.
        let scenario = Scenario::majority(LvModel::default(), 40, 20);
        for seed in 0..5 {
            let report = ExactMajorityBackend.run(&scenario, &mut rng(seed));
            assert!(report.consensus_reached(), "seed {seed}");
            let outcome = report.to_majority_outcome();
            assert!(
                outcome.competitive_events >= 20,
                "seed {seed}: only {} conversions classified — initiator-side \
                 conversions are being dropped",
                outcome.competitive_events
            );
        }
    }

    #[test]
    fn exact_majority_classifies_conversions_as_competitive() {
        let scenario = Scenario::majority(LvModel::default(), 40, 20);
        let report = ExactMajorityBackend.run(&scenario, &mut rng(9));
        let outcome = report.to_majority_outcome();
        // Cancellations leave both outputs unchanged (strong → weak of the
        // same opinion), so the competitive events are the conversions.
        assert!(
            outcome.competitive_events > 0,
            "strong-recruits-weak conversions are competitive"
        );
        // The 4-state protocol never creates agents from blanks.
        assert_eq!(outcome.individual_events, 0);
    }

    #[test]
    fn tied_exact_majority_runs_absorb_when_the_tokens_run_out() {
        // From a tie the strong difference is 0: cancellations can exhaust
        // every token and freeze a mixed weak configuration. Without the
        // strong-token monitor this would spin forever on the unsatisfiable
        // stop condition below.
        let scenario = Scenario::new(LvModel::default(), (20, 20))
            .with_stop(StopCondition::total_at_least(1_000));
        let report = ExactMajorityBackend.run(&scenario, &mut rng(10));
        assert_eq!(report.reason, StopReason::Absorbed);
        assert_eq!(report.final_state.total(), 40, "agents never disappear");
    }

    #[test]
    fn czyzowicz_conversions_preserve_the_population() {
        let scenario = Scenario::majority(LvModel::default(), 30, 20);
        let report = CzyzowiczLvBackend.run(&scenario, &mut rng(11));
        assert_eq!(report.backend, "czyzowicz-lv");
        assert!(report.consensus_reached());
        assert_eq!(report.final_state.total(), 50, "conversions preserve n");
        let outcome = report.to_majority_outcome();
        assert!(outcome.competitive_events > 0, "conversions are attacks");
        assert_eq!(
            outcome.individual_events, 0,
            "no births in a static population"
        );
    }

    #[test]
    fn czyzowicz_minority_can_win() {
        // The proportional law: from (30, 20) the minority wins 40% of runs,
        // so some seed in a small window must decide B.
        let scenario = Scenario::majority(LvModel::default(), 30, 20);
        let minority_wins = (0..20)
            .filter(|&seed| {
                let report = CzyzowiczLvBackend.run(&scenario, &mut rng(100 + seed));
                report.consensus_reached() && report.final_state.winner() == Some(1)
            })
            .count();
        assert!(minority_wins > 0, "no minority win in 20 seeded runs");
    }
}
