//! The composable observer API.
//!
//! A [`Scenario`](crate::Scenario) carries a set of [`ObserverSpec`]s; every
//! backend builds one [`Observer`] per spec per run, feeds it a
//! [`StepRecord`] after every simulated step, and collects one
//! [`Observation`] from each observer when the run stops. What used to be the
//! hard-coded field collection of `lv_lotka::run_majority` is now the four
//! built-in observers — gap trajectory, noise decomposition, event counts and
//! max population — and `MajorityOutcome`/`PluralityOutcome` are *derived
//! views* assembled from their observations (see
//! [`RunReport::to_majority_outcome`] and [`RunReport::to_plurality_outcome`]).
//!
//! All observers are defined over `k`-species populations: the paper's
//! signed gap `∆_t` generalises to the *plurality margin* of the initial
//! leader (its count minus the best other count, see
//! [`lv_lotka::margin_of`]), which coincides with `∆_t` for `k = 2`.
//!
//! [`RunReport::to_majority_outcome`]: crate::RunReport::to_majority_outcome
//! [`RunReport::to_plurality_outcome`]: crate::RunReport::to_plurality_outcome

use lv_lotka::{margin_of, EventKind, NoiseDecomposition, Population, PopulationEvent};
use serde::{Deserialize, Serialize};

/// One simulated step as seen by observers.
///
/// Exact per-event backends produce one record per reaction with
/// `event = Some(..)` and `firings = 1`. Aggregating backends (tau-leaping
/// leaps, ODE integration steps) produce one record per *step* with
/// `event = None` and `firings` equal to the number of reaction firings the
/// step represents (0 for the ODE). The count slices are borrowed from the
/// driver's buffers, so recording a step never allocates regardless of `k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepRecord<'a> {
    /// The reaction that fired, when the backend resolves individual events.
    pub event: Option<PopulationEvent>,
    /// Species counts before the step.
    pub before: &'a [u64],
    /// Species counts after the step.
    pub after: &'a [u64],
    /// The backend clock after the step (continuous time for Gillespie-style
    /// backends and the ODE, the event count for the jump chain).
    pub time: f64,
    /// Number of reaction firings this record represents.
    pub firings: u64,
}

/// A streaming statistic computed along a run.
///
/// Observers are built per run from an [`ObserverSpec`], receive every
/// [`StepRecord`], and emit their [`Observation`] when the run stops.
pub trait Observer {
    /// Called once with the initial population before any step.
    fn on_start(&mut self, initial: &Population);

    /// Called after every simulated step.
    fn on_step(&mut self, step: &StepRecord<'_>);

    /// Consumes the accumulated state into the final observation.
    fn finish(&mut self) -> Observation;
}

/// The declarative description of an observer inside a scenario.
///
/// Specs are plain data so a [`Scenario`](crate::Scenario) stays cloneable
/// and shareable across threads; each backend run instantiates fresh observer
/// state from the spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObserverSpec {
    /// Record the signed plurality margin `∆_t` of the *initial* leader
    /// after every step, plus the initial margin. For `k = 2` this is the
    /// paper's signed gap (majority minus minority, relative to the initial
    /// majority).
    GapTrajectory,
    /// Accumulate the demographic-noise decomposition `F = F_ind + F_comp`
    /// of Eq. (3)/(7), over the margin of the initial leader.
    NoiseDecomposition,
    /// Count individual, competitive and *bad non-competitive* events (the
    /// paper's `I(S)`, `K(S)`, `J(S)`).
    EventCounts,
    /// Track the largest total population seen during the run.
    MaxPopulation,
}

impl ObserverSpec {
    /// Instantiates the observer for one run.
    pub fn build(&self) -> Box<dyn Observer> {
        match self {
            ObserverSpec::GapTrajectory => Box::new(GapTrajectoryObserver::default()),
            ObserverSpec::NoiseDecomposition => Box::new(NoiseObserver::default()),
            ObserverSpec::EventCounts => Box::new(EventCountObserver::default()),
            ObserverSpec::MaxPopulation => Box::new(MaxPopulationObserver::default()),
        }
    }
}

/// The value an [`Observer`] produced for one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Observation {
    /// Signed margin after every step (first entry: the initial margin).
    GapTrajectory(Vec<i64>),
    /// The demographic-noise decomposition.
    Noise(NoiseObservation),
    /// Event-class counters.
    Events(EventCounts),
    /// Largest total population observed.
    MaxPopulation(u64),
}

/// Demographic noise collected by [`ObserverSpec::NoiseDecomposition`].
///
/// Per-event backends classify every contribution into
/// [`NoiseObservation::classified`] (the paper's `F = F_ind + F_comp`).
/// Aggregating backends (tau-leaping leaps with several firings) cannot
/// attribute a step's margin change to an event class; that noise is reported
/// separately in [`NoiseObservation::unclassified`] rather than silently
/// folded into either component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NoiseObservation {
    /// Noise from steps with a resolved event, split by event kind.
    pub classified: NoiseDecomposition,
    /// Noise from unresolved (multi-firing) steps.
    pub unclassified: i64,
}

impl NoiseObservation {
    /// The total noise `F` including unclassified contributions; by the
    /// telescoping identity this always equals `∆_0 − ∆_T`.
    pub fn total(&self) -> i64 {
        self.classified.total() + self.unclassified
    }
}

/// Event-class counters collected by [`ObserverSpec::EventCounts`].
///
/// For aggregating backends the per-class split is unavailable; firings of
/// unresolved steps are counted in [`EventCounts::unclassified`] instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCounts {
    /// Individual (birth/death) reactions, the paper's `I(S)`.
    pub individual: u64,
    /// Competitive reactions, the paper's `K(S)`.
    pub competitive: u64,
    /// Individual reactions that decreased the absolute margin, the paper's
    /// `J(S)`.
    pub bad_noncompetitive: u64,
    /// Firings inside steps whose events the backend did not resolve
    /// (tau-leaping leaps with more than one firing).
    pub unclassified: u64,
}

impl EventCounts {
    /// Total number of classified firings.
    pub fn classified(&self) -> u64 {
        self.individual + self.competitive
    }
}

/// The reference species the paper's `∆` is measured against: the initial
/// plurality leader (species 0 on a tie, matching the paper's convention
/// that the first species is the majority).
fn reference_species(initial: &Population) -> usize {
    initial.leader().unwrap_or(0)
}

#[derive(Debug, Default)]
struct GapTrajectoryObserver {
    reference: usize,
    trajectory: Vec<i64>,
}

impl Observer for GapTrajectoryObserver {
    fn on_start(&mut self, initial: &Population) {
        self.reference = reference_species(initial);
        self.trajectory
            .push(initial.margin_relative_to(self.reference));
    }

    fn on_step(&mut self, step: &StepRecord<'_>) {
        self.trajectory.push(margin_of(step.after, self.reference));
    }

    fn finish(&mut self) -> Observation {
        Observation::GapTrajectory(std::mem::take(&mut self.trajectory))
    }
}

#[derive(Debug, Default)]
struct NoiseObserver {
    reference: usize,
    noise: NoiseObservation,
}

impl Observer for NoiseObserver {
    fn on_start(&mut self, initial: &Population) {
        self.reference = reference_species(initial);
    }

    fn on_step(&mut self, step: &StepRecord<'_>) {
        let f_t = margin_of(step.before, self.reference) - margin_of(step.after, self.reference);
        match step.event.map(|e| e.kind()) {
            Some(EventKind::Competitive) => self.noise.classified.competitive += f_t,
            Some(EventKind::Individual) => self.noise.classified.individual += f_t,
            // An unresolved leap mixes event classes; attributing its noise
            // to either component would corrupt the `F_ind`/`F_comp` split
            // (e.g. fabricate `F_comp = 0` for non-self-destructive models),
            // so it is tracked separately.
            None => self.noise.unclassified += f_t,
        }
    }

    fn finish(&mut self) -> Observation {
        Observation::Noise(self.noise)
    }
}

#[derive(Debug, Default)]
struct EventCountObserver {
    reference: usize,
    counts: EventCounts,
}

impl Observer for EventCountObserver {
    fn on_start(&mut self, initial: &Population) {
        self.reference = reference_species(initial);
    }

    fn on_step(&mut self, step: &StepRecord<'_>) {
        match step.event.map(|e| e.kind()) {
            Some(EventKind::Individual) => {
                self.counts.individual += 1;
                if margin_of(step.after, self.reference).abs()
                    < margin_of(step.before, self.reference).abs()
                {
                    self.counts.bad_noncompetitive += 1;
                }
            }
            Some(EventKind::Competitive) => self.counts.competitive += 1,
            None => self.counts.unclassified += step.firings,
        }
    }

    fn finish(&mut self) -> Observation {
        Observation::Events(self.counts)
    }
}

#[derive(Debug, Default)]
struct MaxPopulationObserver {
    max: u64,
}

impl Observer for MaxPopulationObserver {
    fn on_start(&mut self, initial: &Population) {
        self.max = initial.total();
    }

    fn on_step(&mut self, step: &StepRecord<'_>) {
        self.max = self.max.max(step.after.iter().sum());
    }

    fn finish(&mut self) -> Observation {
        Observation::MaxPopulation(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_lotka::{LvEvent, SpeciesIndex};

    fn record<'a>(
        event: Option<PopulationEvent>,
        before: &'a [u64],
        after: &'a [u64],
        firings: u64,
    ) -> StepRecord<'a> {
        StepRecord {
            event,
            before,
            after,
            time: 0.0,
            firings,
        }
    }

    fn pop(counts: &[u64]) -> Population {
        Population::from(counts)
    }

    #[test]
    fn gap_trajectory_is_relative_to_initial_majority() {
        // Species 1 is the initial majority, so ∆ = x1 − x0.
        let mut obs = ObserverSpec::GapTrajectory.build();
        obs.on_start(&pop(&[3, 5]));
        obs.on_step(&record(
            Some(PopulationEvent::Birth(0)),
            &[3, 5],
            &[4, 5],
            1,
        ));
        assert_eq!(obs.finish(), Observation::GapTrajectory(vec![2, 1]));
    }

    #[test]
    fn gap_trajectory_tracks_the_initial_leader_for_three_species() {
        // Species 2 leads initially; ∆ = x2 − max(x0, x1).
        let mut obs = ObserverSpec::GapTrajectory.build();
        obs.on_start(&pop(&[3, 1, 5]));
        obs.on_step(&record(
            Some(PopulationEvent::Birth(0)),
            &[3, 1, 5],
            &[4, 1, 5],
            1,
        ));
        obs.on_step(&record(
            Some(PopulationEvent::Interspecific {
                attacker: 0,
                victim: 2,
            }),
            &[4, 1, 5],
            &[3, 1, 4],
            1,
        ));
        assert_eq!(obs.finish(), Observation::GapTrajectory(vec![2, 1, 1]));
    }

    #[test]
    fn noise_splits_by_event_kind() {
        let mut obs = ObserverSpec::NoiseDecomposition.build();
        obs.on_start(&pop(&[6, 4]));
        // Individual death of the majority: ∆ 2 → 1, F_ind += 1.
        obs.on_step(&record(
            Some(LvEvent::Death(SpeciesIndex::Zero).into()),
            &[6, 4],
            &[5, 4],
            1,
        ));
        // Intraspecific competition in species 0 (self-destructive): ∆ 1 → −1.
        obs.on_step(&record(
            Some(LvEvent::Intraspecific(SpeciesIndex::Zero).into()),
            &[5, 4],
            &[3, 4],
            1,
        ));
        match obs.finish() {
            Observation::Noise(noise) => {
                assert_eq!(noise.classified.individual, 1);
                assert_eq!(noise.classified.competitive, 2);
                assert_eq!(noise.total(), 3);
            }
            other => panic!("unexpected observation {other:?}"),
        }
    }

    #[test]
    fn unresolved_leap_noise_is_tracked_separately() {
        let mut obs = ObserverSpec::NoiseDecomposition.build();
        obs.on_start(&pop(&[6, 4]));
        // An unresolved multi-firing leap that moves the gap 2 → 1.
        obs.on_step(&record(None, &[6, 4], &[5, 4], 3));
        match obs.finish() {
            Observation::Noise(noise) => {
                assert_eq!(noise.classified, NoiseDecomposition::default());
                assert_eq!(noise.unclassified, 1);
                assert_eq!(noise.total(), 1);
            }
            other => panic!("unexpected observation {other:?}"),
        }
    }

    #[test]
    fn event_counts_classify_bad_events_and_leaps() {
        let mut obs = ObserverSpec::EventCounts.build();
        obs.on_start(&pop(&[5, 4]));
        // A bad individual event: |∆| decreases.
        obs.on_step(&record(
            Some(PopulationEvent::Death(0)),
            &[5, 4],
            &[4, 4],
            1,
        ));
        // A competitive event.
        obs.on_step(&record(
            Some(PopulationEvent::Interspecific {
                attacker: 0,
                victim: 1,
            }),
            &[4, 4],
            &[3, 3],
            1,
        ));
        // An unresolved leap worth five firings.
        obs.on_step(&record(None, &[3, 3], &[2, 1], 5));
        match obs.finish() {
            Observation::Events(counts) => {
                assert_eq!(counts.individual, 1);
                assert_eq!(counts.bad_noncompetitive, 1);
                assert_eq!(counts.competitive, 1);
                assert_eq!(counts.unclassified, 5);
                assert_eq!(counts.classified(), 2);
            }
            other => panic!("unexpected observation {other:?}"),
        }
    }

    #[test]
    fn max_population_tracks_the_peak() {
        let mut obs = ObserverSpec::MaxPopulation.build();
        obs.on_start(&pop(&[5, 5]));
        obs.on_step(&record(None, &[5, 5], &[9, 9], 8));
        obs.on_step(&record(None, &[9, 9], &[2, 2], 14));
        assert_eq!(obs.finish(), Observation::MaxPopulation(18));
    }
}
