//! The composable observer API.
//!
//! A [`Scenario`](crate::Scenario) carries a set of [`ObserverSpec`]s; every
//! backend builds one [`Observer`] per spec per run, feeds it a
//! [`StepRecord`] after every simulated step, and collects one
//! [`Observation`] from each observer when the run stops. What used to be the
//! hard-coded field collection of `lv_lotka::run_majority` is now the four
//! built-in observers — gap trajectory, noise decomposition, event counts and
//! max population — and `MajorityOutcome` is a *derived view* assembled from
//! their observations (see [`RunReport::to_majority_outcome`]).
//!
//! [`RunReport::to_majority_outcome`]: crate::RunReport::to_majority_outcome

use lv_lotka::{EventKind, LvConfiguration, LvEvent, NoiseDecomposition, SpeciesIndex};
use serde::{Deserialize, Serialize};

/// One simulated step as seen by observers.
///
/// Exact per-event backends produce one record per reaction with
/// `event = Some(..)` and `firings = 1`. Aggregating backends (tau-leaping
/// leaps, ODE integration steps) produce one record per *step* with
/// `event = None` and `firings` equal to the number of reaction firings the
/// step represents (0 for the ODE).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepRecord {
    /// The reaction that fired, when the backend resolves individual events.
    pub event: Option<LvEvent>,
    /// The configuration before the step.
    pub before: LvConfiguration,
    /// The configuration after the step.
    pub after: LvConfiguration,
    /// The backend clock after the step (continuous time for Gillespie-style
    /// backends and the ODE, the event count for the jump chain).
    pub time: f64,
    /// Number of reaction firings this record represents.
    pub firings: u64,
}

/// A streaming statistic computed along a run.
///
/// Observers are built per run from an [`ObserverSpec`], receive every
/// [`StepRecord`], and emit their [`Observation`] when the run stops.
pub trait Observer {
    /// Called once with the initial configuration before any step.
    fn on_start(&mut self, initial: LvConfiguration);

    /// Called after every simulated step.
    fn on_step(&mut self, step: &StepRecord);

    /// Consumes the accumulated state into the final observation.
    fn finish(&mut self) -> Observation;
}

/// The declarative description of an observer inside a scenario.
///
/// Specs are plain data so a [`Scenario`](crate::Scenario) stays cloneable
/// and shareable across threads; each backend run instantiates fresh observer
/// state from the spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObserverSpec {
    /// Record the signed gap `∆_t` (majority minus minority, relative to the
    /// *initial* majority) after every step, plus the initial gap.
    GapTrajectory,
    /// Accumulate the demographic-noise decomposition `F = F_ind + F_comp`
    /// of Eq. (3)/(7).
    NoiseDecomposition,
    /// Count individual, competitive and *bad non-competitive* events (the
    /// paper's `I(S)`, `K(S)`, `J(S)`).
    EventCounts,
    /// Track the largest total population seen during the run.
    MaxPopulation,
}

impl ObserverSpec {
    /// Instantiates the observer for one run.
    pub fn build(&self) -> Box<dyn Observer> {
        match self {
            ObserverSpec::GapTrajectory => Box::new(GapTrajectoryObserver::default()),
            ObserverSpec::NoiseDecomposition => Box::new(NoiseObserver::default()),
            ObserverSpec::EventCounts => Box::new(EventCountObserver::default()),
            ObserverSpec::MaxPopulation => Box::new(MaxPopulationObserver::default()),
        }
    }
}

/// The value an [`Observer`] produced for one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Observation {
    /// Signed gap after every step (first entry: the initial gap).
    GapTrajectory(Vec<i64>),
    /// The demographic-noise decomposition.
    Noise(NoiseObservation),
    /// Event-class counters.
    Events(EventCounts),
    /// Largest total population observed.
    MaxPopulation(u64),
}

/// Demographic noise collected by [`ObserverSpec::NoiseDecomposition`].
///
/// Per-event backends classify every contribution into
/// [`NoiseObservation::classified`] (the paper's `F = F_ind + F_comp`).
/// Aggregating backends (tau-leaping leaps with several firings) cannot
/// attribute a step's gap change to an event class; that noise is reported
/// separately in [`NoiseObservation::unclassified`] rather than silently
/// folded into either component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NoiseObservation {
    /// Noise from steps with a resolved event, split by event kind.
    pub classified: NoiseDecomposition,
    /// Noise from unresolved (multi-firing) steps.
    pub unclassified: i64,
}

impl NoiseObservation {
    /// The total noise `F` including unclassified contributions; by the
    /// telescoping identity this always equals `∆_0 − ∆_T`.
    pub fn total(&self) -> i64 {
        self.classified.total() + self.unclassified
    }
}

/// Event-class counters collected by [`ObserverSpec::EventCounts`].
///
/// For aggregating backends the per-class split is unavailable; firings of
/// unresolved steps are counted in [`EventCounts::unclassified`] instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCounts {
    /// Individual (birth/death) reactions, the paper's `I(S)`.
    pub individual: u64,
    /// Competitive reactions, the paper's `K(S)`.
    pub competitive: u64,
    /// Individual reactions that decreased the absolute gap, the paper's
    /// `J(S)`.
    pub bad_noncompetitive: u64,
    /// Firings inside steps whose events the backend did not resolve
    /// (tau-leaping leaps with more than one firing).
    pub unclassified: u64,
}

impl EventCounts {
    /// Total number of classified firings.
    pub fn classified(&self) -> u64 {
        self.individual + self.competitive
    }
}

/// The sign converting the raw gap `x_0 − x_1` into the paper's `∆`
/// (initial-majority count minus initial-minority count; species 0 is the
/// reference on a tie).
fn majority_sign(initial: LvConfiguration) -> i64 {
    match initial.majority() {
        Some(SpeciesIndex::One) => -1,
        _ => 1,
    }
}

#[derive(Debug, Default)]
struct GapTrajectoryObserver {
    sign: i64,
    trajectory: Vec<i64>,
}

impl Observer for GapTrajectoryObserver {
    fn on_start(&mut self, initial: LvConfiguration) {
        self.sign = majority_sign(initial);
        self.trajectory.push(self.sign * initial.gap());
    }

    fn on_step(&mut self, step: &StepRecord) {
        self.trajectory.push(self.sign * step.after.gap());
    }

    fn finish(&mut self) -> Observation {
        Observation::GapTrajectory(std::mem::take(&mut self.trajectory))
    }
}

#[derive(Debug, Default)]
struct NoiseObserver {
    sign: i64,
    noise: NoiseObservation,
}

impl Observer for NoiseObserver {
    fn on_start(&mut self, initial: LvConfiguration) {
        self.sign = majority_sign(initial);
    }

    fn on_step(&mut self, step: &StepRecord) {
        let f_t = self.sign * (step.before.gap() - step.after.gap());
        match step.event.map(|e| e.kind()) {
            Some(EventKind::Competitive) => self.noise.classified.competitive += f_t,
            Some(EventKind::Individual) => self.noise.classified.individual += f_t,
            // An unresolved leap mixes event classes; attributing its noise
            // to either component would corrupt the `F_ind`/`F_comp` split
            // (e.g. fabricate `F_comp = 0` for non-self-destructive models),
            // so it is tracked separately.
            None => self.noise.unclassified += f_t,
        }
    }

    fn finish(&mut self) -> Observation {
        Observation::Noise(self.noise)
    }
}

#[derive(Debug, Default)]
struct EventCountObserver {
    counts: EventCounts,
}

impl Observer for EventCountObserver {
    fn on_start(&mut self, _initial: LvConfiguration) {}

    fn on_step(&mut self, step: &StepRecord) {
        match step.event.map(|e| e.kind()) {
            Some(EventKind::Individual) => {
                self.counts.individual += 1;
                if step.after.gap().abs() < step.before.gap().abs() {
                    self.counts.bad_noncompetitive += 1;
                }
            }
            Some(EventKind::Competitive) => self.counts.competitive += 1,
            None => self.counts.unclassified += step.firings,
        }
    }

    fn finish(&mut self) -> Observation {
        Observation::Events(self.counts)
    }
}

#[derive(Debug, Default)]
struct MaxPopulationObserver {
    max: u64,
}

impl Observer for MaxPopulationObserver {
    fn on_start(&mut self, initial: LvConfiguration) {
        self.max = initial.total();
    }

    fn on_step(&mut self, step: &StepRecord) {
        self.max = self.max.max(step.after.total());
    }

    fn finish(&mut self) -> Observation {
        Observation::MaxPopulation(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(
        event: Option<LvEvent>,
        before: (u64, u64),
        after: (u64, u64),
        firings: u64,
    ) -> StepRecord {
        StepRecord {
            event,
            before: before.into(),
            after: after.into(),
            time: 0.0,
            firings,
        }
    }

    #[test]
    fn gap_trajectory_is_relative_to_initial_majority() {
        // Species 1 is the initial majority, so ∆ = x1 − x0.
        let mut obs = ObserverSpec::GapTrajectory.build();
        obs.on_start((3, 5).into());
        obs.on_step(&record(
            Some(LvEvent::Birth(SpeciesIndex::Zero)),
            (3, 5),
            (4, 5),
            1,
        ));
        assert_eq!(obs.finish(), Observation::GapTrajectory(vec![2, 1]));
    }

    #[test]
    fn noise_splits_by_event_kind() {
        let mut obs = ObserverSpec::NoiseDecomposition.build();
        obs.on_start((6, 4).into());
        // Individual death of the majority: ∆ 2 → 1, F_ind += 1.
        obs.on_step(&record(
            Some(LvEvent::Death(SpeciesIndex::Zero)),
            (6, 4),
            (5, 4),
            1,
        ));
        // Intraspecific competition in species 0 (self-destructive): ∆ 1 → −1.
        obs.on_step(&record(
            Some(LvEvent::Intraspecific(SpeciesIndex::Zero)),
            (5, 4),
            (3, 4),
            1,
        ));
        match obs.finish() {
            Observation::Noise(noise) => {
                assert_eq!(noise.classified.individual, 1);
                assert_eq!(noise.classified.competitive, 2);
                assert_eq!(noise.total(), 3);
            }
            other => panic!("unexpected observation {other:?}"),
        }
    }

    #[test]
    fn unresolved_leap_noise_is_tracked_separately() {
        let mut obs = ObserverSpec::NoiseDecomposition.build();
        obs.on_start((6, 4).into());
        // An unresolved multi-firing leap that moves the gap 2 → 1.
        obs.on_step(&record(None, (6, 4), (5, 4), 3));
        match obs.finish() {
            Observation::Noise(noise) => {
                assert_eq!(noise.classified, NoiseDecomposition::default());
                assert_eq!(noise.unclassified, 1);
                assert_eq!(noise.total(), 1);
            }
            other => panic!("unexpected observation {other:?}"),
        }
    }

    #[test]
    fn event_counts_classify_bad_events_and_leaps() {
        let mut obs = ObserverSpec::EventCounts.build();
        obs.on_start((5, 4).into());
        // A bad individual event: |gap| decreases.
        obs.on_step(&record(
            Some(LvEvent::Death(SpeciesIndex::Zero)),
            (5, 4),
            (4, 4),
            1,
        ));
        // A competitive event.
        obs.on_step(&record(
            Some(LvEvent::Interspecific {
                attacker: SpeciesIndex::Zero,
            }),
            (4, 4),
            (3, 3),
            1,
        ));
        // An unresolved leap worth five firings.
        obs.on_step(&record(None, (3, 3), (2, 1), 5));
        match obs.finish() {
            Observation::Events(counts) => {
                assert_eq!(counts.individual, 1);
                assert_eq!(counts.bad_noncompetitive, 1);
                assert_eq!(counts.competitive, 1);
                assert_eq!(counts.unclassified, 5);
                assert_eq!(counts.classified(), 2);
            }
            other => panic!("unexpected observation {other:?}"),
        }
    }

    #[test]
    fn max_population_tracks_the_peak() {
        let mut obs = ObserverSpec::MaxPopulation.build();
        obs.on_start((5, 5).into());
        obs.on_step(&record(None, (5, 5), (9, 9), 8));
        obs.on_step(&record(None, (9, 9), (2, 2), 14));
        assert_eq!(obs.finish(), Observation::MaxPopulation(18));
    }
}
