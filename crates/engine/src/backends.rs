//! The built-in backends: one exact specialised jump chain, three generic
//! CRN simulators, and the deterministic ODE — all defined over `k`-species
//! scenarios.

use crate::backend::{Backend, Driver};
use crate::report::RunReport;
use crate::scenario::{Scenario, ScenarioModel};
use lv_crn::simulators::{
    GillespieDirect, JumpChain, NextReaction, StochasticSimulator, TauLeaping,
};
use lv_crn::{State, StopReason};
use lv_lotka::{CompetitionKind, LvJumpChain, MultiLvModel, PopulationEvent};
use lv_ode::{CompetitiveLv, CompetitiveLvK, DynRk4, OdeSystem, Rk4};
use rand::rngs::StdRng;

/// The exact discrete-time jump chain (the paper's chain `S = (S_t)`).
///
/// Two-species scenarios run on [`LvJumpChain`], the bespoke specialised
/// stepper migrated from `lv_lotka::run_majority`: on the same RNG stream it
/// visits exactly the same states, so its reports reproduce `run_majority`
/// bit for bit. `k`-species scenarios run the same embedded jump chain
/// through the generic CRN simulator ([`lv_crn::simulators::JumpChain`]) on
/// the model's reaction network.
#[derive(Debug, Clone, Copy, Default)]
pub struct JumpChainBackend;

impl Backend for JumpChainBackend {
    fn name(&self) -> &'static str {
        "jump-chain"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["jump", "exact"]
    }

    fn description(&self) -> &'static str {
        "exact embedded jump chain (specialised two-species fast path; CRN chain for k > 2)"
    }

    fn run(&self, scenario: &Scenario, rng: &mut StdRng) -> RunReport {
        let model = match scenario.model() {
            ScenarioModel::TwoSpecies(model) => model,
            ScenarioModel::MultiSpecies(_) => {
                // The generic CRN jump chain simulates the identical embedded
                // chain; only the two-species case has a faster specialised
                // stepper.
                let crn = scenario.crn_form();
                let mut sim = JumpChain::new(&crn.network, initial_state(scenario), rng);
                return drive_crn(self.name(), scenario, &mut sim, &crn.events);
            }
        };
        let initial = scenario
            .initial()
            .as_lv_configuration()
            .expect("two-species model has a two-species initial population");
        let mut chain = LvJumpChain::new(*model, initial);
        let mut driver = Driver::new(scenario);
        loop {
            if let Some(reason) = driver.check_stop() {
                return driver.finish(self.name(), reason);
            }
            match chain.step(rng) {
                Some(event) => {
                    let time = (driver.events() + 1) as f64;
                    let (x0, x1) = chain.state().counts();
                    driver.record(Some(event.into()), &[x0, x1], time, 1);
                }
                None => return driver.finish(self.name(), StopReason::Absorbed),
            }
        }
    }
}

/// Drives any generic CRN simulator through the shared [`Driver`].
fn drive_crn<S: StochasticSimulator>(
    name: &'static str,
    scenario: &Scenario,
    sim: &mut S,
    event_map: &[PopulationEvent],
) -> RunReport {
    let mut driver = Driver::new(scenario);
    loop {
        if let Some(reason) = driver.check_stop() {
            return driver.finish(name, reason);
        }
        let events_before = sim.events();
        match sim.step() {
            Some(event) => {
                let firings = sim.events() - events_before;
                // A step representing exactly one firing is a resolved event;
                // multi-firing leaps (and empty leaps, which report no
                // reaction at all) stay unclassified.
                let lv_event = match event.reaction {
                    Some(reaction) if firings == 1 => Some(event_map[reaction.index()]),
                    _ => None,
                };
                driver.record(lv_event, sim.state().counts(), sim.time(), firings);
            }
            None => return driver.finish(name, StopReason::Absorbed),
        }
    }
}

fn initial_state(scenario: &Scenario) -> State {
    State::from(scenario.initial().counts())
}

/// The Gillespie direct method on the model's reaction network: exact
/// continuous-time stochastic simulation with reaction-local propensity
/// updates.
#[derive(Debug, Clone, Copy, Default)]
pub struct GillespieDirectBackend;

impl Backend for GillespieDirectBackend {
    fn name(&self) -> &'static str {
        "gillespie-direct"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["direct", "gillespie", "ssa"]
    }

    fn description(&self) -> &'static str {
        "exact continuous-time Gillespie direct method on the generic CRN"
    }

    fn run(&self, scenario: &Scenario, rng: &mut StdRng) -> RunReport {
        let crn = scenario.crn_form();
        let mut sim = GillespieDirect::new(&crn.network, initial_state(scenario), rng);
        drive_crn(self.name(), scenario, &mut sim, &crn.events)
    }
}

/// The next-reaction method: exact continuous-time simulation keeping one
/// exponential clock per reaction.
#[derive(Debug, Clone, Copy, Default)]
pub struct NextReactionBackend;

impl Backend for NextReactionBackend {
    fn name(&self) -> &'static str {
        "next-reaction"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["nrm"]
    }

    fn description(&self) -> &'static str {
        "exact continuous-time next-reaction method (independent exponential clocks)"
    }

    fn run(&self, scenario: &Scenario, rng: &mut StdRng) -> RunReport {
        let crn = scenario.crn_form();
        let mut sim = NextReaction::new(&crn.network, initial_state(scenario), rng);
        drive_crn(self.name(), scenario, &mut sim, &crn.events)
    }
}

/// Approximate accelerated simulation via explicit tau-leaping; the leap
/// length comes from [`Scenario::tau`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TauLeapingBackend;

impl Backend for TauLeapingBackend {
    fn name(&self) -> &'static str {
        "tau-leaping"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["tau"]
    }

    fn description(&self) -> &'static str {
        "approximate tau-leaping (Poisson leaps, rejection near boundaries)"
    }

    fn run(&self, scenario: &Scenario, rng: &mut StdRng) -> RunReport {
        let crn = scenario.crn_form();
        let mut sim = TauLeaping::new(&crn.network, initial_state(scenario), scenario.tau(), rng);
        drive_crn(self.name(), scenario, &mut sim, &crn.events)
    }
}

/// The deterministic mean-field backend: integrates the competitive
/// Lotka–Volterra ODE (Eq. 4, generalised to `k` species) with fixed-step
/// RK4 and reports the rounded trajectory through the same scenario
/// interface.
///
/// For two-species models, densities map to the symmetric ODE coefficients
/// as follows (neutral-rate interpretation; per-event population loss
/// divided by the event rate):
///
/// | competition | `α′` | `γ′` |
/// |---|---|---|
/// | self-destructive | `α_0 + α_1` | `(γ_0 + γ_1)/2` |
/// | non-self-destructive | `(α_0 + α_1)/2` | `(γ_0 + γ_1)/4` |
///
/// `k`-species models use the per-entry generalisation of the same mapping
/// ([`MultiLvModel::mean_field_matrix`]) on the
/// [`CompetitiveLvK`] system.
///
/// The backend is deterministic: the RNG argument is ignored, `events` stays
/// zero and `steps` counts integration steps. Because no reactions fire, a
/// scenario's `max_events` budget is applied to integration *steps* instead,
/// so every budgeted scenario still terminates (and truncates) on this
/// backend like on the stochastic ones. Step sizes adapt to the local
/// dynamics (at most ~5% relative change per species per step, capped at
/// [`Scenario::ode_step`]), which keeps the integration stable for the large
/// mass-action propensities of big populations. A species is considered
/// extinct when its density drops below one half (the rounded count hits
/// zero). When the stop condition has no `max_time`, integration stops at
/// [`Scenario::ode_horizon`].
#[derive(Debug, Clone, Copy, Default)]
pub struct OdeBackend;

impl OdeBackend {
    /// The symmetric two-species mean-field ODE for a scenario's model.
    pub fn system_for(model: &lv_lotka::LvModel) -> CompetitiveLv {
        let rates = model.rates();
        let (alpha_factor, gamma_factor) = match model.kind() {
            CompetitionKind::SelfDestructive => (1.0, 0.5),
            CompetitionKind::NonSelfDestructive => (0.5, 0.25),
        };
        CompetitiveLv::new(
            rates.beta - rates.delta,
            alpha_factor * rates.alpha_total(),
            gamma_factor * rates.gamma_total(),
        )
    }

    /// The `k`-species mean-field ODE for a multi-species model:
    /// `dx_i/dt = x_i (r_i − Σ_j a_ij x_j)` with `r` the per-species growth
    /// rates and `a` the [`MultiLvModel::mean_field_matrix`].
    pub fn system_for_multi(model: &MultiLvModel) -> CompetitiveLvK {
        CompetitiveLvK::new(model.growth_rates(), model.mean_field_matrix())
    }
}

fn rounded_count(v: f64) -> u64 {
    if v <= 0.0 {
        0
    } else {
        v.round() as u64
    }
}

/// The shared adaptive-step control: bound the per-step *relative* change of
/// every species to ~5% (mass-action propensities scale with population
/// products, so a fixed step would be unstable for large populations).
fn adaptive_step(y: &[f64], dy: &[f64], step_cap: f64, remaining: f64) -> f64 {
    let mut rate = 0.0f64;
    for (value, slope) in y.iter().zip(dy) {
        rate = rate.max(slope.abs() / value.max(1.0));
    }
    let h = if rate > 0.0 {
        (0.05 / rate).min(step_cap)
    } else {
        step_cap
    };
    h.min(remaining)
}

impl Backend for OdeBackend {
    fn name(&self) -> &'static str {
        "ode"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["deterministic", "mean-field"]
    }

    fn description(&self) -> &'static str {
        "deterministic mean-field ODE (Eq. 4, k-species) via fixed-step RK4; ignores the RNG"
    }

    fn deterministic(&self) -> bool {
        true
    }

    fn run(&self, scenario: &Scenario, _rng: &mut StdRng) -> RunReport {
        match scenario.model() {
            ScenarioModel::TwoSpecies(model) => {
                let system = OdeBackend::system_for(model);
                let sys = &system;
                run_ode(
                    self.name(),
                    scenario,
                    |y, dy| {
                        let d = sys.derivative(&[y[0], y[1]]);
                        dy.copy_from_slice(&d);
                    },
                    |y, h| {
                        let next = Rk4::single_step(sys, [y[0], y[1]], h);
                        y.copy_from_slice(&next);
                    },
                )
            }
            ScenarioModel::MultiSpecies(model) => {
                let system = OdeBackend::system_for_multi(model);
                let mut stepper = DynRk4::new(model.species_count());
                let sys = &system;
                run_ode(
                    self.name(),
                    scenario,
                    |y, dy| sys.derivative_into(y, dy),
                    |y, h| stepper.step(sys, y, h),
                )
            }
        }
    }
}

/// The shared ODE driver loop, parameterised over the derivative and the
/// RK4 step (two-species const-generic path vs `k`-species dynamic path —
/// identical control flow, so both truncate, adapt and round the same way).
fn run_ode(
    name: &'static str,
    scenario: &Scenario,
    mut derivative: impl FnMut(&[f64], &mut [f64]),
    mut rk4_step: impl FnMut(&mut [f64], f64),
) -> RunReport {
    let step_cap = scenario.ode_step();
    let horizon = scenario
        .stop()
        .max_time()
        .unwrap_or_else(|| scenario.ode_horizon());
    let mut y: Vec<f64> = scenario
        .initial()
        .counts()
        .iter()
        .map(|&c| c as f64)
        .collect();
    let mut dy = vec![0.0; y.len()];
    let mut counts = vec![0u64; y.len()];
    let mut t = 0.0;
    let mut driver = Driver::new(scenario);
    loop {
        if let Some(reason) = driver.check_stop() {
            return driver.finish(name, reason);
        }
        // No reactions fire here, so the event budget (always vacuous on
        // `driver.events()`) bounds integration steps instead — without
        // this a scenario budgeted only by `max_events` would silently
        // run to the horizon.
        if let Some(max_events) = scenario.stop().max_events() {
            if driver.steps() >= max_events {
                return driver.finish(name, StopReason::MaxEventsReached);
            }
        }
        if t >= horizon {
            return driver.finish(name, StopReason::MaxTimeReached);
        }
        derivative(&y, &mut dy);
        let h = adaptive_step(&y, &dy, step_cap, horizon - t);
        rk4_step(&mut y, h);
        for value in y.iter_mut() {
            *value = value.max(0.0);
        }
        t += h;
        for (count, &value) in counts.iter_mut().zip(&y) {
            *count = rounded_count(value);
        }
        driver.record(None, &counts, t, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::ObserverSpec;
    use lv_lotka::LvModel;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn jump_chain_backend_reaches_consensus() {
        let scenario = Scenario::majority(LvModel::default(), 60, 40);
        let report = JumpChainBackend.run(&scenario, &mut rng(1));
        assert!(report.consensus_reached());
        assert!(!report.truncated());
        assert_eq!(report.events, report.steps);
        assert_eq!(report.time, report.events as f64);
        let counts = report.event_counts().unwrap();
        assert_eq!(counts.individual + counts.competitive, report.events);
        assert_eq!(counts.unclassified, 0);
    }

    #[test]
    fn jump_chain_backend_runs_three_species_scenarios() {
        let model = MultiLvModel::symmetric(CompetitionKind::SelfDestructive, 3, 1.0, 1.0, 1.0);
        let scenario = Scenario::plurality(model, vec![60, 25, 15]);
        let report = JumpChainBackend.run(&scenario, &mut rng(5));
        assert_eq!(report.species_count(), 3);
        assert!(report.consensus_reached());
        assert_eq!(report.events, report.steps);
        // Jump-chain clock: time is the event count.
        assert_eq!(report.time, report.events as f64);
        let outcome = report.to_plurality_outcome();
        assert_eq!(outcome.initial_leader, Some(0));
        assert!(outcome.winner.is_some() || outcome.final_state.total() == 0);
    }

    #[test]
    fn continuous_backends_report_physical_time() {
        let scenario = Scenario::majority(LvModel::default(), 30, 20);
        for backend in [
            &GillespieDirectBackend as &dyn Backend,
            &NextReactionBackend,
        ] {
            let report = backend.run(&scenario, &mut rng(2));
            assert!(report.consensus_reached(), "{}", backend.name());
            assert!(report.time > 0.0);
            assert_eq!(report.events, report.steps);
        }
    }

    #[test]
    fn tau_leaping_counts_firings_not_leaps() {
        let scenario = Scenario::majority(LvModel::default(), 400, 300).with_tau(0.05);
        let report = TauLeapingBackend.run(&scenario, &mut rng(3));
        assert!(report.consensus_reached());
        assert!(
            report.steps < report.events,
            "leaps {} should aggregate firings {}",
            report.steps,
            report.events
        );
    }

    #[test]
    fn ode_backend_is_deterministic_and_picks_the_majority() {
        let scenario =
            Scenario::majority(LvModel::default(), 600, 400).observe(ObserverSpec::GapTrajectory);
        let a = OdeBackend.run(&scenario, &mut rng(4));
        let b = OdeBackend.run(&scenario, &mut rng(999));
        assert_eq!(a, b, "ODE backend must ignore the RNG");
        assert!(a.consensus_reached());
        assert_eq!(a.final_state.winner(), a.initial.leader());
        assert_eq!(a.events, 0);
        assert!(a.steps > 0);
        // The recorded trajectory starts at the initial gap.
        assert_eq!(a.gap_trajectory().unwrap()[0], 200);
    }

    #[test]
    fn ode_backend_integrates_k_species_mean_field() {
        // Symmetric competitive exclusion: the planted 3-species majority
        // deterministically wins under the mean field.
        let model = MultiLvModel::symmetric(CompetitionKind::SelfDestructive, 3, 1.0, 1.0, 1.0);
        let scenario = Scenario::plurality(model, vec![500, 300, 200]);
        let a = OdeBackend.run(&scenario, &mut rng(6));
        let b = OdeBackend.run(&scenario, &mut rng(77));
        assert_eq!(a, b, "ODE backend must ignore the RNG");
        assert!(a.consensus_reached());
        assert_eq!(a.final_state.winner(), Some(0));
        assert_eq!(a.events, 0);
        assert!(a.steps > 0);
    }

    #[test]
    fn ode_backend_mean_field_mapping_matches_kind() {
        let sd = OdeBackend::system_for(&LvModel::neutral(
            CompetitionKind::SelfDestructive,
            1.0,
            0.25,
            2.0,
        ));
        assert_eq!(sd.growth_rate(), 0.75);
        assert_eq!(sd.interspecific(), 2.0);
        let nsd = OdeBackend::system_for(&LvModel::neutral(
            CompetitionKind::NonSelfDestructive,
            1.0,
            0.25,
            2.0,
        ));
        assert_eq!(nsd.interspecific(), 1.0);
    }

    #[test]
    fn two_species_mean_field_agrees_with_the_multi_mapping() {
        // For a neutral model the symmetric two-species system and the k = 2
        // multi mapping must be the same ODE.
        for kind in [
            CompetitionKind::SelfDestructive,
            CompetitionKind::NonSelfDestructive,
        ] {
            let model = LvModel::with_intraspecific(kind, 1.0, 0.5, 2.0, 1.0);
            let symmetric = OdeBackend::system_for(&model);
            let multi = OdeBackend::system_for_multi(&MultiLvModel::from(model));
            let y = [7.0, 3.0];
            let reference = symmetric.derivative(&y);
            let mut out = [0.0; 2];
            multi.derivative_into(&y, &mut out);
            assert!(
                (out[0] - reference[0]).abs() < 1e-12 && (out[1] - reference[1]).abs() < 1e-12,
                "{kind:?}: {out:?} vs {reference:?}"
            );
        }
    }
}
