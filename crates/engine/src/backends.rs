//! The built-in backends: one exact specialised jump chain, three generic
//! CRN simulators, and the deterministic ODE.

use crate::backend::{Backend, Driver};
use crate::report::RunReport;
use crate::scenario::Scenario;
use lv_crn::simulators::{GillespieDirect, NextReaction, StochasticSimulator, TauLeaping};
use lv_crn::{State, StopReason};
use lv_lotka::{CompetitionKind, LvConfiguration, LvEvent, LvJumpChain};
use lv_ode::{CompetitiveLv, OdeSystem, Rk4};
use rand::rngs::StdRng;

/// The exact discrete-time jump chain, specialised for the two-species
/// Lotka–Volterra state space (the paper's chain `S = (S_t)`).
///
/// This is the migration of the bespoke loop that used to live in
/// `lv_lotka::run_majority`: the same [`LvJumpChain`] stepping, with the
/// observable collection moved into composable observers. On the same RNG
/// stream it visits exactly the same states, so its reports reproduce
/// `run_majority` bit for bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct JumpChainBackend;

impl Backend for JumpChainBackend {
    fn name(&self) -> &'static str {
        "jump-chain"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["jump", "exact"]
    }

    fn description(&self) -> &'static str {
        "exact embedded jump chain, specialised for two-species LV (fastest exact backend)"
    }

    fn run(&self, scenario: &Scenario, rng: &mut StdRng) -> RunReport {
        let mut chain = LvJumpChain::new(*scenario.model(), scenario.initial());
        let mut driver = Driver::new(scenario);
        loop {
            if let Some(reason) = driver.check_stop() {
                return driver.finish(self.name(), reason);
            }
            match chain.step(rng) {
                Some(event) => {
                    let time = (driver.events() + 1) as f64;
                    driver.record(Some(event), chain.state(), time, 1);
                }
                None => return driver.finish(self.name(), StopReason::Absorbed),
            }
        }
    }
}

/// Drives any generic CRN simulator through the shared [`Driver`].
fn drive_crn<S: StochasticSimulator>(
    name: &'static str,
    scenario: &Scenario,
    sim: &mut S,
    event_map: &[LvEvent],
) -> RunReport {
    let mut driver = Driver::new(scenario);
    loop {
        if let Some(reason) = driver.check_stop() {
            return driver.finish(name, reason);
        }
        let events_before = sim.events();
        match sim.step() {
            Some(event) => {
                let firings = sim.events() - events_before;
                let counts = sim.state().counts();
                let after = LvConfiguration::new(counts[0], counts[1]);
                // A step representing exactly one firing is a resolved event;
                // multi-firing leaps stay unclassified.
                let lv_event = if firings == 1 {
                    Some(event_map[event.reaction.index()])
                } else {
                    None
                };
                driver.record(lv_event, after, sim.time(), firings);
            }
            None => return driver.finish(name, StopReason::Absorbed),
        }
    }
}

fn initial_state(scenario: &Scenario) -> State {
    let (x0, x1) = scenario.initial().counts();
    State::from(vec![x0, x1])
}

/// The Gillespie direct method on the model's reaction network: exact
/// continuous-time stochastic simulation.
#[derive(Debug, Clone, Copy, Default)]
pub struct GillespieDirectBackend;

impl Backend for GillespieDirectBackend {
    fn name(&self) -> &'static str {
        "gillespie-direct"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["direct", "gillespie", "ssa"]
    }

    fn description(&self) -> &'static str {
        "exact continuous-time Gillespie direct method on the generic CRN"
    }

    fn run(&self, scenario: &Scenario, rng: &mut StdRng) -> RunReport {
        let crn = scenario.crn_form();
        let mut sim = GillespieDirect::new(&crn.network, initial_state(scenario), rng);
        drive_crn(self.name(), scenario, &mut sim, &crn.events)
    }
}

/// The next-reaction method: exact continuous-time simulation keeping one
/// exponential clock per reaction.
#[derive(Debug, Clone, Copy, Default)]
pub struct NextReactionBackend;

impl Backend for NextReactionBackend {
    fn name(&self) -> &'static str {
        "next-reaction"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["nrm"]
    }

    fn description(&self) -> &'static str {
        "exact continuous-time next-reaction method (independent exponential clocks)"
    }

    fn run(&self, scenario: &Scenario, rng: &mut StdRng) -> RunReport {
        let crn = scenario.crn_form();
        let mut sim = NextReaction::new(&crn.network, initial_state(scenario), rng);
        drive_crn(self.name(), scenario, &mut sim, &crn.events)
    }
}

/// Approximate accelerated simulation via explicit tau-leaping; the leap
/// length comes from [`Scenario::tau`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TauLeapingBackend;

impl Backend for TauLeapingBackend {
    fn name(&self) -> &'static str {
        "tau-leaping"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["tau"]
    }

    fn description(&self) -> &'static str {
        "approximate tau-leaping (Poisson leaps, rejection near boundaries)"
    }

    fn run(&self, scenario: &Scenario, rng: &mut StdRng) -> RunReport {
        let crn = scenario.crn_form();
        let mut sim = TauLeaping::new(&crn.network, initial_state(scenario), scenario.tau(), rng);
        drive_crn(self.name(), scenario, &mut sim, &crn.events)
    }
}

/// The deterministic mean-field backend: integrates the competitive
/// Lotka–Volterra ODE (Eq. 4) with fixed-step RK4 and reports the rounded
/// trajectory through the same scenario interface.
///
/// Densities map to the symmetric ODE coefficients as follows (neutral-rate
/// interpretation; per-event population loss divided by the event rate):
///
/// | competition | `α′` | `γ′` |
/// |---|---|---|
/// | self-destructive | `α_0 + α_1` | `(γ_0 + γ_1)/2` |
/// | non-self-destructive | `(α_0 + α_1)/2` | `(γ_0 + γ_1)/4` |
///
/// The backend is deterministic: the RNG argument is ignored, `events` stays
/// zero and `steps` counts integration steps. Because no reactions fire, a
/// scenario's `max_events` budget is applied to integration *steps* instead,
/// so every budgeted scenario still terminates (and truncates) on this
/// backend like on the stochastic ones. Step sizes adapt to the local
/// dynamics (at most ~5% relative change per species per step, capped at
/// [`Scenario::ode_step`]), which keeps the integration stable for the large
/// mass-action propensities of big populations. A species is considered
/// extinct when its density drops below one half (the rounded count hits
/// zero). When the stop condition has no `max_time`, integration stops at
/// [`Scenario::ode_horizon`].
#[derive(Debug, Clone, Copy, Default)]
pub struct OdeBackend;

impl OdeBackend {
    /// The mean-field ODE for a scenario's model.
    pub fn system_for(model: &lv_lotka::LvModel) -> CompetitiveLv {
        let rates = model.rates();
        let (alpha_factor, gamma_factor) = match model.kind() {
            CompetitionKind::SelfDestructive => (1.0, 0.5),
            CompetitionKind::NonSelfDestructive => (0.5, 0.25),
        };
        CompetitiveLv::new(
            rates.beta - rates.delta,
            alpha_factor * rates.alpha_total(),
            gamma_factor * rates.gamma_total(),
        )
    }
}

fn rounded(y: [f64; 2]) -> LvConfiguration {
    let clamp = |v: f64| if v <= 0.0 { 0.0 } else { v };
    LvConfiguration::new(clamp(y[0]).round() as u64, clamp(y[1]).round() as u64)
}

impl Backend for OdeBackend {
    fn name(&self) -> &'static str {
        "ode"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["deterministic", "mean-field"]
    }

    fn description(&self) -> &'static str {
        "deterministic mean-field ODE (Eq. 4) via fixed-step RK4; ignores the RNG"
    }

    fn deterministic(&self) -> bool {
        true
    }

    fn run(&self, scenario: &Scenario, _rng: &mut StdRng) -> RunReport {
        let system = OdeBackend::system_for(scenario.model());
        let step_cap = scenario.ode_step();
        let horizon = scenario
            .stop()
            .max_time()
            .unwrap_or_else(|| scenario.ode_horizon());
        let (x0, x1) = scenario.initial().counts();
        let mut y = [x0 as f64, x1 as f64];
        let mut t = 0.0;
        let mut driver = Driver::new(scenario);
        loop {
            if let Some(reason) = driver.check_stop() {
                return driver.finish(self.name(), reason);
            }
            // No reactions fire here, so the event budget (always vacuous on
            // `driver.events()`) bounds integration steps instead — without
            // this a scenario budgeted only by `max_events` would silently
            // run to the horizon.
            if let Some(max_events) = scenario.stop().max_events() {
                if driver.steps() >= max_events {
                    return driver.finish(self.name(), StopReason::MaxEventsReached);
                }
            }
            if t >= horizon {
                return driver.finish(self.name(), StopReason::MaxTimeReached);
            }
            // Mass-action propensities scale with population products, so a
            // fixed step would be unstable for large populations. Bound the
            // per-step *relative* change of either species to ~5% instead:
            // h = 0.05 / max_i |y_i'| / max(y_i, 1), capped by `ode_step`.
            let dy = system.derivative(&y);
            let rate = (dy[0].abs() / y[0].max(1.0)).max(dy[1].abs() / y[1].max(1.0));
            let h = if rate > 0.0 {
                (0.05 / rate).min(step_cap)
            } else {
                step_cap
            }
            .min(horizon - t);
            y = Rk4::single_step(&system, y, h);
            y = [y[0].max(0.0), y[1].max(0.0)];
            t += h;
            driver.record(None, rounded(y), t, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::ObserverSpec;
    use lv_lotka::LvModel;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn jump_chain_backend_reaches_consensus() {
        let scenario = Scenario::majority(LvModel::default(), 60, 40);
        let report = JumpChainBackend.run(&scenario, &mut rng(1));
        assert!(report.consensus_reached());
        assert!(!report.truncated());
        assert_eq!(report.events, report.steps);
        assert_eq!(report.time, report.events as f64);
        let counts = report.event_counts().unwrap();
        assert_eq!(counts.individual + counts.competitive, report.events);
        assert_eq!(counts.unclassified, 0);
    }

    #[test]
    fn continuous_backends_report_physical_time() {
        let scenario = Scenario::majority(LvModel::default(), 30, 20);
        for backend in [
            &GillespieDirectBackend as &dyn Backend,
            &NextReactionBackend,
        ] {
            let report = backend.run(&scenario, &mut rng(2));
            assert!(report.consensus_reached(), "{}", backend.name());
            assert!(report.time > 0.0);
            assert_eq!(report.events, report.steps);
        }
    }

    #[test]
    fn tau_leaping_counts_firings_not_leaps() {
        let scenario = Scenario::majority(LvModel::default(), 400, 300).with_tau(0.05);
        let report = TauLeapingBackend.run(&scenario, &mut rng(3));
        assert!(report.consensus_reached());
        assert!(
            report.steps < report.events,
            "leaps {} should aggregate firings {}",
            report.steps,
            report.events
        );
    }

    #[test]
    fn ode_backend_is_deterministic_and_picks_the_majority() {
        let scenario =
            Scenario::majority(LvModel::default(), 600, 400).observe(ObserverSpec::GapTrajectory);
        let a = OdeBackend.run(&scenario, &mut rng(4));
        let b = OdeBackend.run(&scenario, &mut rng(999));
        assert_eq!(a, b, "ODE backend must ignore the RNG");
        assert!(a.consensus_reached());
        assert_eq!(a.final_state.winner(), a.initial.majority());
        assert_eq!(a.events, 0);
        assert!(a.steps > 0);
        // The recorded trajectory starts at the initial gap.
        assert_eq!(a.gap_trajectory().unwrap()[0], 200);
    }

    #[test]
    fn ode_backend_mean_field_mapping_matches_kind() {
        let sd = OdeBackend::system_for(&LvModel::neutral(
            CompetitionKind::SelfDestructive,
            1.0,
            0.25,
            2.0,
        ));
        assert_eq!(sd.growth_rate(), 0.75);
        assert_eq!(sd.interspecific(), 2.0);
        let nsd = OdeBackend::system_for(&LvModel::neutral(
            CompetitionKind::NonSelfDestructive,
            1.0,
            0.25,
            2.0,
        ));
        assert_eq!(nsd.interspecific(), 1.0);
    }
}
