//! Streaming sharded batch execution: run a [`Scenario`] many times and
//! consume the [`RunReport`]s *as trials finish*, without ever materialising
//! a batch.
//!
//! The pieces compose bottom-up:
//!
//! * [`ShardQueue`] — a lock-free work-stealing dispenser of dynamic trial
//!   chunks: idle workers claim the next shard instead of being pinned to a
//!   static range, so stragglers (trials that run long) never leave cores
//!   idle;
//! * [`ReportStream`] — an iterator over `(trial, RunReport)` pairs in
//!   strict trial order. Workers run trials out of order and feed a
//!   crossbeam channel; a small reorder buffer on the consuming side
//!   restores trial order, which is what makes every downstream fold
//!   bit-identical at every thread count (trial `i` always uses the RNG the
//!   factory returns for `i`, and results are always folded `0, 1, 2, …`);
//! * [`OnlineAccumulator`] — a statistic folded one report at a time:
//!   [`SuccessTally`] (win counts), [`RunMoments`] (Welford mean/variance
//!   of consensus event counts and extinction times), [`PluralityTally`]
//!   (per-species win counts for `k`-species scenarios);
//! * [`EarlyStop`] — a sequential stopping rule: end the stream as soon as
//!   the Wilson confidence half-width of the success probability drops to a
//!   target, so batches near the critical margin spend trials only until
//!   the estimate is tight enough; an optional decision
//!   [`boundary`](EarlyStop::with_boundary) instead stops as soon as the
//!   interval clears a success-probability boundary (how threshold probes
//!   avoid spending the full budget far from the threshold);
//! * [`ReportStream::fold_with`] — the driver tying them together, with a
//!   [`Progress`] callback per folded trial.
//!
//! ```
//! use lv_engine::stream::{ReportStream, StreamConfig, SuccessTally};
//! use lv_engine::{backend, Scenario};
//! use lv_lotka::{CompetitionKind, LvModel};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use std::sync::Arc;
//!
//! let model = LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0);
//! let scenario = Scenario::majority(model, 80, 40);
//! let stream = ReportStream::new(
//!     &scenario,
//!     backend("jump-chain").unwrap(),
//!     StreamConfig::new(64).with_threads(4),
//!     Arc::new(|trial| StdRng::seed_from_u64(0xC0FFEE ^ trial)),
//! );
//! let tally = stream.fold(SuccessTally::new());
//! assert_eq!(tally.trials(), 64);
//! assert!(tally.successes() > 32, "a 2:1 majority mostly wins");
//! ```

use crate::backend::Backend;
use crate::report::RunReport;
use crate::scenario::Scenario;
use crossbeam::channel::{bounded, Receiver, Sender};
use rand::rngs::StdRng;
use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Derives the per-trial random number generator. Trial `i` must always
/// receive the same stream regardless of scheduling — this is the whole
/// reproducibility contract of the streaming executor (the Monte-Carlo layer
/// passes `Seed::rng_for_trial`).
pub type TrialRngFactory = Arc<dyn Fn(u64) -> StdRng + Send + Sync>;

/// How a [`ReportStream`] schedules its trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    trials: u64,
    threads: usize,
    shard_size: Option<u64>,
}

impl StreamConfig {
    /// A configuration running `trials` trials on all available cores with
    /// an automatically sized shard.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn new(trials: u64) -> Self {
        assert!(trials > 0, "at least one trial is required");
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        StreamConfig {
            trials,
            threads,
            shard_size: None,
        }
    }

    /// Restricts execution to a fixed number of worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "at least one thread is required");
        self.threads = threads;
        self
    }

    /// Fixes the shard size (trials claimed per queue access). Smaller
    /// shards balance load better; larger shards amortise queue traffic.
    ///
    /// # Panics
    ///
    /// Panics if `shard_size == 0`.
    pub fn with_shard_size(mut self, shard_size: u64) -> Self {
        assert!(shard_size > 0, "shards must hold at least one trial");
        self.shard_size = Some(shard_size);
        self
    }

    /// The number of trials to run.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// The configured worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The effective shard size: the configured one, or an automatic choice
    /// giving each worker several claims (for load balancing) while keeping
    /// shards no larger than 256 trials.
    ///
    /// Load balancing only happens across *physical* cores: threads beyond
    /// the machine's available parallelism time-slice the same cores, so
    /// splitting the batch finer for them buys nothing and multiplies queue
    /// and channel traffic. Oversubscribed configurations therefore get the
    /// shard size of the physical core count.
    pub fn effective_shard_size(&self) -> u64 {
        self.shard_size.unwrap_or_else(|| {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            let balancing = self.threads.min(cores) as u64;
            (self.trials / (balancing * 4).max(1)).clamp(1, 256)
        })
    }

    /// The number of worker threads actually spawned for `scheduled` trials:
    /// the configured count, clamped so no worker exists without enough work
    /// to amortise its channel traffic.
    ///
    /// Two clamps beyond the obvious `min(scheduled)`:
    ///
    /// * **Physical cores** — threads beyond the machine's available
    ///   parallelism time-slice the same cores; they add channel and queue
    ///   traffic without adding throughput (BENCH_7 measured the 512-trial
    ///   success-probability batch *slower* at 4 threads than at 1 on a
    ///   single-core host for exactly this reason).
    /// * **Flush chunks** — delivery happens in [`FLUSH_TRIALS`]-sized
    ///   chunks, so a batch of `scheduled` trials contains only
    ///   `⌈scheduled / FLUSH_TRIALS⌉` chunks of per-worker work worth
    ///   parallelising; more workers than chunks just fragments delivery
    ///   into sub-chunk messages.
    ///
    /// When the clamp leaves a single worker the stream runs sequentially on
    /// the consuming thread, with no queue or channel at all.
    pub fn effective_workers(&self, scheduled: u64) -> usize {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let chunks = scheduled.div_ceil(FLUSH_TRIALS).max(1);
        self.threads
            .min(cores)
            .min(chunks.min(usize::MAX as u64) as usize)
            .min(scheduled.min(usize::MAX as u64) as usize)
            .max(1)
    }
}

/// How many completed trials a parallel worker accumulates before flushing
/// them to the consumer in a single channel message.
///
/// This decouples *delivery* granularity from *load-balancing* granularity
/// (the shard size): per-trial sends cost more than a cheap trial itself,
/// while whole-shard messages would make an early-stopping consumer wait for
/// a full shard per worker before its stopping rule can see the first trial.
pub const FLUSH_TRIALS: u64 = 16;

/// A lock-free dispenser of dynamic trial shards.
///
/// Workers repeatedly [`claim`](ShardQueue::claim) the next contiguous chunk
/// of trial indices until the queue is exhausted or
/// [`halt`](ShardQueue::halt)ed. This replaces static per-worker ranges:
/// a worker that finishes early simply claims more work.
#[derive(Debug)]
pub struct ShardQueue {
    next: AtomicU64,
    trials: u64,
    shard: u64,
    halted: AtomicBool,
}

impl ShardQueue {
    /// A queue over trials `0..trials` handed out in chunks of `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard == 0`.
    pub fn new(trials: u64, shard: u64) -> Self {
        assert!(shard > 0, "shards must hold at least one trial");
        ShardQueue {
            next: AtomicU64::new(0),
            trials,
            shard,
            halted: AtomicBool::new(false),
        }
    }

    /// Claims the next shard of trial indices, or `None` when the queue is
    /// exhausted or halted.
    pub fn claim(&self) -> Option<Range<u64>> {
        if self.is_halted() {
            return None;
        }
        let start = self.next.fetch_add(self.shard, Ordering::AcqRel);
        if start >= self.trials {
            return None;
        }
        Some(start..(start + self.shard).min(self.trials))
    }

    /// Stops the queue: every subsequent [`claim`](ShardQueue::claim)
    /// returns `None`. Used by early stopping.
    pub fn halt(&self) {
        self.halted.store(true, Ordering::Release);
    }

    /// Whether the queue has been halted.
    pub fn is_halted(&self) -> bool {
        self.halted.load(Ordering::Acquire)
    }
}

/// A statistic over a stream of [`RunReport`]s, folded one trial at a time —
/// the streaming replacement for materialising a `Vec` of outcomes and
/// aggregating it afterwards.
///
/// Implementations must be insensitive to *when* trials arrive but may (and
/// the built-in ones do) depend on their *order*; [`ReportStream`] always
/// delivers trials in index order, so any accumulator folded over it is
/// bit-identical at every thread count.
pub trait OnlineAccumulator {
    /// The finished statistic.
    type Output;

    /// Folds one trial's report into the statistic.
    fn record(&mut self, trial: u64, report: &RunReport);

    /// Number of trials folded so far.
    fn trials(&self) -> u64;

    /// The running success count, when this statistic tracks one — this is
    /// what [`EarlyStop`] watches. The default (`None`) disables early
    /// stopping for the accumulator.
    fn successes(&self) -> Option<u64> {
        None
    }

    /// Finalises the statistic.
    fn finish(self) -> Self::Output;
}

/// Success tallies: how many trials reached consensus with the initial
/// leader winning ([`RunReport::plurality_won`]) — the streaming core of
/// `success_probability`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SuccessTally {
    trials: u64,
    successes: u64,
}

impl SuccessTally {
    /// An empty tally.
    pub fn new() -> Self {
        SuccessTally::default()
    }

    /// Number of successful trials so far.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Number of trials folded so far.
    pub fn trials(&self) -> u64 {
        self.trials
    }
}

impl OnlineAccumulator for SuccessTally {
    type Output = SuccessTally;

    fn record(&mut self, _trial: u64, report: &RunReport) {
        self.trials += 1;
        self.successes += u64::from(report.plurality_won());
    }

    fn trials(&self) -> u64 {
        self.trials
    }

    fn successes(&self) -> Option<u64> {
        Some(self.successes)
    }

    fn finish(self) -> SuccessTally {
        self
    }
}

/// Welford's online mean and variance: numerically stable single-pass
/// moments, the building block of the streaming accumulators.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty aggregate.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Folds one observation in.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The running mean (`0.0` over the empty sample, matching the
    /// workspace's batch statistics convention).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The population variance (`0.0` for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// The sample (Bessel-corrected) variance.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// The population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Welford moments of the consensus observables over a streamed batch:
/// event counts (the paper's consensus time `T(S)`) and extinction times
/// (the backend clock at the stop), over completed trials.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunMoments {
    trials: u64,
    completed: u64,
    truncated: u64,
    events: Welford,
    time: Welford,
}

impl RunMoments {
    /// An empty aggregate.
    pub fn new() -> Self {
        RunMoments::default()
    }

    /// Number of trials folded so far.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Number of completed (consensus-reaching) trials.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Number of truncated trials.
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    /// Moments of the consensus event count over completed trials.
    pub fn events(&self) -> &Welford {
        &self.events
    }

    /// Moments of the stop-time (extinction time for consensus runs) over
    /// completed trials.
    pub fn time(&self) -> &Welford {
        &self.time
    }
}

impl OnlineAccumulator for RunMoments {
    type Output = RunMoments;

    fn record(&mut self, _trial: u64, report: &RunReport) {
        self.trials += 1;
        if report.truncated() {
            self.truncated += 1;
        }
        if report.consensus_reached() {
            self.completed += 1;
            self.events.push(report.events as f64);
            self.time.push(report.time);
        }
    }

    fn trials(&self) -> u64 {
        self.trials
    }

    fn finish(self) -> RunMoments {
        self
    }
}

/// Per-species plurality tallies over a streamed `k`-species batch: who won
/// each completed trial, how often the initial leader prevailed, how often
/// nobody survived.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PluralityTally {
    species: usize,
    trials: u64,
    completed: u64,
    truncated: u64,
    wins: Vec<u64>,
    no_survivor: u64,
    leader_wins: u64,
}

impl PluralityTally {
    /// An empty tally over `species` species.
    pub fn new(species: usize) -> Self {
        PluralityTally {
            species,
            wins: vec![0; species],
            ..PluralityTally::default()
        }
    }

    /// Number of species.
    pub fn species(&self) -> usize {
        self.species
    }

    /// Number of trials folded so far.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Number of completed (consensus-reaching) trials.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Number of truncated trials.
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    /// Completed trials won by each species, indexed by species.
    pub fn wins(&self) -> &[u64] {
        &self.wins
    }

    /// Completed trials in which every species went extinct.
    pub fn no_survivor(&self) -> u64 {
        self.no_survivor
    }

    /// Completed trials won by the initial plurality leader.
    pub fn leader_wins(&self) -> u64 {
        self.leader_wins
    }
}

impl OnlineAccumulator for PluralityTally {
    type Output = PluralityTally;

    fn record(&mut self, _trial: u64, report: &RunReport) {
        debug_assert_eq!(report.species_count(), self.species);
        self.trials += 1;
        if report.truncated() {
            self.truncated += 1;
        }
        if report.consensus_reached() {
            self.completed += 1;
            match report.final_state.winner() {
                Some(winner) => self.wins[winner] += 1,
                None => self.no_survivor += 1,
            }
            if report.plurality_won() {
                self.leader_wins += 1;
            }
        }
    }

    fn trials(&self) -> u64 {
        self.trials
    }

    fn successes(&self) -> Option<u64> {
        Some(self.leader_wins)
    }

    fn finish(self) -> PluralityTally {
        self
    }
}

/// A sequential early-stopping rule: end the stream once the Wilson score
/// confidence interval of the success probability is narrower than a target
/// half-width, or — when a decision [`boundary`](EarlyStop::with_boundary)
/// is set — once the interval clears that boundary entirely.
///
/// The rule is evaluated after every folded trial, in trial order, so the
/// stopping point — and therefore the reported estimate — is identical at
/// every thread count. Because the Wilson half-width at the moment the rule
/// fires is at most the target, an early-stopped estimate never reports a
/// wider interval than requested.
///
/// The boundary mode is what adaptive threshold probes use: a probe far
/// from the threshold has a success probability far from the target, so the
/// interval stops straddling the boundary after a handful of trials, while
/// a probe near the threshold keeps sampling until the width target or the
/// trial budget binds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyStop {
    target_half_width: f64,
    z: f64,
    min_trials: u64,
    boundary: Option<f64>,
}

impl EarlyStop {
    /// Stop once the Wilson half-width at `z = 1.96` (95%) is at most
    /// `target_half_width`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < target_half_width < 1`.
    pub fn at_half_width(target_half_width: f64) -> Self {
        assert!(
            target_half_width > 0.0 && target_half_width < 1.0,
            "the target half-width must be in (0, 1)"
        );
        EarlyStop {
            target_half_width,
            z: 1.96,
            min_trials: 1,
            boundary: None,
        }
    }

    /// Additionally stop as soon as the Wilson interval lies entirely above
    /// or entirely below `boundary` — i.e. as soon as the sample *decides*
    /// whether the success probability clears the boundary, regardless of
    /// how wide the interval still is.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < boundary < 1`.
    pub fn with_boundary(mut self, boundary: f64) -> Self {
        assert!(
            boundary > 0.0 && boundary < 1.0,
            "the decision boundary must be in (0, 1)"
        );
        self.boundary = Some(boundary);
        self
    }

    /// Replaces the z-value (1.96 for 95%, 2.576 for 99%).
    ///
    /// # Panics
    ///
    /// Panics if `z` is not a positive finite number.
    pub fn with_z(mut self, z: f64) -> Self {
        assert!(z.is_finite() && z > 0.0, "z must be a positive number");
        self.z = z;
        self
    }

    /// Requires at least `min_trials` trials before the rule may fire.
    pub fn with_min_trials(mut self, min_trials: u64) -> Self {
        self.min_trials = min_trials.max(1);
        self
    }

    /// The target half-width.
    pub fn target_half_width(&self) -> f64 {
        self.target_half_width
    }

    /// The decision boundary, when one is set.
    pub fn boundary(&self) -> Option<f64> {
        self.boundary
    }

    /// The Wilson score half-width of `successes / trials` at this rule's
    /// z-value (the same interval `lv_sim::SuccessEstimate` reports).
    pub fn half_width(&self, successes: u64, trials: u64) -> f64 {
        crate::wilson::half_width(successes, trials, self.z)
    }

    /// The Wilson score interval of `successes / trials` at this rule's
    /// z-value, clamped to `[0, 1]` (`(0, 1)` over the empty sample).
    pub fn interval(&self, successes: u64, trials: u64) -> (f64, f64) {
        crate::wilson::interval(successes, trials, self.z)
    }

    /// Whether the rule fires for the given running tally: the half-width
    /// target is met, or (in boundary mode) the interval no longer
    /// straddles the decision boundary.
    pub fn satisfied(&self, successes: u64, trials: u64) -> bool {
        if trials < self.min_trials {
            return false;
        }
        if self.half_width(successes, trials) <= self.target_half_width {
            return true;
        }
        match self.boundary {
            Some(boundary) => {
                let (low, high) = self.interval(successes, trials);
                low > boundary || high < boundary
            }
            None => false,
        }
    }
}

/// A progress snapshot handed to the callback of
/// [`ReportStream::fold_with`] after every folded trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Progress {
    /// Trials folded so far.
    pub trials: u64,
    /// Trials originally scheduled (early stopping may end the stream
    /// before reaching this).
    pub scheduled: u64,
    /// The running success count, when the accumulator tracks one.
    pub successes: Option<u64>,
}

enum StreamInner {
    /// Single-threaded: trials run lazily, one per `next()` call.
    Sequential {
        scenario: Arc<Scenario>,
        backend: &'static dyn Backend,
        rng_for_trial: TrialRngFactory,
    },
    /// A deterministic backend yields the same report every trial: run it
    /// once, replicate the report (matching the batch runner's behaviour of
    /// executing deterministic backends a single time).
    Deterministic { report: RunReport },
    /// Sharded multi-threaded execution feeding a reorder buffer. Each
    /// channel message is one flushed chunk of a shard: the starting trial
    /// index and up to [`FLUSH_TRIALS`] reports in trial order.
    Parallel {
        receiver: Receiver<(u64, Vec<RunReport>)>,
        pending: BTreeMap<u64, RunReport>,
        queue: Arc<ShardQueue>,
        workers: Vec<JoinHandle<()>>,
        /// The first worker panic, caught on the worker so the queue halts
        /// *immediately* (instead of the surviving workers burning through
        /// every remaining trial) and re-raised on the consuming thread.
        panic: Arc<Mutex<Option<Box<dyn std::any::Any + Send>>>>,
    },
}

/// An iterator over `(trial, RunReport)` pairs of a streamed batch, in
/// strict trial order.
///
/// Trials execute on worker threads claiming dynamic shards from a
/// [`ShardQueue`] and may *finish* in any order; a reorder buffer on the
/// consuming side restores index order before yielding. Combined with the
/// per-trial RNG contract of [`TrialRngFactory`], every fold over the stream
/// is bit-identical regardless of thread count or scheduling. No batch is
/// ever materialised, no matter how slow the consumer: reports travel in
/// chunks of up to [`FLUSH_TRIALS`] per channel message (a send per trial
/// costs more than a cheap trial itself, while whole-shard messages would
/// delay early stopping by a shard per worker) through a *bounded* channel,
/// so workers block on a full channel instead of racing ahead, and the
/// reorder buffer only ever holds the few chunks in flight.
///
/// Dropping the stream halts the queue and joins the workers; a panic on a
/// worker thread is re-raised on the consuming thread once the stream
/// reaches the panicked trial.
pub struct ReportStream {
    inner: StreamInner,
    /// Next trial index to yield.
    next: u64,
    /// Total trials scheduled.
    scheduled: u64,
    /// Set once the stream has been halted (early stop).
    halted: bool,
}

impl std::fmt::Debug for ReportStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReportStream")
            .field("next", &self.next)
            .field("scheduled", &self.scheduled)
            .field("halted", &self.halted)
            .finish()
    }
}

impl ReportStream {
    /// Starts streaming `config.trials()` runs of the scenario on the given
    /// backend. Trial `i` draws its randomness from `rng_for_trial(i)`.
    ///
    /// Deterministic backends (the ODE) execute once — on
    /// `rng_for_trial(0)`, which they ignore — and the single report is
    /// yielded for every trial slot. Single-threaded configurations run
    /// trials lazily on the consuming thread, one per `next()` call.
    pub fn new(
        scenario: &Scenario,
        backend: &'static dyn Backend,
        config: StreamConfig,
        rng_for_trial: TrialRngFactory,
    ) -> Self {
        let scheduled = config.trials();
        if backend.deterministic() {
            let mut rng = rng_for_trial(0);
            let report = backend.run(scenario, &mut rng);
            return ReportStream {
                inner: StreamInner::Deterministic { report },
                next: 0,
                scheduled,
                halted: false,
            };
        }
        let threads = config.effective_workers(scheduled);
        if threads == 1 {
            return ReportStream {
                inner: StreamInner::Sequential {
                    scenario: Arc::new(scenario.clone()),
                    backend,
                    rng_for_trial,
                },
                next: 0,
                scheduled,
                halted: false,
            };
        }
        let shard = config.effective_shard_size();
        let queue = Arc::new(ShardQueue::new(scheduled, shard));
        // Bounded channel = backpressure: a consumer slower than the worker
        // pool makes the workers block on `send` instead of racing ahead and
        // buffering the whole batch. Messages are chunks of up to
        // FLUSH_TRIALS reports, so two slots per worker cap in-flight
        // reports at a few chunks per worker.
        let (sender, receiver) = bounded(threads * 2);
        // Build the scenario's CRN form once, before the workers clone the
        // Arc, so the reaction network is shared instead of rebuilt per
        // thread (protocol backends have no CRN form; skip for them).
        let scenario = Arc::new(scenario.clone());
        if backend.models_kinetics() {
            let _ = scenario.crn_form();
        }
        let panic: Arc<Mutex<Option<Box<dyn std::any::Any + Send>>>> = Arc::new(Mutex::new(None));
        let workers = (0..threads)
            .map(|_| {
                let scenario = Arc::clone(&scenario);
                let queue = Arc::clone(&queue);
                let rng_for_trial = Arc::clone(&rng_for_trial);
                let sender: Sender<(u64, Vec<RunReport>)> = sender.clone();
                let panic = Arc::clone(&panic);
                std::thread::spawn(move || {
                    while let Some(shard) = queue.claim() {
                        let mut chunk_start = shard.start;
                        let mut reports =
                            Vec::with_capacity(FLUSH_TRIALS.min(shard.end - shard.start) as usize);
                        for trial in shard {
                            if queue.is_halted() {
                                // Halted mid-shard (early stop or drop): the
                                // consumer has stopped folding, so the
                                // partial chunk is discarded.
                                return;
                            }
                            // Catch backend panics here rather than letting
                            // the thread die: the queue halts at once (so the
                            // surviving workers stop claiming trials instead
                            // of running — and buffering — the whole rest of
                            // the batch) and the payload is re-raised on the
                            // consuming thread.
                            let result =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    let mut rng = rng_for_trial(trial);
                                    backend.run(&scenario, &mut rng)
                                }));
                            match result {
                                Ok(report) => reports.push(report),
                                Err(payload) => {
                                    queue.halt();
                                    // Deliver the chunk's completed prefix —
                                    // the consumer folds trials in order up
                                    // to the panicked one before re-raising.
                                    if !reports.is_empty() {
                                        let _ = sender.send((chunk_start, reports));
                                    }
                                    let mut slot =
                                        panic.lock().unwrap_or_else(|poison| poison.into_inner());
                                    slot.get_or_insert(payload);
                                    return;
                                }
                            }
                            // Chunked sends: one message per FLUSH_TRIALS
                            // completed trials, not one per trial (per-trial
                            // sends cost more than a cheap trial itself —
                            // the 512-trial batch-streaming bench regressed
                            // 4-thread vs 1-thread on them) and not one per
                            // shard (which would delay early stopping by a
                            // whole shard per worker).
                            if reports.len() as u64 == FLUSH_TRIALS {
                                if sender
                                    .send((chunk_start, std::mem::take(&mut reports)))
                                    .is_err()
                                {
                                    // Receiver gone: the stream was dropped.
                                    return;
                                }
                                chunk_start = trial + 1;
                            }
                        }
                        if !reports.is_empty() && sender.send((chunk_start, reports)).is_err() {
                            return;
                        }
                    }
                })
            })
            .collect();
        ReportStream {
            inner: StreamInner::Parallel {
                receiver,
                pending: BTreeMap::new(),
                queue,
                workers,
                panic,
            },
            next: 0,
            scheduled,
            halted: false,
        }
    }

    /// Trials originally scheduled.
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Trials yielded so far.
    pub fn yielded(&self) -> u64 {
        self.next
    }

    /// Stops the stream: in-flight and unclaimed trials are discarded and
    /// the iterator ends. Used by early stopping; idempotent.
    pub fn halt(&mut self) {
        self.halted = true;
        if let StreamInner::Parallel { queue, .. } = &self.inner {
            queue.halt();
        }
    }

    /// Joins the parallel workers, re-raising the first worker panic
    /// (whether caught into the panic slot or propagated through a handle).
    fn join_workers(&mut self) {
        if let StreamInner::Parallel { workers, panic, .. } = &mut self.inner {
            let mut first = None;
            for worker in workers.drain(..) {
                if let Err(payload) = worker.join() {
                    first.get_or_insert(payload);
                }
            }
            let caught = panic
                .lock()
                .unwrap_or_else(|poison| poison.into_inner())
                .take();
            if let Some(payload) = caught.or(first) {
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// Folds the whole stream into the accumulator.
    pub fn fold<A: OnlineAccumulator>(self, accumulator: A) -> A {
        self.fold_with(accumulator, None, |_| {})
    }

    /// Folds the stream into the accumulator with an optional early-stopping
    /// rule and a per-trial progress callback.
    ///
    /// The rule is checked after every folded trial against the
    /// accumulator's [`successes`](OnlineAccumulator::successes) tally (it
    /// never fires for accumulators that report `None`); when it fires the
    /// stream is halted and the accumulator — whose
    /// [`trials`](OnlineAccumulator::trials) then reports the *actual* trial
    /// count — is returned.
    pub fn fold_with<A, P>(
        mut self,
        mut accumulator: A,
        early: Option<EarlyStop>,
        mut progress: P,
    ) -> A
    where
        A: OnlineAccumulator,
        P: FnMut(Progress),
    {
        let scheduled = self.scheduled;
        while let Some((trial, report)) = self.next() {
            accumulator.record(trial, &report);
            progress(Progress {
                trials: accumulator.trials(),
                scheduled,
                successes: accumulator.successes(),
            });
            if let (Some(rule), Some(successes)) = (&early, accumulator.successes()) {
                if rule.satisfied(successes, accumulator.trials()) {
                    self.halt();
                    break;
                }
            }
        }
        accumulator
    }
}

impl Iterator for ReportStream {
    type Item = (u64, RunReport);

    fn next(&mut self) -> Option<(u64, RunReport)> {
        if self.halted || self.next >= self.scheduled {
            return None;
        }
        let trial = self.next;
        // A panic caught on the sequential path, re-raised below once the
        // borrow of `inner` ends and the stream is marked halted (so a
        // caller that catches the panic sees an ended stream, exactly like
        // the parallel path).
        let mut sequential_panic: Option<Box<dyn std::any::Any + Send>> = None;
        let report = match &mut self.inner {
            StreamInner::Sequential {
                scenario,
                backend,
                rng_for_trial,
            } => {
                let mut rng = rng_for_trial(trial);
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    backend.run(scenario, &mut rng)
                })) {
                    Ok(report) => Some(report),
                    Err(payload) => {
                        sequential_panic = Some(payload);
                        None
                    }
                }
            }
            StreamInner::Deterministic { report } => Some(report.clone()),
            StreamInner::Parallel {
                receiver, pending, ..
            } => loop {
                if let Some(report) = pending.remove(&trial) {
                    break Some(report);
                }
                match receiver.recv() {
                    Ok((start, reports)) => {
                        debug_assert!(start >= trial, "shard at {start} delivered twice");
                        for (offset, report) in reports.into_iter().enumerate() {
                            pending.insert(start + offset as u64, report);
                        }
                    }
                    // Every sender hung up with trials still owed: a worker
                    // must have panicked — re-raise it below, outside this
                    // borrow of `inner`.
                    Err(_) => break None,
                }
            },
        };
        if let Some(payload) = sequential_panic {
            self.halted = true;
            std::panic::resume_unwind(payload);
        }
        let Some(report) = report else {
            // Every sender hung up with trials still owed: a worker panicked
            // and halted the queue. `join_workers` re-raises the payload; if
            // it was already consumed by an earlier call, the stream is
            // simply over.
            self.join_workers();
            self.halted = true;
            return None;
        };
        self.next += 1;
        Some((trial, report))
    }
}

impl Drop for ReportStream {
    fn drop(&mut self) {
        self.halt();
        if let StreamInner::Parallel {
            receiver, workers, ..
        } = &mut self.inner
        {
            // Drain the channel first: a worker blocked on a full bounded
            // channel must be released before it can observe the halt and
            // exit (each worker sends at most one more report after the
            // halt, then drops its sender, ending this loop).
            while receiver.recv().is_ok() {}
            // Reap the workers, swallowing panics (they were either already
            // re-raised by `next`, or the stream was deliberately
            // abandoned).
            for worker in workers.drain(..) {
                let _ = worker.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::backend;
    use lv_lotka::{CompetitionKind, LvModel};
    use rand::SeedableRng;

    fn factory(root: u64) -> TrialRngFactory {
        Arc::new(move |trial| StdRng::seed_from_u64(root ^ (trial.wrapping_mul(0x9E37_79B9))))
    }

    fn scenario() -> Scenario {
        let model = LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0);
        Scenario::majority(model, 60, 40)
    }

    #[test]
    fn shard_queue_hands_out_every_trial_exactly_once() {
        let queue = ShardQueue::new(103, 10);
        let mut seen = [false; 103];
        while let Some(range) = queue.claim() {
            for trial in range {
                assert!(!seen[trial as usize], "trial {trial} claimed twice");
                seen[trial as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some trial was never claimed");
    }

    #[test]
    fn halted_queue_stops_claiming() {
        let queue = ShardQueue::new(100, 7);
        assert!(queue.claim().is_some());
        queue.halt();
        assert!(queue.is_halted());
        assert!(queue.claim().is_none());
    }

    #[test]
    fn stream_yields_trials_in_order_at_every_thread_count() {
        let scenario = scenario();
        let backend = backend("jump-chain").unwrap();
        let sequential: Vec<(u64, RunReport)> = ReportStream::new(
            &scenario,
            backend,
            StreamConfig::new(24).with_threads(1),
            factory(1),
        )
        .collect();
        assert_eq!(sequential.len(), 24);
        for threads in [2, 4, 8] {
            let parallel: Vec<(u64, RunReport)> = ReportStream::new(
                &scenario,
                backend,
                StreamConfig::new(24)
                    .with_threads(threads)
                    .with_shard_size(3),
                factory(1),
            )
            .collect();
            assert_eq!(parallel, sequential, "{threads} threads diverged");
        }
        for (index, (trial, _)) in sequential.iter().enumerate() {
            assert_eq!(*trial, index as u64);
        }
    }

    #[test]
    fn deterministic_backends_run_once_and_replicate() {
        let stream = ReportStream::new(
            &scenario(),
            backend("ode").unwrap(),
            StreamConfig::new(50).with_threads(8),
            factory(2),
        );
        let reports: Vec<(u64, RunReport)> = stream.collect();
        assert_eq!(reports.len(), 50);
        assert!(reports.windows(2).all(|w| w[0].1 == w[1].1));
    }

    #[test]
    fn welford_matches_two_pass_reference() {
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut welford = Welford::new();
        for v in values {
            welford.push(v);
        }
        assert!((welford.mean() - 5.0).abs() < 1e-12);
        assert!((welford.variance() - 4.0).abs() < 1e-12);
        assert!((welford.std_dev() - 2.0).abs() < 1e-12);
        assert!((welford.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(Welford::new().mean(), 0.0);
        assert_eq!(Welford::new().variance(), 0.0);
    }

    #[test]
    fn run_moments_track_completed_trials() {
        let stream = ReportStream::new(
            &scenario(),
            backend("jump-chain").unwrap(),
            StreamConfig::new(32).with_threads(4),
            factory(3),
        );
        let moments = stream.fold(RunMoments::new());
        assert_eq!(moments.trials(), 32);
        assert_eq!(moments.completed(), 32);
        assert_eq!(moments.truncated(), 0);
        assert!(moments.events().mean() > 0.0);
        assert!(moments.events().variance() > 0.0);
        assert_eq!(moments.events().count(), 32);
    }

    #[test]
    fn early_stop_halts_the_stream_and_meets_its_target() {
        // A 4:1 majority wins essentially always: the half-width shrinks
        // fast, so a loose target stops long before 100 000 trials.
        let model = LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0);
        let scenario = Scenario::majority(model, 80, 20);
        let rule = EarlyStop::at_half_width(0.08).with_min_trials(8);
        let stream = ReportStream::new(
            &scenario,
            backend("jump-chain").unwrap(),
            StreamConfig::new(100_000).with_threads(4),
            factory(4),
        );
        let tally = stream.fold_with(SuccessTally::new(), Some(rule), |_| {});
        assert!(tally.trials() >= 8);
        assert!(
            tally.trials() < 1_000,
            "early stopping never fired ({} trials)",
            tally.trials()
        );
        assert!(rule.half_width(tally.successes(), tally.trials()) <= 0.08);
    }

    #[test]
    fn early_stopped_trial_count_is_thread_invariant() {
        let model = LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0);
        let scenario = Scenario::majority(model, 60, 50);
        let rule = EarlyStop::at_half_width(0.15).with_min_trials(4);
        let run = |threads| {
            ReportStream::new(
                &scenario,
                backend("jump-chain").unwrap(),
                StreamConfig::new(50_000).with_threads(threads),
                factory(5),
            )
            .fold_with(SuccessTally::new(), Some(rule), |_| {})
        };
        let single = run(1);
        assert_eq!(single, run(2));
        assert_eq!(single, run(8));
        assert!(single.trials() < 50_000, "rule never fired");
    }

    #[test]
    fn progress_callback_sees_every_folded_trial() {
        let stream = ReportStream::new(
            &scenario(),
            backend("jump-chain").unwrap(),
            StreamConfig::new(16).with_threads(2),
            factory(6),
        );
        let mut seen = Vec::new();
        let _ = stream.fold_with(SuccessTally::new(), None, |p| seen.push(p));
        assert_eq!(seen.len(), 16);
        assert_eq!(seen.last().unwrap().trials, 16);
        assert!(seen.iter().all(|p| p.scheduled == 16));
        assert!(seen.windows(2).all(|w| w[1].trials == w[0].trials + 1));
    }

    #[test]
    fn plurality_tally_counts_wins_per_species() {
        use lv_lotka::MultiLvModel;
        let model = MultiLvModel::symmetric(CompetitionKind::SelfDestructive, 3, 1.0, 1.0, 1.0);
        let scenario = Scenario::plurality(model, vec![60, 20, 20]);
        let stream = ReportStream::new(
            &scenario,
            backend("jump-chain").unwrap(),
            StreamConfig::new(40).with_threads(4),
            factory(7),
        );
        let tally = stream.fold(PluralityTally::new(3));
        assert_eq!(tally.trials(), 40);
        assert_eq!(tally.species(), 3);
        assert_eq!(
            tally.wins().iter().sum::<u64>() + tally.no_survivor(),
            tally.completed()
        );
        assert!(tally.leader_wins() > tally.completed() / 2);
    }

    #[test]
    fn halt_mid_iteration_discards_the_tail() {
        let mut stream = ReportStream::new(
            &scenario(),
            backend("jump-chain").unwrap(),
            StreamConfig::new(1_000).with_threads(4),
            factory(8),
        );
        for _ in 0..5 {
            assert!(stream.next().is_some());
        }
        stream.halt();
        assert_eq!(stream.next(), None);
        assert_eq!(stream.yielded(), 5);
        assert_eq!(stream.scheduled(), 1_000);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let _ = StreamConfig::new(0);
    }

    #[test]
    fn worker_panics_halt_the_queue_and_reach_the_consumer() {
        struct Exploding;
        impl Backend for Exploding {
            fn name(&self) -> &'static str {
                "exploding-test"
            }
            fn description(&self) -> &'static str {
                "panics on every run"
            }
            fn run(&self, _scenario: &Scenario, _rng: &mut StdRng) -> RunReport {
                panic!("backend exploded")
            }
        }
        let backend: &'static dyn Backend = Box::leak(Box::new(Exploding));
        let mut stream = ReportStream::new(
            &scenario(),
            backend,
            StreamConfig::new(10_000).with_threads(4),
            factory(9),
        );
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| stream.next()));
        let payload = result.expect_err("the worker panic must reach the consumer");
        assert_eq!(
            payload.downcast_ref::<&str>(),
            Some(&"backend exploded"),
            "unexpected panic payload"
        );
        // The queue was halted by the panicking worker, so the surviving
        // workers did not burn through (and buffer) the remaining trials.
        assert!(stream.next().is_none());
    }

    #[test]
    fn boundary_rule_fires_once_the_interval_clears_the_boundary() {
        let rule = EarlyStop::at_half_width(0.001)
            .with_boundary(0.9)
            .with_min_trials(4);
        // 2/10: the interval is far below 0.9 — decided, even though the
        // half-width target is nowhere near met.
        assert!(rule.satisfied(2, 10));
        // 9/10: the interval straddles 0.9 — undecided.
        assert!(!rule.satisfied(9, 10));
        // 100/100: entirely above 0.9 — decided.
        assert!(rule.satisfied(100, 100));
        // Below min_trials the rule never fires.
        assert!(!rule.satisfied(0, 3));
        // The interval accessor brackets the boundary exactly when the rule
        // holds off.
        let (low, high) = rule.interval(9, 10);
        assert!(low < 0.9 && high > 0.9);
        assert_eq!(rule.boundary(), Some(0.9));
        assert_eq!(EarlyStop::at_half_width(0.1).boundary(), None);
    }

    #[test]
    fn boundary_probe_spends_few_trials_far_from_the_threshold() {
        // A 4:1 majority wins nearly always, so an interval that only needs
        // to clear a 0.6 boundary decides within a couple dozen trials.
        let model = LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0);
        let scenario = Scenario::majority(model, 80, 20);
        let rule = EarlyStop::at_half_width(0.001)
            .with_boundary(0.6)
            .with_min_trials(8);
        let stream = ReportStream::new(
            &scenario,
            backend("jump-chain").unwrap(),
            StreamConfig::new(100_000).with_threads(4),
            factory(11),
        );
        let tally = stream.fold_with(SuccessTally::new(), Some(rule), |_| {});
        assert!(tally.trials() >= 8);
        assert!(
            tally.trials() <= 64,
            "decision probe burned {} trials",
            tally.trials()
        );
    }

    #[test]
    #[should_panic(expected = "decision boundary")]
    fn out_of_range_boundaries_are_rejected() {
        let _ = EarlyStop::at_half_width(0.1).with_boundary(1.0);
    }

    #[test]
    fn early_stop_half_width_matches_wilson_formula() {
        let rule = EarlyStop::at_half_width(0.05);
        // 75/100 at z = 1.96: compare against the direct formula.
        let (s, n) = (75u64, 100u64);
        let z = 1.96f64;
        let p = s as f64 / n as f64;
        let denom = 1.0 + z * z / n as f64;
        let expected =
            (z / denom) * (p * (1.0 - p) / n as f64 + z * z / (4.0 * n as f64 * n as f64)).sqrt();
        assert!((rule.half_width(s, n) - expected).abs() < 1e-15);
        assert_eq!(rule.half_width(0, 0), f64::INFINITY);
        assert!(!rule.satisfied(0, 0));
    }
}
