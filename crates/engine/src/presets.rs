//! Named multi-species scenario presets.
//!
//! Each preset builds a runnable `k`-species plurality [`Scenario`] from a
//! total population size, so CLIs, benches and the experiment suite can
//! select workloads by string — the scenario-level counterpart of the
//! string-keyed [`BackendRegistry`](crate::BackendRegistry).

use crate::scenario::Scenario;
use lv_lotka::{CompetitionKind, MultiLvModel, Population};

/// A named, parameterised multi-species scenario: a builder from the total
/// population size `n` to a plurality [`Scenario`].
#[derive(Clone, Copy)]
pub struct ScenarioPreset {
    name: &'static str,
    description: &'static str,
    species: usize,
    build: fn(u64) -> Scenario,
}

impl std::fmt::Debug for ScenarioPreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioPreset")
            .field("name", &self.name)
            .field("species", &self.species)
            .finish()
    }
}

impl ScenarioPreset {
    /// The registry name of the preset.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line human description.
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// Number of species in the scenarios this preset builds.
    pub fn species_count(&self) -> usize {
        self.species
    }

    /// Builds the scenario for a total population of (approximately) `n`
    /// individuals.
    ///
    /// # Panics
    ///
    /// Panics if `n` is too small to give every species at least one
    /// individual (presets need `n ≥ 4·k`).
    pub fn build(&self, n: u64) -> Scenario {
        assert!(
            n >= 4 * self.species as u64,
            "preset {:?} needs n >= {}",
            self.name,
            4 * self.species
        );
        (self.build)(n)
    }
}

/// Splits `n` across `weights` proportionally (weights in percent; the
/// remainder goes to species 0, the planted leader).
fn split(n: u64, weights: &[u64]) -> Population {
    debug_assert_eq!(weights.iter().sum::<u64>(), 100);
    let mut counts: Vec<u64> = weights.iter().map(|w| n * w / 100).collect();
    let assigned: u64 = counts.iter().sum();
    counts[0] += n - assigned;
    Population::new(counts)
}

/// Three-species cyclic (rock–paper–scissors) competition with a planted
/// leader: species `i` attacks species `i+1 mod 3`; species 0 starts with
/// 40% of the population. Non-self-destructive competition keeps the
/// attacker alive, so chases around the cycle are visible in the margins.
fn cyclic_three(n: u64) -> Scenario {
    let model = MultiLvModel::cyclic(CompetitionKind::NonSelfDestructive, 3, 1.0, 1.0, 1.0);
    Scenario::plurality(model, split(n, &[40, 30, 30]))
}

/// Four-species symmetric all-vs-all competition with one planted majority:
/// species 0 starts with 40% of the population, the three challengers with
/// 20% each — the `k`-species analogue of the paper's `(a, b)` majority
/// start.
fn planted_plurality_four(n: u64) -> Scenario {
    let model = MultiLvModel::symmetric(CompetitionKind::SelfDestructive, 4, 1.0, 1.0, 1.0);
    Scenario::plurality(model, split(n, &[40, 20, 20, 20]))
}

/// Two-vs-many coalition over six species: species 0 and 1 form a coalition
/// (they attack each other at a quarter of the base rate) while everyone
/// else fights everyone at the full rate; the coalition starts with half
/// the population (slightly tilted toward species 0, the planted leader),
/// the four outsiders share the rest.
fn coalition_two_vs_four(n: u64) -> Scenario {
    let mut model = MultiLvModel::symmetric(CompetitionKind::SelfDestructive, 6, 1.0, 1.0, 1.0);
    model = model.with_alpha(0, 1, 0.125).with_alpha(1, 0, 0.125);
    Scenario::plurality(model, split(n, &[27, 23, 13, 13, 12, 12]))
}

const PRESETS: &[ScenarioPreset] = &[
    ScenarioPreset {
        name: "cyclic-3",
        description: "3-species cyclic (rock-paper-scissors) competition, planted 40% leader",
        species: 3,
        build: cyclic_three,
    },
    ScenarioPreset {
        name: "planted-plurality-4",
        description: "4-species symmetric all-vs-all competition, one planted 40% majority",
        species: 4,
        build: planted_plurality_four,
    },
    ScenarioPreset {
        name: "coalition-2v4",
        description: "two-species coalition (reduced mutual attack) vs four independent rivals",
        species: 6,
        build: coalition_two_vs_four,
    },
];

/// All built-in scenario presets.
pub fn presets() -> &'static [ScenarioPreset] {
    PRESETS
}

/// Looks a preset up by name.
pub fn preset(name: &str) -> Option<&'static ScenarioPreset> {
    PRESETS.iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::BackendRegistry;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn presets_are_listed_and_looked_up_by_name() {
        let names: Vec<_> = presets().iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec!["cyclic-3", "planted-plurality-4", "coalition-2v4"]
        );
        for name in names {
            let preset = preset(name).unwrap();
            assert!(!preset.description().is_empty());
            assert!(preset.species_count() >= 3);
        }
        assert!(preset("missing").is_none());
    }

    #[test]
    fn built_scenarios_have_the_advertised_shape() {
        for preset in presets() {
            let scenario = preset.build(200);
            assert_eq!(scenario.species_count(), preset.species_count());
            assert_eq!(scenario.initial().total(), 200, "{}", preset.name());
            assert!(scenario.initial().counts().iter().all(|&c| c > 0));
            // The planted leader is species 0 in every preset.
            assert_eq!(scenario.initial().leader(), Some(0), "{}", preset.name());
            assert_eq!(scenario.observers().len(), 3);
            assert!(scenario.stop().max_events().is_some());
        }
    }

    #[test]
    fn every_preset_runs_on_every_k_species_backend() {
        for preset in presets() {
            let scenario = preset.build(60);
            for backend in BackendRegistry::global().iter_supporting(preset.species_count()) {
                let mut rng = StdRng::seed_from_u64(9);
                let report = backend.run(&scenario, &mut rng);
                assert_eq!(report.species_count(), preset.species_count());
                let outcome = report.to_plurality_outcome();
                assert_eq!(outcome.initial_leader, Some(0));
                assert!(
                    outcome.consensus_reached || outcome.truncated,
                    "{} on {} neither converged nor truncated",
                    preset.name(),
                    backend.name()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "needs n >=")]
    fn tiny_populations_are_rejected() {
        let _ = preset("coalition-2v4").unwrap().build(10);
    }
}
