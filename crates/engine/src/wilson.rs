//! Wilson score intervals for binomial success probabilities — the one
//! shared implementation behind [`EarlyStop`](crate::EarlyStop), the
//! Monte-Carlo `SuccessEstimate`, threshold search and the threshold-surface
//! server cache.
//!
//! The Wilson interval behaves sensibly at the extremes `p ∈ {0, 1}` that
//! high-probability experiments routinely produce, unlike the normal
//! approximation: its centre shrinks toward ½ and its width stays positive.
//!
//! Formulae, for `p = successes/trials`, `n = trials` and z-value `z`:
//!
//! ```text
//! denom  = 1 + z²/n
//! centre = (p + z²/2n) / denom
//! half   = (z/denom) · √(p(1−p)/n + z²/4n²)
//! ```

/// The z-value of a 95% interval, the workspace-wide default.
pub const Z95: f64 = 1.96;

/// The Wilson score half-width of `successes / trials` at z-value `z`
/// (`f64::INFINITY` over the empty sample).
pub fn half_width(successes: u64, trials: u64, z: f64) -> f64 {
    if trials == 0 {
        return f64::INFINITY;
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt()
}

/// The Wilson score interval of `successes / trials` at z-value `z`,
/// clamped to `[0, 1]` (the vacuous `(0, 1)` over the empty sample).
pub fn interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = half_width(successes, trials, z);
    ((centre - half).max(0.0), (centre + half).min(1.0))
}

/// Whether the interval at z-value `z` lies entirely on one side of
/// `boundary` — i.e. whether the sample already *decides* if the success
/// probability clears the boundary.
pub fn decides(successes: u64, trials: u64, z: f64, boundary: f64) -> bool {
    let (low, high) = interval(successes, trials, z);
    low > boundary || high < boundary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_vacuous() {
        assert!(half_width(0, 0, Z95).is_infinite());
        assert_eq!(interval(0, 0, Z95), (0.0, 1.0));
        assert!(!decides(0, 0, Z95, 0.5));
    }

    #[test]
    fn interval_contains_the_point_estimate_and_stays_in_unit_range() {
        for (s, n) in [(0u64, 50u64), (50, 50), (25, 50), (1, 1000)] {
            let (low, high) = interval(s, n, Z95);
            let p = s as f64 / n as f64;
            assert!((0.0..=1.0).contains(&low));
            assert!((0.0..=1.0).contains(&high));
            assert!(low <= p + 1e-12 && p <= high + 1e-12);
        }
    }

    #[test]
    fn half_width_shrinks_roughly_as_inverse_sqrt_trials() {
        let narrow = half_width(800, 1000, Z95);
        let wide = half_width(8, 10, Z95);
        assert!(narrow < wide / 5.0);
    }

    #[test]
    fn decides_fires_only_away_from_the_boundary() {
        assert!(decides(99, 100, Z95, 0.5));
        assert!(decides(1, 100, Z95, 0.5));
        assert!(!decides(50, 100, Z95, 0.5));
    }

    #[test]
    fn larger_z_widens_the_interval() {
        assert!(half_width(60, 100, 2.576) > half_width(60, 100, Z95));
    }
}
