//! Source model: the loaded workspace tree, per-file lexed views,
//! `#[cfg(test)]` region detection, `lv-analyze::allow` annotations, and
//! parsed `Cargo.toml` manifests (for the crate-layering pass).

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{self, Lexed};

/// A parsed `// lv-analyze::allow(pass-id, reason = "...")` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Pass the annotation suppresses.
    pub pass: String,
    /// The mandatory human-readable justification.
    pub reason: String,
    /// 1-based line the annotation *applies to*: its own line for a
    /// trailing comment, the next code line for a standalone comment.
    pub target_line: usize,
    /// 1-based line the annotation comment itself sits on.
    pub comment_line: usize,
}

/// A malformed allow annotation (bad grammar or empty reason). These are
/// reported by the driver as unsuppressable `allow-grammar` diagnostics.
#[derive(Debug, Clone)]
pub struct BadAllow {
    pub line: usize,
    pub message: String,
}

/// One `.rs` file of the workspace, lexed and annotated.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// Raw file contents.
    pub text: String,
    /// Lexed view (masked text, comments, string literals).
    pub lexed: Lexed,
    /// `test_lines[i]` is true when 1-based line `i + 1` falls inside a
    /// `#[cfg(test)]` or `#[test]` region.
    pub test_lines: Vec<bool>,
    /// Well-formed allow annotations.
    pub allows: Vec<Allow>,
    /// Malformed allow annotations.
    pub bad_allows: Vec<BadAllow>,
}

impl SourceFile {
    /// Builds the lexed + annotated view of one file.
    pub fn parse(rel: String, text: String) -> SourceFile {
        let lexed = lexer::lex(&text);
        let test_lines = detect_test_lines(&lexed.masked);
        let (allows, bad_allows) = parse_allows(&lexed);
        SourceFile {
            rel,
            text,
            lexed,
            test_lines,
            allows,
            bad_allows,
        }
    }

    /// Whether 1-based `line` is inside a test region.
    pub fn is_test_line(&self, line: usize) -> bool {
        line >= 1 && self.test_lines.get(line - 1).copied().unwrap_or(false)
    }

    /// Lines of the masked text, 1-based iteration helper.
    pub fn masked_lines(&self) -> impl Iterator<Item = (usize, &str)> {
        self.lexed
            .masked
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l))
    }
}

/// One dependency declaration in a `Cargo.toml`.
#[derive(Debug, Clone)]
pub struct Dep {
    /// The dependency's package name (dashes preserved).
    pub name: String,
    /// 1-based line of the declaration.
    pub line: usize,
    /// Whether it was declared under `[dev-dependencies]`.
    pub dev: bool,
}

/// One parsed `Cargo.toml`. The parser covers the TOML subset the
/// workspace uses: `[section]` headers, `key = value` lines,
/// `[dependencies.NAME]` sub-tables, and `#` comments (which may carry
/// `lv-analyze::allow(...)` annotations, same grammar as in Rust source).
#[derive(Debug)]
pub struct ManifestFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// `[package] name`, if the manifest declares a package.
    pub package: Option<String>,
    /// Every `[dependencies]` / `[dev-dependencies]` entry.
    pub deps: Vec<Dep>,
    /// Well-formed allow annotations found in `#` comments.
    pub allows: Vec<Allow>,
    /// Malformed allow annotations.
    pub bad_allows: Vec<BadAllow>,
}

impl ManifestFile {
    /// Parses one manifest. A trailing `# lv-analyze::allow(...)` targets
    /// its own line; a standalone one targets the next non-blank,
    /// non-comment line (i.e. the dependency entry below it).
    pub fn parse(rel: String, text: &str) -> ManifestFile {
        let mut manifest = ManifestFile {
            rel,
            package: None,
            deps: Vec::new(),
            allows: Vec::new(),
            bad_allows: Vec::new(),
        };
        // Standalone allow comments waiting for their target line.
        let mut pending: Vec<(usize, String, String)> = Vec::new();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let (code, comment) = split_toml_comment(raw);
            let code = code.trim();
            if let Some(comment) = comment {
                if let Some(after) = comment.trim_start().strip_prefix("lv-analyze::allow") {
                    match parse_allow_args(after) {
                        Ok((pass, reason)) if code.is_empty() => {
                            pending.push((line_no, pass, reason));
                        }
                        Ok((pass, reason)) => manifest.allows.push(Allow {
                            pass,
                            reason,
                            target_line: line_no,
                            comment_line: line_no,
                        }),
                        Err(message) => manifest.bad_allows.push(BadAllow {
                            line: line_no,
                            message,
                        }),
                    }
                }
            }
            if code.is_empty() {
                continue;
            }
            for (comment_line, pass, reason) in pending.drain(..) {
                manifest.allows.push(Allow {
                    pass,
                    reason,
                    target_line: line_no,
                    comment_line,
                });
            }
            if let Some(header) = code.strip_prefix('[') {
                section = header.trim_end_matches(']').trim().to_string();
                // `[dependencies.NAME]` sub-table headers declare a dep.
                for (prefix, dev) in [("dependencies.", false), ("dev-dependencies.", true)] {
                    if let Some(name) = section.strip_prefix(prefix) {
                        manifest.deps.push(Dep {
                            name: name.trim_matches(|c| c == '"' || c == '\'').to_string(),
                            line: line_no,
                            dev,
                        });
                    }
                }
                continue;
            }
            match section.as_str() {
                "package" => {
                    if let Some(value) = code.strip_prefix("name") {
                        let value = value.trim_start();
                        if let Some(value) = value.strip_prefix('=') {
                            manifest.package = Some(value.trim().trim_matches('"').to_string());
                        }
                    }
                }
                "dependencies" | "dev-dependencies" => {
                    let name: String = code
                        .chars()
                        .take_while(|&c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
                        .collect();
                    if !name.is_empty() {
                        manifest.deps.push(Dep {
                            name,
                            line: line_no,
                            dev: section == "dev-dependencies",
                        });
                    }
                }
                _ => {}
            }
        }
        manifest
    }
}

/// Splits a TOML line into (code, comment-after-`#`), ignoring `#` inside
/// double-quoted strings.
fn split_toml_comment(line: &str) -> (&str, Option<&str>) {
    let bytes = line.as_bytes();
    let mut in_string = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_string = !in_string,
            b'#' if !in_string => return (&line[..i], Some(&line[i + 1..])),
            _ => {}
        }
    }
    (line, None)
}

/// The loaded workspace: every `.rs` file under `src/` trees, every
/// `Cargo.toml`, plus on-demand access to non-Rust files (README.md,
/// PROTOCOL.md, API.txt).
#[derive(Debug)]
pub struct Workspace {
    /// Workspace root directory.
    pub root: PathBuf,
    /// All loaded files, sorted by relative path.
    pub files: Vec<SourceFile>,
    /// All `Cargo.toml` manifests, sorted by relative path.
    pub manifests: Vec<ManifestFile>,
}

impl Workspace {
    /// Walks `root` and loads every `.rs` file under a `src/` tree,
    /// skipping `target`, `.git`, `tests`, `benches` and `examples`
    /// directories. Files are sorted by relative path so diagnostics are
    /// emitted in a stable order.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut map: BTreeMap<String, String> = BTreeMap::new();
        let mut manifest_map: BTreeMap<String, String> = BTreeMap::new();
        walk(root, root, &mut map, &mut manifest_map)?;
        let files = map
            .into_iter()
            .map(|(rel, text)| SourceFile::parse(rel, text))
            .collect();
        let manifests = manifest_map
            .into_iter()
            .map(|(rel, text)| ManifestFile::parse(rel, &text))
            .collect();
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
            manifests,
        })
    }

    /// Files whose relative path starts with `prefix` (`/`-separated).
    pub fn files_under<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a SourceFile> {
        self.files.iter().filter(move |f| {
            f.rel == prefix
                || f.rel
                    .strip_prefix(prefix)
                    .is_some_and(|rest| rest.starts_with('/'))
        })
    }

    /// Looks up a loaded file by exact relative path.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }

    /// Reads a non-Rust file (README.md, PROTOCOL.md, API.txt, ...)
    /// relative to the root. Returns `None` if it does not exist.
    pub fn read_text(&self, rel: &str) -> Option<String> {
        std::fs::read_to_string(self.root.join(rel)).ok()
    }
}

fn walk(
    root: &Path,
    dir: &Path,
    map: &mut BTreeMap<String, String>,
    manifests: &mut BTreeMap<String, String>,
) -> io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(&*name, "target" | ".git" | "tests" | "benches" | "examples") {
                continue;
            }
            walk(root, &path, map, manifests)?;
        } else if name.ends_with(".rs") || &*name == "Cargo.toml" {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            if &*name == "Cargo.toml" {
                manifests.insert(rel, std::fs::read_to_string(&path)?);
                continue;
            }
            // Only files inside a `src/` tree are part of the analyzed
            // surface; build scripts and stray scripts are out of scope.
            if rel.split('/').any(|seg| seg == "src") {
                let text = std::fs::read_to_string(&path)?;
                map.insert(rel, text);
            }
        }
    }
    Ok(())
}

/// Marks the lines covered by `#[cfg(test)]` / `#[test]` items. Works on
/// the masked text: finds each attribute, skips any further attributes and
/// whitespace, then extends the region over the next braced block (or
/// through the terminating `;` for block-less items).
fn detect_test_lines(masked: &str) -> Vec<bool> {
    let n_lines = masked.lines().count();
    let mut flags = vec![false; n_lines];
    let bytes = masked.as_bytes();

    // Byte offset -> 1-based line lookup.
    let mut line_starts = vec![0usize];
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let line_of = |offset: usize| -> usize {
        match line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    };

    let mut search = 0usize;
    while let Some(found) = find_test_attr(masked, search) {
        let (attr_start, mut pos) = found;
        // Skip any subsequent attributes (e.g. `#[test]\n#[ignore]`) and
        // whitespace before the item itself.
        loop {
            while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
                pos += 1;
            }
            if pos < bytes.len() && bytes[pos] == b'#' {
                // Another attribute: skip its bracketed payload.
                pos += 1;
                if pos < bytes.len() && bytes[pos] == b'[' {
                    let mut depth = 0usize;
                    while pos < bytes.len() {
                        match bytes[pos] {
                            b'[' => depth += 1,
                            b']' => {
                                depth -= 1;
                                if depth == 0 {
                                    pos += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        pos += 1;
                    }
                    continue;
                }
            }
            break;
        }
        // The item: region runs to the matching close of its first `{`,
        // or through a `;` if one comes first (e.g. `#[cfg(test)] use ...;`).
        let mut end = pos;
        let mut depth = 0usize;
        let mut entered = false;
        while end < bytes.len() {
            match bytes[end] {
                b'{' => {
                    depth += 1;
                    entered = true;
                }
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if entered && depth == 0 {
                        end += 1;
                        break;
                    }
                }
                b';' if !entered => {
                    end += 1;
                    break;
                }
                _ => {}
            }
            end += 1;
        }
        let first = line_of(attr_start);
        let last = line_of(end.saturating_sub(1).max(attr_start));
        for line in first..=last.min(n_lines) {
            flags[line - 1] = true;
        }
        search = end.max(attr_start + 1);
    }
    flags
}

/// Finds the next `#[cfg(test)]` or `#[test]` attribute at or after
/// `from`, returning (start offset, offset just past the attribute).
fn find_test_attr(masked: &str, from: usize) -> Option<(usize, usize)> {
    let bytes = masked.as_bytes();
    let mut i = from;
    while i < bytes.len() {
        let next = masked[i..].find('#').map(|o| i + o)?;
        // Parse `#[ ... ]` and normalize its contents.
        let mut j = next + 1;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if j >= bytes.len() || bytes[j] != b'[' {
            i = next + 1;
            continue;
        }
        let open = j;
        let mut depth = 0usize;
        let mut close = open;
        while close < bytes.len() {
            match bytes[close] {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            close += 1;
        }
        if close >= bytes.len() {
            return None;
        }
        let inner: String = masked[open + 1..close]
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect();
        if inner == "test" || inner.starts_with("cfg(test)") || inner.starts_with("cfg(test,") {
            return Some((next, close + 1));
        }
        i = next + 1;
    }
    None
}

/// Extracts well- and ill-formed `lv-analyze::allow` annotations from the
/// collected comments. The grammar is
/// `// lv-analyze::allow(pass-id, reason = "...")`; the reason string is
/// mandatory and must be non-empty. A trailing comment targets its own
/// line; a standalone comment targets the next line that carries code
/// (skipping blank/comment-only lines, so annotations can stack).
fn parse_allows(lexed: &Lexed) -> (Vec<Allow>, Vec<BadAllow>) {
    const MARKER: &str = "lv-analyze::allow";
    let mut allows = Vec::new();
    let mut bad = Vec::new();

    // Lines that carry real (masked) code, for standalone-comment target
    // resolution.
    let code_lines: Vec<bool> = lexed.masked.lines().map(|l| !l.trim().is_empty()).collect();

    for comment in &lexed.comments {
        // The marker must open the comment (`// lv-analyze::allow(...)`);
        // prose that merely *mentions* the marker mid-sentence or in
        // backticks is not an annotation.
        let content = comment.text.trim_start_matches('/');
        let content = content.strip_prefix('!').unwrap_or(content).trim_start();
        let Some(after) = content.strip_prefix(MARKER) else {
            continue;
        };
        match parse_allow_args(after) {
            Ok((pass, reason)) => {
                let target_line = if comment.trailing {
                    comment.line
                } else {
                    // Next line with code. Annotation comments themselves
                    // are masked blank, so stacked annotations all resolve
                    // to the same code line.
                    (comment.line..code_lines.len())
                        .find(|&idx| code_lines[idx])
                        .map(|idx| idx + 1)
                        .unwrap_or(comment.line)
                };
                allows.push(Allow {
                    pass,
                    reason,
                    target_line,
                    comment_line: comment.line,
                });
            }
            Err(message) => bad.push(BadAllow {
                line: comment.line,
                message,
            }),
        }
    }
    (allows, bad)
}

/// Parses `(pass-id, reason = "...")` after the marker.
fn parse_allow_args(after: &str) -> Result<(String, String), String> {
    let after = after.trim_start();
    let Some(rest) = after.strip_prefix('(') else {
        return Err("expected `(` after `lv-analyze::allow`".to_string());
    };
    let Some(close) = rest.rfind(')') else {
        return Err("unclosed `lv-analyze::allow(...)`".to_string());
    };
    let inner = &rest[..close];
    let Some(comma) = inner.find(',') else {
        return Err("expected `lv-analyze::allow(pass-id, reason = \"...\")`".to_string());
    };
    let pass = inner[..comma].trim();
    if pass.is_empty() || !pass.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-') {
        return Err(format!("invalid pass id `{pass}`"));
    }
    let reason_part = inner[comma + 1..].trim();
    let Some(eq_rest) = reason_part.strip_prefix("reason") else {
        return Err("expected `reason = \"...\"`".to_string());
    };
    let eq_rest = eq_rest.trim_start();
    let Some(val) = eq_rest.strip_prefix('=') else {
        return Err("expected `=` after `reason`".to_string());
    };
    let val = val.trim();
    let Some(stripped) = val.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
        return Err("reason must be a double-quoted string".to_string());
    };
    if stripped.trim().is_empty() {
        return Err("reason must be non-empty".to_string());
    }
    Ok((pass.to_string(), stripped.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_regions_cover_mod_tests() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn after() {}\n";
        let f = SourceFile::parse("x.rs".into(), src.into());
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn test_attr_with_following_attrs() {
        let src = "#[test]\n#[ignore]\nfn t() {\n    let x = 1;\n}\nfn live() {}\n";
        let f = SourceFile::parse("x.rs".into(), src.into());
        for line in 1..=5 {
            assert!(f.is_test_line(line), "line {line}");
        }
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn cfg_test_use_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::fmt;\nfn live() {}\n";
        let f = SourceFile::parse("x.rs".into(), src.into());
        assert!(f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn trailing_allow_targets_own_line() {
        let src =
            "let m = make(); // lv-analyze::allow(determinism, reason = \"ordered downstream\")\n";
        let f = SourceFile::parse("x.rs".into(), src.into());
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].pass, "determinism");
        assert_eq!(f.allows[0].target_line, 1);
        assert!(f.bad_allows.is_empty());
    }

    #[test]
    fn standalone_allow_targets_next_code_line() {
        let src = "// lv-analyze::allow(rng-discipline, reason = \"root seed entry point\")\n\nlet s = seed();\n";
        let f = SourceFile::parse("x.rs".into(), src.into());
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].target_line, 3);
    }

    #[test]
    fn stacked_allows_share_a_target() {
        let src = "// lv-analyze::allow(determinism, reason = \"a\")\n// lv-analyze::allow(rng-discipline, reason = \"b\")\nlet s = seed();\n";
        let f = SourceFile::parse("x.rs".into(), src.into());
        assert_eq!(f.allows.len(), 2);
        assert_eq!(f.allows[0].target_line, 3);
        assert_eq!(f.allows[1].target_line, 3);
    }

    #[test]
    fn empty_reason_is_rejected() {
        let src = "// lv-analyze::allow(determinism, reason = \"\")\nlet x = 1;\n";
        let f = SourceFile::parse("x.rs".into(), src.into());
        assert!(f.allows.is_empty());
        assert_eq!(f.bad_allows.len(), 1);
        assert!(f.bad_allows[0].message.contains("non-empty"));
    }

    #[test]
    fn missing_reason_is_rejected() {
        let src = "// lv-analyze::allow(determinism)\nlet x = 1;\n";
        let f = SourceFile::parse("x.rs".into(), src.into());
        assert!(f.allows.is_empty());
        assert_eq!(f.bad_allows.len(), 1);
    }

    #[test]
    fn manifest_parses_package_and_deps() {
        let toml = "[package]\nname = \"lv-sim\"\n\n[dependencies]\nlv-engine.workspace = true\nserde = { path = \"../compat/serde\" }\n\n[dev-dependencies]\nproptest.workspace = true\n\n[dependencies.lv-ode]\npath = \"../ode\"\n";
        let m = ManifestFile::parse("crates/sim/Cargo.toml".into(), toml);
        assert_eq!(m.package.as_deref(), Some("lv-sim"));
        let names: Vec<(&str, bool)> = m.deps.iter().map(|d| (d.name.as_str(), d.dev)).collect();
        assert_eq!(
            names,
            vec![
                ("lv-engine", false),
                ("serde", false),
                ("proptest", true),
                ("lv-ode", false),
            ]
        );
        assert_eq!(m.deps[0].line, 5);
    }

    #[test]
    fn manifest_skips_workspace_dependency_table() {
        let toml =
            "[workspace]\nmembers = [\"a\"]\n\n[workspace.dependencies]\nrand = { path = \"x\" }\n";
        let m = ManifestFile::parse("Cargo.toml".into(), toml);
        assert!(m.package.is_none());
        assert!(m.deps.is_empty());
    }

    #[test]
    fn manifest_allow_comments_follow_the_rust_grammar() {
        let toml = "[dependencies]\n# lv-analyze::allow(crate-layering, reason = \"doctest harness\")\nlv-chains.workspace = true\nrand.workspace = true # lv-analyze::allow(crate-layering, reason = \"trailing\")\n# lv-analyze::allow(crate-layering)\nserde.workspace = true\n";
        let m = ManifestFile::parse("crates/x/Cargo.toml".into(), toml);
        assert_eq!(m.allows.len(), 2);
        assert_eq!(m.allows[0].target_line, 3, "standalone targets next entry");
        assert_eq!(m.allows[1].target_line, 4, "trailing targets own line");
        assert_eq!(m.bad_allows.len(), 1, "reason-less allow is malformed");
        // A `#` inside a string is not a comment.
        let m = ManifestFile::parse(
            "c.toml".into(),
            "[package]\ndescription = \"a # b\"\nname = \"x\"\n",
        );
        assert_eq!(m.package.as_deref(), Some("x"));
    }
}
