#![forbid(unsafe_code)]
//! `lv-analyze` CLI: run the workspace invariant passes and gate CI.
//!
//! ```text
//! lv-analyze [--root PATH] [--format text|json|sarif] [--pass ID]...
//!            [--warn ID]... [--update-api]
//! ```
//!
//! Exit codes: 0 = clean (warn-level findings do not gate), 1 = deny
//! violations found, 2 = usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use lv_analyze::diag::Severity;
use lv_analyze::passes;
use lv_analyze::source::Workspace;

enum Format {
    Text,
    Json,
    Sarif,
}

struct Options {
    root: Option<PathBuf>,
    format: Format,
    update_api: bool,
    only_passes: Vec<String>,
    warn_passes: Vec<String>,
}

const USAGE: &str = "usage: lv-analyze [--root PATH] [--format text|json|sarif] [--pass ID]... [--warn ID]... [--update-api]";

fn main() -> ExitCode {
    let options = match parse_args(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("lv-analyze: {message}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let root = match options.root.clone().map(Ok).unwrap_or_else(detect_root) {
        Ok(root) => root,
        Err(message) => {
            eprintln!("lv-analyze: {message}");
            return ExitCode::from(2);
        }
    };

    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!(
                "lv-analyze: failed to load workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    if options.update_api {
        let rendered = passes::render_api(&ws);
        let path = root.join(passes::SNAPSHOT_PATH);
        if let Err(e) = std::fs::write(&path, &rendered) {
            eprintln!("lv-analyze: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("lv-analyze: wrote {}", path.display());
        return ExitCode::SUCCESS;
    }

    let mut roster = passes::default_passes();
    let known: Vec<&str> = roster.iter().map(|p| p.id()).collect();
    if let Some(unknown) = options
        .only_passes
        .iter()
        .chain(&options.warn_passes)
        .find(|id| !known.contains(&id.as_str()))
    {
        eprintln!(
            "lv-analyze: unknown pass `{unknown}` (known: {})",
            known.join(", ")
        );
        return ExitCode::from(2);
    }
    if !options.only_passes.is_empty() {
        roster.retain(|p| options.only_passes.iter().any(|id| id == p.id()));
    }

    let mut report = lv_analyze::run(&ws, &roster);
    // `--warn ID` demotes a pass's findings for this run, so a newly
    // added pass can report on CI without gating it yet.
    for diagnostic in &mut report.violations {
        if options.warn_passes.contains(&diagnostic.pass) {
            diagnostic.severity = Severity::Warn;
        }
    }
    match options.format {
        Format::Text => {
            for diagnostic in &report.violations {
                println!("{diagnostic}");
            }
            eprintln!(
                "lv-analyze: {} pass(es), {} violation(s), {} suppressed by allow annotations",
                roster.len(),
                report.violations.len(),
                report.suppressed.len()
            );
        }
        Format::Json => {
            let body: Vec<String> = report.violations.iter().map(|d| d.to_json()).collect();
            println!(
                "{{\"clean\":{},\"failing\":{},\"violations\":[{}],\"suppressed\":{}}}",
                report.is_clean(),
                report.failing(),
                body.join(","),
                report.suppressed.len()
            );
        }
        Format::Sarif => println!("{}", lv_analyze::sarif::render_sarif(&roster, &report)),
    }
    if report.failing() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut options = Options {
        root: None,
        format: Format::Text,
        update_api: false,
        only_passes: Vec::new(),
        warn_passes: Vec::new(),
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let value = args.next().ok_or("--root needs a path")?;
                options.root = Some(PathBuf::from(value));
            }
            "--format" => match args.next().as_deref() {
                Some("text") => options.format = Format::Text,
                Some("json") => options.format = Format::Json,
                Some("sarif") => options.format = Format::Sarif,
                other => return Err(format!("--format needs text|json|sarif, got {other:?}")),
            },
            "--update-api" => options.update_api = true,
            "--pass" => {
                let value = args.next().ok_or("--pass needs a pass id")?;
                options.only_passes.push(value);
            }
            "--warn" => {
                let value = args.next().ok_or("--warn needs a pass id")?;
                options.warn_passes.push(value);
            }
            "--list-passes" => {
                for pass in passes::default_passes() {
                    println!("{:16} {}", pass.id(), pass.description());
                }
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(options)
}

/// Ascends from the current directory to the first `Cargo.toml` that
/// declares a `[workspace]`.
fn detect_root() -> Result<PathBuf, String> {
    let start = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let mut dir: &Path = &start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir.to_path_buf());
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => {
                return Err(format!(
                    "no workspace Cargo.toml found above {} (use --root)",
                    start.display()
                ))
            }
        }
    }
}
