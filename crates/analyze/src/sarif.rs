//! SARIF 2.1.0 output for `--format sarif`.
//!
//! Hand-rolled like the JSON output: the analyzer is pure std and the
//! subset of SARIF it emits is one run with one tool driver, the pass
//! roster as rules, and one result per violation. That is enough for
//! code-scanning UIs and workflow-artifact viewers to render findings
//! with file/line anchors.

use crate::diag::{escape_json, Diagnostic};
use crate::passes::Pass;
use crate::Report;

const SCHEMA: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// Renders the report (violations only; suppressed findings are resolved
/// annotations, not results) as a SARIF 2.1.0 log.
pub fn render_sarif(passes: &[Box<dyn Pass>], report: &Report) -> String {
    let mut rule_ids: Vec<(String, String)> = passes
        .iter()
        .map(|p| (p.id().to_string(), p.description().to_string()))
        .collect();
    // Driver-level diagnostics (the allow grammar) carry rule ids outside
    // the roster; every result's ruleId must resolve to a rule.
    for d in &report.violations {
        if !rule_ids.iter().any(|(id, _)| *id == d.pass) {
            rule_ids.push((d.pass.clone(), String::new()));
        }
    }

    let rules: Vec<String> = rule_ids
        .iter()
        .map(|(id, description)| {
            format!(
                "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
                escape_json(id),
                escape_json(description)
            )
        })
        .collect();
    let results: Vec<String> = report.violations.iter().map(render_result).collect();

    format!(
        "{{\"$schema\":\"{SCHEMA}\",\"version\":\"2.1.0\",\"runs\":[{{\
\"tool\":{{\"driver\":{{\"name\":\"lv-analyze\",\"rules\":[{}]}}}},\
\"results\":[{}]}}]}}",
        rules.join(","),
        results.join(",")
    )
}

fn render_result(d: &Diagnostic) -> String {
    format!(
        "{{\"ruleId\":\"{}\",\"level\":\"{}\",\"message\":{{\"text\":\"{}\"}},\
\"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\
\"region\":{{\"startLine\":{}}}}}}}]}}",
        escape_json(&d.pass),
        d.severity.sarif_level(),
        escape_json(&d.message),
        escape_json(&d.file),
        d.line.max(1)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use crate::passes::default_passes;

    fn report(violations: Vec<Diagnostic>) -> Report {
        Report {
            violations,
            suppressed: Vec::new(),
        }
    }

    #[test]
    fn clean_report_renders_empty_results() {
        let sarif = render_sarif(&default_passes(), &report(Vec::new()));
        assert!(sarif.contains("\"version\":\"2.1.0\""));
        assert!(sarif.contains("\"name\":\"lv-analyze\""));
        assert!(sarif.contains("\"results\":[]"));
        assert!(sarif.contains("\"id\":\"lock-order\""));
    }

    #[test]
    fn violations_render_with_location_and_level() {
        let mut warn = Diagnostic::new("crates/x/src/a.rs", 7, "lock-order", "cycle");
        warn.severity = Severity::Warn;
        let deny = Diagnostic::new("crates/x/Cargo.toml", 0, "crate-layering", "inversion");
        let sarif = render_sarif(&default_passes(), &report(vec![warn, deny]));
        assert!(sarif.contains("\"ruleId\":\"lock-order\""));
        assert!(sarif.contains("\"level\":\"warning\""));
        assert!(sarif.contains("\"level\":\"error\""));
        assert!(sarif.contains("\"uri\":\"crates/x/src/a.rs\""));
        assert!(sarif.contains("\"startLine\":7"));
        assert!(sarif.contains("\"startLine\":1"), "line 0 clamps to 1");
    }

    #[test]
    fn non_roster_rule_ids_get_a_rule_entry() {
        let d = Diagnostic::new("a.rs", 1, "allow-grammar", "malformed");
        let sarif = render_sarif(&default_passes(), &report(vec![d]));
        assert!(sarif.contains("\"id\":\"allow-grammar\""));
        assert!(sarif.contains("\"ruleId\":\"allow-grammar\""));
    }
}
