#![forbid(unsafe_code)]
//! `lv-analyze` — workspace invariant analysis for the lv-consensus tree.
//!
//! The scientific claims of this repository rest on invariants no
//! compiler checks: bit-reproducible RNG streams at any thread count,
//! a serving layer that answers malformed input instead of dying, and
//! docs that stay in sync with the backend registry and wire protocol.
//! This crate turns those conventions into machine-checked passes over
//! the source tree (see [`passes`]) with a CI-gating binary.
//!
//! A violation is either fixed or suppressed in place with
//! `// lv-analyze::allow(pass-id, reason = "...")` — the reason is
//! mandatory, and malformed annotations are themselves (unsuppressable)
//! diagnostics. See `crates/analyze/ANALYSIS.md` for the pass catalogue.

pub mod diag;
pub mod lexer;
pub mod model;
pub mod passes;
pub mod sarif;
pub mod source;

use diag::{Diagnostic, Severity};
use passes::Pass;
use source::Workspace;

/// Pass id under which malformed `lv-analyze::allow` annotations are
/// reported. These diagnostics cannot be suppressed.
pub const ALLOW_GRAMMAR_PASS: &str = "allow-grammar";

/// The outcome of an analysis run.
#[derive(Debug)]
pub struct Report {
    /// Diagnostics not covered by a well-formed allow annotation — any
    /// entry here fails the run.
    pub violations: Vec<Diagnostic>,
    /// Diagnostics matched (and silenced) by an allow annotation, kept
    /// for `--verbose`-style accounting and tests.
    pub suppressed: Vec<Diagnostic>,
}

impl Report {
    /// Whether the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Whether any violation gates the run (warn-level findings do not).
    pub fn failing(&self) -> bool {
        self.violations.iter().any(|d| d.severity == Severity::Deny)
    }
}

/// Runs `passes` over the workspace and resolves allow annotations.
///
/// A diagnostic is suppressed when the same file carries a well-formed
/// `lv-analyze::allow(pass-id, ...)` whose target line equals the
/// diagnostic's line. Malformed annotations become `allow-grammar`
/// violations; so do well-formed annotations that suppress nothing
/// (a stale allow is a lie about the code and must be removed).
pub fn run(ws: &Workspace, passes: &[Box<dyn Pass>]) -> Report {
    let mut violations = Vec::new();
    let mut suppressed = Vec::new();

    // (file, pass, target_line, used) for every well-formed allow — from
    // Rust sources and Cargo.toml manifests alike.
    let mut allows: Vec<(String, String, usize, bool)> = ws
        .files
        .iter()
        .flat_map(|f| {
            f.allows
                .iter()
                .map(|a| (f.rel.clone(), a.pass.clone(), a.target_line, false))
        })
        .chain(ws.manifests.iter().flat_map(|m| {
            m.allows
                .iter()
                .map(|a| (m.rel.clone(), a.pass.clone(), a.target_line, false))
        }))
        .collect();

    let bad_allows = ws
        .files
        .iter()
        .flat_map(|f| f.bad_allows.iter().map(|bad| (&f.rel, bad)))
        .chain(
            ws.manifests
                .iter()
                .flat_map(|m| m.bad_allows.iter().map(|bad| (&m.rel, bad))),
        );
    for (rel, bad) in bad_allows {
        violations.push(Diagnostic::new(
            rel,
            bad.line,
            ALLOW_GRAMMAR_PASS,
            format!("malformed lv-analyze::allow annotation: {}", bad.message),
        ));
    }

    for pass in passes {
        let severity = pass.severity();
        for mut diagnostic in pass.run(ws) {
            diagnostic.severity = diagnostic.severity.min(severity);
            let diagnostic = diagnostic;
            let matched = allows.iter_mut().find(|(file, pass_id, line, _)| {
                *file == diagnostic.file && *pass_id == diagnostic.pass && *line == diagnostic.line
            });
            match matched {
                Some(slot) => {
                    slot.3 = true;
                    suppressed.push(diagnostic);
                }
                None => violations.push(diagnostic),
            }
        }
    }

    // Stale allows: annotation present, nothing to suppress. Only flag
    // them for passes that actually ran, so `--pass` selection does not
    // misreport the other passes' annotations as stale.
    let ran: Vec<&str> = passes.iter().map(|p| p.id()).collect();
    for (file, pass_id, line, used) in &allows {
        if !used && ran.iter().any(|id| id == pass_id) {
            violations.push(Diagnostic::new(
                file.clone(),
                *line,
                ALLOW_GRAMMAR_PASS,
                format!("stale lv-analyze::allow({pass_id}, ...): it suppresses no diagnostic"),
            ));
        }
    }

    // Unknown pass ids in allows are caught the same way (they can never
    // match a diagnostic), which also guards against typos.

    violations.sort_by(|a, b| (&a.file, a.line, &a.pass).cmp(&(&b.file, b.line, &b.pass)));
    suppressed.sort_by(|a, b| (&a.file, a.line, &a.pass).cmp(&(&b.file, b.line, &b.pass)));
    Report {
        violations,
        suppressed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn ws_with(files: Vec<(&str, &str)>) -> Workspace {
        Workspace {
            root: PathBuf::from("/nonexistent"),
            files: files
                .into_iter()
                .map(|(rel, text)| source::SourceFile::parse(rel.into(), text.into()))
                .collect(),
            manifests: Vec::new(),
        }
    }

    #[test]
    fn allow_suppresses_matching_line_only() {
        let ws = ws_with(vec![(
            "crates/sim/src/x.rs",
            "use std::collections::HashMap; // lv-analyze::allow(determinism, reason = \"test of the driver\")\nlet other = HashMap::new();\n",
        )]);
        let report = run(&ws, &passes::default_passes()[..1]);
        assert_eq!(report.suppressed.len(), 1);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].line, 2);
    }

    #[test]
    fn stale_allow_is_a_violation() {
        let ws = ws_with(vec![(
            "crates/sim/src/x.rs",
            "let clean = 1; // lv-analyze::allow(determinism, reason = \"nothing here\")\n",
        )]);
        let report = run(&ws, &passes::default_passes()[..1]);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].message.contains("stale"));
    }

    #[test]
    fn manifest_allows_join_the_matching_pool() {
        let mut ws = ws_with(vec![]);
        ws.manifests.push(source::ManifestFile::parse(
            "crates/x/Cargo.toml".into(),
            "[dependencies]\n# lv-analyze::allow(determinism, reason = \"never fires\")\nrand.workspace = true\n",
        ));
        let report = run(&ws, &passes::default_passes()[..1]);
        assert_eq!(report.violations.len(), 1, "unused manifest allow is stale");
        assert!(report.violations[0].message.contains("stale"));
        assert_eq!(report.violations[0].file, "crates/x/Cargo.toml");
    }

    #[test]
    fn malformed_allow_is_a_violation() {
        let ws = ws_with(vec![(
            "crates/sim/src/x.rs",
            "let x = 1; // lv-analyze::allow(determinism, reason = \"\")\n",
        )]);
        let report = run(&ws, &passes::default_passes()[..1]);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].pass, ALLOW_GRAMMAR_PASS);
    }
}
