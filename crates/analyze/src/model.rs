//! A lightweight semantic model over the lexer's masked text: brace
//! trees, `fn` items, statement boundaries, guard live ranges, call
//! sites, and enum variants — everything the cross-file passes need,
//! pure std, no syntax tree.
//!
//! All offsets are byte offsets into the *masked* text (same length as
//! the source, so lines agree). The model is deliberately approximate —
//! see `ANALYSIS.md` for the scoping rules and their known limits — but
//! every approximation errs toward *missing* an edge, never toward
//! inventing code that is not there.

use crate::passes::{brace_span, find_ident_token, line_of};

/// Keywords that look like calls when followed by `(`.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "move", "in", "as", "let", "else",
    "impl", "pub", "where", "unsafe", "dyn", "ref", "mut", "use", "crate", "super", "self", "Self",
];

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

/// A function item extracted from masked text.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's bare name (impl/trait context is not tracked).
    pub name: String,
    /// Byte offset of the `fn` keyword.
    pub offset: usize,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Body span `(open, close)`: offset of `{` and offset just past the
    /// matching `}`. `None` for body-less trait signatures.
    pub body: Option<(usize, usize)>,
}

/// Extracts every `fn` item (free functions, methods, nested fns) from
/// masked text. `fn`-pointer types (`fn(u64) -> u64`) carry no name and
/// are skipped.
pub fn fn_defs(masked: &str) -> Vec<FnDef> {
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(at) = find_ident_token(masked, "fn", from) {
        from = at + 2;
        let mut i = at + 2;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let name_start = i;
        while i < bytes.len() && is_ident(bytes[i]) {
            i += 1;
        }
        if i == name_start {
            continue;
        }
        let name = masked[name_start..i].to_string();
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        // Generic parameters: skip to the matching `>`, ignoring the `>`
        // of `->` inside `Fn(..) -> ..` bounds.
        if bytes.get(i) == Some(&b'<') {
            let mut depth = 0i32;
            while i < bytes.len() {
                match bytes[i] {
                    b'<' => depth += 1,
                    b'>' if i > 0 && bytes[i - 1] == b'-' => {}
                    b'>' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
        }
        if bytes.get(i) != Some(&b'(') {
            continue;
        }
        let mut depth = 0i32;
        while i < bytes.len() {
            match bytes[i] {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        // Body: the first `{` unless a `;` comes first (trait signature).
        let mut j = i;
        let body = loop {
            match bytes.get(j) {
                None | Some(&b';') => break None,
                Some(&b'{') => break brace_span(masked, j),
                _ => j += 1,
            }
        };
        out.push(FnDef {
            name,
            offset: at,
            line: line_of(masked, at),
            body,
        });
    }
    out
}

/// Every matched `{ ... }` span, as `(open, just-past-close)`, sorted by
/// open offset. Call on masked text only.
pub fn brace_pairs(masked: &str) -> Vec<(usize, usize)> {
    let mut stack = Vec::new();
    let mut out = Vec::new();
    for (i, &b) in masked.as_bytes().iter().enumerate() {
        match b {
            b'{' => stack.push(i),
            b'}' => {
                if let Some(open) = stack.pop() {
                    out.push((open, i + 1));
                }
            }
            _ => {}
        }
    }
    out.sort_unstable();
    out
}

/// The innermost brace pair strictly containing `offset`.
pub fn enclosing_block(pairs: &[(usize, usize)], offset: usize) -> Option<(usize, usize)> {
    pairs
        .iter()
        .copied()
        .filter(|&(open, close)| open < offset && offset < close)
        .min_by_key(|&(open, close)| close - open)
}

/// End (exclusive) of the statement or expression starting at `from`: the
/// first `;` or `,` at bracket depth zero, or the delimiter closing the
/// enclosing block. This models Rust temporary lifetimes: a guard
/// temporary in a `match` scrutinee lives to the whole statement's `;`,
/// while a match-arm expression ends at its `,`.
pub fn statement_end(masked: &str, from: usize) -> usize {
    let bytes = masked.as_bytes();
    let mut depth = 0i32;
    let mut i = from;
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'(' | b'[' => depth += 1,
            b'}' | b')' | b']' => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            b';' | b',' if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

/// Start of the statement containing `at`: the offset just past the
/// previous `;`, `,`, `{`, or `}` at bracket depth zero (scanning
/// backwards, bracket-aware), or just past an unmatched opening bracket.
pub fn statement_start(masked: &str, at: usize) -> usize {
    let bytes = masked.as_bytes();
    let mut depth = 0i32;
    let mut i = at;
    while i > 0 {
        i -= 1;
        match bytes[i] {
            b')' | b']' => depth += 1,
            b'}' => {
                if depth == 0 {
                    return i + 1;
                }
                depth += 1;
            }
            b'{' | b'(' | b'[' => {
                if depth == 0 {
                    return i + 1;
                }
                depth -= 1;
            }
            b';' | b',' if depth == 0 => return i + 1,
            _ => {}
        }
    }
    0
}

/// If the statement containing the expression starting at `expr_at` is a
/// direct binding `let [mut] NAME = <that expression>`, returns `NAME`.
/// Pattern bindings, type ascriptions and compound right-hand sides (e.g.
/// `let x = match lock(..) {..}`) return `None` — the expression is then
/// a temporary scoped to its statement.
pub fn binding_name(masked: &str, expr_at: usize) -> Option<String> {
    let start = statement_start(masked, expr_at);
    let prefix = masked[start..expr_at].trim();
    let rest = prefix.strip_prefix("let")?;
    if !rest.starts_with(|c: char| c.is_whitespace()) {
        return None;
    }
    let rest = rest.trim_start();
    let rest = match rest.strip_prefix("mut") {
        Some(r) if r.starts_with(|c: char| c.is_whitespace()) => r.trim_start(),
        _ => rest,
    };
    let name_end = rest
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    let name = &rest[..name_end];
    if name.is_empty() {
        return None;
    }
    (rest[name_end..].trim() == "=").then(|| name.to_string())
}

/// Offset of an explicit `drop(NAME)` of `name` within `range`, if any.
pub fn explicit_drop(masked: &str, name: &str, range: (usize, usize)) -> Option<usize> {
    let bytes = masked.as_bytes();
    let mut from = range.0;
    while let Some(at) = find_ident_token(masked, "drop", from) {
        if at >= range.1 {
            return None;
        }
        from = at + 4;
        let mut i = at + 4;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if bytes.get(i) != Some(&b'(') {
            continue;
        }
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let arg_start = i;
        while i < bytes.len() && is_ident(bytes[i]) {
            i += 1;
        }
        if &masked[arg_start..i] != name {
            continue;
        }
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if bytes.get(i) == Some(&b')') {
            return Some(at);
        }
    }
    None
}

/// A call site `name(...)` with its receiver/path classification.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called function or method's bare name.
    pub name: String,
    /// Byte offset of the name token.
    pub offset: usize,
    /// 1-based line.
    pub line: usize,
    /// Whether the callee can be resolved by bare name: free calls, path
    /// calls, and methods on a simple place expression (`self.field.m(..)`,
    /// `ident.m(..)`). Methods chained onto another call's result are not
    /// resolvable — their receiver type is unknown, and resolving by name
    /// alone would invent edges.
    pub resolvable: bool,
}

/// Extracts every call site in `masked[range.0..range.1]`. Macro
/// invocations (`name!(..)`) are not calls and are skipped.
pub fn call_sites(masked: &str, range: (usize, usize)) -> Vec<CallSite> {
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    let mut i = range.0;
    let end = range.1.min(bytes.len());
    while i < end {
        if !is_ident_start(bytes[i]) || (i > 0 && is_ident(bytes[i - 1])) {
            i += 1;
            continue;
        }
        let start = i;
        while i < end && is_ident(bytes[i]) {
            i += 1;
        }
        let name = &masked[start..i];
        let mut j = i;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if bytes.get(j) != Some(&b'(') || CALL_KEYWORDS.contains(&name) {
            continue;
        }
        out.push(CallSite {
            name: name.to_string(),
            offset: start,
            line: line_of(masked, start),
            resolvable: receiver_is_simple(bytes, start),
        });
    }
    out
}

/// Whether the receiver (or path) before a call name at `name_start` is a
/// simple place: nothing, `path::`, or a dotted chain of plain idents.
fn receiver_is_simple(bytes: &[u8], name_start: usize) -> bool {
    let mut i = name_start;
    while i > 0 && bytes[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    if i == 0 {
        return true;
    }
    match bytes[i - 1] {
        b'.' => {
            // A method call: walk the dotted receiver chain backwards.
            // Every segment must be a plain identifier; hitting `)` / `]`
            // means the receiver is a call or index result.
            let mut k = i - 1;
            loop {
                let seg_end = k;
                while k > 0 && is_ident(bytes[k - 1]) {
                    k -= 1;
                }
                if k == seg_end {
                    return false;
                }
                if k > 0 && bytes[k - 1] == b'.' {
                    k -= 1;
                    continue;
                }
                return true;
            }
        }
        b':' => i >= 2 && bytes[i - 2] == b':',
        _ => true,
    }
}

/// The variants of the enum `name`, as `(variant, 1-based line)`.
pub fn enum_variants(masked: &str, name: &str) -> Option<Vec<(String, usize)>> {
    let bytes = masked.as_bytes();
    let mut from = 0;
    let (open, close) = loop {
        let at = find_ident_token(masked, "enum", from)?;
        from = at + 4;
        let mut i = at + 4;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let start = i;
        while i < bytes.len() && is_ident(bytes[i]) {
            i += 1;
        }
        if &masked[start..i] == name {
            break brace_span(masked, i)?;
        }
    };
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut expect_variant = false;
    let mut i = open;
    while i < close {
        match bytes[i] {
            b'{' | b'(' | b'[' => {
                depth += 1;
                if depth == 1 {
                    expect_variant = true;
                }
            }
            b'}' | b')' | b']' => depth -= 1,
            b',' if depth == 1 => expect_variant = true,
            b'#' if depth == 1 => {
                // Variant attribute: skip its `[...]` payload.
                let mut k = i + 1;
                while k < close && bytes[k] != b'[' {
                    k += 1;
                }
                let mut d = 0i32;
                while k < close {
                    match bytes[k] {
                        b'[' => d += 1,
                        b']' => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                i = k;
            }
            b if depth == 1 && expect_variant && is_ident_start(b) => {
                let start = i;
                while i < close && is_ident(bytes[i]) {
                    i += 1;
                }
                out.push((masked[start..i].to_string(), line_of(masked, start)));
                expect_variant = false;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_defs_extracts_names_generics_and_bodies() {
        let src = "pub fn alpha(x: u64) -> u64 { x }\nfn beta<T: Fn(u64) -> u64>(f: T) {\n    fn inner() {}\n}\ntrait T { fn sig(&self); }\nlet p: fn(u64) -> u64 = alpha;\n";
        let fns = fn_defs(src);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta", "inner", "sig"]);
        assert!(fns[0].body.is_some());
        assert!(fns[3].body.is_none(), "trait signature has no body");
        let (open, close) = fns[0].body.unwrap();
        assert_eq!(&src[open..close], "{ x }");
    }

    #[test]
    fn enclosing_block_picks_innermost() {
        let src = "fn f() { if x { y } }";
        let pairs = brace_pairs(src);
        let y = src.find('y').unwrap();
        let (open, close) = enclosing_block(&pairs, y).unwrap();
        assert_eq!(&src[open..close], "{ y }");
    }

    #[test]
    fn statement_end_models_temporary_lifetimes() {
        // A guard temporary in a match scrutinee lives to the statement's
        // `;` (arm braces included) ...
        let src = "let r = match lock(q).pop() { Some(v) => v, None => { return; } };\nnext();";
        let at = src.find("lock").unwrap();
        assert_eq!(
            &src[statement_end(src, at) - 1..statement_end(src, at)],
            ";"
        );
        assert!(statement_end(src, at) > src.find("return").unwrap());
        // ... while a match-arm expression ends at its own `,`.
        let src = "match x { Ok(b) => lock(d).push(b), Err(e) => { lock(f).push(e); } }";
        let at = src.find("lock(d)").unwrap();
        let end = statement_end(src, at);
        assert!(end <= src.find("Err").unwrap(), "arm ends before next arm");
    }

    #[test]
    fn statement_start_stops_at_block_and_statement_boundaries() {
        let src = "if c { x(); }\nlet mut keys = lock(&t.keys);";
        let at = src.find("lock").unwrap();
        let start = statement_start(src, at);
        assert_eq!(src[start..at].trim(), "let mut keys =");
    }

    #[test]
    fn binding_name_detects_direct_guards_only() {
        let src = "let mut keys = lock(&self.keys);";
        assert_eq!(
            binding_name(src, src.find("lock").unwrap()).as_deref(),
            Some("keys")
        );
        let src = "let r = match lock(q).pop() { _ => 0 };";
        assert_eq!(binding_name(src, src.find("lock").unwrap()), None);
        let src = "Ok(lock(&s).record(x))";
        assert_eq!(binding_name(src, src.find("lock").unwrap()), None);
        let src = "*lock(&s) = y;";
        assert_eq!(binding_name(src, src.find("lock").unwrap()), None);
    }

    #[test]
    fn explicit_drop_finds_only_the_named_guard() {
        let src = "let a = lock(&x); drop(b); drop(a); later();";
        let at = explicit_drop(src, "a", (0, src.len())).unwrap();
        assert_eq!(&src[at..at + 7], "drop(a)");
        assert!(explicit_drop(src, "c", (0, src.len())).is_none());
    }

    #[test]
    fn call_sites_classify_receivers() {
        let src = "helper(); self.flight.acquire(k); sync::lock(&q); lock(&q).pop_front(); mac!(x); keys.entry(k).or_default();";
        let calls = call_sites(src, (0, src.len()));
        let by_name: Vec<(&str, bool)> = calls
            .iter()
            .map(|c| (c.name.as_str(), c.resolvable))
            .collect();
        assert_eq!(
            by_name,
            vec![
                ("helper", true),
                ("acquire", true),
                ("lock", true),
                ("lock", true),
                ("pop_front", false),
                ("entry", true),
                ("or_default", false),
            ]
        );
    }

    #[test]
    fn enum_variants_handles_payloads_and_units() {
        let src = "pub enum Request {\n    Estimate(EstimateRequest),\n    Sweep { n: u64 },\n    Status,\n}\nenum Other { A }\n";
        let vars = enum_variants(src, "Request").unwrap();
        let names: Vec<&str> = vars.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["Estimate", "Sweep", "Status"]);
        assert_eq!(vars[0].1, 2);
        assert_eq!(enum_variants(src, "Missing"), None);
        assert_eq!(
            enum_variants(src, "Other").unwrap(),
            vec![("A".to_string(), 6)]
        );
    }
}
