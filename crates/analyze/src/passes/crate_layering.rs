//! `crate-layering`: the workspace dependency DAG stays as declared.
//!
//! Parses every `Cargo.toml` and cross-checks two things per dependency:
//!
//! 1. **Layering** — the declared stack is
//!    `compat/* → crn/chains/ode → lotka (core) → protocols → engine →
//!    sim → server`, with `compat/*` shims depending only on each other,
//!    `lv-analyze` depending on nothing in the stack, and the facade and
//!    bench crates on top. A dependency on an equal-or-higher layer is an
//!    inversion.
//! 2. **Use** — a declared dependency must actually be referenced
//!    (`name::` path or `use name`) somewhere in the crate's sources;
//!    dev-dependencies may instead be referenced from `tests/` or
//!    `benches/`. Unused declarations are flagged: remove them or justify
//!    them with a `# lv-analyze::allow(crate-layering, ...)` comment.
//!
//! Crates not in the layer table (nothing else exists in this offline
//! workspace) are ignored rather than guessed at.

use std::path::Path;

use crate::diag::Diagnostic;
use crate::lexer;
use crate::passes::Pass;
use crate::source::Workspace;

pub struct CrateLayering;

/// `(package name, layer rank)`. A crate may depend only on strictly
/// lower ranks; rank-0 compat shims may depend only on other shims.
const LAYERS: &[(&str, u32)] = &[
    ("rand", 0),
    ("serde", 0),
    ("serde_derive", 0),
    ("crossbeam", 0),
    ("criterion", 0),
    ("proptest", 0),
    ("lv-crn", 10),
    ("lv-chains", 10),
    ("lv-ode", 10),
    ("lv-lotka", 20),
    ("lv-protocols", 30),
    ("lv-engine", 40),
    ("lv-sim", 50),
    ("lv-server", 60),
    ("lv-analyze", 70),
    ("lv-bench", 80),
    ("lv-consensus", 80),
];

const DAG: &str =
    "compat/* -> crn/chains/ode -> lotka -> protocols -> engine -> sim -> server (analyze outside the stack)";

fn rank(name: &str) -> Option<u32> {
    LAYERS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, rank)| *rank)
}

impl Pass for CrateLayering {
    fn id(&self) -> &'static str {
        "crate-layering"
    }

    fn description(&self) -> &'static str {
        "workspace manifests respect the declared crate DAG and declare no unused dependencies"
    }

    fn run(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let mut diagnostics = Vec::new();
        for manifest in &ws.manifests {
            let Some(package) = manifest.package.as_deref() else {
                continue;
            };
            let Some(package_rank) = rank(package) else {
                continue;
            };
            let dir = manifest
                .rel
                .strip_suffix("Cargo.toml")
                .unwrap_or(&manifest.rel)
                .trim_end_matches('/');
            for dep in &manifest.deps {
                let Some(dep_rank) = rank(&dep.name) else {
                    continue;
                };
                let inverted = if package == "lv-analyze" {
                    // The analyzer must stand outside the stack entirely:
                    // it may not even use the compat shims.
                    true
                } else if package_rank == 0 && dep_rank == 0 {
                    // Compat shims may depend on each other (serde on
                    // serde_derive); they form their own leaf layer.
                    false
                } else {
                    dep_rank >= package_rank
                };
                if inverted {
                    diagnostics.push(Diagnostic::new(
                        &manifest.rel,
                        dep.line,
                        self.id(),
                        format!(
                            "layering inversion: `{package}` may not depend on `{}`; declared DAG: {DAG}",
                            dep.name
                        ),
                    ));
                    continue;
                }
                if !dep_is_used(ws, dir, dep.dev, &dep.name) {
                    let where_checked = if dep.dev {
                        "sources, tests or benches"
                    } else {
                        "sources"
                    };
                    diagnostics.push(Diagnostic::new(
                        &manifest.rel,
                        dep.line,
                        self.id(),
                        format!(
                            "declared {}dependency `{}` is never referenced in the crate's {where_checked}; remove it or justify it with an allow",
                            if dep.dev { "dev-" } else { "" },
                            dep.name
                        ),
                    ));
                }
            }
        }
        diagnostics
    }
}

/// Whether `dep` is referenced by the package rooted at `dir` (empty for
/// the workspace-root package). Regular dependencies may be referenced
/// anywhere the crate compiles them — `src/`, `tests/`, `benches/`;
/// dev-dependencies likewise. Test/bench files are lexed on the fly (the
/// workspace walk skips those directories).
fn dep_is_used(ws: &Workspace, dir: &str, _dev: bool, dep: &str) -> bool {
    let ident = dep.replace('-', "_");
    let src_prefix = if dir.is_empty() {
        "src".to_string()
    } else {
        format!("{dir}/src")
    };
    if ws
        .files_under(&src_prefix)
        .any(|f| references_crate(&f.lexed.masked, &ident))
    {
        return true;
    }
    for sub in ["tests", "benches", "examples"] {
        let fs_dir = if dir.is_empty() {
            ws.root.join(sub)
        } else {
            ws.root.join(dir).join(sub)
        };
        if dir_references_crate(&fs_dir, &ident) {
            return true;
        }
    }
    false
}

fn dir_references_crate(dir: &Path, ident: &str) -> bool {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return false;
    };
    let mut entries: Vec<_> = entries.flatten().collect();
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            if dir_references_crate(&path, ident) {
                return true;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(text) = std::fs::read_to_string(&path) {
                if references_crate(&lexer::lex(&text).masked, ident) {
                    return true;
                }
            }
        }
    }
    false
}

/// Whether masked text references extern crate `ident`: a `ident::` path,
/// a `use ident ...` import, or an `extern crate ident` item.
fn references_crate(masked: &str, ident: &str) -> bool {
    let bytes = masked.as_bytes();
    let mut from = 0;
    while let Some(at) = crate::passes::find_ident_token(masked, ident, from) {
        from = at + ident.len();
        let mut j = at + ident.len();
        while j < bytes.len() && bytes[j] == b' ' {
            j += 1;
        }
        if bytes.get(j) == Some(&b':') && bytes.get(j + 1) == Some(&b':') {
            return true;
        }
        let before = masked[..at].trim_end();
        for opener in ["use", "crate", ","] {
            // `use rand;`, `extern crate rand;`, `use {a, rand};`
            if let Some(head) = before.strip_suffix(opener) {
                if opener == ","
                    || head.is_empty()
                    || head.ends_with(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{ManifestFile, SourceFile};
    use std::path::PathBuf;

    fn ws(manifests: Vec<(&str, &str)>, files: Vec<(&str, &str)>) -> Workspace {
        Workspace {
            root: PathBuf::from("/nonexistent"),
            files: files
                .into_iter()
                .map(|(rel, text)| SourceFile::parse(rel.into(), text.into()))
                .collect(),
            manifests: manifests
                .into_iter()
                .map(|(rel, text)| ManifestFile::parse(rel.into(), text))
                .collect(),
        }
    }

    #[test]
    fn inversion_is_flagged_at_the_dep_line() {
        let ws = ws(
            vec![(
                "crates/sim/Cargo.toml",
                "[package]\nname = \"lv-sim\"\n\n[dependencies]\nlv-server.workspace = true\n",
            )],
            vec![("crates/sim/src/lib.rs", "use lv_server::Thing;\n")],
        );
        let diags = CrateLayering.run(&ws);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 5);
        assert!(diags[0].message.contains("layering inversion"));
    }

    #[test]
    fn equal_rank_is_an_inversion_too() {
        let ws = ws(
            vec![(
                "crates/crn/Cargo.toml",
                "[package]\nname = \"lv-crn\"\n\n[dependencies]\nlv-ode.workspace = true\n",
            )],
            vec![("crates/crn/src/lib.rs", "use lv_ode::Rkf45;\n")],
        );
        assert_eq!(CrateLayering.run(&ws).len(), 1);
    }

    #[test]
    fn unused_dep_is_flagged_and_used_dep_is_not() {
        let ws = ws(
            vec![(
                "crates/sim/Cargo.toml",
                "[package]\nname = \"lv-sim\"\n\n[dependencies]\nlv-engine.workspace = true\nlv-ode.workspace = true\n",
            )],
            vec![("crates/sim/src/lib.rs", "use lv_engine::Scenario;\n")],
        );
        let diags = CrateLayering.run(&ws);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("`lv-ode` is never referenced"));
        assert_eq!(diags[0].line, 6);
    }

    #[test]
    fn references_inside_strings_do_not_count() {
        let ws = ws(
            vec![(
                "crates/sim/Cargo.toml",
                "[package]\nname = \"lv-sim\"\n\n[dependencies]\nlv-engine.workspace = true\n",
            )],
            vec![(
                "crates/sim/src/lib.rs",
                "const HINT: &str = \"try lv_engine::Scenario\";\n",
            )],
        );
        assert_eq!(CrateLayering.run(&ws).len(), 1);
    }

    #[test]
    fn analyze_may_not_join_the_stack() {
        let ws = ws(
            vec![(
                "crates/analyze/Cargo.toml",
                "[package]\nname = \"lv-analyze\"\n\n[dependencies]\nrand.workspace = true\n",
            )],
            vec![("crates/analyze/src/lib.rs", "use rand::Rng;\n")],
        );
        let diags = CrateLayering.run(&ws);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("layering inversion"));
    }

    #[test]
    fn compat_shims_may_depend_on_each_other_only() {
        let ok = ws(
            vec![(
                "crates/compat/serde/Cargo.toml",
                "[package]\nname = \"serde\"\n\n[dependencies]\nserde_derive = { path = \"../serde_derive\" }\n",
            )],
            vec![(
                "crates/compat/serde/src/lib.rs",
                "pub use serde_derive::Serialize;\n",
            )],
        );
        assert!(CrateLayering.run(&ok).is_empty());
        let bad = ws(
            vec![(
                "crates/compat/rand/Cargo.toml",
                "[package]\nname = \"rand\"\n\n[dependencies]\nlv-crn = { path = \"../../crn\" }\n",
            )],
            vec![("crates/compat/rand/src/lib.rs", "use lv_crn::State;\n")],
        );
        assert_eq!(CrateLayering.run(&bad).len(), 1);
    }

    #[test]
    fn use_list_and_extern_crate_references_count() {
        assert!(references_crate("use rand::Rng;", "rand"));
        assert!(references_crate("use rand;", "rand"));
        assert!(references_crate("extern crate rand;", "rand"));
        assert!(references_crate("use {serde, rand};", "rand"));
        assert!(references_crate("let r = rand::thread_rng();", "rand"));
        assert!(!references_crate("let operand = 1;", "rand"));
        assert!(!references_crate("fn rand() -> u64 { 4 }", "rand"));
    }
}
