//! `proto-exhaustive`: every wire-protocol request is fully plumbed.
//!
//! The server's `Request` enum is the protocol's source of truth. For
//! each of its variants this pass checks the four places a request must
//! surface:
//!
//! 1. a dispatch arm in `ThresholdService::handle` that produces a
//!    `Response` variant,
//! 2. a wire tag in the `tagged_enum_serde!` invocation for `Request`,
//! 3. an `lv-client` subcommand whose literal matches the tag (exact,
//!    dash-for-underscore, or an unambiguous prefix of at least three
//!    characters, e.g. `sweep` for `sweep_surface`),
//! 4. a mention of the backtick-quoted tag in `PROTOCOL.md`.
//!
//! Rust's own exhaustiveness checking covers (1) only until someone adds
//! a `_ =>` arm; (2)–(4) it cannot see at all. Diagnostics anchor at the
//! variant's declaration line in `proto.rs` so the fix starts from the
//! enum. If the tree has no `proto.rs` the pass is silent — there is no
//! protocol to check.

use crate::diag::Diagnostic;
use crate::model;
use crate::passes::{find_ident_token, Pass};
use crate::source::{SourceFile, Workspace};

pub struct ProtoExhaustive;

const PROTO_RS: &str = "crates/server/src/proto.rs";
const SERVICE_RS: &str = "crates/server/src/service.rs";
const CLIENT_RS: &str = "crates/server/src/bin/lv_client.rs";
const PROTOCOL_MD: &str = "crates/server/PROTOCOL.md";

impl Pass for ProtoExhaustive {
    fn id(&self) -> &'static str {
        "proto-exhaustive"
    }

    fn description(&self) -> &'static str {
        "every Request variant has a dispatch arm, wire tag, client subcommand and doc section"
    }

    fn run(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let Some(proto) = ws.file(PROTO_RS) else {
            return Vec::new();
        };
        let Some(variants) = model::enum_variants(&proto.lexed.masked, "Request") else {
            return Vec::new();
        };

        let handle_body = ws
            .file(SERVICE_RS)
            .and_then(|f| Some((f, handle_fn_body(f)?)));
        let client_lits: Vec<String> = ws
            .file(CLIENT_RS)
            .map(|f| f.lexed.strings.iter().map(|s| s.value.clone()).collect())
            .unwrap_or_default();
        let doc = ws.read_text(PROTOCOL_MD);

        let mut diagnostics = Vec::new();
        for (variant, line) in variants {
            let mut missing = |message: String| {
                diagnostics.push(Diagnostic::new(PROTO_RS, line, self.id(), message));
            };

            if let Some((service, body)) = &handle_body {
                match dispatch_arm(&service.lexed.masked, *body, &variant) {
                    None => missing(format!(
                        "`Request::{variant}` has no dispatch arm in `ThresholdService::handle` ({SERVICE_RS})"
                    )),
                    Some(arm) if !arm.contains("Response::") => missing(format!(
                        "the `ThresholdService::handle` arm for `Request::{variant}` produces no `Response` counterpart"
                    )),
                    Some(_) => {}
                }
            } else {
                missing(format!(
                    "`Request::{variant}` cannot be dispatched: no `fn handle` found in {SERVICE_RS}"
                ));
            }

            let Some(tag) = wire_tag(proto, &variant) else {
                missing(format!(
                    "`Request::{variant}` has no wire tag in the `tagged_enum_serde!(Request ...)` invocation"
                ));
                continue;
            };

            if !client_lits.iter().any(|lit| tag_matches(&tag, lit)) {
                missing(format!(
                    "wire tag `{tag}` (`Request::{variant}`) has no matching lv-client subcommand ({CLIENT_RS})"
                ));
            }

            match &doc {
                Some(doc) if !doc.contains(&format!("`{tag}`")) => missing(format!(
                    "wire tag `{tag}` (`Request::{variant}`) is not documented in {PROTOCOL_MD}"
                )),
                _ => {}
            }
        }
        diagnostics
    }
}

/// The body span of `fn handle` in the service file.
fn handle_fn_body(service: &SourceFile) -> Option<(usize, usize)> {
    model::fn_defs(&service.lexed.masked)
        .into_iter()
        .find(|f| f.name == "handle")
        .and_then(|f| f.body)
}

/// The match-arm text for `Request::{variant}` inside `body`, from the
/// pattern through the arm's terminating `,` / block close.
fn dispatch_arm<'a>(masked: &'a str, body: (usize, usize), variant: &str) -> Option<&'a str> {
    let mut from = body.0;
    while let Some(at) = find_ident_token(masked, variant, from) {
        if at >= body.1 {
            return None;
        }
        from = at + variant.len();
        if !masked[..at].trim_end().ends_with("::")
            || !masked[..at]
                .trim_end()
                .trim_end_matches(':')
                .trim_end()
                .ends_with("Request")
        {
            continue;
        }
        let end = model::statement_end(masked, at).min(body.1);
        return Some(&masked[at..end]);
    }
    None
}

/// The wire tag paired with `variant` in the `tagged_enum_serde!` macro
/// invocation for `Request`: the first string literal after the variant's
/// `=>` inside that invocation.
fn wire_tag(proto: &SourceFile, variant: &str) -> Option<String> {
    let masked = &proto.lexed.masked;
    let bytes = masked.as_bytes();
    let mut from = 0;
    let (open, close) = loop {
        let at = find_ident_token(masked, "tagged_enum_serde", from)?;
        from = at + 1;
        let mut i = at + "tagged_enum_serde".len();
        if bytes.get(i) != Some(&b'!') {
            continue;
        }
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if bytes.get(i) != Some(&b'(') {
            continue;
        }
        let open = i;
        let mut depth = 0i32;
        let mut j = open;
        while j < bytes.len() {
            match bytes[j] {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        // The invocation we want names `Request` first.
        if find_ident_token(masked, "Request", open)
            .is_some_and(|r| r < j && masked[open + 1..r].trim().is_empty())
        {
            break (open, j);
        }
    };
    let at = find_ident_token(masked, variant, open)?;
    if at >= close {
        return None;
    }
    let arrow = masked[at..close].find("=>").map(|o| at + o)?;
    proto
        .lexed
        .strings
        .iter()
        .find(|s| s.offset > arrow && s.offset < close)
        .map(|s| s.value.clone())
}

/// Whether an lv-client string literal selects wire tag `tag`.
fn tag_matches(tag: &str, lit: &str) -> bool {
    lit == tag || lit == tag.replace('_', "-") || (lit.len() >= 3 && tag.starts_with(lit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn ws(files: Vec<(&str, &str)>) -> Workspace {
        Workspace {
            root: PathBuf::from("/nonexistent"),
            files: files
                .into_iter()
                .map(|(rel, text)| SourceFile::parse(rel.into(), text.into()))
                .collect(),
            manifests: Vec::new(),
        }
    }

    const PROTO_OK: &str = r#"
pub enum Request {
    Estimate(EstimateRequest),
    Status,
}
tagged_enum_serde!(Request {
    Estimate(EstimateRequest) => "estimate",
    ;
    Status => "status",
});
tagged_enum_serde!(Response {
    Estimate(EstimateResponse) => "estimate",
    ;
    Ready => "ready",
});
"#;

    const SERVICE_OK: &str = r#"
impl ThresholdService {
    pub fn handle(&self, request: &Request) -> Response {
        match request {
            Request::Estimate(r) => self.estimate(r).map(Response::Estimate),
            Request::Status => Ok(Response::Status(self.status())),
        }
    }
}
"#;

    const CLIENT_OK: &str = r#"
fn run(cmd: &str) {
    match cmd {
        "estimate" => estimate(),
        "status" => status(),
        _ => usage(),
    }
}
"#;

    #[test]
    fn fully_plumbed_protocol_is_clean() {
        let ws = ws(vec![
            (PROTO_RS, PROTO_OK),
            (SERVICE_RS, SERVICE_OK),
            (CLIENT_RS, CLIENT_OK),
        ]);
        let diags = ProtoExhaustive.run(&ws);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn missing_dispatch_arm_is_flagged_at_the_variant_line() {
        let service = r#"
impl ThresholdService {
    pub fn handle(&self, request: &Request) -> Response {
        match request {
            Request::Estimate(r) => self.estimate(r).map(Response::Estimate),
            _ => Response::Error(unknown()),
        }
    }
}
"#;
        let ws = ws(vec![
            (PROTO_RS, PROTO_OK),
            (SERVICE_RS, service),
            (CLIENT_RS, CLIENT_OK),
        ]);
        let diags = ProtoExhaustive.run(&ws);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0]
            .message
            .contains("`Request::Status` has no dispatch arm"));
        assert_eq!(diags[0].file, PROTO_RS);
        assert_eq!(diags[0].line, 4, "anchored at the Status variant");
    }

    #[test]
    fn arm_without_a_response_is_flagged() {
        let service = r#"
impl ThresholdService {
    pub fn handle(&self, request: &Request) -> Response {
        match request {
            Request::Estimate(r) => self.estimate(r).map(Response::Estimate),
            Request::Status => std::process::exit(0),
        }
    }
}
"#;
        let ws = ws(vec![
            (PROTO_RS, PROTO_OK),
            (SERVICE_RS, service),
            (CLIENT_RS, CLIENT_OK),
        ]);
        let diags = ProtoExhaustive.run(&ws);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0]
            .message
            .contains("produces no `Response` counterpart"));
    }

    #[test]
    fn missing_wire_tag_is_flagged() {
        let proto = r#"
pub enum Request {
    Estimate(EstimateRequest),
    Status,
}
tagged_enum_serde!(Request {
    Estimate(EstimateRequest) => "estimate",
    ;
});
"#;
        let ws = ws(vec![
            (PROTO_RS, proto),
            (SERVICE_RS, SERVICE_OK),
            (CLIENT_RS, CLIENT_OK),
        ]);
        let diags = ProtoExhaustive.run(&ws);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("has no wire tag"));
    }

    #[test]
    fn tag_without_client_subcommand_is_flagged() {
        let client = r#"
fn run(cmd: &str) {
    match cmd {
        "estimate" => estimate(),
        _ => usage(),
    }
}
"#;
        let ws = ws(vec![
            (PROTO_RS, PROTO_OK),
            (SERVICE_RS, SERVICE_OK),
            (CLIENT_RS, client),
        ]);
        let diags = ProtoExhaustive.run(&ws);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains(
            "wire tag `status` (`Request::Status`) has no matching lv-client subcommand"
        ));
    }

    #[test]
    fn subcommand_matching_allows_dashes_and_prefixes() {
        assert!(tag_matches("cache_stats", "cache-stats"));
        assert!(tag_matches("sweep_surface", "sweep"));
        assert!(tag_matches("status", "status"));
        assert!(!tag_matches("status", "st"), "prefix must be >= 3 chars");
        assert!(!tag_matches("status", "shutdown"));
    }

    #[test]
    fn response_tags_are_not_mistaken_for_request_tags() {
        // `Ready` exists only in the Response invocation; the Request
        // lookup must not find it there.
        let ws = ws(vec![(PROTO_RS, PROTO_OK)]);
        let proto = ws.file(PROTO_RS).unwrap();
        assert_eq!(wire_tag(proto, "Estimate").as_deref(), Some("estimate"));
        assert_eq!(wire_tag(proto, "Ready"), None);
    }

    #[test]
    fn tree_without_a_protocol_is_out_of_scope() {
        let ws = ws(vec![("crates/sim/src/lib.rs", "fn f() {}")]);
        assert!(ProtoExhaustive.run(&ws).is_empty());
    }
}
