//! `panic-safety` — the serving layer answers errors, it does not die.
//!
//! Forbids `.unwrap()`, `.expect(`, `panic!`, `unreachable!`, `todo!` and
//! `unimplemented!` in `crates/server/src` library code. A panic on the
//! request path either kills the process or (when caught) silently costs
//! a whole connection the server could have answered with an error frame.
//! Test code and `src/bin/` CLIs (whose crash affects only themselves)
//! are exempt.

use crate::diag::Diagnostic;
use crate::source::Workspace;

use super::Pass;

/// Patterns are plain substrings: `.unwrap()` and `.expect(` cannot be
/// confused with identifiers, and the macro names keep their `!`.
const FORBIDDEN: &[(&str, &str)] = &[
    (
        ".unwrap()",
        "use poison recovery, `?`, or a typed `ServiceError`",
    ),
    (
        ".expect(",
        "use poison recovery, `?`, or a typed `ServiceError`",
    ),
    ("panic!", "return an error frame instead of dying"),
    ("unreachable!", "return an error frame instead of dying"),
    ("todo!", "the request path cannot contain stubs"),
    ("unimplemented!", "the request path cannot contain stubs"),
];

pub struct PanicSafety;

impl Pass for PanicSafety {
    fn id(&self) -> &'static str {
        "panic-safety"
    }

    fn description(&self) -> &'static str {
        "forbid unwrap/expect/panic on the server request path"
    }

    fn run(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        for file in ws.files_under("crates/server/src") {
            if file.rel.contains("/src/bin/") {
                continue;
            }
            for (line_no, line) in file.masked_lines() {
                if file.is_test_line(line_no) {
                    continue;
                }
                for (pattern, fix) in FORBIDDEN {
                    if line.contains(pattern) {
                        diags.push(Diagnostic::new(
                            &file.rel,
                            line_no,
                            self.id(),
                            format!("`{pattern}` on the server request path: {fix}"),
                        ));
                    }
                }
            }
        }
        diags
    }
}
