//! `rng-discipline` — one root seed, one derivation chain.
//!
//! Reproducibility at any thread count and worker-pool width rests on a
//! single discipline: RNG streams are derived *only* through
//! `Seed::rng_for_trial` from a caller-provided root seed. Constructing
//! seeds or RNGs ad hoc (`Seed::new(`, `Seed::from(`, `seed_from_u64`,
//! `thread_rng`, `from_entropy`) anywhere else silently forks the stream
//! and breaks bit-identity. Legitimate construction sites — user-facing
//! entry points that accept a root seed, the canonical derivation in
//! `lv_sim::seed`, and wire-carried seed reconstruction in workers —
//! carry `lv-analyze::allow` annotations naming the justification.
//! Test code and `src/bin/` entry points are exempt.

use crate::diag::Diagnostic;
use crate::source::Workspace;

use super::{has_ident_token, Pass};

/// Where the discipline applies: the facade plus every library crate that
/// participates in simulation or serving (bench and the compat shims sit
/// outside the result path).
const SCOPES: &[&str] = &[
    "src",
    "crates/crn",
    "crates/chains",
    "crates/core",
    "crates/ode",
    "crates/protocols",
    "crates/engine",
    "crates/sim",
    "crates/server",
    "crates/analyze",
];

/// Substring patterns (`Seed::new(`) and identifier tokens.
const SUBSTRINGS: &[&str] = &["Seed::new(", "Seed::from("];
const IDENTS: &[&str] = &["seed_from_u64", "thread_rng", "from_entropy"];

pub struct RngDiscipline;

impl Pass for RngDiscipline {
    fn id(&self) -> &'static str {
        "rng-discipline"
    }

    fn description(&self) -> &'static str {
        "seeds and RNGs are constructed only at annotated derivation sites"
    }

    fn run(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        for scope in SCOPES {
            for file in ws.files_under(scope) {
                if file.rel.contains("/src/bin/") {
                    continue;
                }
                for (line_no, line) in file.masked_lines() {
                    if file.is_test_line(line_no) {
                        continue;
                    }
                    for pattern in SUBSTRINGS {
                        if line.contains(pattern) {
                            diags.push(self.report(file.rel.clone(), line_no, pattern));
                        }
                    }
                    for token in IDENTS {
                        if has_ident_token(line, token) {
                            diags.push(self.report(file.rel.clone(), line_no, token));
                        }
                    }
                }
            }
        }
        diags
    }
}

impl RngDiscipline {
    fn report(&self, file: String, line: usize, pattern: &str) -> Diagnostic {
        Diagnostic::new(
            file,
            line,
            self.id(),
            format!(
                "`{pattern}` outside an annotated derivation site: \
                 derive streams via `Seed::rng_for_trial` from a caller-provided root seed"
            ),
        )
    }
}
