//! `lock-order`: deadlock-freedom of the server's mutex acquisitions.
//!
//! Extracts every `sync::lock(..)` / `crate::sync::lock(..)` call site in
//! `crates/server`, computes each guard's live range from its binding
//! (temporaries end at their statement, named guards at end-of-scope or
//! an explicit `drop`), and builds the global lock-acquisition graph:
//! edge A → B when B is acquired while a guard of A is live, including
//! through same-crate `fn` calls one level deep. Any cycle — two locks
//! taken in opposite orders on different paths, or a re-acquisition of a
//! lock already held — is a potential deadlock and fails the run. Guards
//! held across blocking operations (executor dispatch, channel sends,
//! socket I/O) are flagged too. `sync::wait` is exempt: a condvar wait
//! releases the lock it was handed.
//!
//! Locks are identified by the last path segment of the lock expression
//! (`&self.inner.keys` → `keys`); the canonical acquisition order is
//! documented in `crates/server/src/sync.rs` and quoted in diagnostics.

use std::collections::BTreeSet;

use crate::diag::Diagnostic;
use crate::model;
use crate::passes::{line_of, Pass};
use crate::source::{SourceFile, Workspace};

const SCOPE: &str = "crates/server";

/// Call names treated as blocking while a guard is live. `wait` is
/// deliberately absent: `sync::wait` atomically releases the guard.
const BLOCKING: &[&str] = &[
    "run_range",
    "dispatch",
    "read_message",
    "write_message",
    "send",
    "recv",
    "accept",
    "connect",
    "join",
];

pub struct LockOrder;

/// One acquisition-graph edge: acquisition indices (from, to), plus the
/// linking call's name and line for interprocedural edges.
type Edge = (usize, usize, Option<(String, usize)>);

/// One lock acquisition and its guard's live range.
struct Acq {
    /// Lock identity: last path segment of the lock expression.
    lock: String,
    file_idx: usize,
    /// Offset of the `sync::lock` match in the masked text.
    offset: usize,
    line: usize,
    /// Guard live range (masked offsets), from just past the call's
    /// closing paren to statement end / scope end / explicit drop.
    range: (usize, usize),
    /// Index into the fn table of the containing fn body, if any.
    fn_idx: Option<usize>,
}

struct FnInfo {
    name: String,
    file_idx: usize,
    body: (usize, usize),
}

impl Pass for LockOrder {
    fn id(&self) -> &'static str {
        "lock-order"
    }

    fn description(&self) -> &'static str {
        "server mutex acquisitions form an acyclic order and no guard is held across blocking calls"
    }

    fn run(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let files: Vec<&SourceFile> = ws.files_under(SCOPE).collect();
        if files.is_empty() {
            return Vec::new();
        }

        // Global fn table (bodies only, test items excluded).
        let mut fns: Vec<FnInfo> = Vec::new();
        for (file_idx, file) in files.iter().enumerate() {
            for def in model::fn_defs(&file.lexed.masked) {
                if file.is_test_line(def.line) {
                    continue;
                }
                if let Some(body) = def.body {
                    fns.push(FnInfo {
                        name: def.name,
                        file_idx,
                        body,
                    });
                }
            }
        }

        let mut acqs: Vec<Acq> = Vec::new();
        for (file_idx, file) in files.iter().enumerate() {
            collect_acquisitions(file, file_idx, &fns, &mut acqs);
        }

        let canonical = canonical_order(&files);
        let mut rendered: BTreeSet<String> = BTreeSet::new();
        let mut diagnostics = Vec::new();

        // Edges of the acquisition graph: (from, to, via-call-line).
        let mut edges: Vec<Edge> = Vec::new();
        for (a_idx, a) in acqs.iter().enumerate() {
            // Direct: another acquisition inside a's live range.
            for (b_idx, b) in acqs.iter().enumerate() {
                if a_idx != b_idx
                    && a.file_idx == b.file_idx
                    && b.offset >= a.range.0
                    && b.offset < a.range.1
                {
                    edges.push((a_idx, b_idx, None));
                }
            }
            // One level deep: a same-crate fn called inside a's range
            // contributes its own direct acquisitions.
            let masked = &files[a.file_idx].lexed.masked;
            for call in model::call_sites(masked, a.range) {
                if BLOCKING.contains(&call.name.as_str()) {
                    let key = format!("blocking:{}:{}:{}", a.file_idx, call.offset, a.offset);
                    if rendered.insert(key) {
                        diagnostics.push(Diagnostic::new(
                            &files[a.file_idx].rel,
                            call.line,
                            self.id(),
                            format!(
                                "guard of lock `{}` (acquired at {}:{}) is held across blocking call `{}(...)`",
                                a.lock, files[a.file_idx].rel, a.line, call.name
                            ),
                        ));
                    }
                    continue;
                }
                if !call.resolvable {
                    continue;
                }
                for (fn_idx, info) in fns.iter().enumerate() {
                    if info.name != call.name {
                        continue;
                    }
                    for (b_idx, b) in acqs.iter().enumerate() {
                        if b.fn_idx == Some(fn_idx) {
                            edges.push((a_idx, b_idx, Some((call.name.clone(), call.line))));
                        }
                    }
                }
            }
        }

        // Adjacency between lock names, for cycle detection.
        let reachable = |from: &str, to: &str| -> bool {
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            let mut queue = vec![from];
            while let Some(node) = queue.pop() {
                if node == to {
                    return true;
                }
                if !seen.insert(node) {
                    continue;
                }
                for (x, y, _) in &edges {
                    if acqs[*x].lock == node {
                        queue.push(&acqs[*y].lock);
                    }
                }
            }
            false
        };

        for (a_idx, b_idx, via) in &edges {
            let (a, b) = (&acqs[*a_idx], &acqs[*b_idx]);
            let via_txt = match via {
                Some((name, link_line)) => {
                    format!(" (via the call to `{name}` on line {link_line})")
                }
                None => String::new(),
            };
            let canon = canonical
                .as_ref()
                .map(|(rel, order)| format!("; canonical order ({rel}): {order}"))
                .unwrap_or_default();
            if a.lock == b.lock {
                let key = format!("self:{}:{}:{}", a.lock, a.offset, b.offset);
                if rendered.insert(key) {
                    diagnostics.push(Diagnostic::new(
                        &files[b.file_idx].rel,
                        b.line,
                        self.id(),
                        format!(
                            "lock `{}` re-acquired at {}:{} while its own guard (acquired at {}:{}) is still live{via_txt}; self-deadlock",
                            b.lock, files[b.file_idx].rel, b.line, files[a.file_idx].rel, a.line
                        ),
                    ));
                }
            } else if reachable(&b.lock, &a.lock) {
                let key = format!("cycle:{}:{}:{}:{}", a.lock, b.lock, a.offset, b.offset);
                if rendered.insert(key) {
                    diagnostics.push(Diagnostic::new(
                        &files[b.file_idx].rel,
                        b.line,
                        self.id(),
                        format!(
                            "lock `{}` acquired at {}:{} while a guard of `{}` (acquired at {}:{}) is live{via_txt}; the `{}` -> `{}` edge closes a cycle in the lock-acquisition graph{canon}",
                            b.lock,
                            files[b.file_idx].rel,
                            b.line,
                            a.lock,
                            files[a.file_idx].rel,
                            a.line,
                            a.lock,
                            b.lock
                        ),
                    ));
                }
            }
        }

        diagnostics
    }
}

/// Finds every `sync::lock(..)` acquisition in `file` and computes its
/// guard's live range.
fn collect_acquisitions(file: &SourceFile, file_idx: usize, fns: &[FnInfo], out: &mut Vec<Acq>) {
    let masked = &file.lexed.masked;
    let bytes = masked.as_bytes();
    let pairs = model::brace_pairs(masked);
    let mut from = 0;
    while let Some(at) = masked[from..].find("sync::lock").map(|o| from + o) {
        from = at + 1;
        if at > 0 && (bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_') {
            continue;
        }
        // The argument list.
        let mut i = at + "sync::lock".len();
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if bytes.get(i) != Some(&b'(') {
            continue;
        }
        let arg_open = i;
        let mut depth = 0i32;
        while i < bytes.len() {
            match bytes[i] {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        let arg_close = i + 1;
        let line = line_of(masked, at);
        if file.is_test_line(line) {
            continue;
        }
        // Lock identity: last identifier in the argument expression.
        let Some(lock) = last_ident(&masked[arg_open..i.min(masked.len())]) else {
            continue;
        };
        // The whole lock expression may start with a path prefix
        // (`crate::sync::lock(..)`): walk it back for binding detection.
        let mut expr_start = at;
        while expr_start >= 2 && bytes[expr_start - 1] == b':' && bytes[expr_start - 2] == b':' {
            expr_start -= 2;
            while expr_start > 0
                && (bytes[expr_start - 1].is_ascii_alphanumeric() || bytes[expr_start - 1] == b'_')
            {
                expr_start -= 1;
            }
        }
        let range_end = match model::binding_name(masked, expr_start) {
            Some(name) => {
                let scope_end = model::enclosing_block(&pairs, at)
                    .map(|(_, close)| close)
                    .unwrap_or(masked.len());
                model::explicit_drop(masked, &name, (arg_close, scope_end)).unwrap_or(scope_end)
            }
            None => model::statement_end(masked, at),
        };
        let fn_idx = fns
            .iter()
            .position(|f| f.file_idx == file_idx && f.body.0 < at && at < f.body.1);
        out.push(Acq {
            lock,
            file_idx,
            offset: at,
            line,
            range: (arg_close, range_end.max(arg_close)),
            fn_idx,
        });
    }
}

/// The last identifier token in a lock-argument expression
/// (`&self.inner.keys` → `keys`).
fn last_ident(arg: &str) -> Option<String> {
    let mut last: Option<String> = None;
    let bytes = arg.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_alphabetic() || bytes[i] == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            last = Some(arg[start..i].to_string());
        } else {
            i += 1;
        }
    }
    last
}

/// The documented canonical acquisition order: the first source comment in
/// scope containing `Lock order:`, preferring `sync.rs`.
fn canonical_order(files: &[&SourceFile]) -> Option<(String, String)> {
    let mut found: Option<(String, String)> = None;
    for file in files {
        for comment in &file.lexed.comments {
            if let Some(pos) = comment.text.find("Lock order:") {
                let order = comment.text[pos + "Lock order:".len()..].trim().to_string();
                if file.rel.ends_with("sync.rs") {
                    return Some((file.rel.clone(), order));
                }
                if found.is_none() {
                    found = Some((file.rel.clone(), order));
                }
            }
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::PathBuf;

    fn ws(files: Vec<(&str, &str)>) -> Workspace {
        Workspace {
            root: PathBuf::from("/nonexistent"),
            files: files
                .into_iter()
                .map(|(rel, text)| SourceFile::parse(rel.into(), text.into()))
                .collect(),
            manifests: Vec::new(),
        }
    }

    #[test]
    fn consistent_nesting_is_clean() {
        let ws = ws(vec![(
            "crates/server/src/lib.rs",
            "fn forward(s: &S) {\n    let a = sync::lock(&s.alpha);\n    let b = sync::lock(&s.beta);\n    drop(b);\n    drop(a);\n}\nfn again(s: &S) {\n    let a = sync::lock(&s.alpha);\n    let b = sync::lock(&s.beta);\n}\n",
        )]);
        assert!(LockOrder.run(&ws).is_empty());
    }

    #[test]
    fn opposite_nesting_is_a_cycle() {
        let ws = ws(vec![(
            "crates/server/src/lib.rs",
            "fn forward(s: &S) {\n    let a = sync::lock(&s.alpha);\n    let b = sync::lock(&s.beta);\n}\nfn backward(s: &S) {\n    let b = sync::lock(&s.beta);\n    let a = sync::lock(&s.alpha);\n}\n",
        )]);
        let diags = LockOrder.run(&ws);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.message.contains("closes a cycle")));
    }

    #[test]
    fn cycle_through_one_level_call_is_found() {
        let ws = ws(vec![(
            "crates/server/src/lib.rs",
            "fn forward(s: &S) {\n    let a = sync::lock(&s.alpha);\n    let b = sync::lock(&s.beta);\n}\nfn backward(s: &S) {\n    let b = sync::lock(&s.beta);\n    bump_alpha(s);\n}\nfn bump_alpha(s: &S) {\n    let mut a = sync::lock(&s.alpha);\n}\n",
        )]);
        let diags = LockOrder.run(&ws);
        assert!(!diags.is_empty());
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("via the call to `bump_alpha`")),
            "{diags:?}"
        );
    }

    #[test]
    fn explicit_drop_ends_the_range() {
        let ws = ws(vec![(
            "crates/server/src/lib.rs",
            "fn forward(s: &S) {\n    let a = sync::lock(&s.alpha);\n    let b = sync::lock(&s.beta);\n}\nfn fine(s: &S) {\n    let b = sync::lock(&s.beta);\n    drop(b);\n    let a = sync::lock(&s.alpha);\n}\n",
        )]);
        assert!(LockOrder.run(&ws).is_empty());
    }

    #[test]
    fn temporaries_do_not_span_match_arms() {
        let ws = ws(vec![(
            "crates/server/src/lib.rs",
            "fn work(q: &Q) {\n    match go() {\n        Ok(b) => sync::lock(&q.done).push(b),\n        Err(e) => {\n            sync::lock(&q.queue).push_front(e);\n            sync::lock(&q.failures).push(e);\n        }\n    }\n}\nfn order(q: &Q) {\n    let f = sync::lock(&q.failures);\n    let d = sync::lock(&q.done);\n}\n",
        )]);
        // If the `done` temporary leaked across the `Err` arm it would
        // create done -> failures, closing a cycle with order()'s
        // failures -> done. It must not.
        assert!(LockOrder.run(&ws).is_empty());
    }

    #[test]
    fn reacquiring_a_held_lock_is_a_self_deadlock() {
        let ws = ws(vec![(
            "crates/server/src/lib.rs",
            "fn twice(s: &S) {\n    let a = sync::lock(&s.alpha);\n    let again = sync::lock(&s.alpha);\n}\n",
        )]);
        let diags = LockOrder.run(&ws);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("self-deadlock"));
    }

    #[test]
    fn guard_held_across_blocking_call_is_flagged() {
        let ws = ws(vec![(
            "crates/server/src/lib.rs",
            "fn bad(s: &S) {\n    let a = sync::lock(&s.alpha);\n    s.executor.run_range(&job);\n}\nfn ok(s: &S) {\n    let a = sync::lock(&s.alpha);\n    drop(a);\n    s.executor.run_range(&job);\n}\n",
        )]);
        let diags = LockOrder.run(&ws);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("blocking call `run_range(...)`"));
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn methods_chained_on_call_results_do_not_resolve() {
        // `.cell(..)` on the guard expression must not resolve to the
        // sibling fn `cell` (which also locks `surface`): that would be a
        // phantom self-cycle.
        let ws = ws(vec![(
            "crates/server/src/lib.rs",
            "fn cell(s: &S) -> u64 {\n    sync::lock(&s.surface).cell(1)\n}\n",
        )]);
        assert!(LockOrder.run(&ws).is_empty());
    }

    #[test]
    fn test_code_is_out_of_scope() {
        let ws = ws(vec![(
            "crates/server/src/lib.rs",
            "#[cfg(test)]\nmod tests {\n    fn t(s: &S) {\n        let a = sync::lock(&s.alpha);\n        let b = sync::lock(&s.beta);\n        let a2 = sync::lock(&s.alpha);\n    }\n}\n",
        )]);
        assert!(LockOrder.run(&ws).is_empty());
    }
}
