//! `registry-docs` — results must be reproducible from the docs alone.
//!
//! Extracts every backend name and alias from the engine's backend
//! definitions (`fn name(` / `fn aliases(` bodies) and every wire error
//! code from the server (literals in `error.rs` plus first-argument
//! literals of `ServiceError::new(` call sites), then cross-checks the
//! two user-facing documents:
//!
//! - backend *names* must appear in both `README.md` and
//!   `crates/server/PROTOCOL.md`;
//! - backend *aliases* must appear in at least one of the two;
//! - error *codes* must appear in `crates/server/PROTOCOL.md`.
//!
//! Diagnostics anchor at the defining Rust line, so a deliberately
//! undocumented entry can carry an `lv-analyze::allow` annotation there.

use crate::diag::Diagnostic;
use crate::source::{SourceFile, Workspace};

use super::{brace_span, find_ident_token, line_of, Pass};

/// Files that define backends (trait impls with `fn name`/`fn aliases`).
const BACKEND_FILES: &[&str] = &[
    "crates/engine/src/backends.rs",
    "crates/engine/src/protocol_backend.rs",
];

/// A string constant extracted from source, with its defining location.
struct Extracted {
    value: String,
    file: String,
    line: usize,
}

pub struct RegistryDocs;

impl Pass for RegistryDocs {
    fn id(&self) -> &'static str {
        "registry-docs"
    }

    fn description(&self) -> &'static str {
        "backend names/aliases and wire error codes must be documented in README and PROTOCOL.md"
    }

    fn run(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let mut diags = Vec::new();

        let readme = ws.read_text("README.md").unwrap_or_default();
        let protocol = ws
            .read_text("crates/server/PROTOCOL.md")
            .unwrap_or_default();
        if readme.is_empty() {
            diags.push(Diagnostic::new(
                "README.md",
                0,
                self.id(),
                "README.md is missing",
            ));
        }
        if protocol.is_empty() {
            diags.push(Diagnostic::new(
                "crates/server/PROTOCOL.md",
                0,
                self.id(),
                "crates/server/PROTOCOL.md is missing",
            ));
        }

        let (names, aliases) = extract_backends(ws);
        for name in &names {
            let mut missing = Vec::new();
            if !readme.contains(&name.value) {
                missing.push("README.md");
            }
            if !protocol.contains(&name.value) {
                missing.push("crates/server/PROTOCOL.md");
            }
            if !missing.is_empty() {
                diags.push(Diagnostic::new(
                    &name.file,
                    name.line,
                    self.id(),
                    format!(
                        "backend `{}` is not documented in {}",
                        name.value,
                        missing.join(" or ")
                    ),
                ));
            }
        }
        for alias in &aliases {
            if !readme.contains(&alias.value) && !protocol.contains(&alias.value) {
                diags.push(Diagnostic::new(
                    &alias.file,
                    alias.line,
                    self.id(),
                    format!(
                        "backend alias `{}` appears in neither README.md nor crates/server/PROTOCOL.md",
                        alias.value
                    ),
                ));
            }
        }

        for code in extract_error_codes(ws) {
            if !protocol.contains(&code.value) {
                diags.push(Diagnostic::new(
                    &code.file,
                    code.line,
                    self.id(),
                    format!(
                        "wire error code `{}` is not documented in crates/server/PROTOCOL.md",
                        code.value
                    ),
                ));
            }
        }

        diags
    }
}

/// Collects backend names and aliases: for each non-test `fn name(` /
/// `fn aliases(` in the backend files, the string literals inside the
/// function body.
fn extract_backends(ws: &Workspace) -> (Vec<Extracted>, Vec<Extracted>) {
    let mut names = Vec::new();
    let mut aliases = Vec::new();
    for rel in BACKEND_FILES {
        let Some(file) = ws.file(rel) else { continue };
        collect_fn_literals(file, "name", &mut names);
        collect_fn_literals(file, "aliases", &mut aliases);
    }
    (names, aliases)
}

/// Pushes the string literals found inside each non-test `fn {fn_name}(`
/// body of `file`.
fn collect_fn_literals(file: &SourceFile, fn_name: &str, out: &mut Vec<Extracted>) {
    let masked = &file.lexed.masked;
    let needle = format!("fn {fn_name}");
    let mut from = 0;
    while let Some(at) = find_ident_token(masked, &needle, from) {
        from = at + needle.len();
        // Must be a call-shaped definition: `fn name(`.
        if masked.as_bytes().get(from) != Some(&b'(') {
            continue;
        }
        let def_line = line_of(masked, at);
        if file.is_test_line(def_line) {
            continue;
        }
        let Some((open, close)) = brace_span(masked, from) else {
            continue;
        };
        for lit in &file.lexed.strings {
            if lit.offset > open && lit.end <= close {
                out.push(Extracted {
                    value: lit.value.clone(),
                    file: file.rel.clone(),
                    line: lit.line,
                });
            }
        }
        from = close;
    }
}

/// Collects wire error codes: every code-shaped literal in
/// `crates/server/src/error.rs`, plus the first code-shaped literal right
/// after each `ServiceError::new(` call site across `crates/server/src`.
fn extract_error_codes(ws: &Workspace) -> Vec<Extracted> {
    let mut codes: Vec<Extracted> = Vec::new();
    let push = |value: &str, file: &str, line: usize, codes: &mut Vec<Extracted>| {
        if !codes.iter().any(|c| c.value == value) {
            codes.push(Extracted {
                value: value.to_string(),
                file: file.to_string(),
                line,
            });
        }
    };

    if let Some(file) = ws.file("crates/server/src/error.rs") {
        for lit in &file.lexed.strings {
            if file.is_test_line(lit.line) || !is_code_shaped(&lit.value) {
                continue;
            }
            push(&lit.value, &file.rel, lit.line, &mut codes);
        }
    }

    for file in ws.files_under("crates/server/src") {
        let masked = &file.lexed.masked;
        let mut from = 0;
        while let Some(at) = masked[from..].find("ServiceError::new(").map(|o| from + o) {
            from = at + 1;
            let call_line = line_of(masked, at);
            if file.is_test_line(call_line) {
                continue;
            }
            // First literal that starts within the next 120 bytes of the
            // call — covers multi-line call formatting; a variable first
            // argument simply finds no nearby literal.
            if let Some(lit) = file
                .lexed
                .strings
                .iter()
                .find(|l| l.offset > at && l.offset < at + 120)
            {
                if is_code_shaped(&lit.value) {
                    push(&lit.value, &file.rel, lit.line, &mut codes);
                }
            }
        }
    }
    codes
}

/// Whether a literal looks like a wire error code: lowercase kebab-case,
/// starting with a letter (`bad-request`, `io`, `worker`, ...).
fn is_code_shaped(value: &str) -> bool {
    !value.is_empty()
        && value.as_bytes()[0].is_ascii_lowercase()
        && !value.starts_with('-')
        && !value.ends_with('-')
        && !value.contains("--")
        && value
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_shape_accepts_kebab_and_rejects_prose() {
        assert!(is_code_shaped("bad-request"));
        assert!(is_code_shaped("io"));
        assert!(!is_code_shaped("Bad-Request"));
        assert!(!is_code_shaped("spawn failed"));
        assert!(!is_code_shaped(""));
        assert!(!is_code_shaped("-leading"));
        assert!(!is_code_shaped("double--dash"));
    }
}
