//! `determinism` — the simulation crates must stay bit-reproducible.
//!
//! Forbids iteration-order-unstable collections (`HashMap`, `HashSet`),
//! wall-clock reads (`Instant`, `SystemTime`), and nondeterministic RNG
//! construction (`thread_rng`, `from_entropy`) in the deterministic
//! crates' library code. Test code (`#[cfg(test)]` / `#[test]`) and
//! `src/bin/` entry points are exempt: they do not sit on a result path.

use crate::diag::Diagnostic;
use crate::source::Workspace;

use super::{has_ident_token, Pass};

/// Crates whose outputs must be a pure function of (config, seed).
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "crates/core",
    "crates/crn",
    "crates/chains",
    "crates/ode",
    "crates/protocols",
    "crates/engine",
    "crates/sim",
];

/// Tokens that break determinism, with the reason reported.
const FORBIDDEN: &[(&str, &str)] = &[
    ("HashMap", "iteration order is randomized; use `BTreeMap`"),
    ("HashSet", "iteration order is randomized; use `BTreeSet`"),
    ("Instant", "wall-clock reads make runs irreproducible"),
    ("SystemTime", "wall-clock reads make runs irreproducible"),
    ("thread_rng", "OS-entropy RNG breaks seed reproducibility"),
    ("from_entropy", "OS-entropy RNG breaks seed reproducibility"),
];

pub struct Determinism;

impl Pass for Determinism {
    fn id(&self) -> &'static str {
        "determinism"
    }

    fn description(&self) -> &'static str {
        "forbid unordered collections, wall clocks and entropy RNGs in the deterministic crates"
    }

    fn run(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        for krate in DETERMINISTIC_CRATES {
            for file in ws.files_under(krate) {
                if file.rel.contains("/src/bin/") {
                    continue;
                }
                for (line_no, line) in file.masked_lines() {
                    if file.is_test_line(line_no) {
                        continue;
                    }
                    for (token, why) in FORBIDDEN {
                        if has_ident_token(line, token) {
                            diags.push(Diagnostic::new(
                                &file.rel,
                                line_no,
                                self.id(),
                                format!("`{token}` in deterministic crate: {why}"),
                            ));
                        }
                    }
                }
            }
        }
        diags
    }
}
