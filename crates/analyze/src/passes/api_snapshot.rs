//! `api-snapshot` — the public surface is a reviewed artifact.
//!
//! Lexically extracts every top-level `pub` item from the facade root and
//! each library crate root into a canonical text rendering, and diffs it
//! against the checked-in `API.txt`. Any drift — an item added, removed,
//! or re-signed — fails the pass until `API.txt` is regenerated with
//! `lv-analyze --update-api` (and the change thereby shows up in review).

use crate::diag::Diagnostic;
use crate::source::{SourceFile, Workspace};

use super::Pass;

/// The roots whose `pub` surface is snapshotted, in rendering order:
/// the facade first, then the library crates in dependency order. The
/// bench harness and compat shims are not public surface.
pub const API_ROOTS: &[&str] = &[
    "src/lib.rs",
    "crates/crn/src/lib.rs",
    "crates/chains/src/lib.rs",
    "crates/core/src/lib.rs",
    "crates/ode/src/lib.rs",
    "crates/protocols/src/lib.rs",
    "crates/engine/src/lib.rs",
    "crates/sim/src/lib.rs",
    "crates/server/src/lib.rs",
    "crates/analyze/src/lib.rs",
];

/// Path of the checked-in snapshot, relative to the workspace root.
pub const SNAPSHOT_PATH: &str = "API.txt";

pub struct ApiSnapshot;

impl Pass for ApiSnapshot {
    fn id(&self) -> &'static str {
        "api-snapshot"
    }

    fn description(&self) -> &'static str {
        "the pub surface of the crate roots must match the checked-in API.txt"
    }

    fn run(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let rendered = render_api(ws);
        let Some(snapshot) = ws.read_text(SNAPSHOT_PATH) else {
            return vec![Diagnostic::new(
                SNAPSHOT_PATH,
                0,
                self.id(),
                "API.txt is missing; generate it with `lv-analyze --update-api`",
            )];
        };
        if snapshot == rendered {
            return Vec::new();
        }
        // Report the first diverging line so the drift is locatable.
        let mut line = 1usize;
        let mut have = snapshot.lines();
        let mut want = rendered.lines();
        let detail = loop {
            match (have.next(), want.next()) {
                (Some(h), Some(w)) if h == w => line += 1,
                (Some(h), Some(w)) => break format!("line {line}: have `{h}`, want `{w}`"),
                (Some(h), None) => break format!("line {line}: stale trailing `{h}`"),
                (None, Some(w)) => break format!("line {line}: missing `{w}`"),
                (None, None) => break "trailing whitespace differs".to_string(),
            }
        };
        vec![Diagnostic::new(
            SNAPSHOT_PATH,
            line,
            self.id(),
            format!("public API drifted from snapshot ({detail}); regenerate with `lv-analyze --update-api`"),
        )]
    }
}

/// Renders the canonical API snapshot text for the workspace: one `#`
/// header per root, one normalized `pub` item per line.
pub fn render_api(ws: &Workspace) -> String {
    let mut out = String::new();
    for rel in API_ROOTS {
        let Some(file) = ws.file(rel) else { continue };
        out.push_str("# ");
        out.push_str(rel);
        out.push('\n');
        for item in extract_pub_items(file) {
            out.push_str(&item);
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

/// Extracts the top-level (brace-depth-0) `pub` items of a file, each
/// normalized to a single whitespace-collapsed line. `pub use` items run
/// to their `;` (use-list braces included); everything else is truncated
/// at its body `{` or terminating `;`.
fn extract_pub_items(file: &SourceFile) -> Vec<String> {
    let masked = file.lexed.masked.as_bytes();
    let mut items = Vec::new();
    let mut depth = 0usize;
    let mut i = 0;
    while i < masked.len() {
        match masked[i] {
            b'{' => {
                depth += 1;
                i += 1;
            }
            b'}' => {
                depth = depth.saturating_sub(1);
                i += 1;
            }
            b'p' if depth == 0 && token_at(masked, i, b"pub") => {
                let after = i + 3;
                // Bare `pub ` only: `pub(crate)` and friends are not
                // public surface.
                if after < masked.len() && masked[after].is_ascii_whitespace() {
                    let mut j = after;
                    while j < masked.len() && masked[j].is_ascii_whitespace() {
                        j += 1;
                    }
                    let is_use = token_at(masked, j, b"use");
                    let mut k = j;
                    if is_use {
                        // `pub use ...;` — use-list braces are balanced,
                        // so skipping to `;` leaves `depth` correct.
                        while k < masked.len() && masked[k] != b';' {
                            k += 1;
                        }
                        let end = (k + 1).min(masked.len());
                        items.push(normalize_span(file, i, end));
                        i = end;
                    } else {
                        while k < masked.len() && masked[k] != b';' && masked[k] != b'{' {
                            k += 1;
                        }
                        let end = if masked.get(k) == Some(&b';') {
                            k + 1
                        } else {
                            k
                        };
                        items.push(normalize_span(file, i, end));
                        // Resume at the delimiter so `{` bodies are depth-
                        // tracked (and their nested `pub` items skipped).
                        i = k;
                    }
                    continue;
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    items
}

fn token_at(bytes: &[u8], at: usize, token: &[u8]) -> bool {
    if at + token.len() > bytes.len() || &bytes[at..at + token.len()] != token {
        return false;
    }
    let before_ok = at == 0 || !is_ident(bytes[at - 1]);
    let after_ok = at + token.len() >= bytes.len() || !is_ident(bytes[at + token.len()]);
    before_ok && after_ok
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Renders the span `[start, end)` of a file: masked text (comments
/// elided) with string-literal contents restored from the original, then
/// whitespace-collapsed.
fn normalize_span(file: &SourceFile, start: usize, end: usize) -> String {
    let mut buf: Vec<u8> = file.lexed.masked.as_bytes()[start..end].to_vec();
    let original = file.text.as_bytes();
    for lit in &file.lexed.strings {
        if lit.offset >= start && lit.end <= end {
            buf[lit.offset - start..lit.end - start]
                .copy_from_slice(&original[lit.offset..lit.end]);
        }
    }
    String::from_utf8_lossy(&buf)
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("x.rs".into(), src.into())
    }

    #[test]
    fn extracts_top_level_pub_items_only() {
        let f = parse(
            "pub use a::{b, c};\npub fn run(x: u32) -> u32 {\n    pub_helper()\n}\n\
             impl T {\n    pub fn hidden(&self) {}\n}\npub(crate) fn internal() {}\n",
        );
        let items = extract_pub_items(&f);
        assert_eq!(
            items,
            vec!["pub use a::{b, c};", "pub fn run(x: u32) -> u32"]
        );
    }

    #[test]
    fn const_string_values_survive() {
        let f = parse("pub const MAGIC: &str = \"LVS1\";\n");
        let items = extract_pub_items(&f);
        assert_eq!(items, vec!["pub const MAGIC: &str = \"LVS1\";"]);
    }

    #[test]
    fn comments_inside_signatures_are_elided() {
        let f = parse("pub fn f(\n    // trailing comment\n    x: u32,\n) -> u32 { x }\n");
        let items = extract_pub_items(&f);
        assert_eq!(items, vec!["pub fn f( x: u32, ) -> u32"]);
    }
}
