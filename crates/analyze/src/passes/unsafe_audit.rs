//! `unsafe-audit` — every crate root declares `#![forbid(unsafe_code)]`.
//!
//! The workspace is pure safe Rust; `forbid` (not `deny`) means no inner
//! attribute can re-enable it. The pass checks every `src/lib.rs` in the
//! tree, compat shims included.

use crate::diag::Diagnostic;
use crate::source::Workspace;

use super::Pass;

pub struct UnsafeAudit;

impl Pass for UnsafeAudit {
    fn id(&self) -> &'static str {
        "unsafe-audit"
    }

    fn description(&self) -> &'static str {
        "every crate root must keep #![forbid(unsafe_code)]"
    }

    fn run(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        for file in &ws.files {
            if !(file.rel == "src/lib.rs" || file.rel.ends_with("/src/lib.rs")) {
                continue;
            }
            // Normalize whitespace so `#! [ forbid( unsafe_code ) ]`
            // variants still count; scan masked text so a commented-out
            // attribute does not.
            let squashed: String = file
                .lexed
                .masked
                .chars()
                .filter(|c| !c.is_whitespace())
                .collect();
            if !squashed.contains("#![forbid(unsafe_code)]") {
                diags.push(Diagnostic::new(
                    &file.rel,
                    1,
                    self.id(),
                    "crate root is missing `#![forbid(unsafe_code)]`",
                ));
            }
        }
        diags
    }
}
