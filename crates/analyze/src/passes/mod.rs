//! The pass framework: a [`Pass`] is one invariant checked over the whole
//! workspace, returning plain diagnostics; the driver in `lib.rs` matches
//! them against `lv-analyze::allow` annotations afterwards.

use crate::diag::{Diagnostic, Severity};
use crate::source::Workspace;

mod api_snapshot;
mod crate_layering;
mod determinism;
mod lock_order;
mod panic_safety;
mod proto_exhaustive;
mod registry_docs;
mod rng_discipline;
mod unsafe_audit;

pub use api_snapshot::{render_api, ApiSnapshot, API_ROOTS, SNAPSHOT_PATH};
pub use crate_layering::CrateLayering;
pub use determinism::Determinism;
pub use lock_order::LockOrder;
pub use panic_safety::PanicSafety;
pub use proto_exhaustive::ProtoExhaustive;
pub use registry_docs::RegistryDocs;
pub use rng_discipline::RngDiscipline;
pub use unsafe_audit::UnsafeAudit;

/// One workspace invariant.
pub trait Pass {
    /// Stable kebab-case id, used in diagnostics and allow annotations.
    fn id(&self) -> &'static str;
    /// One-line description for `--help`-style listings.
    fn description(&self) -> &'static str;
    /// The pass's default severity: `Deny` findings gate the run, `Warn`
    /// findings only report. The CLI can demote a pass with `--warn ID`.
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    /// Checks the invariant, returning every violation found.
    fn run(&self, ws: &Workspace) -> Vec<Diagnostic>;
}

/// The full built-in pass roster, in reporting order.
pub fn default_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(Determinism),
        Box::new(PanicSafety),
        Box::new(UnsafeAudit),
        Box::new(RegistryDocs),
        Box::new(RngDiscipline),
        Box::new(ApiSnapshot),
        Box::new(LockOrder),
        Box::new(CrateLayering),
        Box::new(ProtoExhaustive),
    ]
}

/// Whether `line` (masked text) contains `token` delimited by
/// non-identifier characters on both sides.
pub(crate) fn has_ident_token(line: &str, token: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(at) = line[from..].find(token).map(|o| from + o) {
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after = at + token.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            return true;
        }
        from = at + 1;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Finds the next identifier-delimited occurrence of `token` in `text`
/// at or after `from`, returning its byte offset.
pub(crate) fn find_ident_token(text: &str, token: &str, from: usize) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut search = from;
    while let Some(at) = text[search..].find(token).map(|o| search + o) {
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after = at + token.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            return Some(at);
        }
        search = at + 1;
    }
    None
}

/// Returns the span `(open, close)` of the first `{ ... }` block at or
/// after `from`: `open` is the offset of `{`, `close` the offset just past
/// the matching `}`. Call on masked text only (literal braces are blanked).
pub(crate) fn brace_span(text: &str, from: usize) -> Option<(usize, usize)> {
    let bytes = text.as_bytes();
    let open = text[from..].find('{').map(|o| from + o)?;
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, i + 1));
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// 1-based line number of byte `offset` in `text`.
pub(crate) fn line_of(text: &str, offset: usize) -> usize {
    text.as_bytes()[..offset.min(text.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_token_respects_boundaries() {
        assert!(has_ident_token("use std::collections::HashMap;", "HashMap"));
        assert!(!has_ident_token("type MyHashMap = ();", "HashMap"));
        assert!(!has_ident_token("type HashMapLike = ();", "HashMap"));
        assert!(has_ident_token("HashMap::new()", "HashMap"));
    }

    #[test]
    fn brace_span_matches_nesting() {
        let text = "fn f() { if x { y } else { z } } fn g() {}";
        let (open, close) = brace_span(text, 0).unwrap();
        assert_eq!(&text[open..close], "{ if x { y } else { z } }");
    }

    #[test]
    fn line_of_counts_newlines() {
        let text = "a\nb\nc";
        assert_eq!(line_of(text, 0), 1);
        assert_eq!(line_of(text, 2), 2);
        assert_eq!(line_of(text, 4), 3);
    }
}
