//! A small comment- and string-literal-aware Rust lexer.
//!
//! The passes never need a syntax tree — they need to know, for every byte
//! of a source file, whether it is *code*, a *comment*, or the inside of a
//! *string/char literal*. [`lex`] produces a **masked** copy of the source
//! (same byte length, newlines preserved) in which comment bytes and
//! literal contents are blanked to spaces, so token scans over the mask
//! cannot be fooled by `"HashMap"` in a string or `.unwrap()` in a doc
//! comment. Line comments and string literals are additionally collected
//! verbatim: comments carry the `lv-analyze::allow(...)` annotations, and
//! string literals carry the backend names and wire error codes the
//! registry/doc pass cross-checks.

/// One `//` line comment (doc comments included).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// The comment text, from the leading `//` to the end of the line.
    pub text: String,
    /// Whether any code precedes the comment on its line (a *trailing*
    /// comment annotates its own line; a comment alone on a line annotates
    /// the next code line).
    pub trailing: bool,
}

/// One string literal (regular, raw, or byte), contents verbatim.
#[derive(Debug, Clone)]
pub struct StrLit {
    /// 1-based line the literal starts on.
    pub line: usize,
    /// Byte offset of the opening delimiter in the source.
    pub offset: usize,
    /// Byte offset just past the closing delimiter.
    pub end: usize,
    /// The literal's contents, escapes untouched.
    pub value: String,
}

/// The lexed view of one file.
#[derive(Debug, Clone)]
pub struct Lexed {
    /// The source with comments and literal contents blanked to spaces.
    /// Same byte length as the input; newlines preserved, so line numbers
    /// and byte offsets agree with the original.
    pub masked: String,
    /// Every `//` comment, verbatim.
    pub comments: Vec<Comment>,
    /// Every string literal, verbatim.
    pub strings: Vec<StrLit>,
}

/// Lexes `source`, classifying every byte as code, comment, or literal.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut comments = Vec::new();
    let mut strings = Vec::new();

    let mut i = 0;
    let mut line = 1usize;
    let mut line_has_code = false;

    // Pushes a masked byte: newlines survive (they carry line structure),
    // everything else becomes a space.
    fn blank(out: &mut Vec<u8>, b: u8) {
        out.push(if b == b'\n' { b'\n' } else { b' ' });
    }

    while i < bytes.len() {
        let b = bytes[i];

        // Line comment.
        if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            let start = i;
            while i < bytes.len() && bytes[i] != b'\n' {
                blank(&mut out, bytes[i]);
                i += 1;
            }
            comments.push(Comment {
                line,
                text: source[start..i].to_string(),
                trailing: line_has_code,
            });
            continue;
        }

        // Block comment (nesting respected).
        if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
            let mut depth = 0usize;
            while i < bytes.len() {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    blank(&mut out, bytes[i]);
                    blank(&mut out, bytes[i + 1]);
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    blank(&mut out, bytes[i]);
                    blank(&mut out, bytes[i + 1]);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    if bytes[i] == b'\n' {
                        line += 1;
                        line_has_code = false;
                    }
                    blank(&mut out, bytes[i]);
                    i += 1;
                }
            }
            continue;
        }

        // Raw (and raw-byte) string literal: r"...", r#"..."#, br#"..."#.
        if (b == b'r' || (b == b'b' && bytes.get(i + 1) == Some(&b'r'))) && !prev_is_ident(bytes, i)
        {
            let prefix = if b == b'b' { 2 } else { 1 };
            let mut j = i + prefix;
            let mut hashes = 0usize;
            while bytes.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if bytes.get(j) == Some(&b'"') {
                // Emit the prefix, hashes and opening quote as code.
                for &p in &bytes[i..=j] {
                    out.push(p);
                }
                line_has_code = true;
                let content_start = j + 1;
                let start_line = line;
                let mut k = content_start;
                let mut terminated = false;
                // Scan for `"` followed by `hashes` hashes.
                while k < bytes.len() {
                    if bytes[k] == b'"' {
                        let mut h = 0;
                        while h < hashes && bytes.get(k + 1 + h) == Some(&b'#') {
                            h += 1;
                        }
                        if h == hashes {
                            terminated = true;
                            break;
                        }
                    }
                    if bytes[k] == b'\n' {
                        line += 1;
                        line_has_code = false;
                    }
                    blank(&mut out, bytes[k]);
                    k += 1;
                }
                strings.push(StrLit {
                    line: start_line,
                    offset: i,
                    end: if terminated {
                        k + 1 + hashes
                    } else {
                        bytes.len()
                    },
                    value: source[content_start..k.min(bytes.len())].to_string(),
                });
                if terminated {
                    out.push(b'"');
                    out.extend(std::iter::repeat_n(b'#', hashes));
                    i = k + 1 + hashes;
                } else {
                    // Unterminated raw string: consume to EOF.
                    i = bytes.len();
                }
                continue;
            }
            // Not a raw string after all: fall through as plain code.
        }

        // Regular (and byte) string literal.
        if b == b'"' || (b == b'b' && bytes.get(i + 1) == Some(&b'"') && !prev_is_ident(bytes, i)) {
            if b == b'b' {
                out.push(b'b');
                i += 1;
            }
            out.push(b'"');
            line_has_code = true;
            let start_line = line;
            let content_start = i + 1;
            let mut j = content_start;
            while j < bytes.len() {
                if bytes[j] == b'\\' {
                    blank(&mut out, bytes[j]);
                    if j + 1 < bytes.len() {
                        if bytes[j + 1] == b'\n' {
                            line += 1;
                            line_has_code = false;
                        }
                        blank(&mut out, bytes[j + 1]);
                    }
                    j += 2;
                    continue;
                }
                if bytes[j] == b'"' {
                    break;
                }
                if bytes[j] == b'\n' {
                    line += 1;
                    line_has_code = false;
                }
                blank(&mut out, bytes[j]);
                j += 1;
            }
            let close = if j < bytes.len() { j + 1 } else { j };
            strings.push(StrLit {
                line: start_line,
                offset: i,
                end: close,
                value: source[content_start..j.min(bytes.len())].to_string(),
            });
            if j < bytes.len() {
                out.push(b'"');
                j += 1;
            }
            i = j;
            continue;
        }

        // Char literal vs lifetime.
        if b == b'\'' {
            let next = bytes.get(i + 1).copied();
            let is_char = match next {
                Some(b'\\') => true,
                Some(_) => {
                    // `'x'` (one char, possibly multi-byte UTF-8, then `'`).
                    let rest = &source[i + 1..];
                    match rest.chars().next() {
                        Some(c) => rest.as_bytes().get(c.len_utf8()) == Some(&b'\''),
                        None => false,
                    }
                }
                None => false,
            };
            if is_char {
                out.push(b'\'');
                line_has_code = true;
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] != b'\'' {
                    if bytes[j] == b'\\' {
                        blank(&mut out, bytes[j]);
                        j += 1;
                        if j < bytes.len() {
                            blank(&mut out, bytes[j]);
                            j += 1;
                        }
                        continue;
                    }
                    blank(&mut out, bytes[j]);
                    j += 1;
                }
                if j < bytes.len() {
                    out.push(b'\'');
                    j += 1;
                }
                i = j;
                continue;
            }
            // A lifetime: the quote itself is code.
            out.push(b'\'');
            line_has_code = true;
            i += 1;
            continue;
        }

        // Plain code byte.
        if b == b'\n' {
            line += 1;
            line_has_code = false;
        } else if !b.is_ascii_whitespace() {
            line_has_code = true;
        }
        out.push(b);
        i += 1;
    }

    Lexed {
        masked: String::from_utf8(out)
            .unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned()),
        comments,
        strings,
    }
}

fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_masked() {
        let src = "let x = \"HashMap\"; // uses .unwrap()\nlet y = 1; /* Instant */ let z = 2;\n";
        let lexed = lex(src);
        assert!(!lexed.masked.contains("HashMap"));
        assert!(!lexed.masked.contains("unwrap"));
        assert!(!lexed.masked.contains("Instant"));
        assert!(lexed.masked.contains("let x = \""));
        assert_eq!(lexed.masked.len(), src.len());
        assert_eq!(lexed.strings.len(), 1);
        assert_eq!(lexed.strings[0].value, "HashMap");
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].trailing);
    }

    #[test]
    fn raw_strings_and_escapes_are_handled() {
        let src = r####"let a = r#"quote " inside"#; let b = "esc \" ape"; let c = br"bytes";"####;
        let lexed = lex(src);
        assert_eq!(lexed.strings.len(), 3);
        assert_eq!(lexed.strings[0].value, "quote \" inside");
        assert_eq!(lexed.strings[1].value, "esc \\\" ape");
        assert_eq!(lexed.strings[2].value, "bytes");
        assert!(!lexed.masked.contains("quote"));
        assert!(!lexed.masked.contains("bytes"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }\n";
        let lexed = lex(src);
        assert!(lexed.masked.contains("&'a str"));
        assert!(!lexed.masked.contains("'x'"));
        assert!(lexed.masked.contains("' '"), "char contents blanked");
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "a /* outer /* inner */ still */ b\n";
        let lexed = lex(src);
        assert!(lexed.masked.contains('a'));
        assert!(lexed.masked.contains('b'));
        assert!(!lexed.masked.contains("inner"));
        assert!(!lexed.masked.contains("still"));
    }

    #[test]
    fn standalone_comment_is_not_trailing() {
        let src = "// alone\nlet x = 1; // trailing\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(!lexed.comments[0].trailing);
        assert!(lexed.comments[1].trailing);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        // `r#type` shares its first two bytes with `r#"..."#`; only the
        // quote decides, so the identifier must survive as code.
        let src = "let r#type = 1; let r#match = 2;\n";
        let lexed = lex(src);
        assert!(lexed.strings.is_empty());
        assert_eq!(lexed.masked, src);

        // A raw identifier directly next to a real raw string on one line:
        // the identifier stays code, the string is collected.
        let src = "let r#type = r#\"raw \"content\"\"#; done();\n";
        let lexed = lex(src);
        assert_eq!(lexed.strings.len(), 1);
        assert_eq!(lexed.strings[0].value, "raw \"content\"");
        assert!(lexed.masked.contains("let r#type = r#\""));
        assert!(lexed.masked.contains("done()"));
        assert!(!lexed.masked.contains("content"));

        // Raw byte strings keep working alongside.
        let src = "let b = br#\"bytes # here\"#; let r#fn = 3;\n";
        let lexed = lex(src);
        assert_eq!(lexed.strings.len(), 1);
        assert_eq!(lexed.strings[0].value, "bytes # here");
        assert!(lexed.masked.contains("let r#fn = 3"));
    }

    #[test]
    fn multibyte_chars_in_strings_survive_masking() {
        let src = "let s = \"µ ≈ Θ(√n)\"; let t = 5;\n";
        let lexed = lex(src);
        assert!(lexed.masked.contains("let t = 5"));
        assert_eq!(lexed.strings[0].value, "µ ≈ Θ(√n)");
    }
}
