//! Diagnostics: what a pass reports and how it prints.

use std::fmt;

/// One finding: `file:line [pass-id] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative `/`-separated path.
    pub file: String,
    /// 1-based line number (0 for file-level findings with no anchor line).
    pub line: usize,
    /// Id of the pass that produced the finding.
    pub pass: String,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Diagnostic {
    pub fn new(
        file: impl Into<String>,
        line: usize,
        pass: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            file: file.into(),
            line,
            pass: pass.into(),
            message: message.into(),
        }
    }

    /// Renders the diagnostic as a JSON object (hand-rolled: the analyzer
    /// is pure std and its output schema is four flat fields).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"file\":\"{}\",\"line\":{},\"pass\":\"{}\",\"message\":\"{}\"}}",
            escape_json(&self.file),
            self.line,
            escape_json(&self.pass),
            escape_json(&self.message)
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} [{}] {}",
            self.file, self.line, self.pass, self.message
        )
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_contract() {
        let d = Diagnostic::new("crates/x/src/lib.rs", 12, "determinism", "found `HashMap`");
        assert_eq!(
            d.to_string(),
            "crates/x/src/lib.rs:12 [determinism] found `HashMap`"
        );
    }

    #[test]
    fn json_escapes_specials() {
        let d = Diagnostic::new("a.rs", 1, "p", "quote \" back \\ tab\t");
        assert_eq!(
            d.to_json(),
            "{\"file\":\"a.rs\",\"line\":1,\"pass\":\"p\",\"message\":\"quote \\\" back \\\\ tab\\t\"}"
        );
    }
}
