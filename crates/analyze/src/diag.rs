//! Diagnostics: what a pass reports and how it prints.

use std::fmt;

/// How much a finding weighs: `Deny` findings fail the run (exit 1),
/// `Warn` findings are reported but do not gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warn,
    Deny,
}

impl Severity {
    /// Stable lower-case name, used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }

    /// The SARIF `level` this severity maps to.
    pub fn sarif_level(self) -> &'static str {
        match self {
            Severity::Warn => "warning",
            Severity::Deny => "error",
        }
    }
}

/// One finding: `file:line [pass-id] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative `/`-separated path.
    pub file: String,
    /// 1-based line number (0 for file-level findings with no anchor line).
    pub line: usize,
    /// Id of the pass that produced the finding.
    pub pass: String,
    /// Human-readable description of the violation.
    pub message: String,
    /// Whether the finding gates the run. Defaults to [`Severity::Deny`];
    /// the driver demotes it when the producing pass (or a `--warn` flag)
    /// says so.
    pub severity: Severity,
}

impl Diagnostic {
    pub fn new(
        file: impl Into<String>,
        line: usize,
        pass: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            file: file.into(),
            line,
            pass: pass.into(),
            message: message.into(),
            severity: Severity::Deny,
        }
    }

    /// Renders the diagnostic as a JSON object (hand-rolled: the analyzer
    /// is pure std and its output schema is five flat fields).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"file\":\"{}\",\"line\":{},\"pass\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\"}}",
            escape_json(&self.file),
            self.line,
            escape_json(&self.pass),
            self.severity.as_str(),
            escape_json(&self.message)
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mark = match self.severity {
            Severity::Deny => "",
            Severity::Warn => "warning: ",
        };
        write!(
            f,
            "{}:{} [{}] {mark}{}",
            self.file, self.line, self.pass, self.message
        )
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_contract() {
        let d = Diagnostic::new("crates/x/src/lib.rs", 12, "determinism", "found `HashMap`");
        assert_eq!(
            d.to_string(),
            "crates/x/src/lib.rs:12 [determinism] found `HashMap`"
        );
    }

    #[test]
    fn warn_severity_is_marked_in_display_and_json() {
        let mut d = Diagnostic::new("a.rs", 3, "p", "m");
        d.severity = Severity::Warn;
        assert_eq!(d.to_string(), "a.rs:3 [p] warning: m");
        assert!(d.to_json().contains("\"severity\":\"warn\""));
    }

    #[test]
    fn json_escapes_specials() {
        let d = Diagnostic::new("a.rs", 1, "p", "quote \" back \\ tab\t");
        assert_eq!(
            d.to_json(),
            "{\"file\":\"a.rs\",\"line\":1,\"pass\":\"p\",\"severity\":\"deny\",\"message\":\"quote \\\" back \\\\ tab\\t\"}"
        );
    }
}
