//! End-to-end exit-code tests: each pass has a `bad` fixture tree the
//! binary must reject (exit 1, naming the pass) and a `clean` tree it
//! must accept (exit 0) — and the repository itself must be clean.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fixture_root(pass: &str, kind: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(pass)
        .join(kind)
}

fn analyze(root: &Path, passes: &[&str], extra: &[&str]) -> Output {
    let mut command = Command::new(env!("CARGO_BIN_EXE_lv-analyze"));
    command.arg("--root").arg(root);
    for pass in passes {
        command.arg("--pass").arg(pass);
    }
    command.args(extra);
    command.output().expect("lv-analyze should spawn")
}

/// Runs the given passes over both fixture trees of `pass`: the bad tree
/// must fail mentioning `[{pass}]`, the clean tree must pass.
fn assert_pass_fixtures(pass: &str, run_passes: &[&str]) {
    let bad = analyze(&fixture_root(pass, "bad"), run_passes, &[]);
    let stdout = String::from_utf8_lossy(&bad.stdout).to_string();
    assert_eq!(
        bad.status.code(),
        Some(1),
        "{pass}/bad must exit 1; stdout:\n{stdout}"
    );
    assert!(
        stdout.contains(&format!("[{pass}]")),
        "{pass}/bad diagnostics must name the pass; stdout:\n{stdout}"
    );

    let clean = analyze(&fixture_root(pass, "clean"), run_passes, &[]);
    let stdout = String::from_utf8_lossy(&clean.stdout).to_string();
    assert_eq!(
        clean.status.code(),
        Some(0),
        "{pass}/clean must exit 0; stdout:\n{stdout}"
    );
}

#[test]
fn determinism_fixtures() {
    assert_pass_fixtures("determinism", &["determinism"]);
}

#[test]
fn panic_safety_fixtures() {
    assert_pass_fixtures("panic-safety", &["panic-safety"]);
}

#[test]
fn unsafe_audit_fixtures() {
    assert_pass_fixtures("unsafe-audit", &["unsafe-audit"]);
}

#[test]
fn registry_docs_fixtures() {
    assert_pass_fixtures("registry-docs", &["registry-docs"]);
    // The bad tree reports all three catalogue kinds: name, alias, code.
    let bad = analyze(
        &fixture_root("registry-docs", "bad"),
        &["registry-docs"],
        &[],
    );
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(stdout.contains("demo-backend"), "missing name:\n{stdout}");
    assert!(stdout.contains("demo-alias"), "missing alias:\n{stdout}");
    assert!(stdout.contains("missing-code"), "missing code:\n{stdout}");
}

#[test]
fn rng_discipline_fixtures() {
    assert_pass_fixtures("rng-discipline", &["rng-discipline"]);
}

#[test]
fn api_snapshot_fixtures() {
    assert_pass_fixtures("api-snapshot", &["api-snapshot"]);
}

#[test]
fn lock_order_fixtures() {
    assert_pass_fixtures("lock-order", &["lock-order"]);
}

/// Regression: a two-mutex cycle whose second edge runs through a
/// one-level fn call must be reported, naming both acquisition sites,
/// the linking call, and the canonical order from sync.rs; the guard
/// held across a channel send is flagged too.
#[test]
fn lock_order_reports_the_cycle_through_a_call() {
    let bad = analyze(&fixture_root("lock-order", "bad"), &["lock-order"], &[]);
    let stdout = String::from_utf8_lossy(&bad.stdout).to_string();
    assert_eq!(bad.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(
        stdout.contains("via the call to `bump_alpha`"),
        "interprocedural edge must name the linking call:\n{stdout}"
    );
    assert!(
        stdout.contains("lock `alpha` acquired at crates/server/src/state.rs:")
            && stdout.contains("a guard of `beta` (acquired at crates/server/src/state.rs:"),
        "cycle diagnostic must name both acquisition sites:\n{stdout}"
    );
    assert!(
        stdout.contains("canonical order (crates/server/src/sync.rs): alpha -> beta."),
        "diagnostic must quote the documented order:\n{stdout}"
    );
    assert!(
        stdout.contains("blocking call `send(...)`"),
        "guard held across a channel send must be flagged:\n{stdout}"
    );
}

#[test]
fn crate_layering_fixtures() {
    assert_pass_fixtures("crate-layering", &["crate-layering"]);
    // The bad tree reports both failure kinds, anchored in the manifest;
    // the clean tree's unused dep is justified by a manifest allow.
    let bad = analyze(
        &fixture_root("crate-layering", "bad"),
        &["crate-layering"],
        &[],
    );
    let stdout = String::from_utf8_lossy(&bad.stdout).to_string();
    assert!(
        stdout.contains("layering inversion") && stdout.contains("`lv-server`"),
        "inversion must be reported:\n{stdout}"
    );
    assert!(
        stdout.contains("`lv-ode` is never referenced"),
        "unused dep must be reported:\n{stdout}"
    );
    assert!(
        stdout.contains("crates/sim/Cargo.toml:"),
        "diagnostics must anchor at the manifest:\n{stdout}"
    );
}

#[test]
fn proto_exhaustive_fixtures() {
    assert_pass_fixtures("proto-exhaustive", &["proto-exhaustive"]);
    // The bad tree's `Flush` variant is missing all three plumbing sites.
    let bad = analyze(
        &fixture_root("proto-exhaustive", "bad"),
        &["proto-exhaustive"],
        &[],
    );
    let stdout = String::from_utf8_lossy(&bad.stdout).to_string();
    assert!(
        stdout.contains("`Request::Flush` has no dispatch arm"),
        "missing dispatch arm:\n{stdout}"
    );
    assert!(
        stdout.contains("no matching lv-client subcommand"),
        "missing client subcommand:\n{stdout}"
    );
    assert!(
        stdout.contains("not documented"),
        "missing PROTOCOL.md section:\n{stdout}"
    );
}

/// `--format sarif` renders a minimal SARIF 2.1.0 log: versioned, tool
/// name set, one result per violation with rule id, level, and location.
#[test]
fn sarif_format_is_well_formed() {
    let bad = analyze(
        &fixture_root("lock-order", "bad"),
        &["lock-order"],
        &["--format", "sarif"],
    );
    let stdout = String::from_utf8_lossy(&bad.stdout).to_string();
    assert_eq!(bad.status.code(), Some(1), "sarif:\n{stdout}");
    for needle in [
        "\"version\":\"2.1.0\"",
        "\"name\":\"lv-analyze\"",
        "\"ruleId\":\"lock-order\"",
        "\"level\":\"error\"",
        "\"startLine\":",
        "\"uri\":\"crates/server/src/state.rs\"",
    ] {
        assert!(stdout.contains(needle), "missing {needle}:\n{stdout}");
    }

    let clean = analyze(
        &fixture_root("lock-order", "clean"),
        &["lock-order"],
        &["--format", "sarif"],
    );
    let stdout = String::from_utf8_lossy(&clean.stdout).to_string();
    assert_eq!(clean.status.code(), Some(0), "sarif:\n{stdout}");
    assert!(stdout.contains("\"results\":[]"), "sarif:\n{stdout}");
}

/// `--warn ID` demotes a pass's findings: still reported, no longer
/// gating.
#[test]
fn warn_flag_demotes_violations_to_non_gating() {
    let out = analyze(
        &fixture_root("lock-order", "bad"),
        &["lock-order"],
        &["--warn", "lock-order"],
    );
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    assert!(
        stdout.contains("warning: "),
        "findings must still print:\n{stdout}"
    );
}

/// Allow-annotation grammar rides along with whichever passes run: a
/// reason-less or empty-reason annotation and a stale annotation are
/// violations; well-formed trailing and standalone annotations suppress.
#[test]
fn allow_grammar_fixtures() {
    let bad = analyze(&fixture_root("allow-grammar", "bad"), &["determinism"], &[]);
    let stdout = String::from_utf8_lossy(&bad.stdout).to_string();
    assert_eq!(bad.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(
        stdout.contains("[allow-grammar]"),
        "malformed annotations must be reported:\n{stdout}"
    );
    assert!(
        stdout.contains("stale"),
        "stale allow must be reported:\n{stdout}"
    );
    assert!(
        stdout.contains("[determinism]"),
        "a malformed allow must not suppress the diagnostic:\n{stdout}"
    );

    let clean = analyze(
        &fixture_root("allow-grammar", "clean"),
        &["determinism"],
        &[],
    );
    let stdout = String::from_utf8_lossy(&clean.stdout).to_string();
    assert_eq!(clean.status.code(), Some(0), "stdout:\n{stdout}");
}

/// `--pass` selection must not misreport other passes' annotations as
/// stale: the rng-discipline clean tree carries an rng allow, and running
/// only determinism over it stays clean.
#[test]
fn pass_selection_ignores_foreign_allows() {
    let out = analyze(
        &fixture_root("rng-discipline", "clean"),
        &["determinism"],
        &[],
    );
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn json_format_reports_violations() {
    let out = analyze(
        &fixture_root("determinism", "bad"),
        &["determinism"],
        &["--format", "json"],
    );
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout.contains("\"clean\":false"), "json body:\n{stdout}");
    assert!(
        stdout.contains("\"pass\":\"determinism\""),
        "json body:\n{stdout}"
    );
}

#[test]
fn unknown_pass_is_a_usage_error() {
    let out = analyze(
        &fixture_root("determinism", "clean"),
        &["no-such-pass"],
        &[],
    );
    assert_eq!(out.status.code(), Some(2));
}

/// The gate this whole crate exists for: the repository tree itself is
/// clean under every pass.
#[test]
fn repository_tree_is_clean() {
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let out = analyze(&repo, &[], &[]);
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert_eq!(
        out.status.code(),
        Some(0),
        "repository must be lv-analyze clean;\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
}
