pub fn answer(input: Option<u64>) -> u64 {
    input.unwrap()
}

pub fn announce(input: Option<u64>) -> u64 {
    input.expect("the caller always passes Some")
}

pub fn dispatch(tag: &str) -> u64 {
    match tag {
        "status" => 1,
        _ => unreachable!("unknown tag"),
    }
}
