pub fn answer(input: Option<u64>) -> Result<u64, String> {
    input.ok_or_else(|| "missing input".to_string())
}

pub fn dispatch(tag: &str) -> Result<u64, String> {
    match tag {
        "status" => Ok(1),
        other => Err(format!("unknown tag {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let value: Option<u64> = Some(3);
        assert_eq!(value.unwrap(), 3);
    }
}
