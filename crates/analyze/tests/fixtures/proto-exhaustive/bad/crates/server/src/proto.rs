//! Proto-exhaustive bad fixture: `Flush` has a wire tag but no dispatch
//! arm, no client subcommand, and no PROTOCOL.md section.

pub enum Request {
    Estimate(EstimateRequest),
    Status,
    Flush,
}

tagged_enum_serde!(Request {
    Estimate(EstimateRequest) => "estimate",
    ;
    Status => "status",
    Flush => "flush",
});

tagged_enum_serde!(Response {
    Estimate(EstimateResponse) => "estimate",
    Status(StatusResponse) => "status",
    ;
});
