fn run(command: &str) {
    match command {
        "estimate" => estimate(),
        "status" => status(),
        _ => usage(),
    }
}
