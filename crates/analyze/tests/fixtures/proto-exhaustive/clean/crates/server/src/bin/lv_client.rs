fn run(command: &str) {
    match command {
        "estimate" => estimate(),
        "status" => status(),
        "cache-stats" => cache_stats(),
        _ => usage(),
    }
}
