//! Proto-exhaustive clean fixture: every variant is fully plumbed — a
//! dispatch arm, a wire tag, a client subcommand (`cache-stats` matches
//! `cache_stats` by dash mapping), and a PROTOCOL.md section.

pub enum Request {
    Estimate(EstimateRequest),
    Status,
    CacheStats,
}

tagged_enum_serde!(Request {
    Estimate(EstimateRequest) => "estimate",
    ;
    Status => "status",
    CacheStats => "cache_stats",
});

tagged_enum_serde!(Response {
    Estimate(EstimateResponse) => "estimate",
    Status(StatusResponse) => "status",
    CacheStats(CacheStatsResponse) => "cache_stats",
    ;
});
