pub struct ThresholdService;

impl ThresholdService {
    pub fn handle(&self, request: &Request) -> Response {
        match request {
            Request::Estimate(r) => self.estimate(r).map(Response::Estimate),
            Request::Status => Ok(Response::Status(self.status())),
            Request::CacheStats => Ok(Response::CacheStats(self.cache_stats())),
        }
    }
}
