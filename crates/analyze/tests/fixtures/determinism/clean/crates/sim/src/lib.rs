use std::collections::BTreeMap;

pub fn tally(items: &[u64]) -> BTreeMap<u64, u64> {
    let mut counts = BTreeMap::new();
    for &item in items {
        *counts.entry(item).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    // Test code is exempt: this HashMap must not be reported.
    use std::collections::HashMap;

    #[test]
    fn exempt() {
        let _ = HashMap::<u64, u64>::new();
    }
}
