use std::collections::HashMap;

pub fn tally(items: &[u64]) -> HashMap<u64, u64> {
    let mut counts = HashMap::new();
    for &item in items {
        *counts.entry(item).or_insert(0) += 1;
    }
    counts
}
