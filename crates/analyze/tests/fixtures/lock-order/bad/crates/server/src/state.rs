//! Lock-order bad fixture: an `alpha -> beta -> alpha` cycle whose second
//! edge runs through a one-level fn call, plus a guard held across a
//! channel send.

pub struct State {
    alpha: std::sync::Mutex<u64>,
    beta: std::sync::Mutex<u64>,
}

impl State {
    pub fn forward(&self) {
        let alpha = sync::lock(&self.alpha);
        let mut beta = sync::lock(&self.beta);
        *beta += *alpha;
    }

    pub fn reverse(&self) -> u64 {
        let beta = sync::lock(&self.beta);
        self.bump_alpha();
        *beta
    }

    pub fn bump_alpha(&self) {
        *sync::lock(&self.alpha) += 1;
    }

    pub fn broadcast(&self, tx: &std::sync::mpsc::Sender<u64>) {
        let beta = sync::lock(&self.beta);
        tx.send(*beta).ok();
    }
}
