//! Fixture sync helpers.
//!
//! Lock order: alpha -> beta.

pub fn lock() {}
