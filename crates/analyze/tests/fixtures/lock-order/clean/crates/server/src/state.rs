//! Lock-order clean fixture: consistent nesting order everywhere, and a
//! drop-before-reacquire path that must not count as holding both locks.

pub struct State {
    alpha: std::sync::Mutex<u64>,
    beta: std::sync::Mutex<u64>,
}

impl State {
    pub fn forward(&self) {
        let alpha = sync::lock(&self.alpha);
        let mut beta = sync::lock(&self.beta);
        *beta += *alpha;
    }

    pub fn one_at_a_time(&self) -> u64 {
        let alpha = sync::lock(&self.alpha);
        let bump = *alpha + 1;
        drop(alpha);
        let mut beta = sync::lock(&self.beta);
        *beta += bump;
        *beta
    }

    pub fn send_after_release(&self, tx: &std::sync::mpsc::Sender<u64>) {
        let beta = sync::lock(&self.beta);
        let snapshot = *beta;
        drop(beta);
        tx.send(snapshot).ok();
    }
}
