use std::collections::HashMap; // lv-analyze::allow(determinism, reason = "fixture: trailing-form annotation suppresses its own line")

// lv-analyze::allow(determinism, reason = "fixture: standalone-form annotation targets the next code line")
use std::collections::HashSet;

pub fn touch() -> (HashMap<u64, u64>, HashSet<u64>) { // lv-analyze::allow(determinism, reason = "fixture: one annotation suppresses every same-pass diagnostic on its line")
    Default::default()
}
