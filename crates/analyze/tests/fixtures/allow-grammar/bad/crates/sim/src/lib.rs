use std::collections::HashMap; // lv-analyze::allow(determinism)

pub fn empty_reason() {} // lv-analyze::allow(determinism, reason = "")

pub fn stale() {} // lv-analyze::allow(determinism, reason = "this line triggers nothing, so the allow is stale")

pub fn tally() -> HashMap<u64, u64> {
    HashMap::new()
}
