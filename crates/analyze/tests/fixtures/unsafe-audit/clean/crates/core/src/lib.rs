//! A crate root with the mandatory forbid attribute.

#![forbid(unsafe_code)]

pub fn noop() {}
