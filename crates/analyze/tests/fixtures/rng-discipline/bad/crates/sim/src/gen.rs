use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn fresh_stream(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
