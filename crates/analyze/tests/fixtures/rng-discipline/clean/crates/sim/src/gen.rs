use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn fresh_stream(seed: u64) -> StdRng {
    // lv-analyze::allow(rng-discipline, reason = "fixture: a sanctioned derivation site with a documented justification")
    StdRng::seed_from_u64(seed)
}
