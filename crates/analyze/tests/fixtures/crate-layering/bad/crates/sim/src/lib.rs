//! Crate-layering bad fixture: the manifest declares a dependency on the
//! server (a layering inversion) and on lv-ode (never referenced).

pub fn poll() -> &'static str {
    lv_server::status()
}
