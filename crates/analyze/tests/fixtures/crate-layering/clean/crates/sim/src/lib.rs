//! Crate-layering clean fixture: the engine dependency is referenced and
//! the deliberately-unused lv-ode dependency is justified with an allow
//! annotation in the manifest.

pub fn run() -> lv_engine::Scenario {
    lv_engine::Scenario::default()
}
