pub struct DemoBackend;

impl DemoBackend {
    fn name(&self) -> &'static str {
        "demo-backend"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["demo-alias"]
    }
}
