pub struct ServiceError {
    code: String,
}

impl ServiceError {
    pub fn new(code: &str) -> Self {
        ServiceError {
            code: code.to_string(),
        }
    }

    pub fn undocumented() -> Self {
        ServiceError::new("missing-code")
    }
}
