use rand::Rng;
use std::fmt;
use std::sync::Arc;

/// What happened in one step of a birth–death chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepKind {
    /// The state increased by one.
    Birth,
    /// The state decreased by one.
    Death,
    /// The state stayed the same (a holding step).
    Hold,
}

/// A discrete-time birth–death chain on the non-negative integers.
///
/// The chain is defined by a birth probability `p(n)` and a death probability
/// `q(n)` with `p(n) + q(n) ≤ 1`; with the remaining probability
/// `1 − p(n) − q(n)` the chain holds in place. State `0` is required to be
/// absorbing: `p(0) = q(0) = 0` (Section 4 of the paper).
///
/// Implementations only need to supply `p` and `q`; stepping, extinction runs
/// and statistics are provided by [`step`](BirthDeathChain::step) and the
/// [`simulate`](crate::simulate) module.
pub trait BirthDeathChain {
    /// Birth probability `p(n)` in state `n`.
    fn birth_probability(&self, n: u64) -> f64;

    /// Death probability `q(n)` in state `n`.
    fn death_probability(&self, n: u64) -> f64;

    /// Holding probability `1 − p(n) − q(n)` in state `n`.
    fn holding_probability(&self, n: u64) -> f64 {
        1.0 - self.birth_probability(n) - self.death_probability(n)
    }

    /// Whether the probabilities are valid in state `n`: both non-negative,
    /// summing to at most one, and state `0` absorbing.
    fn is_valid_at(&self, n: u64) -> bool {
        let p = self.birth_probability(n);
        let q = self.death_probability(n);
        let basic = p >= 0.0 && q >= 0.0 && p + q <= 1.0 + 1e-12;
        if n == 0 {
            basic && p == 0.0 && q == 0.0
        } else {
            basic
        }
    }

    /// Samples one transition from state `n` and returns the kind of step and
    /// the new state.
    fn step<R: Rng + ?Sized>(&self, n: u64, rng: &mut R) -> (StepKind, u64)
    where
        Self: Sized,
    {
        let p = self.birth_probability(n);
        let q = self.death_probability(n);
        let u: f64 = rng.gen();
        if u < p {
            (StepKind::Birth, n + 1)
        } else if u >= 1.0 - q {
            (StepKind::Death, n.saturating_sub(1))
        } else {
            (StepKind::Hold, n)
        }
    }
}

impl<T: BirthDeathChain + ?Sized> BirthDeathChain for &T {
    fn birth_probability(&self, n: u64) -> f64 {
        (**self).birth_probability(n)
    }

    fn death_probability(&self, n: u64) -> f64 {
        (**self).death_probability(n)
    }
}

/// A birth–death chain defined by two closures.
///
/// The closures are wrapped in [`Arc`]s so the chain is cheap to clone and can
/// be shared across threads by the Monte-Carlo harness.
///
/// ```
/// use lv_chains::{BirthDeathChain, FnChain};
/// // A lazy random walk absorbed at zero: p = q = 1/4 away from zero.
/// let chain = FnChain::new(
///     |n| if n == 0 { 0.0 } else { 0.25 },
///     |n| if n == 0 { 0.0 } else { 0.25 },
/// );
/// assert_eq!(chain.holding_probability(3), 0.5);
/// assert!(chain.is_valid_at(0));
/// ```
#[derive(Clone)]
pub struct FnChain {
    birth: Arc<dyn Fn(u64) -> f64 + Send + Sync>,
    death: Arc<dyn Fn(u64) -> f64 + Send + Sync>,
}

impl FnChain {
    /// Creates a chain from birth and death probability functions.
    pub fn new(
        birth: impl Fn(u64) -> f64 + Send + Sync + 'static,
        death: impl Fn(u64) -> f64 + Send + Sync + 'static,
    ) -> Self {
        FnChain {
            birth: Arc::new(birth),
            death: Arc::new(death),
        }
    }
}

impl fmt::Debug for FnChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnChain").finish_non_exhaustive()
    }
}

impl BirthDeathChain for FnChain {
    fn birth_probability(&self, n: u64) -> f64 {
        (self.birth)(n)
    }

    fn death_probability(&self, n: u64) -> f64 {
        (self.death)(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lazy_walk() -> FnChain {
        FnChain::new(
            |n| if n == 0 { 0.0 } else { 0.3 },
            |n| if n == 0 { 0.0 } else { 0.5 },
        )
    }

    #[test]
    fn holding_probability_is_complement() {
        let chain = lazy_walk();
        assert!((chain.holding_probability(5) - 0.2).abs() < 1e-12);
        assert!((chain.holding_probability(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validity_requires_absorbing_zero() {
        let chain = lazy_walk();
        assert!(chain.is_valid_at(0));
        assert!(chain.is_valid_at(10));
        let bad = FnChain::new(|_| 0.6, |_| 0.6);
        assert!(!bad.is_valid_at(1));
        let not_absorbing = FnChain::new(|_| 0.1, |_| 0.1);
        assert!(!not_absorbing.is_valid_at(0));
    }

    #[test]
    fn step_moves_by_at_most_one() {
        let chain = lazy_walk();
        let mut rng = StdRng::seed_from_u64(1);
        let mut n = 10u64;
        for _ in 0..1000 {
            let (kind, next) = chain.step(n, &mut rng);
            match kind {
                StepKind::Birth => assert_eq!(next, n + 1),
                StepKind::Death => assert_eq!(next, n - 1),
                StepKind::Hold => assert_eq!(next, n),
            }
            n = next;
            if n == 0 {
                break;
            }
        }
    }

    #[test]
    fn step_from_zero_always_holds() {
        let chain = lazy_walk();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let (kind, next) = chain.step(0, &mut rng);
            assert_eq!(kind, StepKind::Hold);
            assert_eq!(next, 0);
        }
    }

    #[test]
    fn step_frequencies_match_probabilities() {
        let chain = lazy_walk();
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 50_000;
        let mut births = 0;
        let mut deaths = 0;
        for _ in 0..trials {
            match chain.step(7, &mut rng).0 {
                StepKind::Birth => births += 1,
                StepKind::Death => deaths += 1,
                StepKind::Hold => {}
            }
        }
        let birth_frac = births as f64 / trials as f64;
        let death_frac = deaths as f64 / trials as f64;
        assert!(
            (birth_frac - 0.3).abs() < 0.02,
            "birth fraction {birth_frac}"
        );
        assert!(
            (death_frac - 0.5).abs() < 0.02,
            "death fraction {death_frac}"
        );
    }

    #[test]
    fn references_to_chains_are_chains_too() {
        fn takes_chain<C: BirthDeathChain>(c: C) -> f64 {
            c.birth_probability(2)
        }
        let chain = lazy_walk();
        assert_eq!(takes_chain(&chain), 0.3);
    }
}
