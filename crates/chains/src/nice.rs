use crate::chain::BirthDeathChain;
use serde::{Deserialize, Serialize};

/// Witness constants for the paper's *nice chain* condition (Section 4).
///
/// A birth–death chain is *nice* if there exist constants `C, D > 0` such
/// that `p(n) ≤ C/n` and `q(n) ≥ D` for all `n > 0`. Nice chains have
/// extinction time `Θ(n)` (Lemma 5), expected number of births `O(log n)`
/// (Lemma 6), `O(log² n)` births with high probability (Lemma 7) and `O(n)`
/// extinction time with high probability (Lemma 8).
///
/// A witness can be checked against a concrete chain over a range of states
/// with [`NiceChainWitness::verify`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NiceChainWitness {
    c: f64,
    d: f64,
}

impl NiceChainWitness {
    /// Creates a witness with constants `C` and `D`.
    ///
    /// # Panics
    ///
    /// Panics if either constant is not strictly positive and finite.
    pub fn new(c: f64, d: f64) -> Self {
        assert!(
            c.is_finite() && c > 0.0,
            "C must be a positive finite constant"
        );
        assert!(
            d.is_finite() && d > 0.0,
            "D must be a positive finite constant"
        );
        NiceChainWitness { c, d }
    }

    /// The constant `C` bounding `p(n) ≤ C/n`.
    pub fn c(&self) -> f64 {
        self.c
    }

    /// The constant `D` bounding `q(n) ≥ D`.
    pub fn d(&self) -> f64 {
        self.d
    }

    /// Checks the nice-chain inequalities for every state `1 ..= max_state`,
    /// plus the absorbing-state requirement `p(0) = q(0) = 0`.
    ///
    /// Returns the first violating state, or `None` if the witness holds on
    /// the whole range.
    pub fn verify<C: BirthDeathChain>(&self, chain: &C, max_state: u64) -> Option<u64> {
        if chain.birth_probability(0) != 0.0 || chain.death_probability(0) != 0.0 {
            return Some(0);
        }
        (1..=max_state).find(|&n| {
            let p = chain.birth_probability(n);
            let q = chain.death_probability(n);
            !(p <= self.c / n as f64 + 1e-12 && q >= self.d - 1e-12 && chain.is_valid_at(n))
        })
    }

    /// The harmonic-number part `C·H_n` of Lemma 6's bound on the expected
    /// number of births of a nice chain started at `n` (the proof bounds
    /// `E[B_R] ≤ C·H_n` and then `E[B(n)] ≤ (2C′+1)·E[B_R]`, where `C′` is the
    /// — possibly large — constant of Lemma 5). This term captures the growth
    /// in `n`; the multiplicative constant in front is chain-specific.
    pub fn expected_births_bound(&self, n: u64) -> f64 {
        self.c * harmonic(n)
    }
}

/// The `n`-th harmonic number `H_n = Σ_{i=1}^n 1/i` (`H_0 = 0`).
pub(crate) fn harmonic(n: u64) -> f64 {
    // Exact summation for small n; asymptotic expansion for large n where the
    // direct sum would be slow and lose precision.
    if n == 0 {
        0.0
    } else if n <= 1_000_000 {
        (1..=n).map(|i| 1.0 / i as f64).sum()
    } else {
        let nf = n as f64;
        nf.ln() + 0.577_215_664_901_532_9 + 1.0 / (2.0 * nf) - 1.0 / (12.0 * nf * nf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::FnChain;
    use crate::dominating::DominatingChain;

    #[test]
    fn harmonic_numbers_match_known_values() {
        assert_eq!(harmonic(0), 0.0);
        assert!((harmonic(1) - 1.0).abs() < 1e-12);
        assert!((harmonic(2) - 1.5).abs() < 1e-12);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
        // H_n ≥ ln n (stated in Section 3 of the paper).
        for n in [10u64, 100, 10_000] {
            assert!(harmonic(n) >= (n as f64).ln());
        }
    }

    #[test]
    fn harmonic_asymptotic_branch_is_continuous() {
        let exact = (1..=1_000_000u64).map(|i| 1.0 / i as f64).sum::<f64>();
        let approx = harmonic(1_000_001) - 1.0 / 1_000_001.0;
        assert!((exact - approx).abs() < 1e-6);
    }

    #[test]
    fn witness_accepts_dominating_chain() {
        let chain = DominatingChain::from_lv_rates(1.0, 1.0, 1.0, 1.0);
        let witness = chain.nice_witness();
        assert_eq!(witness.verify(&chain, 10_000), None);
    }

    #[test]
    fn witness_rejects_chain_with_constant_birth_probability() {
        // p(n) = 0.4 does not decay like C/n for any C once n is large.
        let chain = FnChain::new(
            |n| if n == 0 { 0.0 } else { 0.4 },
            |n| if n == 0 { 0.0 } else { 0.4 },
        );
        let witness = NiceChainWitness::new(1.0, 0.1);
        let violation = witness.verify(&chain, 1_000);
        assert!(violation.is_some());
        assert!(violation.unwrap() > 1);
    }

    #[test]
    fn witness_rejects_non_absorbing_zero() {
        let chain = FnChain::new(|_| 0.1, |_| 0.1);
        let witness = NiceChainWitness::new(1.0, 0.05);
        assert_eq!(witness.verify(&chain, 10), Some(0));
    }

    #[test]
    fn witness_rejects_vanishing_death_probability() {
        let chain = FnChain::new(
            |n| if n == 0 { 0.0 } else { 0.1 / n as f64 },
            |n| if n == 0 { 0.0 } else { 1.0 / (n as f64 + 1.0) },
        );
        let witness = NiceChainWitness::new(1.0, 0.2);
        assert!(witness.verify(&chain, 100).is_some());
    }

    #[test]
    fn expected_births_bound_grows_logarithmically() {
        let witness = NiceChainWitness::new(2.0, 0.25);
        let b1 = witness.expected_births_bound(100);
        let b2 = witness.expected_births_bound(10_000);
        // Quadrupling the exponent of n only doubles the bound (log growth).
        assert!(b2 < 2.5 * b1);
        assert!(b2 > b1);
    }

    #[test]
    #[should_panic(expected = "C must be a positive finite constant")]
    fn witness_rejects_non_positive_c() {
        let _ = NiceChainWitness::new(0.0, 0.1);
    }

    #[test]
    #[should_panic(expected = "D must be a positive finite constant")]
    fn witness_rejects_non_positive_d() {
        let _ = NiceChainWitness::new(1.0, -0.1);
    }
}
