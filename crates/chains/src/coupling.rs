//! The asynchronous pseudo-coupling of Section 5.1.
//!
//! The paper couples the two-species Lotka–Volterra chain `S` with a
//! dominating single-species birth–death chain `N` using one shared uniform
//! random variable `ξ_t ∈ [0, 1)` per step:
//!
//! 1. the single-species chain births if `ξ_t < p(m)`, dies if
//!    `ξ_t ≥ 1 − q(m)` and holds otherwise;
//! 2. the two-species chain only advances on steps where
//!    `min Ŝ_t = N̂_t`; on those steps it performs a *bad non-competitive*
//!    event if `ξ_t < P(a, b)`, a *good competitive* event if
//!    `ξ_t ≥ 1 − Q(a, b)` and some other event otherwise.
//!
//! Under the domination conditions (D1) `P(a,b) ≤ p(min{a,b})` and (D2)
//! `Q(a,b) ≥ q(min{a,b})`, Lemma 10 shows the invariants
//! `min Ŝ_t ≤ N̂_t` and `J_t(Ŝ) ≤ B_t(N̂)` hold almost surely, which yields
//! the chain-domination lemma (Lemma 9): `T(S) ⪯ E(N)` and `J(S) ⪯ B(N)`.
//!
//! [`PseudoCoupling`] is an operational implementation of exactly this joint
//! chain, so the invariants and the domination conditions can be checked
//! empirically (experiment E13 of DESIGN.md).

use crate::chain::BirthDeathChain;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three event classes rule (2) of the pseudo-coupling distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventClass {
    /// A non-competitive (individual birth/death) event that decreases the
    /// gap between the current majority and minority species.
    BadNonCompetitive,
    /// A competitive interaction in which the current minority species loses
    /// an individual.
    GoodCompetitive,
    /// Any other event.
    Other,
}

/// A two-species process that can be driven by the pseudo-coupling.
///
/// `lv-lotka` implements this for its Lotka–Volterra jump chains. The
/// probabilities correspond to the paper's `P(a, b)` (bad non-competitive
/// reaction) and `Q(a, b)` (good competitive reaction); the remaining
/// probability mass is the "other" class.
pub trait TwoSpeciesProcess {
    /// Current counts `(x_0, x_1)` of the two species.
    fn counts(&self) -> (u64, u64);

    /// The probability `P(a, b)` that the next event is a bad non-competitive
    /// reaction (conditioned on the current state).
    fn bad_noncompetitive_probability(&self) -> f64;

    /// The probability `Q(a, b)` that the next event is a good competitive
    /// reaction (conditioned on the current state).
    fn good_competitive_probability(&self) -> f64;

    /// Advances the process by one event sampled *conditioned on* the given
    /// event class, using `rng` for any remaining randomness.
    fn step_conditioned<R: Rng + ?Sized>(&mut self, class: EventClass, rng: &mut R);

    /// Whether the process has reached consensus (some species is extinct).
    fn has_reached_consensus(&self) -> bool {
        let (a, b) = self.counts();
        a == 0 || b == 0
    }

    /// The smaller of the two counts.
    fn min_count(&self) -> u64 {
        let (a, b) = self.counts();
        a.min(b)
    }
}

/// Record of one pseudo-coupling run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CouplingRecord {
    /// Total joint steps taken.
    pub steps: u64,
    /// Steps on which the two-species process advanced (i.e. `min Ŝ = N̂`).
    pub synchronized_steps: u64,
    /// Births of the dominating chain (`B_t(N̂)`).
    pub births_in_dominating: u64,
    /// Bad non-competitive events of the two-species process (`J_t(Ŝ)`).
    pub bad_events_in_process: u64,
    /// Final state of the dominating chain.
    pub dominating_state: u64,
    /// Final minimum count of the two-species process.
    pub process_min_count: u64,
    /// Whether the invariant `min Ŝ_t ≤ N̂_t` held at every step.
    pub min_invariant_held: bool,
    /// Whether the invariant `J_t(Ŝ) ≤ B_t(N̂)` held at every step.
    pub count_invariant_held: bool,
    /// Whether the domination conditions (D1)/(D2) held at every synchronized
    /// step that was actually visited.
    pub domination_conditions_held: bool,
    /// Whether the dominating chain reached its absorbing state 0.
    pub dominating_absorbed: bool,
    /// Whether the two-species process reached consensus.
    pub process_reached_consensus: bool,
}

/// The joint Markov chain `(Ŝ, N̂)` of Section 5.1.
pub struct PseudoCoupling<P, C> {
    process: P,
    chain: C,
    chain_state: u64,
    steps: u64,
    synchronized_steps: u64,
    births: u64,
    bad_events: u64,
    min_invariant_held: bool,
    count_invariant_held: bool,
    domination_conditions_held: bool,
}

impl<P: fmt::Debug, C> fmt::Debug for PseudoCoupling<P, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PseudoCoupling")
            .field("process", &self.process)
            .field("chain_state", &self.chain_state)
            .field("steps", &self.steps)
            .field("births", &self.births)
            .field("bad_events", &self.bad_events)
            .finish()
    }
}

impl<P: TwoSpeciesProcess, C: BirthDeathChain> PseudoCoupling<P, C> {
    /// Creates the joint chain. Following Lemma 9 the dominating chain starts
    /// at `chain_initial ≥ min Ŝ_0`; this is asserted.
    ///
    /// # Panics
    ///
    /// Panics if `chain_initial < min Ŝ_0`.
    pub fn new(process: P, chain: C, chain_initial: u64) -> Self {
        assert!(
            chain_initial >= process.min_count(),
            "the dominating chain must start at or above the minimum species count"
        );
        PseudoCoupling {
            process,
            chain,
            chain_state: chain_initial,
            steps: 0,
            synchronized_steps: 0,
            births: 0,
            bad_events: 0,
            min_invariant_held: true,
            count_invariant_held: true,
            domination_conditions_held: true,
        }
    }

    /// The two-species process.
    pub fn process(&self) -> &P {
        &self.process
    }

    /// Current state of the dominating chain.
    pub fn chain_state(&self) -> u64 {
        self.chain_state
    }

    /// Births of the dominating chain so far.
    pub fn births(&self) -> u64 {
        self.births
    }

    /// Bad non-competitive events of the two-species process so far.
    pub fn bad_events(&self) -> u64 {
        self.bad_events
    }

    /// Performs one joint step with a shared uniform variable.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let xi: f64 = rng.gen();
        let m = self.chain_state;
        let p = self.chain.birth_probability(m);
        let q = self.chain.death_probability(m);

        let synchronized = self.process.min_count() == m && !self.process.has_reached_consensus();

        // Rule (1): update the dominating chain from ξ.
        if xi < p {
            self.chain_state = m + 1;
            self.births += 1;
        } else if xi >= 1.0 - q {
            self.chain_state = m.saturating_sub(1);
        }

        // Rule (2): update the two-species process only on synchronized steps.
        if synchronized {
            self.synchronized_steps += 1;
            let (a, b) = self.process.counts();
            let big_p = self.process.bad_noncompetitive_probability();
            let big_q = self.process.good_competitive_probability();
            // Empirically track whether (D1)/(D2) hold at this visited state.
            if big_p > p + 1e-12 || big_q < q - 1e-12 {
                self.domination_conditions_held = false;
            }
            debug_assert!(big_p + big_q <= 1.0 + 1e-9, "P({a},{b}) + Q({a},{b}) > 1");
            let class = if xi < big_p {
                EventClass::BadNonCompetitive
            } else if xi >= 1.0 - big_q {
                EventClass::GoodCompetitive
            } else {
                EventClass::Other
            };
            if class == EventClass::BadNonCompetitive {
                self.bad_events += 1;
            }
            self.process.step_conditioned(class, rng);
        }

        self.steps += 1;
        if self.process.min_count() > self.chain_state {
            self.min_invariant_held = false;
        }
        if self.bad_events > self.births {
            self.count_invariant_held = false;
        }
    }

    /// Runs until the dominating chain is absorbed at zero (or `max_steps`
    /// elapse) and returns the record of the run.
    pub fn run<R: Rng + ?Sized>(mut self, rng: &mut R, max_steps: u64) -> CouplingRecord {
        while self.chain_state > 0 && self.steps < max_steps {
            self.step(rng);
        }
        CouplingRecord {
            steps: self.steps,
            synchronized_steps: self.synchronized_steps,
            births_in_dominating: self.births,
            bad_events_in_process: self.bad_events,
            dominating_state: self.chain_state,
            process_min_count: self.process.min_count(),
            min_invariant_held: self.min_invariant_held,
            count_invariant_held: self.count_invariant_held,
            domination_conditions_held: self.domination_conditions_held,
            dominating_absorbed: self.chain_state == 0,
            process_reached_consensus: self.process.has_reached_consensus(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominating::DominatingChain;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// A minimal neutral self-destructive Lotka–Volterra process with unit
    /// rates, implemented directly for the tests of this module (the real
    /// implementation lives in `lv-lotka`).
    #[derive(Debug, Clone)]
    struct ToyLv {
        a: u64,
        b: u64,
    }

    impl ToyLv {
        fn phi(&self) -> f64 {
            let (a, b) = (self.a as f64, self.b as f64);
            2.0 * a * b + 2.0 * (a + b)
        }
    }

    impl TwoSpeciesProcess for ToyLv {
        fn counts(&self) -> (u64, u64) {
            (self.a, self.b)
        }

        fn bad_noncompetitive_probability(&self) -> f64 {
            // A bad non-competitive event decreases the gap: birth of the
            // minority or death of the majority. With β = δ = 1 this has
            // probability (min + max)/φ = (a + b)/φ.
            if self.a == 0 || self.b == 0 {
                return 0.0;
            }
            (self.a + self.b) as f64 / self.phi()
        }

        fn good_competitive_probability(&self) -> f64 {
            if self.a == 0 || self.b == 0 {
                return 0.0;
            }
            // Self-destructive competition removes one of each species, so
            // every competition event decreases the minority count:
            // probability 2ab/φ (both directed reactions).
            2.0 * (self.a * self.b) as f64 / self.phi()
        }

        fn step_conditioned<R: Rng + ?Sized>(&mut self, class: EventClass, rng: &mut R) {
            let majority_is_a = self.a >= self.b;
            match class {
                EventClass::BadNonCompetitive => {
                    // Either the minority births or the majority dies; both
                    // have equal conditional probability here (rates equal).
                    if rng.gen::<bool>() {
                        if majority_is_a {
                            self.b += 1;
                        } else {
                            self.a += 1;
                        }
                    } else if majority_is_a {
                        self.a -= 1;
                    } else {
                        self.b -= 1;
                    }
                }
                EventClass::GoodCompetitive => {
                    // Self-destructive competition: both species lose one.
                    self.a = self.a.saturating_sub(1);
                    self.b = self.b.saturating_sub(1);
                }
                EventClass::Other => {
                    // Majority birth or minority death, equal conditional
                    // probability.
                    if rng.gen::<bool>() {
                        if majority_is_a {
                            self.a += 1;
                        } else {
                            self.b += 1;
                        }
                    } else if majority_is_a && self.b > 0 {
                        self.b -= 1;
                    } else if !majority_is_a && self.a > 0 {
                        self.a -= 1;
                    }
                }
            }
        }
    }

    fn dominating_for_toy() -> DominatingChain {
        DominatingChain::from_lv_rates(1.0, 1.0, 1.0, 1.0)
    }

    #[test]
    fn invariants_hold_for_dominated_process() {
        // Lemma 10: with a valid dominating chain, both invariants hold on
        // every run.
        for seed in 0..30 {
            let process = ToyLv { a: 80, b: 50 };
            let chain = dominating_for_toy();
            let coupling = PseudoCoupling::new(process, chain, 50);
            let record = coupling.run(&mut rng(seed), 1_000_000);
            assert!(record.dominating_absorbed, "budget too small");
            assert!(
                record.min_invariant_held,
                "min invariant failed (seed {seed})"
            );
            assert!(
                record.count_invariant_held,
                "count invariant failed (seed {seed})"
            );
            assert!(
                record.domination_conditions_held,
                "domination conditions failed (seed {seed})"
            );
            // Lemma 9(a): once N is absorbed, the process must have reached
            // consensus (min Ŝ ≤ N̂ = 0).
            assert!(record.process_reached_consensus);
            assert!(record.bad_events_in_process <= record.births_in_dominating);
        }
    }

    #[test]
    fn coupling_counts_births_and_bad_events() {
        let process = ToyLv { a: 30, b: 20 };
        let chain = dominating_for_toy();
        let coupling = PseudoCoupling::new(process, chain, 20);
        let record = coupling.run(&mut rng(1), 1_000_000);
        assert!(record.steps > 0);
        assert!(record.synchronized_steps > 0);
        assert!(record.steps >= record.synchronized_steps);
    }

    #[test]
    #[should_panic(expected = "must start at or above")]
    fn chain_must_start_at_least_at_min_count() {
        let process = ToyLv { a: 30, b: 20 };
        let chain = dominating_for_toy();
        let _ = PseudoCoupling::new(process, chain, 10);
    }

    #[test]
    fn violating_chain_is_detected() {
        // A "dominating" chain whose birth probability is far too small
        // violates (D1); the coupling must notice.
        let process = ToyLv { a: 12, b: 12 };
        let bad_chain = crate::chain::FnChain::new(
            |n| if n == 0 { 0.0 } else { 1e-9 },
            |n| if n == 0 { 0.0 } else { 0.9 },
        );
        let coupling = PseudoCoupling::new(process, bad_chain, 12);
        let record = coupling.run(&mut rng(3), 1_000_000);
        assert!(!record.domination_conditions_held);
    }

    #[test]
    fn accessors_reflect_progress() {
        let process = ToyLv { a: 10, b: 8 };
        let chain = dominating_for_toy();
        let mut coupling = PseudoCoupling::new(process, chain, 8);
        assert_eq!(coupling.chain_state(), 8);
        assert_eq!(coupling.births(), 0);
        assert_eq!(coupling.bad_events(), 0);
        let mut r = rng(4);
        for _ in 0..100 {
            coupling.step(&mut r);
        }
        assert!(coupling.process().counts().0 > 0 || coupling.process().counts().1 > 0);
    }
}
