//! # lv-chains — birth–death chains, nice chains and the pseudo-coupling
//!
//! This crate implements Sections 4 and 5 of *“Majority consensus thresholds
//! in competitive Lotka–Volterra populations”* (Függer, Nowak, Rybicki; PODC
//! 2024):
//!
//! * [`BirthDeathChain`] — discrete-time single-species birth–death chains
//!   defined by a birth probability `p(n)` and a death probability `q(n)`
//!   with `p(n) + q(n) ≤ 1`, holding probability `1 − p(n) − q(n)` and the
//!   unique absorbing state `0`.
//! * [`NiceChainWitness`] — the paper's *nice chain* condition: constants
//!   `C, D > 0` with `p(n) ≤ C/n` and `q(n) ≥ D` for all `n > 0`
//!   (Section 4). Nice chains have extinction time `Θ(n)` (Lemma 5, Lemma 8)
//!   and `O(log n)` births in expectation (Lemma 6) / `O(log² n)` with high
//!   probability (Lemma 7).
//! * [`DominatingChain`] — the concrete nice chain of Section 5.2 with
//!   `p(m) = ϑ/(αm + ϑ)` and `q(m) = α_min/(α + 2ϑ)`, which dominates every
//!   two-species Lotka–Volterra chain without intraspecific competition
//!   (Lemma 12).
//! * [`PseudoCoupling`] — the asynchronous pseudo-coupling of Section 5.1,
//!   which jointly drives a [`TwoSpeciesProcess`] and a dominating
//!   birth–death chain from one shared uniform random variable per step and
//!   exposes the quantities the chain-domination lemma (Lemma 9) compares:
//!   consensus time vs. extinction time and bad non-competitive events vs.
//!   births.
//! * [`simulate`] — Monte-Carlo drivers for single chains
//!   ([`ChainRun`], [`ExtinctionStats`]) used by the experiment suite to
//!   check Lemmas 5–8 empirically.
//! * [`dominance`] — empirical stochastic-dominance tests between samples,
//!   used to verify `T(S) ⪯ E(N)` and `J(S) ⪯ B(N)` (Lemma 9) numerically.
//!
//! # Example
//!
//! Simulate the dominating chain of Section 5.2 and check that the number of
//! births before extinction is tiny compared to the starting population, as
//! Lemma 6 predicts:
//!
//! ```
//! use lv_chains::{BirthDeathChain, DominatingChain, simulate::run_to_extinction};
//! use rand::SeedableRng;
//!
//! // β = δ = α0 = α1 = 1 ⇒ ϑ = 2, α = 2, α_min = 1.
//! let chain = DominatingChain::from_lv_rates(1.0, 1.0, 1.0, 1.0);
//! assert!(chain.birth_probability(10) < 0.1);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(3);
//! let run = run_to_extinction(&chain, 1_000, &mut rng, 10_000_000).unwrap();
//! // Extinction needs at least one death per initial individual, and every
//! // birth must be matched by an extra death.
//! assert_eq!(run.deaths, 1_000 + run.births);
//! assert!(run.births < run.deaths / 2);
//! assert!(run.steps >= 1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chain;
pub mod coupling;
pub mod dominance;
mod dominating;
mod nice;
pub mod simulate;

pub use chain::{BirthDeathChain, FnChain, StepKind};
pub use coupling::{CouplingRecord, PseudoCoupling, TwoSpeciesProcess};
pub use dominance::{empirical_dominance, DominanceReport};
pub use dominating::DominatingChain;
pub use nice::NiceChainWitness;
pub use simulate::{run_to_extinction, ChainRun, ExtinctionStats};
