//! Empirical stochastic-dominance tests.
//!
//! The chain-domination lemma (Lemma 9) states `T(S) ⪯ E(N)` and
//! `J(S) ⪯ B(N)`, i.e. the survival function of the left random variable lies
//! below the survival function of the right one everywhere. Given samples of
//! both sides these functions compare the empirical survival functions and
//! report the largest violation — with enough samples a true dominance
//! relation shows up as a violation no larger than sampling noise.

use serde::{Deserialize, Serialize};

/// Result of comparing two empirical distributions for stochastic dominance
/// of the first by the second (`X ⪯ Y`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DominanceReport {
    /// The largest value of `P̂[X ≥ t] − P̂[Y ≥ t]` over all thresholds `t`
    /// (positive values are violations of dominance).
    pub max_violation: f64,
    /// The threshold at which the largest violation occurs.
    pub worst_threshold: u64,
    /// Number of samples of `X`.
    pub x_samples: usize,
    /// Number of samples of `Y`.
    pub y_samples: usize,
}

impl DominanceReport {
    /// Whether the empirical data is consistent with `X ⪯ Y` up to the given
    /// tolerance (a bound on acceptable sampling noise, e.g. a few times
    /// `1/√samples`).
    pub fn is_dominated(&self, tolerance: f64) -> bool {
        self.max_violation <= tolerance
    }

    /// A reasonable default tolerance: two times the binomial standard error
    /// at probability 1/2 for the smaller sample, plus a small absolute slack.
    pub fn default_tolerance(&self) -> f64 {
        let n = self.x_samples.min(self.y_samples).max(1) as f64;
        2.0 * (0.25 / n).sqrt() + 0.01
    }
}

/// Compares empirical samples of `X` and `Y` for the stochastic-dominance
/// relation `X ⪯ Y` (i.e. `P[X ≥ t] ≤ P[Y ≥ t]` for every `t`).
///
/// # Panics
///
/// Panics if either sample set is empty.
pub fn empirical_dominance(x: &[u64], y: &[u64]) -> DominanceReport {
    assert!(!x.is_empty() && !y.is_empty(), "samples must be non-empty");
    let mut xs = x.to_vec();
    let mut ys = y.to_vec();
    xs.sort_unstable();
    ys.sort_unstable();

    // Candidate thresholds: all observed values (survival functions only jump
    // there).
    let mut thresholds: Vec<u64> = xs.iter().chain(ys.iter()).copied().collect();
    thresholds.sort_unstable();
    thresholds.dedup();

    let survival = |sorted: &[u64], t: u64| -> f64 {
        // fraction of samples >= t
        let idx = sorted.partition_point(|&v| v < t);
        (sorted.len() - idx) as f64 / sorted.len() as f64
    };

    let mut max_violation = f64::NEG_INFINITY;
    let mut worst_threshold = 0u64;
    for &t in &thresholds {
        let violation = survival(&xs, t) - survival(&ys, t);
        if violation > max_violation {
            max_violation = violation;
            worst_threshold = t;
        }
    }

    DominanceReport {
        max_violation,
        worst_threshold,
        x_samples: x.len(),
        y_samples: y.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn identical_samples_dominate_each_other() {
        let x = vec![1, 2, 3, 4, 5];
        let report = empirical_dominance(&x, &x);
        assert!(report.max_violation.abs() < 1e-12);
        assert!(report.is_dominated(1e-9));
    }

    #[test]
    fn shifted_samples_are_dominated() {
        let x: Vec<u64> = (0..100).collect();
        let y: Vec<u64> = (0..100).map(|v| v + 10).collect();
        let report = empirical_dominance(&x, &y);
        assert!(report.max_violation <= 0.0);
        assert!(report.is_dominated(0.0));
        // And the reverse direction is clearly violated.
        let reverse = empirical_dominance(&y, &x);
        assert!(reverse.max_violation > 0.05);
        assert!(!reverse.is_dominated(0.05));
    }

    #[test]
    fn dominance_detects_heavier_tails() {
        let mut rng = StdRng::seed_from_u64(1);
        // X uniform on [0, 100), Y uniform on [0, 200): X ⪯ Y.
        let x: Vec<u64> = (0..2_000).map(|_| rng.gen_range(0..100)).collect();
        let y: Vec<u64> = (0..2_000).map(|_| rng.gen_range(0..200)).collect();
        let report = empirical_dominance(&x, &y);
        assert!(report.is_dominated(report.default_tolerance()));
        let reverse = empirical_dominance(&y, &x);
        assert!(!reverse.is_dominated(reverse.default_tolerance()));
    }

    #[test]
    fn worst_threshold_is_reported() {
        let x = vec![10, 10, 10];
        let y = vec![0, 0, 0];
        let report = empirical_dominance(&x, &y);
        assert!(report.max_violation > 0.99);
        assert!(report.worst_threshold > 0);
        assert_eq!(report.x_samples, 3);
        assert_eq!(report.y_samples, 3);
    }

    #[test]
    #[should_panic(expected = "samples must be non-empty")]
    fn empty_samples_panic() {
        let _ = empirical_dominance(&[], &[1]);
    }
}
