//! Monte-Carlo drivers for single birth–death chains.
//!
//! These helpers are the empirical counterpart of Section 4: they run a chain
//! to absorption and record the quantities the paper's lemmas bound — the
//! extinction time `E(n)` (Lemmas 5, 8), the number of birth events `B(n)`
//! (Lemmas 6, 7) and the number of holding steps.

use crate::chain::{BirthDeathChain, StepKind};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Statistics of one run of a birth–death chain until absorption at zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainRun {
    /// The starting state.
    pub initial_state: u64,
    /// Total number of steps until absorption (the extinction time `E(n)`),
    /// counting holding steps.
    pub steps: u64,
    /// Number of birth events (the paper's `B(n)`).
    pub births: u64,
    /// Number of death events.
    pub deaths: u64,
    /// Number of holding steps in non-absorbing states.
    pub holds: u64,
    /// The largest state visited during the run.
    pub max_state: u64,
}

/// Runs the chain from `initial_state` until it hits the absorbing state `0`,
/// or gives up after `max_steps` steps.
///
/// Returns `None` if the step budget is exhausted before absorption (for nice
/// chains started at `n` a budget of a few times `n/D` is ample by Lemma 8).
///
/// # Panics
///
/// Panics if the chain reports invalid probabilities at the initial state.
pub fn run_to_extinction<C: BirthDeathChain, R: Rng + ?Sized>(
    chain: &C,
    initial_state: u64,
    rng: &mut R,
    max_steps: u64,
) -> Option<ChainRun> {
    assert!(
        chain.is_valid_at(initial_state),
        "chain has invalid probabilities at the initial state"
    );
    let mut state = initial_state;
    let mut run = ChainRun {
        initial_state,
        steps: 0,
        births: 0,
        deaths: 0,
        holds: 0,
        max_state: initial_state,
    };
    while state > 0 {
        if run.steps >= max_steps {
            return None;
        }
        let (kind, next) = chain.step(state, rng);
        run.steps += 1;
        match kind {
            StepKind::Birth => run.births += 1,
            StepKind::Death => run.deaths += 1,
            StepKind::Hold => run.holds += 1,
        }
        state = next;
        run.max_state = run.max_state.max(state);
    }
    Some(run)
}

/// Aggregate statistics over many extinction runs of the same chain from the
/// same initial state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtinctionStats {
    /// The common initial state of all runs.
    pub initial_state: u64,
    /// Number of completed (non-truncated) runs.
    pub trials: u64,
    /// Number of runs that exhausted the step budget.
    pub truncated: u64,
    /// Mean extinction time over completed runs.
    pub mean_steps: f64,
    /// Mean number of births over completed runs.
    pub mean_births: f64,
    /// Maximum number of births observed in any completed run.
    pub max_births: u64,
    /// Maximum extinction time observed in any completed run.
    pub max_steps: u64,
    /// Raw per-run extinction times (completed runs only).
    pub steps_samples: Vec<u64>,
    /// Raw per-run birth counts (completed runs only).
    pub births_samples: Vec<u64>,
}

impl ExtinctionStats {
    /// Runs `trials` independent extinction runs and aggregates them.
    pub fn collect<C: BirthDeathChain, R: Rng + ?Sized>(
        chain: &C,
        initial_state: u64,
        trials: u64,
        rng: &mut R,
        max_steps_per_run: u64,
    ) -> Self {
        let mut stats = ExtinctionStats {
            initial_state,
            trials: 0,
            truncated: 0,
            mean_steps: 0.0,
            mean_births: 0.0,
            max_births: 0,
            max_steps: 0,
            steps_samples: Vec::with_capacity(trials as usize),
            births_samples: Vec::with_capacity(trials as usize),
        };
        let mut total_steps = 0u64;
        let mut total_births = 0u64;
        for _ in 0..trials {
            match run_to_extinction(chain, initial_state, rng, max_steps_per_run) {
                Some(run) => {
                    stats.trials += 1;
                    total_steps += run.steps;
                    total_births += run.births;
                    stats.max_births = stats.max_births.max(run.births);
                    stats.max_steps = stats.max_steps.max(run.steps);
                    stats.steps_samples.push(run.steps);
                    stats.births_samples.push(run.births);
                }
                None => stats.truncated += 1,
            }
        }
        if stats.trials > 0 {
            stats.mean_steps = total_steps as f64 / stats.trials as f64;
            stats.mean_births = total_births as f64 / stats.trials as f64;
        }
        stats
    }

    /// Mean extinction time divided by the initial state — Lemma 5 says this
    /// ratio is bounded by constants for nice chains.
    pub fn steps_per_initial_individual(&self) -> f64 {
        self.mean_steps / self.initial_state.max(1) as f64
    }

    /// Mean number of births divided by `ln(initial_state)` — Lemma 6 says
    /// this ratio is bounded for nice chains.
    pub fn births_per_log(&self) -> f64 {
        let log = (self.initial_state.max(2) as f64).ln();
        self.mean_births / log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::FnChain;
    use crate::dominating::DominatingChain;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn pure_death_chain_takes_exactly_n_steps() {
        let chain = FnChain::new(|_| 0.0, |n| if n == 0 { 0.0 } else { 1.0 });
        let run = run_to_extinction(&chain, 37, &mut rng(1), 1_000).unwrap();
        assert_eq!(run.steps, 37);
        assert_eq!(run.deaths, 37);
        assert_eq!(run.births, 0);
        assert_eq!(run.holds, 0);
        assert_eq!(run.max_state, 37);
    }

    #[test]
    fn run_from_zero_is_empty() {
        let chain = DominatingChain::from_lv_rates(1.0, 1.0, 1.0, 1.0);
        let run = run_to_extinction(&chain, 0, &mut rng(2), 10).unwrap();
        assert_eq!(run.steps, 0);
        assert_eq!(run.births + run.deaths + run.holds, 0);
    }

    #[test]
    fn step_budget_exhaustion_returns_none() {
        // A strongly supercritical chain will not die within a tiny budget.
        let chain = FnChain::new(
            |n| if n == 0 { 0.0 } else { 0.9 },
            |n| if n == 0 { 0.0 } else { 0.05 },
        );
        assert!(run_to_extinction(&chain, 100, &mut rng(3), 500).is_none());
    }

    #[test]
    fn dominating_chain_extinction_time_is_linear() {
        // Lemma 5: E[E(n)] = Θ(n). Check that steps/n is similar for two very
        // different n (within a factor of 2) and at least 1.
        let chain = DominatingChain::from_lv_rates(1.0, 1.0, 1.0, 1.0);
        let small = ExtinctionStats::collect(&chain, 200, 200, &mut rng(4), 10_000_000);
        let large = ExtinctionStats::collect(&chain, 2_000, 200, &mut rng(5), 10_000_000);
        assert_eq!(small.truncated, 0);
        assert_eq!(large.truncated, 0);
        let ratio_small = small.steps_per_initial_individual();
        let ratio_large = large.steps_per_initial_individual();
        assert!(ratio_small >= 1.0);
        assert!(ratio_large >= 1.0);
        assert!(
            (ratio_small / ratio_large) < 2.0 && (ratio_large / ratio_small) < 2.0,
            "extinction time per individual not stable: {ratio_small} vs {ratio_large}"
        );
    }

    #[test]
    fn dominating_chain_births_grow_logarithmically() {
        // Lemma 6: E[B(n)] = O(log n). Compare n and n² — births should grow
        // by roughly a factor of 2, far less than the factor-n growth a linear
        // law would give.
        let chain = DominatingChain::from_lv_rates(1.0, 1.0, 1.0, 1.0);
        let small = ExtinctionStats::collect(&chain, 100, 400, &mut rng(6), 10_000_000);
        let large = ExtinctionStats::collect(&chain, 10_000, 400, &mut rng(7), 100_000_000);
        assert!(small.mean_births > 0.0);
        assert!(
            large.mean_births < 4.0 * small.mean_births,
            "births grew too fast: {} -> {}",
            small.mean_births,
            large.mean_births
        );
    }

    #[test]
    fn stats_record_raw_samples() {
        let chain = DominatingChain::from_lv_rates(1.0, 1.0, 1.0, 1.0);
        let stats = ExtinctionStats::collect(&chain, 50, 25, &mut rng(8), 1_000_000);
        assert_eq!(stats.steps_samples.len(), 25);
        assert_eq!(stats.births_samples.len(), 25);
        assert_eq!(stats.max_steps, *stats.steps_samples.iter().max().unwrap());
    }

    #[test]
    #[should_panic(expected = "invalid probabilities")]
    fn invalid_chain_is_rejected() {
        let chain = FnChain::new(|_| 0.7, |_| 0.7);
        let _ = run_to_extinction(&chain, 5, &mut rng(9), 100);
    }
}
