use crate::chain::BirthDeathChain;
use crate::nice::NiceChainWitness;
use serde::{Deserialize, Serialize};

/// The dominating nice birth–death chain of Section 5.2.
///
/// For a two-species Lotka–Volterra chain with interspecific competition rates
/// `α_0, α_1 > 0` (no intraspecific competition, `γ = 0`) and individual rates
/// `β, δ ≥ 0`, the paper defines `ϑ = β + δ`, `α = α_0 + α_1`,
/// `α_min = min{α_0, α_1}` and the chain
///
/// ```text
/// p(m) = ϑ / (αm + ϑ),      q(m) = α_min / (α + 2ϑ)      for m > 0,
/// p(0) = q(0) = 0.
/// ```
///
/// Lemma 12 shows this chain satisfies the domination conditions (D1)/(D2)
/// for the two-species chain, and since `p(m) ∈ O(1/m)` and `q` is a positive
/// constant it is *nice* in the sense of Section 4, so Lemmas 5–8 give
/// `E(n) = Θ(n)` extinction time and `O(log n)` expected births.
///
/// ```
/// use lv_chains::{BirthDeathChain, DominatingChain};
/// let chain = DominatingChain::from_lv_rates(1.0, 1.0, 2.0, 0.5);
/// // ϑ = 2, α = 2.5, α_min = 0.5
/// assert!((chain.birth_probability(4) - 2.0 / (2.5 * 4.0 + 2.0)).abs() < 1e-12);
/// assert!((chain.death_probability(4) - 0.5 / (2.5 + 4.0)).abs() < 1e-12);
/// assert_eq!(chain.birth_probability(0), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DominatingChain {
    theta: f64,
    alpha: f64,
    alpha_min: f64,
}

impl DominatingChain {
    /// Builds the dominating chain directly from `ϑ = β + δ`, `α = α_0 + α_1`
    /// and `α_min = min(α_0, α_1)`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha_min <= 0` (the construction of Section 5.2 requires
    /// strictly positive interspecific competition), if `alpha < alpha_min`,
    /// or if any parameter is negative or non-finite.
    pub fn new(theta: f64, alpha: f64, alpha_min: f64) -> Self {
        assert!(
            theta.is_finite() && theta >= 0.0,
            "theta must be a non-negative finite number"
        );
        assert!(
            alpha_min.is_finite() && alpha_min > 0.0,
            "alpha_min must be positive: the dominating chain requires interspecific competition"
        );
        assert!(
            alpha.is_finite() && alpha >= alpha_min,
            "alpha must be at least alpha_min"
        );
        DominatingChain {
            theta,
            alpha,
            alpha_min,
        }
    }

    /// Builds the dominating chain from the raw Lotka–Volterra rates
    /// `β, δ, α_0, α_1` (with `γ = 0`), computing `ϑ`, `α` and `α_min`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`DominatingChain::new`].
    pub fn from_lv_rates(beta: f64, delta: f64, alpha0: f64, alpha1: f64) -> Self {
        DominatingChain::new(beta + delta, alpha0 + alpha1, alpha0.min(alpha1))
    }

    /// The combined individual rate `ϑ = β + δ`.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The combined interspecific competition rate `α = α_0 + α_1`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The minimum interspecific competition rate `α_min`.
    pub fn alpha_min(&self) -> f64 {
        self.alpha_min
    }

    /// The nice-chain witness constants of Section 4 for this chain:
    /// `C = ϑ/α` works because `p(m) = ϑ/(αm + ϑ) ≤ ϑ/(αm)`, and
    /// `D = α_min/(α + 2ϑ)` is the constant death probability. For `ϑ = 0`
    /// any positive `C` works; we report `C = 1/α` in that case so the witness
    /// stays strictly positive.
    pub fn nice_witness(&self) -> NiceChainWitness {
        let c = if self.theta > 0.0 {
            self.theta / self.alpha
        } else {
            1.0 / self.alpha
        };
        NiceChainWitness::new(c, self.alpha_min / (self.alpha + 2.0 * self.theta))
    }
}

impl BirthDeathChain for DominatingChain {
    fn birth_probability(&self, n: u64) -> f64 {
        if n == 0 {
            return 0.0;
        }
        if self.theta == 0.0 {
            return 0.0;
        }
        self.theta / (self.alpha * n as f64 + self.theta)
    }

    fn death_probability(&self, n: u64) -> f64 {
        if n == 0 {
            return 0.0;
        }
        self.alpha_min / (self.alpha + 2.0 * self.theta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::BirthDeathChain;

    #[test]
    fn matches_section_5_2_formulas() {
        // β = δ = 1, α0 = α1 = 1 ⇒ ϑ = 2, α = 2, α_min = 1.
        let chain = DominatingChain::from_lv_rates(1.0, 1.0, 1.0, 1.0);
        assert_eq!(chain.theta(), 2.0);
        assert_eq!(chain.alpha(), 2.0);
        assert_eq!(chain.alpha_min(), 1.0);
        for m in 1..200u64 {
            let expected_p = 2.0 / (2.0 * m as f64 + 2.0);
            let expected_q = 1.0 / (2.0 + 4.0);
            assert!((chain.birth_probability(m) - expected_p).abs() < 1e-12);
            assert!((chain.death_probability(m) - expected_q).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_is_absorbing() {
        let chain = DominatingChain::from_lv_rates(1.0, 0.5, 1.0, 2.0);
        assert_eq!(chain.birth_probability(0), 0.0);
        assert_eq!(chain.death_probability(0), 0.0);
        assert!(chain.is_valid_at(0));
    }

    #[test]
    fn probabilities_are_valid_for_all_states() {
        // p(1) is the maximum of p; Section 5.2 notes p(1) + q(m) ≤ 1.
        let chain = DominatingChain::from_lv_rates(3.0, 2.0, 0.5, 0.7);
        for m in 0..10_000u64 {
            assert!(chain.is_valid_at(m), "invalid probabilities at {m}");
        }
    }

    #[test]
    fn birth_probability_decays_like_one_over_m() {
        let chain = DominatingChain::from_lv_rates(1.0, 1.0, 1.0, 1.0);
        let witness = chain.nice_witness();
        for m in 1..5_000u64 {
            assert!(
                chain.birth_probability(m) <= witness.c() / m as f64 + 1e-12,
                "p({m}) exceeds C/m"
            );
            assert!(chain.death_probability(m) >= witness.d() - 1e-12);
        }
    }

    #[test]
    fn delta_zero_special_case_has_smaller_birth_probability() {
        // The Cho et al. regime has δ = 0; the dominating chain then has
        // ϑ = β and even smaller birth probabilities.
        let with_death = DominatingChain::from_lv_rates(1.0, 1.0, 1.0, 1.0);
        let without_death = DominatingChain::from_lv_rates(1.0, 0.0, 1.0, 1.0);
        for m in 1..100u64 {
            assert!(without_death.birth_probability(m) <= with_death.birth_probability(m) + 1e-12);
        }
    }

    #[test]
    fn pure_competition_chain_never_births() {
        // β = δ = 0 ⇒ ϑ = 0: the dominating chain only dies.
        let chain = DominatingChain::from_lv_rates(0.0, 0.0, 1.0, 1.0);
        for m in 1..50u64 {
            assert_eq!(chain.birth_probability(m), 0.0);
            assert!(chain.death_probability(m) > 0.0);
        }
        assert!(chain.nice_witness().c() > 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha_min must be positive")]
    fn rejects_zero_competition() {
        let _ = DominatingChain::from_lv_rates(1.0, 1.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be at least alpha_min")]
    fn rejects_inconsistent_alpha() {
        let _ = DominatingChain::new(1.0, 0.5, 1.0);
    }
}
