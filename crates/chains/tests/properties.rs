//! Property-based tests for the birth–death chain layer.

use lv_chains::{BirthDeathChain, DominatingChain, FnChain};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn positive_rate() -> impl Strategy<Value = f64> {
    0.01f64..10.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The dominating chain of Section 5.2 is a valid birth–death chain and
    /// satisfies its own nice-chain witness for every parameter choice with
    /// α_min > 0.
    #[test]
    fn dominating_chain_is_always_nice(beta in 0.0f64..10.0, delta in 0.0f64..10.0,
                                       alpha0 in positive_rate(), alpha1 in positive_rate()) {
        let chain = DominatingChain::from_lv_rates(beta, delta, alpha0, alpha1);
        let witness = chain.nice_witness();
        prop_assert_eq!(witness.verify(&chain, 2_000), None);
    }

    /// p, q and the holding probability always form a distribution for the
    /// dominating chain.
    #[test]
    fn dominating_chain_probabilities_are_distributions(beta in 0.0f64..10.0,
                                                        delta in 0.0f64..10.0,
                                                        alpha0 in positive_rate(),
                                                        alpha1 in positive_rate(),
                                                        n in 0u64..100_000) {
        let chain = DominatingChain::from_lv_rates(beta, delta, alpha0, alpha1);
        let p = chain.birth_probability(n);
        let q = chain.death_probability(n);
        let h = chain.holding_probability(n);
        prop_assert!(p >= 0.0 && q >= 0.0);
        prop_assert!(p + q <= 1.0 + 1e-12);
        prop_assert!((p + q + h - 1.0).abs() < 1e-12);
    }

    /// Stepping a chain changes the state by at most one and zero stays
    /// absorbing.
    #[test]
    fn steps_move_by_at_most_one(seed in 0u64..10_000, start in 0u64..1_000,
                                 p in 0.0f64..0.5, q in 0.0f64..0.5) {
        let chain = FnChain::new(
            move |n| if n == 0 { 0.0 } else { p },
            move |n| if n == 0 { 0.0 } else { q },
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut state = start;
        for _ in 0..50 {
            let (_, next) = chain.step(state, &mut rng);
            prop_assert!(next.abs_diff(state) <= 1);
            if state == 0 {
                prop_assert_eq!(next, 0);
            }
            state = next;
        }
    }

    /// The empirical dominance report of a sample against itself never shows a
    /// positive violation, and dominance against strictly larger samples holds
    /// exactly.
    #[test]
    fn dominance_is_reflexive_and_monotone(values in proptest::collection::vec(0u64..10_000, 1..200),
                                           shift in 1u64..100) {
        let shifted: Vec<u64> = values.iter().map(|v| v + shift).collect();
        let same = lv_chains::empirical_dominance(&values, &values);
        prop_assert!(same.max_violation.abs() < 1e-12);
        let report = lv_chains::empirical_dominance(&values, &shifted);
        prop_assert!(report.max_violation <= 1e-12);
    }
}
