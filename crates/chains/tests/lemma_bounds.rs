//! Integration tests for the quantitative lemmas of Section 4, checked on the
//! concrete dominating chain of Section 5.2.

use lv_chains::{
    empirical_dominance, run_to_extinction, DominatingChain, ExtinctionStats, FnChain,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[test]
fn lemma5_extinction_time_is_linear_in_n() {
    // E[E(n)] = Θ(n). The chain spends an n-independent (but potentially
    // large) amount of time escaping the metastable plateau around
    // m ≈ C/D before it can hit zero, so the ratio E[E(n)]/n converges from
    // above; it must stabilise once n dwarfs that additive constant and never
    // grow with n.
    let chain = DominatingChain::from_lv_rates(1.0, 1.0, 1.0, 1.0);
    let mut ratios = Vec::new();
    for (seed, n) in [(1u64, 1_000u64), (2, 4_000), (3, 16_000)] {
        let stats = ExtinctionStats::collect(&chain, n, 150, &mut rng(seed), 100_000_000);
        assert_eq!(stats.truncated, 0);
        ratios.push(stats.steps_per_initial_individual());
    }
    let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ratios.iter().cloned().fold(0.0, f64::max);
    assert!(min >= 1.0, "extinction needs at least n steps");
    assert!(
        max / min < 1.6,
        "E(n)/n not stable across n: ratios {ratios:?}"
    );
    // The ratio decreases (or stays flat) as n grows: superlinear growth would
    // make it increase.
    assert!(
        ratios[2] <= ratios[0] * 1.1,
        "E(n)/n grew with n: ratios {ratios:?}"
    );
}

#[test]
fn lemma6_births_grow_at_most_logarithmically() {
    // E[B(n)] = O(log n): beyond the n-independent plateau contribution, the
    // growth in the mean number of births over two decades of n is tiny —
    // compatible with C·(H_{n2} − H_{n1}) and wildly incompatible with any
    // polynomial growth.
    let chain = DominatingChain::from_lv_rates(1.0, 1.0, 1.0, 1.0);
    let small_n = 100u64;
    let large_n = 10_000u64;
    let small = ExtinctionStats::collect(&chain, small_n, 300, &mut rng(10), 100_000_000);
    let large = ExtinctionStats::collect(&chain, large_n, 300, &mut rng(12), 100_000_000);
    assert_eq!(small.truncated, 0);
    assert_eq!(large.truncated, 0);
    let growth = large.mean_births - small.mean_births;
    let harmonic_growth = (large_n as f64).ln() - (small_n as f64).ln();
    assert!(
        growth < 10.0 * harmonic_growth + 10.0,
        "births grew by {growth} over two decades of n (harmonic growth {harmonic_growth})"
    );
    // A √n law would have more than decupled the mean; a log law keeps the
    // ratio close to one because the additive constant dominates.
    assert!(
        large.mean_births < 1.5 * small.mean_births,
        "births grew too fast: {} -> {}",
        small.mean_births,
        large.mean_births
    );
}

#[test]
fn lemma7_births_are_polylogarithmic_with_high_probability() {
    // B(n) = O(log² n) whp: the worst case over hundreds of runs grows far
    // slower than any polynomial — compare the maxima at n and 100·n.
    let chain = DominatingChain::from_lv_rates(1.0, 1.0, 1.0, 1.0);
    let small = ExtinctionStats::collect(&chain, 200, 400, &mut rng(21), 100_000_000);
    let large = ExtinctionStats::collect(&chain, 20_000, 400, &mut rng(22), 100_000_000);
    assert_eq!(small.truncated, 0);
    assert_eq!(large.truncated, 0);
    assert!(
        (large.max_births as f64) < 2.0 * (small.max_births as f64),
        "max births grew from {} to {} over a factor-100 increase in n",
        small.max_births,
        large.max_births
    );
    // And the maximum stays sublinear in n by a wide margin.
    assert!((large.max_births as f64) < 20_000.0 / 4.0);
}

#[test]
fn lemma8_extinction_time_is_linear_with_high_probability() {
    // E(n) = O(n) whp: the maximum extinction time over many runs stays within
    // a constant multiple of n (the proof's constant is 6n/D; with D = 1/6 for
    // unit rates that is 36n, we check a much tighter empirical bound).
    let chain = DominatingChain::from_lv_rates(1.0, 1.0, 1.0, 1.0);
    let n = 5_000u64;
    let stats = ExtinctionStats::collect(&chain, n, 300, &mut rng(22), 100_000_000);
    assert_eq!(stats.truncated, 0);
    assert!(
        (stats.max_steps as f64) < 36.0 * n as f64,
        "max extinction time {} exceeds the Lemma 8 bound",
        stats.max_steps
    );
}

#[test]
fn pure_death_chain_is_dominated_by_dominating_chain() {
    // Sanity check for the dominance test helper on chain data: extinction
    // times of a pure-death chain (exactly n steps) are dominated by those of
    // the dominating chain (at least n steps, sometimes more).
    let dominating = DominatingChain::from_lv_rates(1.0, 1.0, 1.0, 1.0);
    let pure_death = FnChain::new(|_| 0.0, |n| if n == 0 { 0.0 } else { 1.0 });
    let n = 500u64;
    let trials = 200;
    let mut r = rng(33);
    let pure: Vec<u64> = (0..trials)
        .map(|_| {
            run_to_extinction(&pure_death, n, &mut r, 10_000_000)
                .unwrap()
                .steps
        })
        .collect();
    let dominated: Vec<u64> = (0..trials)
        .map(|_| {
            run_to_extinction(&dominating, n, &mut r, 10_000_000)
                .unwrap()
                .steps
        })
        .collect();
    let report = empirical_dominance(&pure, &dominated);
    assert!(
        report.is_dominated(report.default_tolerance()),
        "pure death not dominated: violation {}",
        report.max_violation
    );
}

#[test]
fn dominating_chain_rarely_exceeds_initial_state_by_much() {
    // The proof of Lemma 8 uses that the chain never climbs much above
    // n + O(log² n) with high probability; check the max state visited.
    let chain = DominatingChain::from_lv_rates(1.0, 1.0, 1.0, 1.0);
    let n = 2_000u64;
    let mut r = rng(44);
    for _ in 0..200 {
        let run = run_to_extinction(&chain, n, &mut r, 100_000_000).unwrap();
        let log2n = (n as f64).log2();
        assert!(
            ((run.max_state - n) as f64) < 5.0 * log2n * log2n,
            "chain climbed to {} from {n}",
            run.max_state
        );
    }
}
