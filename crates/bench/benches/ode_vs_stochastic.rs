//! E10 kernels: the deterministic ODE integration and the stochastic estimate
//! it is compared against (Section 2.1).

use criterion::{criterion_group, criterion_main, Criterion};
use lv_bench::{bench_seed, BENCH_N, BENCH_TRIALS};
use lv_lotka::{CompetitionKind, LvModel};
use lv_ode::{CompetitiveLv, OdeIntegrator, Rk4, Rkf45};
use lv_sim::MonteCarlo;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ode_vs_stochastic");
    group.sample_size(10);

    let ode = CompetitiveLv::from_rates(1.0, 1.0, 1.0, 0.0);
    let horizon = 10.0 / BENCH_N as f64;
    let initial = [(BENCH_N / 2 + 16) as f64, (BENCH_N / 2 - 16) as f64];
    group.bench_function("rk4_fixed_step", |b| {
        b.iter(|| {
            black_box(Rk4::new(horizon / 1_000.0).integrate(
                &ode,
                black_box(initial),
                0.0,
                horizon,
            ))
        })
    });
    group.bench_function("rkf45_adaptive", |b| {
        b.iter(|| black_box(Rkf45::new(1e-9).integrate(&ode, black_box(initial), 0.0, horizon)))
    });

    let model = LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0);
    let mc = MonteCarlo::new(BENCH_TRIALS, bench_seed()).with_threads(1);
    group.bench_function("stochastic_success_probability", |b| {
        b.iter(|| {
            black_box(mc.success_probability(
                &model,
                black_box(BENCH_N / 2 + 16),
                black_box(BENCH_N / 2 - 16),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
