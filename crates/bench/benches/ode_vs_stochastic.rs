//! E10 kernels through the backend registry: the deterministic ODE backend
//! and the stochastic Monte-Carlo estimate share one scenario harness, plus
//! the raw in-crate integrators for reference.

use criterion::{criterion_group, criterion_main, Criterion};
use lv_bench::{bench_seed, BENCH_N, BENCH_TRIALS};
use lv_crn::StopCondition;
use lv_engine::{backend, Scenario};
use lv_lotka::{CompetitionKind, LvModel};
use lv_ode::{CompetitiveLv, OdeIntegrator, Rk4, Rkf45};
use lv_sim::MonteCarlo;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ode_vs_stochastic");
    group.sample_size(10);

    let model = LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0);
    let horizon = 10.0 / BENCH_N as f64;
    let (a, b_count) = (BENCH_N / 2 + 16, BENCH_N / 2 - 16);

    // Raw integrator kernels (no harness), for reference.
    let ode = CompetitiveLv::from_rates(1.0, 1.0, 1.0, 0.0);
    let initial = [a as f64, b_count as f64];
    group.bench_function("rk4_fixed_step", |b| {
        b.iter(|| {
            black_box(Rk4::new(horizon / 1_000.0).integrate(&ode, black_box(initial), 0.0, horizon))
        })
    });
    group.bench_function("rkf45_adaptive", |b| {
        b.iter(|| black_box(Rkf45::new(1e-9).integrate(&ode, black_box(initial), 0.0, horizon)))
    });

    // The same comparison through the unified harness: one scenario, the
    // registry's "ode" backend vs a Monte-Carlo batch on "jump-chain".
    let scenario =
        Scenario::new(model, (a, b_count)).with_stop(StopCondition::never().with_max_time(horizon));
    let ode_backend = backend("ode").expect("registry has the ODE backend");
    group.bench_function("ode_backend_scenario", |b| {
        b.iter(|| {
            let mut rng = bench_seed().rng_for_trial(0);
            black_box(ode_backend.run(black_box(&scenario), &mut rng))
        })
    });

    let mc = MonteCarlo::new(BENCH_TRIALS, bench_seed())
        .with_threads(1)
        .with_backend("jump-chain");
    group.bench_function("stochastic_success_probability", |b| {
        b.iter(|| black_box(mc.success_probability(&model, black_box(a), black_box(b_count))))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
