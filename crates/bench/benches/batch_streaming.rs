//! Throughput of the streaming batch executor: the same Monte-Carlo batch
//! folded sequentially, on the work-stealing worker pool, and with early
//! stopping — the numbers show the sharded stream's scaling and how many
//! trials the sequential stopping rule saves on an easy margin.

use criterion::{criterion_group, criterion_main, Criterion};
use lv_bench::{bench_seed, BENCH_N};
use lv_lotka::{CompetitionKind, LvModel};
use lv_sim::{EarlyStop, MonteCarlo};
use std::hint::black_box;

/// Enough trials that worker spawn/teardown amortises and the sharded
/// stream's scaling is visible (the per-trial kernel is a few microseconds).
const STREAM_TRIALS: u64 = 512;

fn bench(c: &mut Criterion) {
    let model = LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0);
    let a = BENCH_N * 55 / 100;
    let b_count = BENCH_N - a;

    let mut group = c.benchmark_group("batch_streaming");
    group.sample_size(10);

    // Direction to watch: the 4-thread kernel must not trail the 1-thread
    // kernel by more than scheduling noise. On a box with ≥ 4 physical cores
    // it should be markedly *faster*; on an oversubscribed (1-core) box the
    // executor's worker clamp (`effective_workers`: min of configured
    // threads, physical cores and scheduled flush chunks) collapses both
    // configurations onto the same sequential plan, so the two should be
    // indistinguishable. A persistent multi-×-percent gap means the clamp
    // has regressed or per-trial channel traffic has crept back into the
    // worker loop (reports must travel in `FLUSH_TRIALS`-sized chunks).
    // `perf-snapshot` asserts this direction on every run.
    for threads in [1usize, 4] {
        let mc = MonteCarlo::new(STREAM_TRIALS, bench_seed()).with_threads(threads);
        group.bench_function(
            format!("success_probability_{STREAM_TRIALS}trials_{threads}threads"),
            |b| {
                b.iter(|| {
                    black_box(mc.success_probability(&model, black_box(a), black_box(b_count)))
                })
            },
        );
    }

    // Early stopping on a clear majority: the Wilson half-width target is
    // reached long before the trial cap, so the measured time is the cost of
    // "run until the estimate is tight" rather than a fixed batch.
    let mc = MonteCarlo::new(100_000, bench_seed()).with_threads(4);
    let rule = EarlyStop::at_half_width(0.05).with_min_trials(16);
    group.bench_function("success_probability_until_hw0.05_4threads", |b| {
        b.iter(|| {
            black_box(mc.success_probability_until(
                &model,
                black_box(BENCH_N * 3 / 4),
                black_box(BENCH_N / 4),
                rule,
            ))
        })
    });

    // An adaptive threshold probe far from the threshold: the decision
    // boundary at the search target lets the Wilson interval clear it after
    // a handful of trials, so this measures the early-stopping win the
    // threshold search banks on at every doubling probe (contrast with the
    // fixed STREAM_TRIALS batch above, which runs all 512 trials).
    let target = 1.0 - 1.0 / BENCH_N as f64;
    let probe_rule = EarlyStop::at_half_width(1.0 / STREAM_TRIALS as f64)
        .with_boundary(target)
        .with_min_trials(8);
    let mc = MonteCarlo::new(STREAM_TRIALS, bench_seed()).with_threads(4);
    group.bench_function("adaptive_threshold_probe_far_gap_4threads", |b| {
        b.iter(|| {
            black_box(mc.success_probability_until(
                &model,
                // Gap 2, far below the self-destructive threshold: ρ ≈ 1/2,
                // nowhere near the 1 − 1/n target, so the interval clears
                // the boundary almost immediately.
                black_box(BENCH_N / 2 + 1),
                black_box(BENCH_N / 2 - 1),
                probe_rule,
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
