//! Count-based batched protocol execution vs the legacy agent-list stepper.
//!
//! Fixed-work kernels at growing population sizes show the per-interaction-
//! equivalent cost of the batched engine dropping from `O(1)` to `o(1)`:
//! an epoch of `Θ(√n)` interactions costs a constant number of
//! hypergeometric draws, so the amortised per-interaction work *shrinks* as
//! `n` grows (~1.1 ns at `n = 10⁶`, ~0.4 ns at `n = 10⁷` measured) while
//! the agent-list stepper's per-interaction cost grows with its working
//! set (~26 ns at `10⁶`, ~62 ns at `10⁷`). The headline comparison is
//! approximate-majority convergence on identical scenarios: ~25× at
//! `n = 10⁶` and ~150× at `n = 10⁷` (see the `perf-snapshot` binary, which
//! records both ratios in `BENCH_7.json`).

use criterion::{criterion_group, criterion_main, Criterion};
use lv_bench::bench_seed;
use lv_engine::{backend, Scenario};
use lv_lotka::LvModel;
use std::hint::black_box;

/// A lean consensus scenario (no observers) for `(0.55n, 0.45n)`.
fn convergence_scenario(n: u64) -> Scenario {
    let a = n * 55 / 100;
    Scenario::new(LvModel::default(), (a, n - a))
        .with_stop(lv_crn::StopCondition::any_species_extinct().with_max_events(u64::MAX / 2))
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_batching");
    group.sample_size(10);

    // The per-interaction-equivalent cost of the batched stepper across
    // three decades: wall-clock per run grows ~n·log n while the interaction
    // count does too, so watch the printed per-run times stay ~30× apart per
    // decade (not the ~10× a per-interaction stepper would need… times 10).
    let batched = backend("approx-majority").unwrap();
    for n in [10_000u64, 100_000, 1_000_000, 10_000_000] {
        let scenario = convergence_scenario(n);
        group.bench_function(format!("approx_majority_batched_to_consensus_n{n}"), |b| {
            b.iter(|| {
                let mut rng = bench_seed().rng_for_trial(n);
                let report = batched.run(black_box(&scenario), &mut rng);
                assert!(report.consensus_reached(), "n = {n} truncated");
                black_box(report)
            })
        });
    }

    // The agent-list baseline at the same sizes it can still afford. The
    // n = 10⁶ pairing lands at ~25–40× (the exact epoch decomposition pays
    // ~10 hypergeometric draws per ~630-interaction epoch, and a 1 MB agent
    // array still caches well); the ≥50× mark is cleared at n = 10⁷
    // (~150–215×), where o(1)-per-interaction batching meets an out-of-cache
    // agent list — the perf-snapshot binary records both ratios.
    let agents = backend("approx-majority-agents").unwrap();
    for n in [10_000u64, 100_000] {
        let scenario = convergence_scenario(n);
        group.bench_function(format!("approx_majority_agents_to_consensus_n{n}"), |b| {
            b.iter(|| {
                let mut rng = bench_seed().rng_for_trial(n);
                let report = agents.run(black_box(&scenario), &mut rng);
                assert!(report.consensus_reached(), "n = {n} truncated");
                black_box(report)
            })
        });
    }
    let scenario = convergence_scenario(1_000_000);
    group
        .sample_size(2)
        .bench_function("approx_majority_agents_to_consensus_n1000000", |b| {
            b.iter(|| {
                let mut rng = bench_seed().rng_for_trial(1_000_000);
                black_box(agents.run(black_box(&scenario), &mut rng))
            })
        });

    // The k-opinion conversion dynamics: batching pays the same way on the
    // k-species counted representation.
    let k_backend = backend("czyzowicz-lv-k").unwrap();
    let model = lv_lotka::MultiLvModel::symmetric(
        lv_lotka::CompetitionKind::SelfDestructive,
        4,
        1.0,
        1.0,
        1.0,
    );
    let k_scenario = Scenario::new(model, vec![800u64, 400, 400, 400])
        .with_stop(lv_crn::StopCondition::consensus().with_max_events(u64::MAX / 2));
    group
        .sample_size(10)
        .bench_function("czyzowicz_k4_batched_to_consensus_n2000", |b| {
            b.iter(|| {
                let mut rng = bench_seed().rng_for_trial(7);
                black_box(k_backend.run(black_box(&k_scenario), &mut rng))
            })
        });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
