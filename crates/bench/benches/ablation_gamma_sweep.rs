//! E12 kernel: one point of the γ/α ablation sweep (open problem of §1.6).

use criterion::{criterion_group, criterion_main, Criterion};
use lv_bench::{bench_seed, BENCH_N, BENCH_TRIALS};
use lv_lotka::{CompetitionKind, LvModel};
use lv_sim::MonteCarlo;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_gamma_sweep");
    group.sample_size(10);
    let gap = ((BENCH_N as f64).ln().powi(2)) as u64;
    let a = (BENCH_N + gap) / 2;
    let b_count = BENCH_N - a;
    for ratio in [0.0, 0.25, 1.0] {
        let model =
            LvModel::with_intraspecific(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0, ratio);
        let mc = MonteCarlo::new(BENCH_TRIALS, bench_seed()).with_threads(1);
        group.bench_function(format!("rho_gamma_over_alpha_{ratio}"), |b| {
            b.iter(|| black_box(mc.success_probability(&model, black_box(a), black_box(b_count))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
