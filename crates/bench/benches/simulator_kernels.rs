//! Performance comparison of the simulation kernels themselves: the
//! specialised Lotka–Volterra jump chain vs the generic CRN simulators
//! (jump chain, Gillespie direct method, tau-leaping) on the same model.

use criterion::{criterion_group, criterion_main, Criterion};
use lv_bench::{bench_seed, BENCH_N};
use lv_crn::prelude::*;
use lv_crn::StopCondition;
use lv_lotka::{run_majority, CompetitionKind, LvModel};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0);
    let network = model.to_reaction_network().unwrap();
    let a = BENCH_N * 55 / 100;
    let b_count = BENCH_N - a;
    let stop = StopCondition::any_species_extinct().with_max_events(100_000_000);

    let mut group = c.benchmark_group("simulator_kernels");
    group.sample_size(20);

    group.bench_function(format!("lv_jump_chain_to_consensus_n{BENCH_N}"), |b| {
        b.iter(|| {
            let mut rng = bench_seed().rng_for_trial(0);
            black_box(run_majority(&model, a, b_count, &mut rng, 100_000_000))
        })
    });

    group.bench_function(format!("crn_jump_chain_to_consensus_n{BENCH_N}"), |b| {
        b.iter(|| {
            let rng = bench_seed().rng_for_trial(1);
            let mut sim = JumpChain::new(&network, State::from(vec![a, b_count]), rng);
            black_box(sim.run(&stop))
        })
    });

    group.bench_function(format!("gillespie_direct_to_consensus_n{BENCH_N}"), |b| {
        b.iter(|| {
            let rng = bench_seed().rng_for_trial(2);
            let mut sim = GillespieDirect::new(&network, State::from(vec![a, b_count]), rng);
            black_box(sim.run(&stop))
        })
    });

    group.bench_function(format!("tau_leaping_to_consensus_n{BENCH_N}"), |b| {
        b.iter(|| {
            let rng = bench_seed().rng_for_trial(3);
            let mut sim = TauLeaping::new(&network, State::from(vec![a, b_count]), 1e-3, rng);
            black_box(sim.run(&stop))
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
