//! Performance comparison of the simulation kernels themselves, selected
//! through the engine's backend registry: every kernel runs the *same*
//! majority `Scenario`, so the numbers compare execution engines, not
//! harness differences.

use criterion::{criterion_group, criterion_main, Criterion};
use lv_bench::{bench_seed, BENCH_N};
use lv_engine::{BackendRegistry, Scenario};
use lv_lotka::{CompetitionKind, LvModel, MultiLvModel};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0);
    let a = BENCH_N * 55 / 100;
    let b_count = BENCH_N - a;
    // One scenario, every backend: consensus with a generous event budget
    // (lean — no observers — so the numbers isolate the stepping kernels).
    let scenario = Scenario::new(model, (a, b_count))
        .with_stop(lv_crn::StopCondition::any_species_extinct().with_max_events(100_000_000))
        .with_tau(1e-3);

    let mut group = c.benchmark_group("simulator_kernels");
    group.sample_size(20);

    for (trial, backend) in BackendRegistry::global().iter().enumerate() {
        group.bench_function(format!("{}_to_consensus_n{BENCH_N}", backend.name()), |b| {
            b.iter(|| {
                let mut rng = bench_seed().rng_for_trial(trial as u64);
                black_box(backend.run(black_box(&scenario), &mut rng))
            })
        });
    }

    group.finish();
    bench_k6(c);
}

/// The `k`-species kernels, where reaction-local (Gibson–Bruck style)
/// propensity and clock maintenance pays: a symmetric 6-species network has
/// O(k²) reactions of which each firing touches only O(k), so the exact CRN
/// simulators skip most of the per-event recomputation. The budget fixes the
/// work at exactly 5000 events per run, making the per-event kernel cost
/// comparable even across code versions with different RNG streams.
fn bench_k6(c: &mut Criterion) {
    let k = 6usize;
    let model = MultiLvModel::symmetric(CompetitionKind::SelfDestructive, k, 1.0, 1.0, 1.0);
    let scenario = Scenario::new(model, vec![5_000u64; k])
        .with_stop(lv_crn::StopCondition::consensus().with_max_events(5_000));

    let mut group = c.benchmark_group("simulator_kernels_k6");
    group.sample_size(20);

    for (trial, name) in ["jump-chain", "gillespie-direct", "next-reaction"]
        .iter()
        .enumerate()
    {
        let backend = lv_engine::backend(name).unwrap();
        group.bench_function(format!("{name}_5000events_k6"), |b| {
            b.iter(|| {
                let mut rng = bench_seed().rng_for_trial(100 + trial as u64);
                let report = backend.run(black_box(&scenario), &mut rng);
                assert_eq!(report.events, 5_000, "{name}: run must truncate");
                black_box(report)
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
