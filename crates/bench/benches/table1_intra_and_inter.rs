//! E3 kernel: the proportional-law score of the balanced inter+intraspecific
//! models (Table 1, row 2; Theorems 20 and 23).

use criterion::{criterion_group, criterion_main, Criterion};
use lv_bench::{bench_seed, BENCH_TRIALS};
use lv_lotka::{CompetitionKind, LvModel};
use lv_sim::MonteCarlo;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_intra_and_inter");
    group.sample_size(10);
    for (label, kind) in [
        ("self_destructive", CompetitionKind::SelfDestructive),
        ("non_self_destructive", CompetitionKind::NonSelfDestructive),
    ] {
        let model = LvModel::balanced_intra_inter(kind, 1.0, 1.0, 1.0);
        let mc = MonteCarlo::new(BENCH_TRIALS, bench_seed()).with_threads(1);
        group.bench_function(format!("proportional_score_{label}_60_40"), |b| {
            b.iter(|| black_box(mc.proportional_score(&model, black_box(60), black_box(40))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
