//! E7 kernel: the consensus-time and bad-event statistics of Theorem 13.

use criterion::{criterion_group, criterion_main, Criterion};
use lv_bench::{bench_seed, BENCH_N, BENCH_TRIALS};
use lv_lotka::{CompetitionKind, LvModel};
use lv_sim::MonteCarlo;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus_time_scaling");
    group.sample_size(10);
    for (label, kind) in [
        ("self_destructive", CompetitionKind::SelfDestructive),
        ("non_self_destructive", CompetitionKind::NonSelfDestructive),
    ] {
        let model = LvModel::neutral(kind, 1.0, 1.0, 1.0);
        let mc = MonteCarlo::new(BENCH_TRIALS, bench_seed()).with_threads(1);
        let a = BENCH_N * 55 / 100;
        let b_count = BENCH_N - a;
        group.bench_function(format!("consensus_stats_{label}_n{BENCH_N}"), |b| {
            b.iter(|| black_box(mc.consensus_stats(&model, black_box(a), black_box(b_count))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
