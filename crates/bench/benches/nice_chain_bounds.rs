//! E8 kernel: extinction runs of the dominating nice chain (Lemmas 5–8).

use criterion::{criterion_group, criterion_main, Criterion};
use lv_bench::{bench_seed, BENCH_N, BENCH_TRIALS};
use lv_chains::{DominatingChain, ExtinctionStats};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let chain = DominatingChain::from_lv_rates(1.0, 1.0, 1.0, 1.0);
    let mut group = c.benchmark_group("nice_chain_bounds");
    group.sample_size(10);
    group.bench_function(format!("extinction_stats_n{BENCH_N}"), |b| {
        b.iter(|| {
            let mut rng = bench_seed().rng_for_trial(0);
            black_box(ExtinctionStats::collect(
                &chain,
                black_box(BENCH_N),
                BENCH_TRIALS,
                &mut rng,
                1_000_000_000,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
