//! E4 kernel: success probability under intraspecific-only competition
//! (Table 1, row 3; Theorem 25).

use criterion::{criterion_group, criterion_main, Criterion};
use lv_bench::{bench_seed, BENCH_TRIALS};
use lv_lotka::{CompetitionKind, LvModel};
use lv_sim::MonteCarlo;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = LvModel::intraspecific_only(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0);
    let mc = MonteCarlo::new(BENCH_TRIALS, bench_seed()).with_threads(1);
    let mut group = c.benchmark_group("table1_intraspecific_only");
    group.sample_size(10);
    group.bench_function("success_probability_n100_gap60", |b| {
        b.iter(|| black_box(mc.success_probability(&model, black_box(80), black_box(20))))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
