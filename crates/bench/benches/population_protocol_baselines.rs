//! E11 kernels: the population-protocol baselines of Section 2.2.

use criterion::{criterion_group, criterion_main, Criterion};
use lv_bench::{bench_seed, BENCH_N};
use lv_protocols::{run_protocol, ApproximateMajority, CzyzowiczLvProtocol, ExactMajority4State};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("population_protocol_baselines");
    group.sample_size(10);
    let a = BENCH_N * 6 / 10;
    let b_count = BENCH_N - a;
    let budget = 200 * BENCH_N * 10;

    group.bench_function(format!("approximate_majority_n{BENCH_N}"), |b| {
        b.iter(|| {
            let mut rng = bench_seed().rng_for_trial(0);
            black_box(run_protocol(
                &ApproximateMajority::new(),
                black_box(a),
                black_box(b_count),
                &mut rng,
                budget,
            ))
        })
    });
    group.bench_function(format!("czyzowicz_lv_n{BENCH_N}"), |b| {
        b.iter(|| {
            let mut rng = bench_seed().rng_for_trial(1);
            black_box(run_protocol(
                &CzyzowiczLvProtocol::new(),
                black_box(a),
                black_box(b_count),
                &mut rng,
                budget,
            ))
        })
    });
    group.bench_function("exact_majority_n128", |b| {
        b.iter(|| {
            let mut rng = bench_seed().rng_for_trial(2);
            black_box(run_protocol(
                &ExactMajority4State::new(),
                black_box(70),
                black_box(58),
                &mut rng,
                50_000_000,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
