//! E13 kernel: one run of the asynchronous pseudo-coupling of Section 5.1.

use criterion::{criterion_group, criterion_main, Criterion};
use lv_bench::{bench_seed, BENCH_N};
use lv_chains::PseudoCoupling;
use lv_lotka::{CompetitionKind, LvConfiguration, LvJumpChain, LvModel};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("pseudo_coupling_domination");
    group.sample_size(10);
    let model = LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 2.0);
    let chain = model.dominating_chain().unwrap();
    let a = BENCH_N * 55 / 100;
    let b_count = BENCH_N - a;
    group.bench_function(format!("coupled_run_n{BENCH_N}"), |b| {
        b.iter(|| {
            let mut rng = bench_seed().rng_for_trial(0);
            let process = LvJumpChain::new(model, LvConfiguration::new(a, b_count));
            let coupling = PseudoCoupling::new(process, chain, b_count);
            black_box(coupling.run(&mut rng, 1_000_000_000))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
