//! E6 kernel: the no-competition baseline (Table 1, row 5).

use criterion::{criterion_group, criterion_main, Criterion};
use lv_bench::{bench_seed, BENCH_TRIALS};
use lv_lotka::LvModel;
use lv_sim::MonteCarlo;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = LvModel::no_competition(1.0, 1.0);
    let mc = MonteCarlo::new(BENCH_TRIALS, bench_seed()).with_threads(1);
    let mut group = c.benchmark_group("table1_no_competition");
    group.sample_size(10);
    group.bench_function("success_probability_60_40", |b| {
        b.iter(|| black_box(mc.success_probability(&model, black_box(60), black_box(40))))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
