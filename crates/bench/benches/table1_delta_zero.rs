//! E5 kernels: the δ = 0 regimes of Table 1 row 4 — the Cho et al. special
//! case of the self-destructive model and the Andaur et al. resource model.

use criterion::{criterion_group, criterion_main, Criterion};
use lv_bench::{bench_seed, BENCH_N, BENCH_TRIALS};
use lv_lotka::LvModel;
use lv_protocols::AndaurResourceModel;
use lv_sim::{MonteCarlo, ThresholdSearch};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_delta_zero");
    group.sample_size(10);

    let cho = LvModel::cho_et_al(1.0, 1.0);
    let search = ThresholdSearch::new(BENCH_TRIALS, bench_seed()).with_threads(1);
    group.bench_function(format!("cho_threshold_search_n{BENCH_N}"), |b| {
        b.iter(|| black_box(search.find(&cho, black_box(BENCH_N))))
    });

    let andaur = AndaurResourceModel::for_population(BENCH_N);
    let mc = MonteCarlo::new(BENCH_TRIALS, bench_seed()).with_threads(1);
    let gap = ((BENCH_N as f64) * (BENCH_N as f64).ln()).sqrt() as u64;
    let a = (BENCH_N + gap) / 2;
    let b_count = BENCH_N - a;
    group.bench_function(format!("andaur_success_probability_n{BENCH_N}"), |b| {
        b.iter(|| {
            black_box(mc.estimate(|_, rng| {
                andaur
                    .run_majority(black_box(a), black_box(b_count), rng, 400 * BENCH_N)
                    .majority_won
            }))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
