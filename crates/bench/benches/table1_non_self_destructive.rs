//! E2 kernel: empirical threshold search for the non-self-destructive model
//! (Table 1, row 1, right column).

use criterion::{criterion_group, criterion_main, Criterion};
use lv_bench::{bench_seed, BENCH_N, BENCH_TRIALS};
use lv_lotka::{CompetitionKind, LvModel};
use lv_sim::ThresholdSearch;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = LvModel::neutral(CompetitionKind::NonSelfDestructive, 1.0, 1.0, 1.0);
    let search = ThresholdSearch::new(BENCH_TRIALS, bench_seed()).with_threads(1);
    let mut group = c.benchmark_group("table1_non_self_destructive");
    group.sample_size(10);
    group.bench_function(format!("threshold_search_n{BENCH_N}"), |b| {
        b.iter(|| black_box(search.find(&model, black_box(BENCH_N))))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
