//! E9 kernel: one point of the ρ-vs-∆ separation curves (Section 1.4).

use criterion::{criterion_group, criterion_main, Criterion};
use lv_bench::{bench_seed, BENCH_N, BENCH_TRIALS};
use lv_lotka::{CompetitionKind, LvModel};
use lv_sim::MonteCarlo;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("separation_curves");
    group.sample_size(10);
    let gap = ((BENCH_N as f64).ln().powi(2)) as u64;
    let a = (BENCH_N + gap) / 2;
    let b_count = BENCH_N - a;
    for (label, kind) in [
        ("self_destructive", CompetitionKind::SelfDestructive),
        ("non_self_destructive", CompetitionKind::NonSelfDestructive),
    ] {
        let model = LvModel::neutral(kind, 1.0, 1.0, 1.0);
        let mc = MonteCarlo::new(BENCH_TRIALS, bench_seed()).with_threads(1);
        group.bench_function(format!("rho_at_log2n_gap_{label}"), |b| {
            b.iter(|| black_box(mc.success_probability(&model, black_box(a), black_box(b_count))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
