//! Shared helpers for the benchmark harness.
//!
//! The Criterion benches in `benches/` measure the performance of the kernel
//! behind each experiment of DESIGN.md at a deliberately small scale (so a
//! full `cargo bench` stays in the minutes range); the `experiments` binary in
//! `src/bin/experiments.rs` is the harness that regenerates the actual tables
//! and series reported in EXPERIMENTS.md.

#![forbid(unsafe_code)]

use lv_sim::experiments::ExperimentConfig;
use lv_sim::Seed;

/// The population size used by the quick benchmark kernels.
pub const BENCH_N: u64 = 512;

/// The trial count used by the quick benchmark kernels.
pub const BENCH_TRIALS: u64 = 30;

/// The seed used by every benchmark, so runs are comparable.
pub fn bench_seed() -> Seed {
    Seed::from(0xBEEF)
}

/// The quick experiment configuration used when a bench wraps an entire
/// experiment rather than a kernel.
pub fn bench_experiment_config() -> ExperimentConfig {
    ExperimentConfig::quick(0xBEEF)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn bench_constants_are_sane() {
        assert!(BENCH_N >= 128);
        assert!(BENCH_TRIALS >= 10);
        assert_eq!(bench_seed(), Seed::from(0xBEEF));
        assert_eq!(bench_experiment_config().seed, Seed::from(0xBEEF));
    }
}
