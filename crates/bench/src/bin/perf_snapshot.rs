//! `perf-snapshot` — the repo's perf trajectory, as a machine-readable
//! artifact.
//!
//! Runs the fixed-work kernels the Criterion benches measure interactively
//! (`simulator_kernels_k6`, `batch_streaming`, `sampling_kernels`,
//! `protocol_batching`, `protocol_bridging`) plus the threshold-surface
//! server's cache-hit round trip (`server_roundtrip`) with a plain
//! wall-clock timer and writes the results to `BENCH_8.json`, so the
//! performance trajectory of the hot paths is recorded per revision instead
//! of living only in scrollback. CI runs `--quick` mode on every push, which
//! keeps the artifact (and the kernels behind it) from rotting.
//!
//! ```text
//! perf-snapshot [--quick] [--out PATH]
//! ```
//!
//! `--quick` shrinks the protocol-batching kernel from `n ∈ {10⁶, 10⁷}` to
//! `n = 10⁵`, the bridging kernels to `n = 10⁴`, and trims repetitions; the
//! JSON records which mode produced it. The headline `speedups` entries are
//! the two acceptance comparisons:
//!
//! - `protocol_batching`: batched vs agent-list approximate-majority
//!   convergence at equal `n` — the batched per-interaction-equivalent cost
//!   *falls* with `n` (one epoch of Θ(√n) interactions costs a constant
//!   number of draws) while the agent-list cost rises once its state array
//!   outgrows the cache.
//! - `protocol_bridging`: diffusion-bridged vs exact counted conversion
//!   dynamics at equal `n`. The bridged sampler runs the Θ(n²)-interaction
//!   first-passage to absorption at every `n` (polylog-many blocks); the
//!   counted stepper pays Θ(1) per *active* interaction, so beyond
//!   `n = 10⁴` it is measured under an interaction budget and projected to
//!   the bridged run's interaction count for an equal-work wall-clock ratio.

use lv_engine::{backend, Scenario};
use lv_lotka::{CompetitionKind, LvModel, MultiLvModel};
use lv_sim::{MonteCarlo, Seed};
use std::time::Instant;

fn seed() -> Seed {
    Seed::from(0xBEEF)
}

/// Median wall-clock milliseconds of `reps` runs of `f` (after one warmup).
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

struct Kernel {
    name: String,
    wall_ms: f64,
    /// Events (reaction firings / interactions) the kernel represents, for
    /// per-event normalisation; 0 when not event-shaped.
    events: u64,
}

/// One headline acceleration comparison: the baseline and accelerated
/// wall-clock times for the *same* amount of work (projected to equal event
/// counts where the baseline runs under a budget).
struct Speedup {
    name: String,
    baseline_ms: f64,
    accelerated_ms: f64,
}

impl Speedup {
    fn ratio(&self) -> f64 {
        self.baseline_ms / self.accelerated_ms
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_8.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!(
                    "unknown argument {other:?}; usage: perf-snapshot [--quick] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    let reps = if quick { 3 } else { 10 };
    let mut kernels: Vec<Kernel> = Vec::new();
    let mut speedups: Vec<Speedup> = Vec::new();

    // ---- simulator_kernels_k6: 5000 exact CRN events on a symmetric
    // 6-species network, per simulator.
    let k = 6usize;
    let model = MultiLvModel::symmetric(CompetitionKind::SelfDestructive, k, 1.0, 1.0, 1.0);
    let k6_scenario = Scenario::new(model, vec![5_000u64; k])
        .with_stop(lv_crn::StopCondition::consensus().with_max_events(5_000));
    for name in ["jump-chain", "gillespie-direct", "next-reaction"] {
        let engine = backend(name).expect("builtin backend");
        let wall_ms = time_ms(reps, || {
            let mut rng = seed().rng_for_trial(1);
            let report = engine.run(&k6_scenario, &mut rng);
            assert_eq!(report.events, 5_000);
        });
        kernels.push(Kernel {
            name: format!("simulator_kernels_k6/{name}_5000events"),
            wall_ms,
            events: 5_000,
        });
    }

    // ---- batch_streaming: a fixed Monte-Carlo batch on the sharded
    // streaming executor, 1 and 4 threads.
    let stream_trials: u64 = if quick { 128 } else { 512 };
    let lv = LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0);
    let mut stream_ms = [0.0f64; 2];
    for (slot, threads) in [1usize, 4].into_iter().enumerate() {
        let mc = MonteCarlo::new(stream_trials, seed()).with_threads(threads);
        let wall_ms = time_ms(reps, || {
            let estimate = mc.success_probability(&lv, 282, 230);
            assert_eq!(estimate.trials(), stream_trials);
        });
        stream_ms[slot] = wall_ms;
        kernels.push(Kernel {
            name: format!(
                "batch_streaming/success_probability_{stream_trials}trials_{threads}threads"
            ),
            wall_ms,
            events: 0,
        });
    }
    // Direction guard: asking for more threads must never *lose* to one
    // thread. The executor clamps its worker count to the machine's cores and
    // to the scheduled chunk count, so on a small batch the 4-thread request
    // degenerates to the same plan as the 1-thread one instead of paying
    // spawn/steal overhead for work that is too thin to split (the BENCH_7
    // regression: 4.25 ms at 4 threads vs 3.97 ms at 1). Allow 25% noise.
    assert!(
        stream_ms[1] <= stream_ms[0] * 1.25,
        "multi-thread streaming regressed vs single-thread: {:.3} ms at 4 threads vs {:.3} ms at 1",
        stream_ms[1],
        stream_ms[0],
    );

    // ---- sampling_kernels: per-draw cost of the urn samplers, retired
    // inversion walk vs the constant-expected-time rejection kernels, at the
    // urn shapes the k = 3 batched epoch actually draws from. The binomial
    // comparison is pinned at n = 2¹⁶ where the *old* implementation was
    // still exact (beyond that it switched to a normal approximation, so
    // timing it there would compare different distributions). The prepared
    // entries re-use a cached sampler across draws — the per-epoch pattern
    // in `CountedSimulation` and `BridgedConversionWalk`.
    {
        use lv_protocols::sampling::{
            sample_binomial, sample_binomial_by_inversion, sample_hypergeometric,
            sample_hypergeometric_by_inversion, BinomialSampler, HypergeometricSampler,
        };
        use rand::{Rng, SeedableRng};
        let draws: u64 = if quick { 50_000 } else { 200_000 };
        let hyper_urns: &[(&str, u64, u64, u64)] = &[
            ("population_split_n1e6", 500_000, 500_000, 1_772),
            ("initiator_split_n1e6", 300_000, 200_000, 886),
            ("small_urn", 600, 600, 400),
        ];
        for &(label, s, f, d) in hyper_urns {
            let old_ms = time_ms(reps, || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(0xFEED);
                let mut acc = 0u64;
                for _ in 0..draws {
                    acc = acc.wrapping_add(sample_hypergeometric_by_inversion(&mut rng, s, f, d));
                }
                std::hint::black_box(acc);
            });
            let new_ms = time_ms(reps, || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(0xFEED);
                let mut acc = 0u64;
                for _ in 0..draws {
                    acc = acc.wrapping_add(sample_hypergeometric(&mut rng, s, f, d));
                }
                std::hint::black_box(acc);
            });
            let prepared_ms = time_ms(reps, || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(0xFEED);
                let sampler = HypergeometricSampler::new(s, f, d);
                let mut acc = 0u64;
                for _ in 0..draws {
                    acc = acc.wrapping_add(sampler.sample(&mut rng));
                }
                std::hint::black_box(acc);
            });
            for (variant, ms) in [
                ("inversion", old_ms),
                ("rejection", new_ms),
                ("rejection_prepared", prepared_ms),
            ] {
                kernels.push(Kernel {
                    name: format!("sampling_kernels/hypergeometric_{label}_{variant}"),
                    wall_ms: ms,
                    events: draws,
                });
            }
            speedups.push(Speedup {
                name: format!("hypergeometric_rejection_vs_inversion_{label}"),
                baseline_ms: old_ms,
                accelerated_ms: new_ms,
            });
        }
        let (n, p) = (65_536u64, 0.5f64);
        let old_ms = time_ms(reps, || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(0xFEED);
            let mut acc = 0u64;
            for _ in 0..draws {
                acc = acc.wrapping_add(sample_binomial_by_inversion(&mut rng, n, p));
            }
            std::hint::black_box(acc);
        });
        let new_ms = time_ms(reps, || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(0xFEED);
            let mut acc = 0u64;
            for _ in 0..draws {
                acc = acc.wrapping_add(sample_binomial(&mut rng, n, p));
            }
            std::hint::black_box(acc);
        });
        let prepared_ms = time_ms(reps, || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(0xFEED);
            let sampler = BinomialSampler::new(n, p);
            let mut acc = 0u64;
            for _ in 0..draws {
                acc = acc.wrapping_add(sampler.sample(&mut rng));
            }
            std::hint::black_box(acc);
        });
        for (variant, ms) in [
            ("inversion", old_ms),
            ("btrs", new_ms),
            ("btrs_prepared", prepared_ms),
        ] {
            kernels.push(Kernel {
                name: format!("sampling_kernels/binomial_n65536_p05_{variant}"),
                wall_ms: ms,
                events: draws,
            });
        }
        speedups.push(Speedup {
            name: "binomial_btrs_vs_inversion_n65536".to_string(),
            baseline_ms: old_ms,
            accelerated_ms: new_ms,
        });
        // Poisson: the retired Knuth product-of-uniforms at mean 50 (O(mean)
        // uniforms per draw) vs the PTRS rejection kernel (O(1)).
        let mean = 50.0f64;
        let knuth_ms = time_ms(reps, || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(0xFEED);
            let threshold = (-mean).exp();
            let mut acc = 0u64;
            for _ in 0..draws {
                let mut k = 0u64;
                let mut product: f64 = 1.0;
                loop {
                    product *= rng.gen::<f64>();
                    if product <= threshold {
                        break;
                    }
                    k += 1;
                }
                acc = acc.wrapping_add(k);
            }
            std::hint::black_box(acc);
        });
        let ptrs_ms = time_ms(reps, || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(0xFEED);
            let mut acc = 0u64;
            for _ in 0..draws {
                acc = acc.wrapping_add(lv_crn::distributions::sample_poisson(&mut rng, mean));
            }
            std::hint::black_box(acc);
        });
        for (variant, ms) in [("knuth", knuth_ms), ("ptrs", ptrs_ms)] {
            kernels.push(Kernel {
                name: format!("sampling_kernels/poisson_mean50_{variant}"),
                wall_ms: ms,
                events: draws,
            });
        }
        speedups.push(Speedup {
            name: "poisson_ptrs_vs_knuth_mean50".to_string(),
            baseline_ms: knuth_ms,
            accelerated_ms: ptrs_ms,
        });
    }

    // ---- protocol_batching: approximate-majority convergence, batched vs
    // agent-list at equal n — the batching acceptance comparison. The
    // batched per-interaction-equivalent cost *falls* with n (o(1): one
    // epoch of Θ(√n) interactions costs a constant number of draws), while
    // the agent-list cost *rises* with n (its per-agent state array stops
    // fitting in cache), so the speedup grows by an order of magnitude per
    // decade of n.
    let sizes: &[u64] = if quick {
        &[100_000]
    } else {
        &[1_000_000, 10_000_000]
    };
    let batched = backend("approx-majority").expect("builtin backend");
    let agents = backend("approx-majority-agents").expect("builtin backend");
    for &n in sizes {
        let a = n * 55 / 100;
        let scenario = Scenario::new(LvModel::default(), (a, n - a))
            .with_stop(lv_crn::StopCondition::any_species_extinct().with_max_events(u64::MAX / 2));
        let mut interactions = 0u64;
        let batched_ms = time_ms(reps, || {
            let mut rng = seed().rng_for_trial(2);
            let report = batched.run(&scenario, &mut rng);
            assert!(report.consensus_reached());
            interactions = report.events;
        });
        kernels.push(Kernel {
            name: format!("protocol_batching/approx_majority_batched_n{n}"),
            wall_ms: batched_ms,
            events: interactions,
        });
        // One agent-list repetition: the n = 10⁷ run alone walks ~2×10⁸
        // interactions over an 80 MB working set.
        let agent_reps = if quick || n >= 10_000_000 { 1 } else { 2 };
        let mut agent_interactions = 0u64;
        let agents_ms = time_ms(agent_reps, || {
            let mut rng = seed().rng_for_trial(2);
            let report = agents.run(&scenario, &mut rng);
            assert!(report.consensus_reached());
            agent_interactions = report.events;
        });
        kernels.push(Kernel {
            name: format!("protocol_batching/approx_majority_agents_n{n}"),
            wall_ms: agents_ms,
            events: agent_interactions,
        });
        speedups.push(Speedup {
            name: format!("approx_majority_batched_vs_agents_n{n}"),
            baseline_ms: agents_ms,
            accelerated_ms: batched_ms,
        });
    }

    // ---- protocol_batching/k3 epoch cost: the per-epoch price of the
    // k = 3 chained-hypergeometric split, with the process-wide
    // `BatchLengthSampler` cache warm — the alias tables behind the epoch
    // draw are built once per population size, not once per simulation, so
    // this measures the steady-state sampling cost alone.
    {
        use lv_protocols::{CountedDynamics, CountedSimulation};
        use rand::SeedableRng;
        let epochs: u64 = if quick { 20_000 } else { 100_000 };
        let dynamics = CountedDynamics::k_opinion_czyzowicz(3);
        let epoch_ms = time_ms(reps, || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(0xBEEF);
            let mut sim = CountedSimulation::new(&dynamics, &[500_000, 300_000, 200_000]);
            for _ in 0..epochs {
                if sim.step_epoch(&mut rng, u64::MAX).is_none() {
                    sim.step(&mut rng);
                }
            }
            assert!(!sim.is_absorbed());
        });
        kernels.push(Kernel {
            name: format!("protocol_batching/k3_hypergeometric_epoch_cost_{epochs}epochs"),
            wall_ms: epoch_ms,
            events: epochs,
        });
    }

    // ---- protocol_bridging: conversion dynamics first passage, diffusion-
    // bridged vs exact counted vs agent-list. The bridged sampler reaches
    // absorption at every n — that is the tentpole claim: Θ(n²) interactions
    // compressed into polylog-many bridge blocks — so it is always timed to
    // absorption. The exact steppers pay Θ(1) per (active) interaction, so
    // they run to absorption only at n = 10⁴ and under an interaction budget
    // beyond that; the `speedups` entry projects the counted per-interaction
    // cost onto the bridged run's interaction count for an equal-work ratio.
    {
        let bridge_sizes: &[u64] = if quick {
            &[10_000]
        } else {
            &[10_000, 100_000, 1_000_000, 10_000_000]
        };
        /// Interaction budget for the exact steppers beyond n = 10⁴ (the
        /// full first passage there would take hours at n = 10⁶).
        const EXACT_BUDGET: u64 = 2_000_000;
        let bridged = backend("czyzowicz-lv-bridged").expect("builtin backend");
        let counted = backend("czyzowicz-lv").expect("builtin backend");
        let cz_agents = backend("czyzowicz-lv-agents").expect("builtin backend");
        for &n in bridge_sizes {
            let a = n * 55 / 100;
            let to_absorption = Scenario::new(LvModel::default(), (a, n - a)).with_stop(
                lv_crn::StopCondition::any_species_extinct().with_max_events(u64::MAX / 2),
            );
            let exact_full = n <= 10_000;

            let mut bridged_events = 0u64;
            let bridged_ms = time_ms(reps, || {
                let mut rng = seed().rng_for_trial(3);
                let report = bridged.run(&to_absorption, &mut rng);
                assert!(report.consensus_reached());
                bridged_events = report.events;
            });
            kernels.push(Kernel {
                name: format!("protocol_bridging/czyzowicz_bridged_n{n}"),
                wall_ms: bridged_ms,
                events: bridged_events,
            });

            let exact_scenario = if exact_full {
                to_absorption.clone()
            } else {
                Scenario::new(LvModel::default(), (a, n - a)).with_stop(
                    lv_crn::StopCondition::any_species_extinct().with_max_events(EXACT_BUDGET),
                )
            };
            let mut counted_events = 0u64;
            let counted_ms = time_ms(if exact_full { reps.min(2) } else { reps.min(3) }, || {
                let mut rng = seed().rng_for_trial(3);
                let report = counted.run(&exact_scenario, &mut rng);
                counted_events = report.events;
            });
            kernels.push(Kernel {
                name: format!(
                    "protocol_bridging/czyzowicz_counted_n{n}{}",
                    if exact_full { "" } else { "_budget" }
                ),
                wall_ms: counted_ms,
                events: counted_events,
            });

            let mut agent_events = 0u64;
            let cz_agents_ms = time_ms(1, || {
                let mut rng = seed().rng_for_trial(3);
                let report = cz_agents.run(&exact_scenario, &mut rng);
                agent_events = report.events;
            });
            kernels.push(Kernel {
                name: format!(
                    "protocol_bridging/czyzowicz_agents_n{n}{}",
                    if exact_full { "" } else { "_budget" }
                ),
                wall_ms: cz_agents_ms,
                events: agent_events,
            });

            // Equal-work ratio: the counted stepper's measured
            // per-interaction cost, projected onto the interaction count the
            // bridged run actually traversed.
            let projected_counted_ms = counted_ms / counted_events as f64 * bridged_events as f64;
            speedups.push(Speedup {
                name: format!("czyzowicz_bridged_vs_counted_n{n}"),
                baseline_ms: projected_counted_ms,
                accelerated_ms: bridged_ms,
            });
        }
    }

    // ---- server_roundtrip: the threshold-surface service answering a
    // cached cell, (a) as a direct in-process call and (b) as a full wire
    // round trip over a Unix socket — the price of a cache hit with and
    // without framing, codec and socket in the path.
    {
        use lv_server::{
            BindAddr, Client, EstimateRequest, InProcessExecutor, ScenarioSpec, Server,
            ServiceConfig, ThresholdService,
        };
        let requests: u64 = if quick { 50 } else { 200 };
        let spec = ScenarioSpec::two_species(
            LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0),
            "jump-chain",
        );
        let request = EstimateRequest {
            spec: spec.clone(),
            n: 256,
            gap: 8,
            target_ci: 0.08,
            max_trials: 0,
        };

        let service = ThresholdService::new(
            Box::new(InProcessExecutor::new(1)),
            ServiceConfig::default(),
        );
        let warm = service.estimate(&request).expect("warm the cell");
        assert!(warm.fresh_trials > 0);
        let in_process_ms = time_ms(reps, || {
            for _ in 0..requests {
                let hit = service.estimate(&request).expect("cached estimate");
                assert!(hit.cache_hit);
            }
        });
        kernels.push(Kernel {
            name: format!("server_roundtrip/estimate_cache_hit_in_process_{requests}req"),
            wall_ms: in_process_ms,
            events: requests,
        });

        let socket =
            std::env::temp_dir().join(format!("lv-perf-snapshot-{}.sock", std::process::id()));
        let server =
            Server::bind(service, &BindAddr::Unix(socket.clone())).expect("bind perf socket");
        let handle = std::thread::spawn(move || server.serve().expect("serve"));
        let mut client = Client::connect_unix(&socket).expect("connect");
        let wire_ms = time_ms(reps, || {
            for _ in 0..requests {
                let hit = client.estimate(request.clone()).expect("cached estimate");
                assert!(hit.cache_hit);
            }
        });
        kernels.push(Kernel {
            name: format!("server_roundtrip/estimate_cache_hit_unix_socket_{requests}req"),
            wall_ms: wire_ms,
            events: requests,
        });
        client.shutdown().expect("shutdown");
        handle.join().expect("server thread");
    }

    // ---- Emit BENCH_8.json (no serde_json in the offline workspace; the
    // format is flat enough to print directly).
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"lv-consensus-perf-v2\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str("  \"kernels\": [\n");
    for (i, kernel) in kernels.iter().enumerate() {
        let per_event = if kernel.events > 0 {
            format!(
                ", \"per_event_ns\": {:.2}",
                kernel.wall_ms * 1e6 / kernel.events as f64
            )
        } else {
            String::new()
        };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"events\": {}{}}}{}\n",
            json_escape(&kernel.name),
            kernel.wall_ms,
            kernel.events,
            per_event,
            if i + 1 < kernels.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"speedups\": [\n");
    for (i, s) in speedups.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"baseline_ms\": {:.3}, \"accelerated_ms\": {:.3}, \
             \"speedup\": {:.2}}}{}\n",
            json_escape(&s.name),
            s.baseline_ms,
            s.accelerated_ms,
            s.ratio(),
            if i + 1 < speedups.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("could not write {out_path}: {e}"));
    println!("{json}");
    for s in &speedups {
        println!("{}: {:.1}x", s.name, s.ratio());
    }
    println!("wrote {out_path}");
}
