//! The experiment harness: regenerates every table and series of the paper's
//! evaluation (Table 1 rows plus the supporting theorem/lemma checks), as
//! indexed in DESIGN.md and recorded in EXPERIMENTS.md.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p lv-bench --bin experiments -- [--exp e1,...|all] [--profile quick|full] [--seed N]
//! ```

use lv_sim::experiments::{self, ExperimentConfig, Profile};
use lv_sim::Seed;
use std::process::ExitCode;

struct Args {
    experiments: Vec<String>,
    profile: Profile,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        experiments: vec!["all".to_string()],
        profile: Profile::Quick,
        seed: 20_240_506,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--exp" => {
                let value = iter
                    .next()
                    .ok_or("--exp needs a value (e.g. e1,e2 or all)")?;
                args.experiments = value.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--profile" => {
                let value = iter.next().ok_or("--profile needs a value (quick|full)")?;
                args.profile = match value.as_str() {
                    "quick" => Profile::Quick,
                    "full" => Profile::Full,
                    other => return Err(format!("unknown profile {other:?}")),
                };
            }
            "--seed" => {
                let value = iter.next().ok_or("--seed needs a value")?;
                args.seed = value
                    .parse()
                    .map_err(|_| format!("seed {value:?} is not an integer"))?;
            }
            "--help" | "-h" => {
                return Err(String::new());
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "usage: experiments [--exp e1,e2,...|all] [--profile quick|full] [--seed N]\n\
         \n\
         Experiments (see DESIGN.md for the paper artefact each reproduces):\n\
         \te1   Table 1 row 1, self-destructive threshold sweep\n\
         \te2   Table 1 row 1, non-self-destructive threshold sweep\n\
         \te3   Table 1 row 2, balanced inter+intra competition (Theorems 20/23)\n\
         \te4   Table 1 row 3, intraspecific only (Theorem 25)\n\
         \te5   Table 1 row 4, delta = 0 (Cho et al.) and Andaur et al.\n\
         \te6   Table 1 row 5, no competition\n\
         \te7   Theorem 13 consensus-time / bad-event scaling\n\
         \te8   Lemmas 5-8 nice-chain bounds\n\
         \te9   rho-vs-gap separation curves\n\
         \te10  deterministic ODE vs stochastic\n\
         \te11  population-protocol baselines\n\
         \te12  gamma/alpha ablation\n\
         \te13  pseudo-coupling domination\n\
         \te14  k-species plurality presets across backends\n\
         \te15  threshold scaling per backend + k-species plurality margins\n\
         \te16  large-n batched protocol threshold sweeps (10^4 .. 10^7)"
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("error: {message}");
            }
            usage();
            return ExitCode::from(2);
        }
    };
    let config = ExperimentConfig {
        profile: args.profile,
        seed: Seed::from(args.seed),
    };
    println!(
        "# Experiment run: profile {:?}, seed {}\n",
        args.profile, args.seed
    );

    let run_all = args.experiments.iter().any(|e| e == "all");
    let reports = if run_all {
        experiments::run_all(config)
    } else {
        let mut reports = Vec::new();
        for id in &args.experiments {
            match experiments::run_by_id(id, config) {
                Some(report) => reports.push(report),
                None => {
                    eprintln!("error: unknown experiment id {id:?}");
                    usage();
                    return ExitCode::from(2);
                }
            }
        }
        reports
    };

    for report in &reports {
        println!("{report}");
    }
    println!("# Completed {} experiment(s).", reports.len());
    ExitCode::SUCCESS
}
