//! # lv-server — the threshold-surface service
//!
//! A long-running server that answers success-probability and threshold
//! queries over the competitive Lotka-Volterra simulator, memoizing every
//! `(model-fingerprint, n, gap)` cell it ever measures:
//!
//! * a repeated query is served from cache with **zero fresh trials**;
//! * a *tighter* re-query spends only the **incremental** trials — the
//!   cell's RNG stream is resumed at its current trial index, never
//!   restarted, so the refined posterior is exactly what one uninterrupted
//!   run would have produced;
//! * concurrent identical queries **coalesce** behind one in-flight
//!   computation;
//! * trial execution is pluggable: in-process sharded streaming
//!   ([`InProcessExecutor`]) or a multi-process [`WorkerPool`] fanning
//!   trial ranges out over spawned `lv-serve --worker` processes —
//!   bit-identical to in-process at any worker count, because every trial
//!   `i` draws from `seed.rng_for_trial(i)` wherever it runs.
//!
//! The crate layers bottom-up: [`wire`] (length-prefixed frames) →
//! [`proto`] (versioned messages) → [`spec`]/[`cache`] (fingerprints and
//! the surface memo) → [`exec`] (trial executors) → [`service`] (the
//! memoized request brain) → [`server`]/[`client`] (sockets). See
//! `PROTOCOL.md` for the wire contract.

#![forbid(unsafe_code)]

pub mod cache;
pub mod client;
pub mod error;
pub mod exec;
pub mod flight;
pub mod proto;
pub mod server;
pub mod service;
pub mod spec;
pub mod sync;
pub mod wire;

pub use cache::{CellStats, SurfaceSnapshot, ThresholdSurface};
pub use client::Client;
pub use error::ServiceError;
pub use exec::{run_worker, InProcessExecutor, TrialExecutor, WorkerPool};
pub use flight::SingleFlight;
pub use proto::{
    CacheStatsResponse, EstimateRequest, EstimateResponse, Hello, Request, Response,
    StatusResponse, SurfaceCell, SurfaceResponse, SweepRequest, ThresholdRequest,
    ThresholdResponse, SCHEMA_VERSION,
};
pub use server::{BindAddr, Server};
pub use service::{ServiceConfig, ThresholdService};
pub use spec::{GapFamily, ModelSpec, ScenarioSpec};
