//! Single-flight coalescing of concurrent identical work.
//!
//! [`SingleFlight`] hands out per-key guards: the first caller to a key
//! becomes the *leader* and proceeds immediately; later callers for the
//! same key block until the leader drops its guard, then proceed one at a
//! time with [`FlightGuard::waited`] set. The server keys flights by cache
//! cell, so N concurrent identical `Estimate` requests spend the trials of
//! exactly one — followers wake to find the cache already tight and serve
//! it without fresh work.

use crate::sync;
use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};

#[derive(Default)]
struct KeyState {
    busy: bool,
    refs: u64,
}

#[derive(Default)]
struct Inner {
    // Ordered map: iteration and drop behaviour stay deterministic, and
    // the table never observes randomized hashing.
    keys: Mutex<BTreeMap<u64, KeyState>>,
    wake: Condvar,
}

/// A keyed mutual-exclusion table with coalescing bookkeeping.
#[derive(Clone, Default)]
pub struct SingleFlight {
    inner: Arc<Inner>,
}

/// Exclusive occupancy of one key; dropped to release it.
pub struct FlightGuard {
    inner: Arc<Inner>,
    key: u64,
    waited: bool,
}

impl SingleFlight {
    /// An empty flight table.
    pub fn new() -> Self {
        SingleFlight::default()
    }

    /// Acquires `key`, blocking while another guard holds it. A panic in
    /// some other request's handler (a poisoned table lock) does not
    /// propagate here: the table's bookkeeping is valid at every instant,
    /// so acquisition recovers the lock and proceeds.
    pub fn acquire(&self, key: u64) -> FlightGuard {
        let mut keys = sync::lock(&self.inner.keys);
        keys.entry(key).or_default().refs += 1;
        let mut waited = false;
        while keys.get(&key).is_some_and(|state| state.busy) {
            waited = true;
            keys = sync::wait(&self.inner.wake, keys);
        }
        keys.entry(key).or_default().busy = true;
        FlightGuard {
            inner: Arc::clone(&self.inner),
            key,
            waited,
        }
    }
}

impl FlightGuard {
    /// Whether another request held this key first — i.e. this request was
    /// coalesced behind in-flight identical work.
    pub fn waited(&self) -> bool {
        self.waited
    }
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        let mut keys = sync::lock(&self.inner.keys);
        if let Some(state) = keys.get_mut(&self.key) {
            state.busy = false;
            state.refs = state.refs.saturating_sub(1);
            if state.refs == 0 {
                keys.remove(&self.key);
            }
        }
        drop(keys);
        self.inner.wake.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::thread;

    #[test]
    fn leader_does_not_wait() {
        let flight = SingleFlight::new();
        let guard = flight.acquire(7);
        assert!(!guard.waited());
        drop(guard);
        // After full release the table is empty and the next caller leads.
        assert!(!flight.acquire(7).waited());
    }

    #[test]
    fn distinct_keys_do_not_contend() {
        let flight = SingleFlight::new();
        let a = flight.acquire(1);
        let b = flight.acquire(2);
        assert!(!a.waited());
        assert!(!b.waited());
    }

    #[test]
    fn poisoned_table_still_serves_later_acquisitions() {
        let flight = SingleFlight::new();
        let poisoner = flight.clone();
        let _ = thread::spawn(move || {
            let _keys = poisoner.inner.keys.lock().unwrap();
            panic!("poison the flight table");
        })
        .join();
        assert!(flight.inner.keys.is_poisoned());
        let guard = flight.acquire(3);
        assert!(!guard.waited());
        drop(guard);
        assert!(flight.inner.keys.lock().is_err(), "still poisoned");
        assert!(
            !flight.acquire(3).waited(),
            "key fully released despite poison"
        );
    }

    #[test]
    fn followers_serialize_behind_the_leader() {
        let flight = SingleFlight::new();
        let concurrent = Arc::new(AtomicU64::new(0));
        let peak = Arc::new(AtomicU64::new(0));
        let coalesced = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let flight = flight.clone();
                let concurrent = Arc::clone(&concurrent);
                let peak = Arc::clone(&peak);
                let coalesced = Arc::clone(&coalesced);
                thread::spawn(move || {
                    let guard = flight.acquire(42);
                    let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    thread::sleep(std::time::Duration::from_millis(2));
                    concurrent.fetch_sub(1, Ordering::SeqCst);
                    if guard.waited() {
                        coalesced.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(peak.load(Ordering::SeqCst), 1, "two guards held at once");
        assert_eq!(coalesced.load(Ordering::SeqCst), 7, "all but one waited");
    }
}
