//! `lv-client` — the command-line client of `lv-serve`.
//!
//! ```text
//! lv-client --unix /tmp/lv.sock estimate --n 200 --gap 10 --ci 0.05
//! lv-client --tcp 127.0.0.1:7878 threshold --n 500 --trials 200
//! lv-client --unix /tmp/lv.sock sweep --ns 100,200 --gaps 2,4,8 --ci 0.1
//! lv-client --unix /tmp/lv.sock status | cache-stats | shutdown
//! ```
//!
//! Output is one `key=value` line per answer, greppable by scripts (the CI
//! smoke greps `cache_hit=` and `fresh_trials=`). Model flags: `--kind`
//! (`sd` | `nsd`, default `sd`), `--backend` (default `jump-chain`).

use lv_lotka::{CompetitionKind, LvModel};
use lv_server::{Client, EstimateRequest, ScenarioSpec, SweepRequest, ThresholdRequest};
use std::io::{Read, Write};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: lv-client (--tcp ADDR | --unix PATH) COMMAND [flags]\n\
         commands:\n\
         \x20 estimate  --n N --gap G [--ci X] [--max-trials T] [--kind sd|nsd] [--backend B]\n\
         \x20 threshold --n N [--trials T] [--target X] [--kind sd|nsd] [--backend B]\n\
         \x20 sweep     --ns N1,N2,… --gaps G1,G2,… [--ci X] [--kind sd|nsd] [--backend B]\n\
         \x20 status | cache-stats | shutdown"
    );
    std::process::exit(2);
}

struct Flags(Vec<(String, String)>);

impl Flags {
    fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(flag, _)| flag == name)
            .map(|(_, value)| value.as_str())
    }

    fn number<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            Some(text) => text.parse().unwrap_or_else(|_| {
                eprintln!("{name} needs a number, got {text:?}");
                usage();
            }),
            None => default,
        }
    }

    fn required_number<T: std::str::FromStr>(&self, name: &str) -> T {
        match self.get(name) {
            Some(text) => text.parse().unwrap_or_else(|_| {
                eprintln!("{name} needs a number, got {text:?}");
                usage();
            }),
            None => {
                eprintln!("{name} is required");
                usage();
            }
        }
    }

    fn list(&self, name: &str) -> Vec<u64> {
        let Some(text) = self.get(name) else {
            eprintln!("{name} is required");
            usage();
        };
        text.split(',')
            .map(|piece| {
                piece.trim().parse().unwrap_or_else(|_| {
                    eprintln!("{name} needs comma-separated numbers, got {piece:?}");
                    usage();
                })
            })
            .collect()
    }

    fn spec(&self) -> ScenarioSpec {
        let kind = match self.get("--kind").unwrap_or("sd") {
            "sd" => CompetitionKind::SelfDestructive,
            "nsd" => CompetitionKind::NonSelfDestructive,
            other => {
                eprintln!("--kind must be sd or nsd, got {other:?}");
                usage();
            }
        };
        let model = LvModel::neutral(kind, 1.0, 1.0, 1.0);
        ScenarioSpec::two_species(model, self.get("--backend").unwrap_or("jump-chain"))
    }
}

fn run<S: Read + Write>(mut client: Client<S>, command: &str, flags: &Flags) -> ExitCode {
    let outcome = match command {
        "estimate" => client
            .estimate(EstimateRequest {
                spec: flags.spec(),
                n: flags.required_number("--n"),
                gap: flags.required_number("--gap"),
                target_ci: flags.number("--ci", 0.05),
                max_trials: flags.number("--max-trials", 0),
            })
            .map(|r| {
                println!(
                    "estimate fingerprint={} n={} gap={} point={:.6} ci_low={:.6} ci_high={:.6} \
                     half_width={:.6} successes={} trials={} cache_hit={} fresh_trials={} \
                     interpolated={} coalesced={}",
                    r.fingerprint,
                    r.n,
                    r.gap,
                    r.point,
                    r.ci_low,
                    r.ci_high,
                    r.half_width,
                    r.successes,
                    r.trials,
                    r.cache_hit,
                    r.fresh_trials,
                    r.interpolated,
                    r.coalesced,
                );
            }),
        "threshold" => client
            .threshold(ThresholdRequest {
                spec: flags.spec(),
                n: flags.required_number("--n"),
                target: flags.number("--target", 0.0),
                trials: flags.number("--trials", 0),
            })
            .map(|r| {
                println!(
                    "threshold fingerprint={} n={} threshold={} target={:.6} measured={:.6} \
                     saturated={} probes={} fresh_trials={}",
                    r.fingerprint,
                    r.result.n,
                    r.result.threshold,
                    r.result.target,
                    r.result.success_at_threshold,
                    r.result.saturated,
                    r.result.probes.len(),
                    r.fresh_trials,
                );
            }),
        "sweep" => client
            .sweep(SweepRequest {
                spec: flags.spec(),
                n_lattice: flags.list("--ns"),
                gap_lattice: flags.list("--gaps"),
                target_ci: flags.number("--ci", 0.05),
            })
            .map(|r| {
                for cell in &r.cells {
                    println!(
                        "cell n={} gap={} requested_gap={} point={:.6} half_width={:.6} trials={}",
                        cell.n,
                        cell.gap,
                        cell.requested_gap,
                        cell.point,
                        cell.half_width,
                        cell.trials,
                    );
                }
                println!(
                    "sweep fingerprint={} cells={} fresh_trials={}",
                    r.fingerprint,
                    r.cells.len(),
                    r.fresh_trials
                );
            }),
        "status" => client.status().map(|r| {
            println!(
                "status schema_version={} executor=\"{}\" served={}",
                r.schema_version, r.executor, r.served
            );
        }),
        "cache-stats" => client.cache_stats().map(|r| {
            println!(
                "cache entries={} cells={} trials={} hits={} misses={} coalesced={} interpolated={}",
                r.entries, r.cells, r.trials, r.hits, r.misses, r.coalesced, r.interpolated
            );
        }),
        "shutdown" => client.shutdown().map(|()| println!("shutting_down=true")),
        other => {
            eprintln!("unknown command {other:?}");
            usage();
        }
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut words = args.iter();
    let mut tcp = None;
    let mut unix = None;
    let mut command = None;
    let mut flags = Vec::new();
    while let Some(word) = words.next() {
        match word.as_str() {
            "--tcp" => tcp = words.next().cloned(),
            "--unix" => unix = words.next().cloned(),
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => {
                let Some(value) = words.next() else {
                    eprintln!("{flag} needs a value");
                    usage();
                };
                flags.push((flag.to_string(), value.clone()));
            }
            word => {
                if command.replace(word.to_string()).is_some() {
                    eprintln!("more than one command given");
                    usage();
                }
            }
        }
    }
    let Some(command) = command else { usage() };
    let flags = Flags(flags);
    match (tcp, unix) {
        (Some(addr), None) => match Client::connect_tcp(&addr) {
            Ok(client) => run(client, &command, &flags),
            Err(e) => {
                eprintln!("connect failed: {e}");
                ExitCode::FAILURE
            }
        },
        (None, Some(path)) => match Client::connect_unix(&path) {
            Ok(client) => run(client, &command, &flags),
            Err(e) => {
                eprintln!("connect failed: {e}");
                ExitCode::FAILURE
            }
        },
        _ => usage(),
    }
}
