//! `lv-serve` — the threshold-surface server binary.
//!
//! ```text
//! lv-serve --tcp 127.0.0.1:7878            # serve over TCP
//! lv-serve --unix /tmp/lv.sock             # serve over a Unix socket
//!          --workers 4                     # multi-process trial execution
//!          --threads 8                     # in-process executor threads
//!          --cache-snapshot surface.json   # warm-start + save on shutdown
//! lv-serve --worker [--threads 1]          # worker mode (spawned by pools)
//! ```

use lv_server::{
    BindAddr, InProcessExecutor, Server, ServiceConfig, SurfaceSnapshot, ThresholdService,
    TrialExecutor, WorkerPool,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    bind: Option<BindAddr>,
    workers: usize,
    threads: usize,
    snapshot: Option<PathBuf>,
    worker_mode: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: lv-serve (--tcp ADDR | --unix PATH) [--workers N] [--threads N] \
         [--cache-snapshot FILE]\n       lv-serve --worker [--threads N]"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let mut options = Options {
        bind: None,
        workers: 0,
        threads: 0,
        snapshot: None,
        worker_mode: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().unwrap_or_else(|| usage_for(flag));
        match arg.as_str() {
            "--tcp" => options.bind = Some(BindAddr::Tcp(value("--tcp"))),
            "--unix" => options.bind = Some(BindAddr::Unix(PathBuf::from(value("--unix")))),
            "--workers" => options.workers = parse_number(&value("--workers"), "--workers"),
            "--threads" => options.threads = parse_number(&value("--threads"), "--threads"),
            "--cache-snapshot" => options.snapshot = Some(PathBuf::from(value("--cache-snapshot"))),
            "--worker" => options.worker_mode = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    options
}

fn usage_for(flag: &str) -> ! {
    eprintln!("{flag} needs a value");
    usage();
}

fn parse_number(text: &str, flag: &str) -> usize {
    text.parse().unwrap_or_else(|_| {
        eprintln!("{flag} needs a number, got {text:?}");
        usage();
    })
}

fn main() -> ExitCode {
    let options = parse_options();

    if options.worker_mode {
        return match lv_server::run_worker(options.threads.max(1)) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("worker failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let Some(bind) = options.bind else {
        usage();
    };
    let executor: Box<dyn TrialExecutor> = if options.workers > 0 {
        let program = match std::env::current_exe() {
            Ok(path) => path,
            Err(e) => {
                eprintln!("cannot locate own binary for worker spawning: {e}");
                return ExitCode::FAILURE;
            }
        };
        Box::new(WorkerPool::new(program, options.workers))
    } else {
        Box::new(InProcessExecutor::new(options.threads))
    };

    let mut service = ThresholdService::new(executor, ServiceConfig::default());
    if let Some(path) = &options.snapshot {
        match std::fs::read_to_string(path) {
            Ok(text) => match serde::json::from_str::<SurfaceSnapshot>(&text) {
                Ok(snapshot) => {
                    service = service.with_snapshot(&snapshot);
                    eprintln!("warm-started cache from {}", path.display());
                }
                Err(e) => eprintln!("ignoring unreadable snapshot {}: {e}", path.display()),
            },
            Err(_) => eprintln!("no snapshot at {} yet; starting cold", path.display()),
        }
    }

    let server = match Server::bind(service, &bind) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = match &options.snapshot {
        Some(path) => server.with_snapshot_path(path),
        None => server,
    };
    println!("listening on {}", server.local_addr());
    match server.serve() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("server failed: {e}");
            ExitCode::FAILURE
        }
    }
}
