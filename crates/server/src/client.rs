//! The typed client: one [`Client`] per connection, one method per
//! request kind. Error responses come back as `Err(ServiceError)` with the
//! server's machine-readable code intact.

use crate::error::ServiceError;
use crate::proto::{
    CacheStatsResponse, EstimateRequest, EstimateResponse, Hello, Request, Response,
    StatusResponse, SurfaceResponse, SweepRequest, ThresholdRequest, ThresholdResponse,
};
use crate::wire::{read_message, write_message, MAX_FRAME_BYTES};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;

/// A connected, handshaken client over any byte stream.
pub struct Client<S: Read + Write> {
    stream: S,
}

impl Client<TcpStream> {
    /// Connects and handshakes over TCP.
    pub fn connect_tcp(addr: &str) -> Result<Self, ServiceError> {
        Client::handshake(TcpStream::connect(addr)?)
    }
}

impl Client<UnixStream> {
    /// Connects and handshakes over a Unix-domain socket.
    pub fn connect_unix(path: impl AsRef<Path>) -> Result<Self, ServiceError> {
        Client::handshake(UnixStream::connect(path)?)
    }
}

impl<S: Read + Write> Client<S> {
    /// Performs the `Hello` exchange over an already-open stream.
    pub fn handshake(mut stream: S) -> Result<Self, ServiceError> {
        write_message(&mut stream, &Hello::current())?;
        let hello: Hello = read_message(&mut stream, MAX_FRAME_BYTES)?;
        hello.check()?;
        Ok(Client { stream })
    }

    /// Sends one request and reads one response.
    pub fn request(&mut self, request: &Request) -> Result<Response, ServiceError> {
        write_message(&mut self.stream, request)?;
        Ok(read_message(&mut self.stream, MAX_FRAME_BYTES)?)
    }

    fn round_trip<T>(
        &mut self,
        request: Request,
        extract: impl FnOnce(Response) -> Option<T>,
    ) -> Result<T, ServiceError> {
        match self.request(&request)? {
            Response::Error(e) => Err(e.into()),
            response => extract(response)
                .ok_or_else(|| ServiceError::internal("server sent a mismatched response kind")),
        }
    }

    /// Estimates one `(n, gap)` cell.
    pub fn estimate(&mut self, request: EstimateRequest) -> Result<EstimateResponse, ServiceError> {
        self.round_trip(Request::Estimate(request), |r| match r {
            Response::Estimate(inner) => Some(inner),
            _ => None,
        })
    }

    /// Runs (or re-reads) a threshold search at one `n`.
    pub fn threshold(
        &mut self,
        request: ThresholdRequest,
    ) -> Result<ThresholdResponse, ServiceError> {
        self.round_trip(Request::Threshold(request), |r| match r {
            Response::Threshold(inner) => Some(inner),
            _ => None,
        })
    }

    /// Sweeps a lattice of cells.
    pub fn sweep(&mut self, request: SweepRequest) -> Result<SurfaceResponse, ServiceError> {
        self.round_trip(Request::SweepSurface(request), |r| match r {
            Response::Surface(inner) => Some(inner),
            _ => None,
        })
    }

    /// Reads server status.
    pub fn status(&mut self) -> Result<StatusResponse, ServiceError> {
        self.round_trip(Request::Status, |r| match r {
            Response::Status(inner) => Some(inner),
            _ => None,
        })
    }

    /// Reads cache counters.
    pub fn cache_stats(&mut self) -> Result<CacheStatsResponse, ServiceError> {
        self.round_trip(Request::CacheStats, |r| match r {
            Response::CacheStats(inner) => Some(inner),
            _ => None,
        })
    }

    /// Asks the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ServiceError> {
        self.round_trip(Request::Shutdown, |r| match r {
            Response::ShuttingDown => Some(()),
            _ => None,
        })
    }
}
