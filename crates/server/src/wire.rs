//! Length-prefixed framing over any byte stream.
//!
//! Every message — client↔server and server↔worker alike — travels as one
//! frame:
//!
//! ```text
//! ┌──────────────┬──────────────────┬──────────────┐
//! │ magic (4 B)  │ length (4 B, BE) │ payload      │
//! │ "LVS" 0x01   │ payload bytes    │ JSON message │
//! └──────────────┴──────────────────┴──────────────┘
//! ```
//!
//! The magic doubles as the *wire* version (the trailing byte); the JSON
//! payload carries its own *schema* version through the `Hello` handshake.
//! A reader rejects bad magic, oversized declarations and truncated
//! payloads with typed errors and never panics, so a malformed peer costs
//! one connection, not the server.

use std::io::{Read, Write};

/// Frame magic: `LVS` plus wire-format version 1.
pub const MAGIC: [u8; 4] = [b'L', b'V', b'S', 0x01];

/// The default ceiling on payload size. A threshold surface over thousands
/// of cells serializes to a few hundred kilobytes; 16 MiB is generous
/// headroom while still bounding a hostile length declaration.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Why a frame could not be read or written.
#[derive(Debug)]
pub enum WireError {
    /// The peer closed the stream cleanly between frames.
    Eof,
    /// A read timeout expired between frames (only on streams with a read
    /// timeout set). The stream is intact; the caller may retry.
    Idle,
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The frame did not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The declared payload length exceeds the reader's limit.
    Oversized(u32),
    /// The stream ended inside a declared payload.
    Truncated,
    /// The payload was not a valid message.
    Codec(serde::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Eof => write!(f, "peer closed the connection"),
            WireError::Idle => write!(f, "read timeout expired between frames"),
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::Oversized(len) => write!(f, "declared frame length {len} exceeds the limit"),
            WireError::Truncated => write!(f, "stream ended inside a frame payload"),
            WireError::Codec(e) => write!(f, "malformed payload: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Writes one frame.
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(WireError::Oversized(payload.len() as u32));
    }
    writer.write_all(&MAGIC)?;
    writer.write_all(&(payload.len() as u32).to_be_bytes())?;
    writer.write_all(payload)?;
    writer.flush()?;
    Ok(())
}

/// Reads one frame, enforcing `max_bytes` on the declared payload length.
///
/// A clean close *between* frames reads as [`WireError::Eof`]; a close
/// inside the header or payload reads as [`WireError::Truncated`].
pub fn read_frame<R: Read>(reader: &mut R, max_bytes: usize) -> Result<Vec<u8>, WireError> {
    let mut magic = [0u8; 4];
    read_exact_or(reader, &mut magic, true)?;
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let mut len_bytes = [0u8; 4];
    read_exact_or(reader, &mut len_bytes, false)?;
    let len = u32::from_be_bytes(len_bytes);
    if len as usize > max_bytes {
        return Err(WireError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_or(reader, &mut payload, false)?;
    Ok(payload)
}

/// `read_exact` that distinguishes a clean pre-frame close (`Eof`, when
/// `at_boundary` and no byte has arrived yet) from a mid-frame one
/// (`Truncated`). On streams with a read timeout, an expiry before the
/// frame's first byte reads as `Idle` (retryable); one mid-frame keeps
/// waiting, since aborting there would desynchronise the stream.
fn read_exact_or<R: Read>(
    reader: &mut R,
    buf: &mut [u8],
    at_boundary: bool,
) -> Result<(), WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if at_boundary && filled == 0 {
                    WireError::Eof
                } else {
                    WireError::Truncated
                })
            }
            Ok(read) => filled += read,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if at_boundary && filled == 0 {
                    return Err(WireError::Idle);
                }
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(())
}

/// Serializes a message and writes it as one frame.
pub fn write_message<W: Write, T: serde::Serialize>(
    writer: &mut W,
    message: &T,
) -> Result<(), WireError> {
    write_frame(writer, serde::json::to_string(message).as_bytes())
}

/// Reads one frame and deserializes the message it carries.
pub fn read_message<R: Read, T>(reader: &mut R, max_bytes: usize) -> Result<T, WireError>
where
    T: for<'de> serde::Deserialize<'de>,
{
    let payload = read_frame(reader, max_bytes)?;
    let text = std::str::from_utf8(&payload)
        .map_err(|_| WireError::Codec(serde::Error::custom("payload is not UTF-8")))?;
    serde::json::from_str(text).map_err(WireError::Codec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor, MAX_FRAME_BYTES).unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor, MAX_FRAME_BYTES).unwrap(), b"");
        assert!(matches!(
            read_frame(&mut cursor, MAX_FRAME_BYTES),
            Err(WireError::Eof)
        ));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, b"x").unwrap();
        bytes[0] = b'X';
        assert!(matches!(
            read_frame(&mut Cursor::new(bytes), MAX_FRAME_BYTES),
            Err(WireError::BadMagic(_))
        ));
    }

    #[test]
    fn oversized_declarations_are_rejected_before_allocation() {
        let mut bytes = Vec::from(MAGIC);
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(bytes), MAX_FRAME_BYTES),
            Err(WireError::Oversized(_))
        ));
    }

    #[test]
    fn truncation_inside_header_or_payload_is_distinguished_from_eof() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, b"hello").unwrap();
        for cut in 1..bytes.len() {
            let result = read_frame(&mut Cursor::new(&bytes[..cut]), MAX_FRAME_BYTES);
            assert!(matches!(result, Err(WireError::Truncated)), "cut at {cut}");
        }
    }

    #[test]
    fn messages_round_trip() {
        let mut buf = Vec::new();
        write_message(&mut buf, &vec![1u64, 2, 3]).unwrap();
        let decoded: Vec<u64> = read_message(&mut Cursor::new(buf), MAX_FRAME_BYTES).unwrap();
        assert_eq!(decoded, vec![1, 2, 3]);
    }

    #[test]
    fn garbage_payload_is_a_codec_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"\xff\xfenot json").unwrap();
        let result: Result<Vec<u64>, _> = read_message(&mut Cursor::new(buf), MAX_FRAME_BYTES);
        assert!(matches!(result, Err(WireError::Codec(_))));
    }
}
