//! Poison-tolerant synchronization helpers.
//!
//! Every handler runs under `catch_unwind`, so a panicking request
//! already costs exactly its own connection — but the panic also poisons
//! whatever `Mutex` the thread held, and a bare `.lock().unwrap()` would
//! then propagate the poison to every *later* request, escalating one
//! lost connection into a dead server. These helpers recover the guard
//! instead: the protected state (tally maps, flight bookkeeping, worker
//! handles) is structurally valid at every instant — cells only
//! accumulate by whole-number bumps and table entries are inserted or
//! removed atomically — so the data under a poisoned lock is still
//! coherent and the next request can proceed.
//!
//! Lock order: surface -> keys -> queue -> done -> failures -> workers.
//!
//! That is the canonical acquisition order across the server — the
//! service's surface cache, the single-flight key table, then the
//! executor's queue/done/failures trio, then the worker-handle list. No
//! code path today holds one of these while taking another (each guard
//! is a statement-scoped temporary or is dropped before the next
//! acquisition; `flight::Table::acquire` holds `keys` across a condvar
//! wait, which re-acquires the *same* lock, not a second one). The
//! `lock-order` pass in `crates/analyze` checks this statically and
//! quotes the order above in its diagnostics; keep both in sync when
//! adding a lock.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Locks `mutex`, recovering the guard from a poisoned lock.
pub fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Consumes `mutex`, recovering the value from a poisoned lock.
pub fn into_inner<T>(mutex: Mutex<T>) -> T {
    mutex.into_inner().unwrap_or_else(PoisonError::into_inner)
}

/// Waits on `condvar`, recovering the guard from a poisoned lock.
pub fn wait<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn lock_recovers_from_poison() {
        let mutex = Arc::new(Mutex::new(41u64));
        let poisoner = Arc::clone(&mutex);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(mutex.is_poisoned());
        let mut guard = lock(&mutex);
        *guard += 1;
        assert_eq!(*guard, 42);
    }

    #[test]
    fn into_inner_recovers_from_poison() {
        let mutex = Arc::new(Mutex::new(7u64));
        let poisoner = Arc::clone(&mutex);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        let mutex = Arc::into_inner(mutex).expect("sole owner");
        assert_eq!(into_inner(mutex), 7);
    }
}
