//! Trial execution strategies behind one [`TrialExecutor`] face.
//!
//! Both executors answer the same question — "of trials `lo..hi` of this
//! cell, which succeeded?" — and both derive trial `i`'s randomness from
//! `seed.rng_for_trial(i)` with `i` the *absolute* trial index, so the
//! answer is a pure function of `(spec, n, gap, seed, lo, hi)`:
//!
//! * [`InProcessExecutor`] runs the range on the embedded
//!   [`ReportStream`](lv_engine::stream::ReportStream) sharded executor;
//! * [`WorkerPool`] chunks the range across spawned worker *processes*
//!   (the `lv-serve --worker` mode of the same binary) speaking the wire
//!   protocol over stdio. A worker that dies mid-range costs nothing but
//!   a retry: its chunk is requeued on the survivors.
//!
//! Because success bits are keyed by absolute trial index, the two are
//! bit-identical at any worker count, thread count or chunking.

use crate::error::ServiceError;
use crate::proto::{Hello, RunOutcome, RunRange};
use crate::spec::ScenarioSpec;
use crate::sync;
use crate::wire::{read_message, write_message, WireError, MAX_FRAME_BYTES};
use lv_engine::stream::{ReportStream, StreamConfig};
use lv_sim::{GapScenario, Seed};
use std::collections::VecDeque;
use std::io::Write;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;

/// Test hook: a worker exits after serving this many ranges. The pool
/// forwards it to the *first* worker only, so survivors always remain to
/// absorb the requeued chunks.
pub const WORKER_EXIT_AFTER_ENV: &str = "LV_WORKER_EXIT_AFTER";

/// Runs trial ranges of a threshold-surface cell.
pub trait TrialExecutor: Send + Sync {
    /// Runs trials `lo..hi`, returning one success bit per trial in trial
    /// order (`result[0]` is trial `lo`).
    fn run_range(
        &self,
        spec: &ScenarioSpec,
        n: u64,
        gap: u64,
        seed: Seed,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<bool>, ServiceError>;

    /// A human-readable description for `Status` responses.
    fn describe(&self) -> String;
}

/// Runs ranges on the embedded streaming executor.
pub struct InProcessExecutor {
    threads: usize,
}

impl InProcessExecutor {
    /// An executor using `threads` worker threads (`0` = all cores).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        InProcessExecutor { threads }
    }
}

impl TrialExecutor for InProcessExecutor {
    fn run_range(
        &self,
        spec: &ScenarioSpec,
        n: u64,
        gap: u64,
        seed: Seed,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<bool>, ServiceError> {
        if hi <= lo {
            return Ok(Vec::new());
        }
        let family = spec.family(n)?;
        if !family.feasible(gap) {
            return Err(ServiceError::new(
                "off-lattice",
                format!("gap {gap} is off the feasible lattice at n = {n}"),
            ));
        }
        let scenario = family.scenario(gap);
        let backend = lv_engine::backend(&spec.backend).ok_or_else(|| {
            ServiceError::new(
                "unknown-backend",
                format!("unknown backend {:?}", spec.backend),
            )
        })?;
        let stream = ReportStream::new(
            &scenario,
            backend,
            StreamConfig::new(hi - lo).with_threads(self.threads),
            std::sync::Arc::new(move |trial| seed.rng_for_trial(lo + trial)),
        );
        let mut bits = Vec::with_capacity((hi - lo) as usize);
        for (trial, report) in stream {
            debug_assert_eq!(trial, bits.len() as u64);
            bits.push(report.plurality_won());
        }
        Ok(bits)
    }

    fn describe(&self) -> String {
        format!("in-process({} threads)", self.threads)
    }
}

/// Fans trial ranges out across spawned worker processes.
pub struct WorkerPool {
    program: PathBuf,
    workers: usize,
    threads_per_worker: usize,
}

impl WorkerPool {
    /// A pool of `workers` processes of `program` (normally the running
    /// `lv-serve` binary, relaunched with `--worker`).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(program: impl Into<PathBuf>, workers: usize) -> Self {
        assert!(workers > 0, "at least one worker is required");
        WorkerPool {
            program: program.into(),
            workers,
            threads_per_worker: 1,
        }
    }

    /// Threads each worker process may use (default 1: the pool already
    /// provides the process-level parallelism).
    pub fn with_threads_per_worker(mut self, threads: usize) -> Self {
        self.threads_per_worker = threads.max(1);
        self
    }

    fn spawn_worker(&self, index: usize) -> Result<WorkerConn, ServiceError> {
        let mut command = Command::new(&self.program);
        command
            .arg("--worker")
            .arg("--threads")
            .arg(self.threads_per_worker.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if index != 0 {
            // The exit-after death hook applies to the first worker only,
            // so the pool always keeps survivors.
            command.env_remove(WORKER_EXIT_AFTER_ENV);
        }
        let mut child = command
            .spawn()
            .map_err(|e| ServiceError::new("worker", format!("spawn failed: {e}")))?;
        let Some(mut stdin) = child.stdin.take() else {
            let _ = child.kill();
            let _ = child.wait();
            return Err(ServiceError::new(
                "worker",
                "spawned worker has no piped stdin",
            ));
        };
        let Some(mut stdout) = child.stdout.take() else {
            let _ = child.kill();
            let _ = child.wait();
            return Err(ServiceError::new(
                "worker",
                "spawned worker has no piped stdout",
            ));
        };
        let handshake = (|| -> Result<(), WireError> {
            write_message(&mut stdin, &Hello::current())?;
            let hello: Hello = read_message(&mut stdout, MAX_FRAME_BYTES)?;
            hello
                .check()
                .map_err(|e| WireError::Codec(serde::Error::custom(e.message())))
        })();
        if let Err(e) = handshake {
            let _ = child.kill();
            let _ = child.wait();
            return Err(ServiceError::new(
                "worker",
                format!("handshake failed: {e}"),
            ));
        }
        Ok(WorkerConn {
            child,
            stdin,
            stdout,
        })
    }
}

struct WorkerConn {
    child: Child,
    stdin: std::process::ChildStdin,
    stdout: std::process::ChildStdout,
}

impl WorkerConn {
    fn run(&mut self, range: &RunRange) -> Result<RunOutcome, WireError> {
        write_message(&mut self.stdin, range)?;
        read_message(&mut self.stdout, MAX_FRAME_BYTES)
    }
}

impl Drop for WorkerConn {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl TrialExecutor for WorkerPool {
    fn run_range(
        &self,
        spec: &ScenarioSpec,
        n: u64,
        gap: u64,
        seed: Seed,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<bool>, ServiceError> {
        if hi <= lo {
            return Ok(Vec::new());
        }
        let total = hi - lo;
        // Around four chunks per worker balances straggler smoothing
        // against per-message overhead; any chunking is bit-identical.
        let chunk = (total.div_ceil(self.workers as u64 * 4)).max(1);
        let queue: Mutex<VecDeque<(u64, u64)>> = Mutex::new(
            (0..total.div_ceil(chunk))
                .map(|i| (lo + i * chunk, (lo + (i + 1) * chunk).min(hi)))
                .collect(),
        );
        let done: Mutex<Vec<(u64, Vec<bool>)>> = Mutex::new(Vec::new());
        let failures: Mutex<Vec<ServiceError>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for index in 0..self.workers {
                let (queue, done, failures) = (&queue, &done, &failures);
                scope.spawn(move || {
                    let mut conn = match self.spawn_worker(index) {
                        Ok(conn) => conn,
                        Err(e) => {
                            sync::lock(failures).push(e);
                            return;
                        }
                    };
                    loop {
                        let range = match sync::lock(queue).pop_front() {
                            Some((chunk_lo, chunk_hi)) => RunRange {
                                spec: spec.clone(),
                                n,
                                gap,
                                seed: seed.value(),
                                lo: chunk_lo,
                                hi: chunk_hi,
                            },
                            None => return,
                        };
                        match conn.run(&range) {
                            Ok(outcome) => match outcome.decode() {
                                Ok(bits) => sync::lock(done).push((range.lo, bits)),
                                Err(e) => {
                                    // The worker reported a semantic error;
                                    // a retry would deterministically fail
                                    // the same way, so surface it.
                                    sync::lock(queue).push_front((range.lo, range.hi));
                                    sync::lock(failures).push(e);
                                    return;
                                }
                            },
                            Err(e) => {
                                // The worker died mid-range: requeue the
                                // chunk for the survivors and bow out.
                                sync::lock(queue).push_back((range.lo, range.hi));
                                sync::lock(failures).push(ServiceError::new("worker", e));
                                return;
                            }
                        }
                    }
                });
            }
        });

        let mut pieces = sync::into_inner(done);
        let collected: u64 = pieces.iter().map(|(_, bits)| bits.len() as u64).sum();
        if collected < total {
            let failures = sync::into_inner(failures);
            let detail = failures
                .first()
                .map(|e| e.to_string())
                .unwrap_or_else(|| "no worker output".to_string());
            return Err(ServiceError::new(
                "worker",
                format!(
                    "{} of {} trials unexecuted after worker failures: {}",
                    total - collected,
                    total,
                    detail
                ),
            ));
        }
        pieces.sort_by_key(|&(chunk_lo, _)| chunk_lo);
        let mut bits = Vec::with_capacity(total as usize);
        for (chunk_lo, piece) in pieces {
            debug_assert_eq!(chunk_lo, lo + bits.len() as u64, "chunk coverage gap");
            bits.extend(piece);
        }
        Ok(bits)
    }

    fn describe(&self) -> String {
        format!(
            "worker-pool({} processes x {} threads)",
            self.workers, self.threads_per_worker
        )
    }
}

/// The worker side of the pool: serves [`RunRange`] requests over stdio
/// until the parent closes the pipe. This is what `lv-serve --worker` runs.
pub fn run_worker(threads: usize) -> Result<(), ServiceError> {
    let exit_after: Option<u64> = std::env::var(WORKER_EXIT_AFTER_ENV)
        .ok()
        .and_then(|v| v.parse().ok());
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut reader = stdin.lock();
    let mut writer = stdout.lock();

    let hello: Hello = read_message(&mut reader, MAX_FRAME_BYTES)?;
    hello.check()?;
    write_message(&mut writer, &Hello::current())?;

    let executor = InProcessExecutor::new(threads);
    let mut served = 0u64;
    loop {
        if exit_after.is_some_and(|limit| served >= limit) {
            // Simulated crash for the death-retry tests: vanish without a
            // goodbye, exactly like a killed process.
            let _ = writer.flush();
            return Ok(());
        }
        let range: RunRange = match read_message(&mut reader, MAX_FRAME_BYTES) {
            Ok(range) => range,
            Err(WireError::Eof) => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        let outcome = match executor.run_range(
            &range.spec,
            range.n,
            range.gap,
            // lv-analyze::allow(rng-discipline, reason = "reconstructs the pool's wire-carried root seed verbatim; the worker derives no seed of its own")
            Seed::new(range.seed),
            range.lo,
            range.hi,
        ) {
            Ok(bits) => RunOutcome::ok(range.lo, &bits),
            Err(e) => RunOutcome::err(range.lo, &e),
        };
        write_message(&mut writer, &outcome)?;
        served += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_lotka::{CompetitionKind, LvModel};

    fn spec() -> ScenarioSpec {
        ScenarioSpec::two_species(
            LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0),
            "jump-chain",
        )
    }

    #[test]
    fn in_process_ranges_compose() {
        let executor = InProcessExecutor::new(2);
        let seed = Seed::new(41);
        let whole = executor.run_range(&spec(), 64, 8, seed, 0, 40).unwrap();
        assert_eq!(whole.len(), 40);
        let front = executor.run_range(&spec(), 64, 8, seed, 0, 17).unwrap();
        let back = executor.run_range(&spec(), 64, 8, seed, 17, 40).unwrap();
        let stitched: Vec<bool> = front.into_iter().chain(back).collect();
        assert_eq!(stitched, whole, "range splits must not change outcomes");
        assert!(executor
            .run_range(&spec(), 64, 8, seed, 5, 5)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn in_process_rejects_off_lattice_and_bad_backends() {
        let executor = InProcessExecutor::new(1);
        let seed = Seed::new(1);
        let err = executor.run_range(&spec(), 64, 7, seed, 0, 4).unwrap_err();
        assert_eq!(err.code(), "off-lattice");
        let mut bad = spec();
        bad.backend = "no-such-backend".to_string();
        let err = executor.run_range(&bad, 64, 8, seed, 0, 4).unwrap_err();
        assert_eq!(err.code(), "unknown-backend");
    }

    #[test]
    fn thread_count_does_not_change_bits() {
        let seed = Seed::new(99);
        let one = InProcessExecutor::new(1)
            .run_range(&spec(), 80, 10, seed, 3, 67)
            .unwrap();
        let four = InProcessExecutor::new(4)
            .run_range(&spec(), 80, 10, seed, 3, 67)
            .unwrap();
        assert_eq!(one, four);
    }
}
