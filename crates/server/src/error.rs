//! The one error type of the serving layer.

use crate::wire::WireError;
use std::fmt;

/// A service-level failure: a short machine-readable code plus a message.
///
/// Codes travel on the wire in error responses, so clients can branch
/// without parsing prose: `bad-request`, `unknown-backend`, `off-lattice`,
/// `version-mismatch`, `codec`, `io`, `worker`, `internal`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError {
    code: String,
    message: String,
}

impl ServiceError {
    /// An error with an explicit code.
    pub fn new(code: &str, message: impl fmt::Display) -> Self {
        ServiceError {
            code: code.to_string(),
            message: message.to_string(),
        }
    }

    /// A `bad-request` error.
    pub fn bad_request(message: impl fmt::Display) -> Self {
        ServiceError::new("bad-request", message)
    }

    /// An `internal` error.
    pub fn internal(message: impl fmt::Display) -> Self {
        ServiceError::new("internal", message)
    }

    /// The machine-readable code.
    pub fn code(&self) -> &str {
        &self.code
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)
    }
}

impl std::error::Error for ServiceError {}

impl From<WireError> for ServiceError {
    fn from(e: WireError) -> Self {
        let code = match &e {
            WireError::Codec(_) => "codec",
            _ => "io",
        };
        ServiceError::new(code, e)
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::new("io", e)
    }
}
