//! The threshold-surface memo: `(fingerprint, n, gap) → (successes, trials)`
//! Wilson posteriors.
//!
//! Cells only ever *accumulate* — a refresh appends trials to the existing
//! RNG stream (the executor resumes at trial index `trials`), never
//! restarts it — so the posterior at any moment is exactly what a single
//! uninterrupted run of `trials` trials would have produced. Off-lattice
//! queries are answered by bilinear interpolation between probed lattice
//! cells with honestly widened intervals. The whole surface serializes to
//! a JSON snapshot for `--cache-snapshot` warm starts.

use crate::spec::ScenarioSpec;
use lv_engine::wilson;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One cell's accumulated tally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CellStats {
    /// Trials in which the initial leader won.
    pub successes: u64,
    /// Total trials banked.
    pub trials: u64,
}

impl CellStats {
    /// The point estimate (½ over the empty cell).
    pub fn point(&self) -> f64 {
        if self.trials == 0 {
            0.5
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// The Wilson 95% half-width (`∞` over the empty cell).
    pub fn half_width(&self, z: f64) -> f64 {
        wilson::half_width(self.successes, self.trials, z)
    }
}

/// All cells sharing one model fingerprint.
#[derive(Debug, Clone)]
struct SurfaceEntry {
    spec: ScenarioSpec,
    cells: BTreeMap<(u64, u64), CellStats>,
}

/// An off-lattice answer interpolated from probed neighbours.
#[derive(Debug, Clone, PartialEq)]
pub struct Interpolated {
    /// Bilinearly interpolated point estimate.
    pub point: f64,
    /// Honest widened half-width: the widest corner interval plus half the
    /// spread of the corner point estimates.
    pub half_width: f64,
    /// The `(n, gap)` lattice cells the answer was interpolated from.
    pub corners: Vec<(u64, u64)>,
}

/// The memoized threshold surface.
///
/// Entries live in a `BTreeMap` so iteration — and with it snapshot
/// serialization — is ordered by fingerprint: two snapshots of surfaces
/// holding the same cells are byte-identical regardless of the order the
/// cells were banked in.
#[derive(Debug, Default)]
pub struct ThresholdSurface {
    entries: BTreeMap<u64, SurfaceEntry>,
}

/// A serializable snapshot of the whole surface (satellite of the
/// `--cache-snapshot` flag).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurfaceSnapshot {
    /// The writing build's schema version.
    pub schema_version: u32,
    /// One record per fingerprint.
    pub entries: Vec<SnapshotEntry>,
}

/// One fingerprint's worth of snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotEntry {
    /// The fingerprint (hex), for human cross-referencing; restore
    /// recomputes it from `spec` and skips records that disagree.
    pub fingerprint: String,
    /// The scenario specification the cells were measured under.
    pub spec: ScenarioSpec,
    /// The probed cells.
    pub cells: Vec<SnapshotCell>,
}

/// One cell of a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotCell {
    /// Population of the cell.
    pub n: u64,
    /// Gap of the cell.
    pub gap: u64,
    /// Successes banked.
    pub successes: u64,
    /// Trials banked.
    pub trials: u64,
}

impl ThresholdSurface {
    /// An empty surface.
    pub fn new() -> Self {
        ThresholdSurface::default()
    }

    /// The tally of one cell, if probed.
    pub fn cell(&self, fingerprint: u64, n: u64, gap: u64) -> Option<CellStats> {
        self.entries
            .get(&fingerprint)?
            .cells
            .get(&(n, gap))
            .copied()
    }

    /// Banks `add_successes / add_trials` fresh trials into a cell,
    /// returning the cell's updated tally (so callers need no follow-up
    /// `cell()` lookup that would force them to handle an impossible
    /// `None`).
    pub fn record(
        &mut self,
        fingerprint: u64,
        spec: &ScenarioSpec,
        n: u64,
        gap: u64,
        add_successes: u64,
        add_trials: u64,
    ) -> CellStats {
        let entry = self
            .entries
            .entry(fingerprint)
            .or_insert_with(|| SurfaceEntry {
                spec: spec.clone(),
                cells: BTreeMap::new(),
            });
        let cell = entry.cells.entry((n, gap)).or_default();
        cell.successes += add_successes;
        cell.trials += add_trials;
        *cell
    }

    /// Number of distinct fingerprints.
    pub fn entry_count(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Number of distinct cells across all fingerprints.
    pub fn cell_count(&self) -> u64 {
        self.entries.values().map(|e| e.cells.len() as u64).sum()
    }

    /// Total trials banked across all cells.
    pub fn total_trials(&self) -> u64 {
        self.entries
            .values()
            .flat_map(|e| e.cells.values())
            .map(|c| c.trials)
            .sum()
    }

    /// Interpolates an off-lattice `(n, gap)` from probed neighbours:
    /// linear in `gap` within each bracketing population, then linear in
    /// `n` across them. Returns `None` when the query is not bracketed by
    /// probed cells on every side (the cache never extrapolates).
    pub fn interpolate(&self, fingerprint: u64, n: u64, gap: u64, z: f64) -> Option<Interpolated> {
        let entry = self.entries.get(&fingerprint)?;
        let mut ns: Vec<u64> = entry.cells.keys().map(|&(cn, _)| cn).collect();
        ns.dedup();
        let n_lo = ns.iter().copied().filter(|&cn| cn <= n).max()?;
        let n_hi = ns.iter().copied().filter(|&cn| cn >= n).min()?;

        let line_lo = gap_line(entry, n_lo, gap, z)?;
        let line_hi = gap_line(entry, n_hi, gap, z)?;
        let point = if n_hi == n_lo {
            line_lo.point
        } else {
            let u = (n - n_lo) as f64 / (n_hi - n_lo) as f64;
            line_lo.point * (1.0 - u) + line_hi.point * u
        };

        let mut corners = line_lo.corners;
        corners.extend(line_hi.corners);
        corners.dedup();
        let corner_stats: Vec<CellStats> = corners.iter().map(|&key| entry.cells[&key]).collect();
        let widest = corner_stats
            .iter()
            .map(|c| c.half_width(z))
            .fold(0.0f64, f64::max);
        let points: Vec<f64> = corner_stats.iter().map(|c| c.point()).collect();
        let spread = points.iter().copied().fold(f64::MIN, f64::max)
            - points.iter().copied().fold(f64::MAX, f64::min);
        Some(Interpolated {
            point,
            half_width: widest + spread / 2.0,
            corners,
        })
    }

    /// Serializes the whole surface. Entry and cell order both come from
    /// ordered maps, so equal surfaces serialize to equal bytes.
    pub fn snapshot(&self, schema_version: u32) -> SurfaceSnapshot {
        SurfaceSnapshot {
            schema_version,
            entries: self
                .entries
                .iter()
                .map(|(&fp, entry)| SnapshotEntry {
                    fingerprint: format!("{fp:016x}"),
                    spec: entry.spec.clone(),
                    cells: entry
                        .cells
                        .iter()
                        .map(|(&(n, gap), cell)| SnapshotCell {
                            n,
                            gap,
                            successes: cell.successes,
                            trials: cell.trials,
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    /// Rebuilds a surface from a snapshot, recomputing fingerprints from
    /// the stored specs and dropping records whose stored fingerprint
    /// disagrees (a stale or tampered file warms nothing, silently breaking
    /// nothing).
    pub fn restore(snapshot: &SurfaceSnapshot) -> Self {
        let mut surface = ThresholdSurface::new();
        for entry in &snapshot.entries {
            let fingerprint = entry.spec.fingerprint();
            if format!("{fingerprint:016x}") != entry.fingerprint {
                continue;
            }
            for cell in &entry.cells {
                if cell.successes > cell.trials {
                    continue;
                }
                surface.record(
                    fingerprint,
                    &entry.spec,
                    cell.n,
                    cell.gap,
                    cell.successes,
                    cell.trials,
                );
            }
        }
        surface
    }
}

/// Linear interpolation along the gap axis at one probed population.
struct GapLine {
    point: f64,
    corners: Vec<(u64, u64)>,
}

fn gap_line(entry: &SurfaceEntry, n: u64, gap: u64, _z: f64) -> Option<GapLine> {
    let row: Vec<(u64, CellStats)> = entry
        .cells
        .range((n, 0)..=(n, u64::MAX))
        .map(|(&(_, g), &cell)| (g, cell))
        .collect();
    if let Some(&(g, _)) = row.iter().find(|&&(g, _)| g == gap) {
        return Some(GapLine {
            point: entry.cells[&(n, g)].point(),
            corners: vec![(n, g)],
        });
    }
    let (g_lo, lo) = row.iter().rfind(|&&(g, _)| g <= gap).copied()?;
    let (g_hi, hi) = row.iter().find(|&&(g, _)| g >= gap).copied()?;
    let w = (gap - g_lo) as f64 / (g_hi - g_lo) as f64;
    Some(GapLine {
        point: lo.point() * (1.0 - w) + hi.point() * w,
        corners: vec![(n, g_lo), (n, g_hi)],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_engine::wilson::Z95;
    use lv_lotka::{CompetitionKind, LvModel};

    fn spec() -> ScenarioSpec {
        ScenarioSpec::two_species(
            LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0),
            "jump-chain",
        )
    }

    #[test]
    fn recording_accumulates() {
        let mut surface = ThresholdSurface::new();
        let fp = spec().fingerprint();
        surface.record(fp, &spec(), 100, 4, 10, 16);
        surface.record(fp, &spec(), 100, 4, 5, 8);
        let cell = surface.cell(fp, 100, 4).unwrap();
        assert_eq!(cell.successes, 15);
        assert_eq!(cell.trials, 24);
        assert_eq!(surface.entry_count(), 1);
        assert_eq!(surface.cell_count(), 1);
        assert_eq!(surface.total_trials(), 24);
        assert!(surface.cell(fp, 100, 6).is_none());
    }

    #[test]
    fn snapshots_round_trip_through_json() {
        let mut surface = ThresholdSurface::new();
        let fp = spec().fingerprint();
        surface.record(fp, &spec(), 100, 4, 10, 16);
        surface.record(fp, &spec(), 200, 8, 30, 32);
        let snapshot = surface.snapshot(1);
        let text = serde::json::to_string(&snapshot);
        let back: SurfaceSnapshot = serde::json::from_str(&text).unwrap();
        assert_eq!(back, snapshot);
        let restored = ThresholdSurface::restore(&back);
        assert_eq!(restored.cell(fp, 100, 4), surface.cell(fp, 100, 4));
        assert_eq!(restored.cell(fp, 200, 8), surface.cell(fp, 200, 8));
        assert_eq!(restored.total_trials(), 48);
    }

    #[test]
    fn snapshot_bytes_are_insertion_order_independent() {
        let spec_a = spec();
        let spec_b = ScenarioSpec::two_species(
            LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0),
            "gillespie-direct",
        );
        let (fp_a, fp_b) = (spec_a.fingerprint(), spec_b.fingerprint());
        let cells: Vec<(u64, &ScenarioSpec, u64, u64, u64, u64)> = vec![
            (fp_a, &spec_a, 100, 4, 10, 16),
            (fp_a, &spec_a, 200, 8, 30, 32),
            (fp_b, &spec_b, 100, 4, 7, 16),
            (fp_b, &spec_b, 400, 2, 1, 4),
        ];
        let mut forward = ThresholdSurface::new();
        for &(fp, spec, n, gap, s, t) in &cells {
            forward.record(fp, spec, n, gap, s, t);
        }
        let mut reverse = ThresholdSurface::new();
        for &(fp, spec, n, gap, s, t) in cells.iter().rev() {
            reverse.record(fp, spec, n, gap, s, t);
        }
        let bytes_forward = serde::json::to_string(&forward.snapshot(1));
        let bytes_reverse = serde::json::to_string(&reverse.snapshot(1));
        assert_eq!(
            bytes_forward, bytes_reverse,
            "snapshot bytes depend on insertion order"
        );
        // And two writes of the *same* surface are byte-identical too.
        assert_eq!(bytes_forward, serde::json::to_string(&forward.snapshot(1)));
    }

    #[test]
    fn record_returns_the_updated_tally() {
        let mut surface = ThresholdSurface::new();
        let fp = spec().fingerprint();
        assert_eq!(
            surface.record(fp, &spec(), 100, 4, 10, 16),
            CellStats {
                successes: 10,
                trials: 16
            }
        );
        assert_eq!(
            surface.record(fp, &spec(), 100, 4, 5, 8),
            CellStats {
                successes: 15,
                trials: 24
            }
        );
    }

    #[test]
    fn restore_drops_mismatched_fingerprints_and_corrupt_cells() {
        let mut surface = ThresholdSurface::new();
        let fp = spec().fingerprint();
        surface.record(fp, &spec(), 100, 4, 10, 16);
        let mut snapshot = surface.snapshot(1);
        snapshot.entries[0].cells.push(SnapshotCell {
            n: 50,
            gap: 2,
            successes: 99,
            trials: 1,
        });
        let restored = ThresholdSurface::restore(&snapshot);
        assert!(restored.cell(fp, 50, 2).is_none(), "corrupt cell kept");
        snapshot.entries[0].fingerprint = "feedfeedfeedfeed".to_string();
        assert_eq!(ThresholdSurface::restore(&snapshot).entry_count(), 0);
    }

    #[test]
    fn interpolation_brackets_and_widens() {
        let mut surface = ThresholdSurface::new();
        let fp = spec().fingerprint();
        // Corners: success probabilities 0.2 (gap 4) and 0.8 (gap 8) at
        // both n = 100 and n = 200, from 1000 trials each.
        for n in [100u64, 200] {
            surface.record(fp, &spec(), n, 4, 200, 1000);
            surface.record(fp, &spec(), n, 8, 800, 1000);
        }
        let mid = surface.interpolate(fp, 150, 6, Z95).unwrap();
        assert!((mid.point - 0.5).abs() < 1e-12, "point {}", mid.point);
        assert_eq!(mid.corners.len(), 4);
        let corner_hw = wilson::half_width(200, 1000, Z95);
        assert!(
            mid.half_width >= corner_hw + 0.29,
            "interval must be widened by the corner spread, got {}",
            mid.half_width
        );
        // Exact-cell queries interpolate to the cell itself.
        let exact = surface.interpolate(fp, 100, 4, Z95).unwrap();
        assert!((exact.point - 0.2).abs() < 1e-12);
        assert_eq!(exact.corners, vec![(100, 4)]);
        // Unbracketed queries refuse instead of extrapolating.
        assert!(surface.interpolate(fp, 300, 6, Z95).is_none());
        assert!(surface.interpolate(fp, 150, 2, Z95).is_none());
        assert!(surface.interpolate(0xdead, 150, 6, Z95).is_none());
    }
}
