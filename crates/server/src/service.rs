//! The memoized threshold-surface service.
//!
//! [`ThresholdService`] owns the [`ThresholdSurface`] cache, a
//! [`SingleFlight`] table and a [`TrialExecutor`], and answers the protocol
//! requests with three invariants:
//!
//! * **cache monotonicity** — a cell's Wilson half-width never widens:
//!   refinement appends trials until the request's target is met, and a
//!   budget-exhausted refinement keeps appending small batches while the
//!   interval is wider than it was at entry;
//! * **incremental spending** — a refinement resumes the cell's RNG stream
//!   at trial index `trials` (never restarts it), so a tighter re-query
//!   spends exactly the difference and repeated queries spend nothing;
//! * **coalescing** — concurrent identical requests serialize behind one
//!   leader per cell; followers wake to a tight cache and spend nothing.
//!
//! Cell randomness is derived from the *spec fingerprint* alone
//! (`Seed(fingerprint).derive("surface").derive("n=…").derive("gap=…")`),
//! never from request parameters, so every request type shares one
//! posterior per cell and results are reproducible across server restarts.

use crate::cache::{CellStats, SurfaceSnapshot, ThresholdSurface};
use crate::error::ServiceError;
use crate::exec::TrialExecutor;
use crate::flight::SingleFlight;
use crate::proto::{
    CacheStatsResponse, EstimateRequest, EstimateResponse, Request, Response, StatusResponse,
    SurfaceCell, SurfaceResponse, SweepRequest, ThresholdRequest, ThresholdResponse,
    SCHEMA_VERSION,
};
use crate::spec::ScenarioSpec;
use crate::sync;
use lv_engine::wilson;
use lv_sim::{GapProbe, GapScenario, Seed, ThresholdResult};
use std::collections::BTreeMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Tunables of a [`ThresholdService`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Default cap on fresh trials per `Estimate`/sweep cell when the
    /// request leaves `max_trials` at 0.
    pub default_max_trials: u64,
    /// Default per-probe trial budget for `Threshold` searches when the
    /// request leaves `trials` at 0.
    pub probe_trials: u64,
    /// The Wilson critical value (default [`wilson::Z95`]).
    pub z: f64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            default_max_trials: 65_536,
            probe_trials: 400,
            z: wilson::Z95,
        }
    }
}

/// The service: cache + single-flight + executor.
pub struct ThresholdService {
    config: ServiceConfig,
    executor: Box<dyn TrialExecutor>,
    surface: Mutex<ThresholdSurface>,
    flight: SingleFlight,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    interpolated: AtomicU64,
    served: AtomicU64,
}

/// A refined cell plus the accounting of how it was obtained.
struct Refined {
    stats: CellStats,
    fresh: u64,
    coalesced: bool,
}

impl ThresholdService {
    /// A service over the given executor.
    pub fn new(executor: Box<dyn TrialExecutor>, config: ServiceConfig) -> Self {
        ThresholdService {
            config,
            executor,
            surface: Mutex::new(ThresholdSurface::new()),
            flight: SingleFlight::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            interpolated: AtomicU64::new(0),
            served: AtomicU64::new(0),
        }
    }

    /// Warm-starts the cache from a snapshot (mismatched records are
    /// dropped by [`ThresholdSurface::restore`]).
    pub fn with_snapshot(self, snapshot: &SurfaceSnapshot) -> Self {
        *sync::lock(&self.surface) = ThresholdSurface::restore(snapshot);
        self
    }

    /// Serializes the current cache.
    pub fn snapshot(&self) -> SurfaceSnapshot {
        sync::lock(&self.surface).snapshot(SCHEMA_VERSION)
    }

    /// The deterministic RNG root of one cell, derived from the spec
    /// fingerprint only — request parameters never shift trial streams.
    fn cell_seed(fingerprint: u64, n: u64, gap: u64) -> Seed {
        // lv-analyze::allow(rng-discipline, reason = "the canonical cell-seed derivation site: the root seed is the spec fingerprint itself, so every request type and server restart shares one stream per cell")
        Seed::new(fingerprint)
            .derive("surface")
            .derive(&format!("n={n}"))
            .derive(&format!("gap={gap}"))
    }

    /// The single-flight key of one cell.
    fn cell_key(fingerprint: u64, n: u64, gap: u64) -> u64 {
        let mut hash = fingerprint ^ 0xcbf2_9ce4_8422_2325;
        for word in [n, gap] {
            for byte in word.to_be_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        hash
    }

    fn cell(&self, fingerprint: u64, n: u64, gap: u64) -> CellStats {
        sync::lock(&self.surface)
            .cell(fingerprint, n, gap)
            .unwrap_or_default()
    }

    /// Runs `batch` fresh trials of a cell, appending to its RNG stream at
    /// the current trial count, and banks the outcome.
    fn extend_cell(
        &self,
        spec: &ScenarioSpec,
        fingerprint: u64,
        n: u64,
        gap: u64,
        batch: u64,
    ) -> Result<CellStats, ServiceError> {
        let stats = self.cell(fingerprint, n, gap);
        let seed = Self::cell_seed(fingerprint, n, gap);
        let bits =
            self.executor
                .run_range(spec, n, gap, seed, stats.trials, stats.trials + batch)?;
        let successes = bits.iter().filter(|&&b| b).count() as u64;
        Ok(sync::lock(&self.surface).record(fingerprint, spec, n, gap, successes, batch))
    }

    /// The next batch size toward a target half-width: the Wald sample-size
    /// estimate for the current point, clamped to sane increments and to
    /// the remaining budget.
    fn plan_batch(&self, stats: CellStats, target_ci: f64, remaining: u64) -> u64 {
        let p = stats.point();
        let variance = (p * (1.0 - p)).max(1.0 / (stats.trials + 4) as f64);
        let needed =
            (self.config.z * self.config.z * variance / (target_ci * target_ci)).ceil() as u64 + 1;
        needed
            .saturating_sub(stats.trials)
            .clamp(32, 8_192)
            .min(remaining.max(1))
    }

    /// Refines one feasible cell until its Wilson half-width reaches
    /// `target_ci`, spending at most `max_trials` fresh trials — except
    /// that a budget-exhausted refinement keeps appending small batches
    /// while the interval is wider than it was at entry, so the cache
    /// never widens.
    fn refine_cell(
        &self,
        spec: &ScenarioSpec,
        fingerprint: u64,
        n: u64,
        gap: u64,
        target_ci: f64,
        max_trials: u64,
    ) -> Result<Refined, ServiceError> {
        let guard = self.flight.acquire(Self::cell_key(fingerprint, n, gap));
        let entry_hw = self.cell(fingerprint, n, gap).half_width(self.config.z);
        let mut fresh = 0u64;
        loop {
            let stats = self.cell(fingerprint, n, gap);
            let hw = stats.half_width(self.config.z);
            if hw <= target_ci {
                return Ok(Refined {
                    stats,
                    fresh,
                    coalesced: guard.waited(),
                });
            }
            let batch = if fresh >= max_trials {
                if hw <= entry_hw {
                    // Budget spent and no wider than at entry: the honest
                    // best-effort answer.
                    return Ok(Refined {
                        stats,
                        fresh,
                        coalesced: guard.waited(),
                    });
                }
                // Mid-refinement the interval can sit wider than at entry
                // (the point estimate moved toward ½ before the count
                // caught up); keep appending minimal batches until cache
                // monotonicity is restored.
                32
            } else {
                self.plan_batch(stats, target_ci, max_trials - fresh)
            };
            self.extend_cell(spec, fingerprint, n, gap, batch)?;
            fresh += batch;
        }
    }

    /// Refines one cell until its Wilson interval clears the decision
    /// boundary `target` (or the probe budget runs out), mirroring the
    /// adaptive probes of [`lv_sim::ThresholdSearch`] cell by cell.
    fn probe_cell(
        &self,
        spec: &ScenarioSpec,
        fingerprint: u64,
        n: u64,
        gap: u64,
        target: f64,
        budget: u64,
    ) -> Result<(CellStats, u64), ServiceError> {
        let _guard = self.flight.acquire(Self::cell_key(fingerprint, n, gap));
        let min_trials = 8.min(budget);
        let mut fresh = 0u64;
        loop {
            let stats = self.cell(fingerprint, n, gap);
            let decided = stats.trials >= min_trials
                && wilson::decides(stats.successes, stats.trials, self.config.z, target);
            if decided || stats.trials >= budget {
                return Ok((stats, fresh));
            }
            // Geometric batches emulate the streaming early-stopper: cheap
            // first looks far from the boundary, budget-bounded near it.
            let batch = (stats.trials / 2)
                .clamp(min_trials.max(8), 1_024)
                .min(budget - stats.trials);
            self.extend_cell(spec, fingerprint, n, gap, batch)?;
            fresh += batch;
        }
    }

    /// Answers an `Estimate`.
    pub fn estimate(&self, request: &EstimateRequest) -> Result<EstimateResponse, ServiceError> {
        if !(request.target_ci > 0.0 && request.target_ci.is_finite()) {
            return Err(ServiceError::bad_request(format!(
                "target_ci must be a positive finite number, got {}",
                request.target_ci
            )));
        }
        let spec = request.spec.clone().validated()?;
        let family = spec.family(request.n)?;
        let fingerprint = spec.fingerprint();

        if !family.feasible(request.gap) {
            // Off the lattice: answer by interpolation from cached
            // neighbours, or explain what would be feasible.
            let interpolated = sync::lock(&self.surface).interpolate(
                fingerprint,
                request.n,
                request.gap,
                self.config.z,
            );
            return match interpolated {
                Some(answer) => {
                    self.interpolated.fetch_add(1, Ordering::Relaxed);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Ok(EstimateResponse {
                        fingerprint: spec.fingerprint_hex(),
                        n: request.n,
                        gap: request.gap,
                        successes: 0,
                        trials: 0,
                        point: answer.point,
                        ci_low: (answer.point - answer.half_width).max(0.0),
                        ci_high: (answer.point + answer.half_width).min(1.0),
                        half_width: answer.half_width,
                        cache_hit: true,
                        fresh_trials: 0,
                        interpolated: true,
                        coalesced: false,
                    })
                }
                None => Err(ServiceError::new(
                    "off-lattice",
                    format!(
                        "gap {} is off the feasible lattice at n = {} (nearest feasible: {}) \
                         and no cached neighbours bracket it for interpolation",
                        request.gap,
                        request.n,
                        family.snap(request.gap)
                    ),
                )),
            };
        }

        let max_trials = if request.max_trials == 0 {
            self.config.default_max_trials
        } else {
            request.max_trials
        };
        let refined = self.refine_cell(
            &spec,
            fingerprint,
            request.n,
            request.gap,
            request.target_ci,
            max_trials,
        )?;
        if refined.coalesced {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
        }
        if refined.fresh == 0 {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let stats = refined.stats;
        let (ci_low, ci_high) = wilson::interval(stats.successes, stats.trials, self.config.z);
        Ok(EstimateResponse {
            fingerprint: spec.fingerprint_hex(),
            n: request.n,
            gap: request.gap,
            successes: stats.successes,
            trials: stats.trials,
            point: stats.point(),
            ci_low,
            ci_high,
            half_width: stats.half_width(self.config.z),
            cache_hit: refined.fresh == 0,
            fresh_trials: refined.fresh,
            interpolated: false,
            coalesced: refined.coalesced,
        })
    }

    /// Answers a `Threshold`: the doubling-then-binary lattice search of
    /// [`lv_sim::ThresholdSearch::find_gap`], with every probe memoized as
    /// a surface cell — a repeated search re-reads its probes from cache.
    pub fn threshold(&self, request: &ThresholdRequest) -> Result<ThresholdResponse, ServiceError> {
        let spec = request.spec.clone().validated()?;
        let family = spec.family(request.n)?;
        let fingerprint = spec.fingerprint();
        let budget = if request.trials == 0 {
            self.config.probe_trials
        } else {
            request.trials
        };
        if budget <= 3 {
            return Err(ServiceError::bad_request(format!(
                "a threshold search needs more than 3 trials per probe, got {budget}"
            )));
        }
        let n = request.n;
        let target = if request.target == 0.0 {
            (1.0 - 1.0 / n as f64).min(1.0 - 3.0 / budget as f64)
        } else if request.target > 0.0 && request.target < 1.0 {
            request.target
        } else {
            return Err(ServiceError::bad_request(format!(
                "target must lie in (0, 1), got {}",
                request.target
            )));
        };

        let (min_gap, stride, max_gap) = (family.min_gap(), family.stride(), family.max_gap());
        let max_index = (max_gap - min_gap) / stride;
        let gap_at = |index: u64| min_gap + index * stride;
        let mut fresh_total = 0u64;
        let mut probes: Vec<GapProbe> = Vec::new();
        let run = |index: u64,
                   probes: &mut Vec<GapProbe>,
                   fresh_total: &mut u64|
         -> Result<GapProbe, ServiceError> {
            let (stats, fresh) =
                self.probe_cell(&spec, fingerprint, n, gap_at(index), target, budget)?;
            *fresh_total += fresh;
            let probe = GapProbe {
                gap: gap_at(index),
                trials: stats.trials,
                successes: stats.successes,
                estimate: stats.point(),
                reached_target: stats.point() >= target,
            };
            probes.push(probe);
            Ok(probe)
        };

        let finish = |threshold_index: u64,
                      at: GapProbe,
                      saturated: bool,
                      probes: Vec<GapProbe>,
                      fresh_total: u64| {
            ThresholdResponse {
                fingerprint: spec.fingerprint_hex(),
                result: ThresholdResult {
                    n,
                    species: family.species_count(),
                    backend: spec.backend.clone(),
                    threshold: gap_at(threshold_index),
                    target,
                    success_at_threshold: at.estimate,
                    saturated,
                    probes,
                },
                fresh_trials: fresh_total,
            }
        };

        let mut upper = 0u64;
        let mut at_upper = run(0, &mut probes, &mut fresh_total)?;
        if !at_upper.reached_target {
            let mut lower;
            loop {
                lower = upper;
                if upper == max_index {
                    let response = finish(max_index, at_upper, true, probes, fresh_total);
                    self.count_request(fresh_total);
                    return Ok(response);
                }
                upper = if upper == 0 {
                    1
                } else {
                    (upper * 2).min(max_index)
                };
                at_upper = run(upper, &mut probes, &mut fresh_total)?;
                if at_upper.reached_target {
                    break;
                }
            }
            while upper - lower > 1 {
                let mid = lower + (upper - lower) / 2;
                let at_mid = run(mid, &mut probes, &mut fresh_total)?;
                if at_mid.reached_target {
                    upper = mid;
                    at_upper = at_mid;
                } else {
                    lower = mid;
                }
            }
        }
        let response = finish(upper, at_upper, false, probes, fresh_total);
        self.count_request(fresh_total);
        Ok(response)
    }

    /// Answers a `SweepSurface`: every requested `(n, gap)` snapped to the
    /// feasible lattice and refined to the target width, deduplicated.
    pub fn sweep(&self, request: &SweepRequest) -> Result<SurfaceResponse, ServiceError> {
        if !(request.target_ci > 0.0 && request.target_ci.is_finite()) {
            return Err(ServiceError::bad_request(format!(
                "target_ci must be a positive finite number, got {}",
                request.target_ci
            )));
        }
        if request.n_lattice.is_empty() || request.gap_lattice.is_empty() {
            return Err(ServiceError::bad_request(
                "n_lattice and gap_lattice must be non-empty",
            ));
        }
        let spec = request.spec.clone().validated()?;
        let fingerprint = spec.fingerprint();
        // Snap every requested pair; remember which requested gap each
        // distinct cell first answered.
        let mut cells: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        for &n in &request.n_lattice {
            let family = spec.family(n)?;
            for &gap in &request.gap_lattice {
                cells.entry((n, family.snap(gap))).or_insert(gap);
            }
        }
        let mut fresh_total = 0u64;
        let mut rows = Vec::with_capacity(cells.len());
        for (&(n, gap), &requested_gap) in &cells {
            let refined = self.refine_cell(
                &spec,
                fingerprint,
                n,
                gap,
                request.target_ci,
                self.config.default_max_trials,
            )?;
            fresh_total += refined.fresh;
            rows.push(SurfaceCell {
                n,
                gap,
                requested_gap,
                successes: refined.stats.successes,
                trials: refined.stats.trials,
                point: refined.stats.point(),
                half_width: refined.stats.half_width(self.config.z),
            });
        }
        self.count_request(fresh_total);
        Ok(SurfaceResponse {
            fingerprint: spec.fingerprint_hex(),
            cells: rows,
            fresh_trials: fresh_total,
        })
    }

    fn count_request(&self, fresh: u64) {
        if fresh == 0 {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Answers a `Status`.
    pub fn status(&self) -> StatusResponse {
        StatusResponse {
            schema_version: SCHEMA_VERSION,
            executor: self.executor.describe(),
            served: self.served.load(Ordering::Relaxed),
        }
    }

    /// Answers a `CacheStats`.
    pub fn cache_stats(&self) -> CacheStatsResponse {
        let surface = sync::lock(&self.surface);
        CacheStatsResponse {
            entries: surface.entry_count(),
            cells: surface.cell_count(),
            trials: surface.total_trials(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            interpolated: self.interpolated.load(Ordering::Relaxed),
        }
    }

    /// Dispatches one request to one response. Never panics outward: a
    /// panic anywhere in a handler becomes an `internal` error response,
    /// so one poisoned request cannot take the server down.
    pub fn handle(&self, request: &Request) -> Response {
        self.served.fetch_add(1, Ordering::Relaxed);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| match request {
            Request::Estimate(r) => self.estimate(r).map(Response::Estimate),
            Request::Threshold(r) => self.threshold(r).map(Response::Threshold),
            Request::SweepSurface(r) => self.sweep(r).map(Response::Surface),
            Request::Status => Ok(Response::Status(self.status())),
            Request::CacheStats => Ok(Response::CacheStats(self.cache_stats())),
            Request::Shutdown => Ok(Response::ShuttingDown),
        }));
        match outcome {
            Ok(Ok(response)) => response,
            Ok(Err(e)) => Response::Error(e.into()),
            Err(panic) => {
                let message = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "request handler panicked".to_string());
                Response::Error(ServiceError::internal(message).into())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::InProcessExecutor;
    use lv_lotka::{CompetitionKind, LvModel};
    use std::sync::Arc;
    use std::thread;

    fn spec() -> ScenarioSpec {
        ScenarioSpec::two_species(
            LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0),
            "jump-chain",
        )
    }

    fn estimate_request() -> EstimateRequest {
        EstimateRequest {
            spec: spec(),
            n: 64,
            gap: 8,
            target_ci: 0.2,
            max_trials: 64,
        }
    }

    fn service() -> ThresholdService {
        ThresholdService::new(
            Box::new(InProcessExecutor::new(1)),
            ServiceConfig::default(),
        )
    }

    /// A request that panics mid-handler (poisoning the surface lock in the
    /// worst case) must cost only itself: the next request over the same
    /// service still gets a real answer, not a propagated panic.
    #[test]
    fn poisoned_surface_lock_does_not_kill_the_service() {
        let service = Arc::new(service());
        let poisoner = Arc::clone(&service);
        let _ = thread::spawn(move || {
            let _guard = poisoner.surface.lock().unwrap();
            panic!("poison the surface cache mid-request");
        })
        .join();
        assert!(service.surface.is_poisoned());

        match service.handle(&Request::CacheStats) {
            Response::CacheStats(stats) => assert_eq!(stats.cells, 0),
            other => panic!("expected CacheStats, got {other:?}"),
        }
        match service.handle(&Request::Estimate(estimate_request())) {
            Response::Estimate(estimate) => {
                assert!(estimate.trials > 0, "refinement ran through the poison")
            }
            other => panic!("expected Estimate, got {other:?}"),
        }
        assert!(service.surface.is_poisoned(), "recovery does not unpoison");
        assert!(!service.snapshot().entries.is_empty());
    }

    /// A panic inside a handler becomes an `internal` error response and the
    /// service keeps serving.
    #[test]
    fn handler_panics_become_internal_error_responses() {
        struct PanickingExecutor;
        impl TrialExecutor for PanickingExecutor {
            fn run_range(
                &self,
                _spec: &ScenarioSpec,
                _n: u64,
                _gap: u64,
                _seed: Seed,
                _lo: u64,
                _hi: u64,
            ) -> Result<Vec<bool>, ServiceError> {
                panic!("executor exploded")
            }
            fn describe(&self) -> String {
                "panicking".to_string()
            }
        }
        let service = ThresholdService::new(Box::new(PanickingExecutor), ServiceConfig::default());
        match service.handle(&Request::Estimate(estimate_request())) {
            Response::Error(e) => {
                assert_eq!(e.code, "internal");
                assert!(e.message.contains("executor exploded"));
            }
            other => panic!("expected an error response, got {other:?}"),
        }
        match service.handle(&Request::Status) {
            Response::Status(status) => assert_eq!(status.served, 2),
            other => panic!("expected Status, got {other:?}"),
        }
    }
}
