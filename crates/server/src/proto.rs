//! The versioned request/response vocabulary.
//!
//! Every connection opens with a [`Hello`] exchange negotiating
//! [`SCHEMA_VERSION`]; after that, clients send [`Request`] frames and
//! receive exactly one [`Response`] frame per request. Workers speak the
//! same wire format with the [`RunRange`]/[`RunOutcome`] pair. Enum
//! envelopes serialize as `{"type": ..., "body": ...}` tagged maps; see
//! `PROTOCOL.md` for the full byte-level story.

use crate::error::ServiceError;
use crate::spec::ScenarioSpec;
use lv_sim::ThresholdResult;
use serde::{Deserialize, Serialize, Value};

/// The JSON schema version this build speaks. Bump on any incompatible
/// message change; the `Hello` exchange rejects mismatched peers.
pub const SCHEMA_VERSION: u32 = 1;

/// The handshake message, sent first by each side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hello {
    /// The sender's [`SCHEMA_VERSION`].
    pub schema_version: u32,
}

impl Hello {
    /// A handshake advertising this build's version.
    pub fn current() -> Self {
        Hello {
            schema_version: SCHEMA_VERSION,
        }
    }

    /// Rejects a peer speaking a different schema version.
    pub fn check(&self) -> Result<(), ServiceError> {
        if self.schema_version == SCHEMA_VERSION {
            Ok(())
        } else {
            Err(ServiceError::new(
                "version-mismatch",
                format!(
                    "peer speaks schema version {}, this build speaks {}",
                    self.schema_version, SCHEMA_VERSION
                ),
            ))
        }
    }
}

/// An `Estimate` request: the success probability of one `(n, gap)` cell,
/// to a requested confidence width.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimateRequest {
    /// The scenario specification.
    pub spec: ScenarioSpec,
    /// Total initial population.
    pub n: u64,
    /// Initial gap (two species) or plurality margin (`k` species). Off the
    /// feasible lattice, the server answers by bilinear interpolation from
    /// cached neighbours instead of running trials.
    pub gap: u64,
    /// Target Wilson 95% half-width. The cache serves directly when its
    /// posterior is already at least this tight.
    pub target_ci: f64,
    /// Cap on fresh trials this request may spend (`0` = server default).
    pub max_trials: u64,
}

/// A `Threshold` request: the full adaptive gap search at one `n`,
/// memoized cell by cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdRequest {
    /// The scenario specification.
    pub spec: ScenarioSpec,
    /// Total initial population.
    pub n: u64,
    /// Success-probability target; `0.0` selects the search default
    /// `min(1 − 1/n, 1 − 3/trials)`.
    pub target: f64,
    /// Per-probe trial cap (`0` = server default).
    pub trials: u64,
}

/// A `SweepSurface` request: estimate a whole lattice of cells (requested
/// gaps snap to the nearest feasible lattice point per `n`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRequest {
    /// The scenario specification.
    pub spec: ScenarioSpec,
    /// Population sizes to probe.
    pub n_lattice: Vec<u64>,
    /// Gaps to probe at every `n` (snapped to feasibility).
    pub gap_lattice: Vec<u64>,
    /// Target Wilson 95% half-width per cell.
    pub target_ci: f64,
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Estimate one cell.
    Estimate(EstimateRequest),
    /// Search the threshold at one `n`.
    Threshold(ThresholdRequest),
    /// Estimate a lattice of cells.
    SweepSurface(SweepRequest),
    /// Server liveness/identity.
    Status,
    /// Cache counters.
    CacheStats,
    /// Graceful shutdown: drain in-flight requests, snapshot, exit.
    Shutdown,
}

/// The response to an `Estimate`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimateResponse {
    /// The spec's cache fingerprint (hex).
    pub fingerprint: String,
    /// Population of the answered cell.
    pub n: u64,
    /// Gap of the answered cell.
    pub gap: u64,
    /// Successes accumulated in the cell (0 for interpolated answers).
    pub successes: u64,
    /// Trials accumulated in the cell (0 for interpolated answers).
    pub trials: u64,
    /// Point estimate of the success probability.
    pub point: f64,
    /// Wilson 95% lower bound.
    pub ci_low: f64,
    /// Wilson 95% upper bound.
    pub ci_high: f64,
    /// Wilson 95% half-width (widened for interpolated answers).
    pub half_width: f64,
    /// Whether the answer was served without running any fresh trial.
    pub cache_hit: bool,
    /// Fresh trials this request scheduled (incremental, never a restart).
    pub fresh_trials: u64,
    /// Whether the answer is a bilinear interpolation between lattice cells.
    pub interpolated: bool,
    /// Whether this request waited on an identical in-flight computation.
    pub coalesced: bool,
}

/// The response to a `Threshold`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdResponse {
    /// The spec's cache fingerprint (hex).
    pub fingerprint: String,
    /// The search result, probe log included.
    pub result: ThresholdResult,
    /// Fresh trials this request scheduled across all probes.
    pub fresh_trials: u64,
}

/// One cell of a sweep surface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurfaceCell {
    /// Population of the cell.
    pub n: u64,
    /// The feasible gap actually probed.
    pub gap: u64,
    /// The gap the client asked for (before lattice snapping).
    pub requested_gap: u64,
    /// Successes accumulated in the cell.
    pub successes: u64,
    /// Trials accumulated in the cell.
    pub trials: u64,
    /// Point estimate.
    pub point: f64,
    /// Wilson 95% half-width.
    pub half_width: f64,
}

/// The response to a `SweepSurface`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurfaceResponse {
    /// The spec's cache fingerprint (hex).
    pub fingerprint: String,
    /// One row per distinct probed cell, in `(n, gap)` order.
    pub cells: Vec<SurfaceCell>,
    /// Fresh trials this request scheduled across all cells.
    pub fresh_trials: u64,
}

/// The response to a `Status`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusResponse {
    /// The server's schema version.
    pub schema_version: u32,
    /// Human-readable executor description (threads / worker processes).
    pub executor: String,
    /// Requests served since startup.
    pub served: u64,
}

/// Cache counters (also the `CacheStats` response body).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStatsResponse {
    /// Distinct model fingerprints cached.
    pub entries: u64,
    /// Distinct `(n, gap)` cells cached.
    pub cells: u64,
    /// Total trials banked across all cells.
    pub trials: u64,
    /// Requests answered without fresh trials.
    pub hits: u64,
    /// Requests that scheduled fresh trials.
    pub misses: u64,
    /// Requests that waited on an identical in-flight computation.
    pub coalesced: u64,
    /// Off-lattice requests answered by interpolation.
    pub interpolated: u64,
}

/// An error response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Machine-readable code (see [`ServiceError`]).
    pub code: String,
    /// Human-readable message.
    pub message: String,
}

impl From<ServiceError> for ErrorResponse {
    fn from(e: ServiceError) -> Self {
        ErrorResponse {
            code: e.code().to_string(),
            message: e.message().to_string(),
        }
    }
}

impl From<ErrorResponse> for ServiceError {
    fn from(e: ErrorResponse) -> Self {
        ServiceError::new(&e.code, e.message)
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Estimate`].
    Estimate(EstimateResponse),
    /// Answer to [`Request::Threshold`].
    Threshold(ThresholdResponse),
    /// Answer to [`Request::SweepSurface`].
    Surface(SurfaceResponse),
    /// Answer to [`Request::Status`].
    Status(StatusResponse),
    /// Answer to [`Request::CacheStats`].
    CacheStats(CacheStatsResponse),
    /// Acknowledgement of [`Request::Shutdown`].
    ShuttingDown,
    /// Any failure.
    Error(ErrorResponse),
}

/// A trial-range assignment sent to a worker process: rebuild the scenario
/// from the spec and run trials `[lo, hi)` of the cell's RNG stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRange {
    /// The scenario specification to rebuild.
    pub spec: ScenarioSpec,
    /// Population of the cell.
    pub n: u64,
    /// Gap of the cell.
    pub gap: u64,
    /// Root seed of the cell's RNG stream (trial `i` uses
    /// `Seed::rng_for_trial(i)`).
    pub seed: u64,
    /// First trial index (inclusive).
    pub lo: u64,
    /// Last trial index (exclusive).
    pub hi: u64,
}

/// A worker's answer to a [`RunRange`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Echo of the range start.
    pub lo: u64,
    /// One `'1'`/`'0'` per trial in `[lo, hi)`, in trial order
    /// (`'1'` = the initial leader won).
    pub bits: String,
    /// Set when the worker failed to execute the range.
    pub error: Option<String>,
}

impl RunOutcome {
    /// A successful outcome carrying the range's success bits.
    pub fn ok(lo: u64, bits: &[bool]) -> Self {
        RunOutcome {
            lo,
            bits: bits.iter().map(|&b| if b { '1' } else { '0' }).collect(),
            error: None,
        }
    }

    /// A failed outcome carrying the error's display form.
    pub fn err(lo: u64, error: &ServiceError) -> Self {
        RunOutcome {
            lo,
            bits: String::new(),
            error: Some(error.to_string()),
        }
    }

    /// Decodes the success bits, surfacing a reported worker error.
    pub fn decode(&self) -> Result<Vec<bool>, ServiceError> {
        if let Some(message) = &self.error {
            return Err(ServiceError::new("worker", message));
        }
        self.bits
            .chars()
            .map(|c| match c {
                '1' => Ok(true),
                '0' => Ok(false),
                other => Err(ServiceError::new(
                    "worker",
                    format!("invalid outcome bit {other:?}"),
                )),
            })
            .collect()
    }
}

macro_rules! tagged_enum_serde {
    ($name:ident { $($variant:ident ($inner:ty) => $tag:literal,)* ; $($unit:ident => $unit_tag:literal,)* }) => {
        impl Serialize for $name {
            fn to_value(&self) -> Value {
                let (tag, body) = match self {
                    $($name::$variant(inner) => ($tag, inner.to_value()),)*
                    $($name::$unit => ($unit_tag, Value::Null),)*
                };
                Value::Map(vec![
                    ("type".to_string(), Value::Str(tag.to_string())),
                    ("body".to_string(), body),
                ])
            }
        }

        impl<'de> Deserialize<'de> for $name {
            fn from_value(value: &Value) -> Result<Self, serde::Error> {
                let tag: String = serde::de::field(value, "type")?;
                let body = value.get("body").unwrap_or(&Value::Null);
                match tag.as_str() {
                    $($tag => <$inner>::from_value(body).map($name::$variant),)*
                    $($unit_tag => Ok($name::$unit),)*
                    other => Err(serde::Error::unknown_variant(other)),
                }
            }
        }
    };
}

tagged_enum_serde!(Request {
    Estimate(EstimateRequest) => "estimate",
    Threshold(ThresholdRequest) => "threshold",
    SweepSurface(SweepRequest) => "sweep_surface",
    ;
    Status => "status",
    CacheStats => "cache_stats",
    Shutdown => "shutdown",
});

tagged_enum_serde!(Response {
    Estimate(EstimateResponse) => "estimate",
    Threshold(ThresholdResponse) => "threshold",
    Surface(SurfaceResponse) => "surface",
    Status(StatusResponse) => "status",
    CacheStats(CacheStatsResponse) => "cache_stats",
    Error(ErrorResponse) => "error",
    ;
    ShuttingDown => "shutting_down",
});

#[cfg(test)]
mod tests {
    use super::*;
    use lv_lotka::{CompetitionKind, LvModel};

    fn spec() -> ScenarioSpec {
        ScenarioSpec::two_species(
            LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0),
            "jump-chain",
        )
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Estimate(EstimateRequest {
                spec: spec(),
                n: 200,
                gap: 10,
                target_ci: 0.05,
                max_trials: 0,
            }),
            Request::Threshold(ThresholdRequest {
                spec: spec(),
                n: 100,
                target: 0.0,
                trials: 64,
            }),
            Request::SweepSurface(SweepRequest {
                spec: spec(),
                n_lattice: vec![50, 100],
                gap_lattice: vec![2, 4, 8],
                target_ci: 0.1,
            }),
            Request::Status,
            Request::CacheStats,
            Request::Shutdown,
        ];
        for request in requests {
            let text = serde::json::to_string(&request);
            let back: Request = serde::json::from_str(&text).unwrap();
            assert_eq!(back, request, "{text}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::Estimate(EstimateResponse {
                fingerprint: "00ff".to_string(),
                n: 100,
                gap: 4,
                successes: 90,
                trials: 100,
                point: 0.9,
                ci_low: 0.82,
                ci_high: 0.95,
                half_width: 0.06,
                cache_hit: true,
                fresh_trials: 0,
                interpolated: false,
                coalesced: false,
            }),
            Response::Status(StatusResponse {
                schema_version: SCHEMA_VERSION,
                executor: "in-process".to_string(),
                served: 3,
            }),
            Response::ShuttingDown,
            Response::Error(ErrorResponse {
                code: "bad-request".to_string(),
                message: "nope".to_string(),
            }),
        ];
        for response in responses {
            let text = serde::json::to_string(&response);
            let back: Response = serde::json::from_str(&text).unwrap();
            assert_eq!(back, response, "{text}");
        }
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let result: Result<Request, _> =
            serde::json::from_str(r#"{"type":"frobnicate","body":null}"#);
        assert!(result.is_err());
    }

    #[test]
    fn worker_messages_round_trip() {
        let run = RunRange {
            spec: spec(),
            n: 64,
            gap: 4,
            seed: 1234,
            lo: 10,
            hi: 20,
        };
        let text = serde::json::to_string(&run);
        assert_eq!(serde::json::from_str::<RunRange>(&text).unwrap(), run);
        let outcome = RunOutcome {
            lo: 10,
            bits: "1011011101".to_string(),
            error: None,
        };
        let text = serde::json::to_string(&outcome);
        assert_eq!(serde::json::from_str::<RunOutcome>(&text).unwrap(), outcome);
    }
}
