//! Canonical scenario specifications and model fingerprints.
//!
//! A [`ScenarioSpec`] is everything a worker needs to rebuild a gap family
//! from scratch: the model (two-species or `k`-species — the distinction is
//! preserved because the jump-chain backend has a specialised two-species
//! fast path with its own RNG consumption pattern), the backend registry
//! name and the per-trial event budget. Its [`fingerprint`] — FNV-1a over
//! the canonical JSON serialization — keys the server's threshold-surface
//! cache, so two requests for the same physics share one posterior.
//!
//! [`fingerprint`]: ScenarioSpec::fingerprint

use crate::error::ServiceError;
use lv_lotka::{LvModel, MultiLvModel};
use lv_sim::{GapScenario, PluralityGap, TwoSpeciesGap};
use serde::{Deserialize, Serialize, Value};

/// The model of a [`ScenarioSpec`]: the paper's two-species system or the
/// general `k`-species one, kept distinct so rebuilt scenarios take the
/// same execution path (and consume the same RNG stream) as local ones.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSpec {
    /// A two-species [`LvModel`].
    Two(LvModel),
    /// A `k`-species [`MultiLvModel`].
    Multi(MultiLvModel),
}

impl ModelSpec {
    /// Number of species.
    pub fn species_count(&self) -> usize {
        match self {
            ModelSpec::Two(_) => 2,
            ModelSpec::Multi(model) => model.species_count(),
        }
    }

    /// Checks the invariants a deserialized model may have bypassed
    /// (constructors assert them; the wire does not).
    pub fn validate(&self) -> Result<(), ServiceError> {
        let valid = match self {
            ModelSpec::Two(model) => model.rates().is_valid(),
            ModelSpec::Multi(model) => {
                let k = model.species_count();
                let finite = |r: f64| r.is_finite() && r >= 0.0;
                k >= 2
                    && (0..k).all(|i| {
                        finite(model.beta(i))
                            && finite(model.delta(i))
                            && finite(model.gamma(i))
                            && (0..k).all(|j| i == j || finite(model.alpha(i, j)))
                            && model.alpha(i, i) == 0.0
                    })
            }
        };
        if valid {
            Ok(())
        } else {
            Err(ServiceError::bad_request(
                "model rates must be finite, non-negative, with a zero attack diagonal",
            ))
        }
    }
}

impl Serialize for ModelSpec {
    fn to_value(&self) -> Value {
        let (tag, body) = match self {
            ModelSpec::Two(model) => ("two", model.to_value()),
            ModelSpec::Multi(model) => ("multi", model.to_value()),
        };
        Value::Map(vec![
            ("kind".to_string(), Value::Str(tag.to_string())),
            ("model".to_string(), body),
        ])
    }
}

impl<'de> Deserialize<'de> for ModelSpec {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let tag: String = serde::de::field(value, "kind")?;
        let body = value
            .get("model")
            .ok_or_else(|| serde::Error::missing_field("model"))?;
        match tag.as_str() {
            "two" => LvModel::from_value(body).map(ModelSpec::Two),
            "multi" => MultiLvModel::from_value(body).map(ModelSpec::Multi),
            other => Err(serde::Error::unknown_variant(other)),
        }
    }
}

/// A canonical, fingerprintable scenario specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// The competitive model.
    pub model: ModelSpec,
    /// Backend registry name (canonical or alias; fingerprints canonicalise
    /// through the registry so aliases share cache entries).
    pub backend: String,
    /// Per-individual event budget (`max_events = n · events_per_individual`);
    /// `0` selects the engine default.
    pub events_per_individual: u64,
}

impl ScenarioSpec {
    /// A spec over the paper's two-species model.
    pub fn two_species(model: LvModel, backend: &str) -> Self {
        ScenarioSpec {
            model: ModelSpec::Two(model),
            backend: backend.to_string(),
            events_per_individual: 0,
        }
    }

    /// A spec over a `k`-species model.
    pub fn multi_species(model: MultiLvModel, backend: &str) -> Self {
        ScenarioSpec {
            model: ModelSpec::Multi(model),
            backend: backend.to_string(),
            events_per_individual: 0,
        }
    }

    /// Replaces the per-individual event budget.
    pub fn with_events_per_individual(mut self, events: u64) -> Self {
        self.events_per_individual = events;
        self
    }

    /// Validates the spec: known backend, supported species count, valid
    /// rates. Returns the spec with the backend name canonicalised.
    pub fn validated(mut self) -> Result<Self, ServiceError> {
        self.model.validate()?;
        let backend = lv_engine::backend(&self.backend).ok_or_else(|| {
            ServiceError::new(
                "unknown-backend",
                format!("unknown backend {:?}", self.backend),
            )
        })?;
        if !backend.supports_species(self.model.species_count()) {
            return Err(ServiceError::bad_request(format!(
                "backend {:?} does not support {}-species scenarios",
                self.backend,
                self.model.species_count()
            )));
        }
        self.backend = backend.name().to_string();
        Ok(self)
    }

    /// The cache fingerprint: FNV-1a 64 over the canonical JSON form.
    ///
    /// Only through [`ScenarioSpec::validated`]-canonicalised specs is the
    /// fingerprint alias-stable.
    pub fn fingerprint(&self) -> u64 {
        let canonical = serde::json::to_string(self);
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in canonical.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// The fingerprint rendered as the wire's fixed-width hex string.
    pub fn fingerprint_hex(&self) -> String {
        format!("{:016x}", self.fingerprint())
    }

    /// Builds the gap family over population `n`.
    pub fn family(&self, n: u64) -> Result<GapFamily, ServiceError> {
        match &self.model {
            ModelSpec::Two(model) => {
                if n < 4 {
                    return Err(ServiceError::bad_request(format!(
                        "two-species thresholds need n >= 4, got {n}"
                    )));
                }
                let mut family = TwoSpeciesGap::new(*model, n);
                if self.events_per_individual > 0 {
                    family = family
                        .with_max_events(lv_engine::majority_budget(n, self.events_per_individual));
                }
                Ok(GapFamily::Two(family))
            }
            ModelSpec::Multi(model) => {
                let k = model.species_count() as u64;
                if n < 2 * k {
                    return Err(ServiceError::bad_request(format!(
                        "{k}-species thresholds need n >= 2k = {}, got {n}",
                        2 * k
                    )));
                }
                let mut family = PluralityGap::new(model.clone(), n);
                if self.events_per_individual > 0 {
                    family = family
                        .with_max_events(lv_engine::majority_budget(n, self.events_per_individual));
                }
                Ok(GapFamily::Multi(family))
            }
        }
    }
}

/// A concrete gap family built from a spec — two-species or plurality,
/// behind one [`GapScenario`] face.
#[derive(Debug, Clone)]
pub enum GapFamily {
    /// The paper's two-species `(a, b)` split.
    Two(TwoSpeciesGap),
    /// The planted-leader plurality split.
    Multi(PluralityGap),
}

impl GapFamily {
    fn inner(&self) -> &dyn GapScenario {
        match self {
            GapFamily::Two(f) => f,
            GapFamily::Multi(f) => f,
        }
    }

    /// Whether `gap` lies on the feasible lattice.
    pub fn feasible(&self, gap: u64) -> bool {
        let (min, max, stride) = (self.min_gap(), self.max_gap(), self.stride());
        gap >= min && gap <= max && (gap - min).is_multiple_of(stride)
    }

    /// The nearest feasible gap to `gap` (rounding half up, clamped to the
    /// lattice range).
    pub fn snap(&self, gap: u64) -> u64 {
        let (min, max, stride) = (self.min_gap(), self.max_gap(), self.stride());
        if gap <= min {
            return min;
        }
        let index = (gap - min + stride / 2) / stride;
        (min + index * stride).min(max)
    }
}

impl GapScenario for GapFamily {
    fn population(&self) -> u64 {
        self.inner().population()
    }

    fn species_count(&self) -> usize {
        self.inner().species_count()
    }

    fn min_gap(&self) -> u64 {
        self.inner().min_gap()
    }

    fn stride(&self) -> u64 {
        self.inner().stride()
    }

    fn max_gap(&self) -> u64 {
        self.inner().max_gap()
    }

    fn scenario(&self, gap: u64) -> lv_engine::Scenario {
        self.inner().scenario(gap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_lotka::CompetitionKind;

    fn sd_model() -> LvModel {
        LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0)
    }

    #[test]
    fn specs_round_trip_through_json() {
        let spec =
            ScenarioSpec::two_species(sd_model(), "jump-chain").with_events_per_individual(50);
        let text = serde::json::to_string(&spec);
        let back: ScenarioSpec = serde::json::from_str(&text).unwrap();
        assert_eq!(back, spec);

        let multi = ScenarioSpec::multi_species(
            MultiLvModel::symmetric(CompetitionKind::NonSelfDestructive, 3, 1.0, 0.5, 2.0),
            "gillespie-direct",
        );
        let text = serde::json::to_string(&multi);
        let back: ScenarioSpec = serde::json::from_str(&text).unwrap();
        assert_eq!(back, multi);
    }

    #[test]
    fn fingerprints_are_stable_and_sensitive() {
        let spec = ScenarioSpec::two_species(sd_model(), "jump-chain");
        assert_eq!(spec.fingerprint(), spec.clone().fingerprint());
        let other_kind = ScenarioSpec::two_species(
            LvModel::neutral(CompetitionKind::NonSelfDestructive, 1.0, 1.0, 1.0),
            "jump-chain",
        );
        assert_ne!(spec.fingerprint(), other_kind.fingerprint());
        let other_backend = ScenarioSpec::two_species(sd_model(), "gillespie-direct");
        assert_ne!(spec.fingerprint(), other_backend.fingerprint());
        assert_eq!(spec.fingerprint_hex().len(), 16);
    }

    #[test]
    fn validation_canonicalises_backend_aliases() {
        let spec = ScenarioSpec::two_species(sd_model(), "jump-chain");
        let alias = ScenarioSpec {
            backend: "jump".to_string(),
            ..spec.clone()
        };
        match alias.clone().validated() {
            // When the registry knows the alias the two specs must collapse
            // to one fingerprint; if not, validation must say so.
            Ok(canonical) => assert_eq!(canonical.fingerprint(), spec.fingerprint()),
            Err(e) => assert_eq!(e.code(), "unknown-backend"),
        }
        assert!(ScenarioSpec::two_species(sd_model(), "no-such-backend")
            .validated()
            .is_err());
    }

    #[test]
    fn family_feasibility_and_snapping() {
        let spec = ScenarioSpec::two_species(sd_model(), "jump-chain");
        let family = spec.family(100).unwrap();
        assert!(family.feasible(2));
        assert!(family.feasible(98));
        assert!(!family.feasible(3));
        assert!(!family.feasible(100));
        assert_eq!(family.snap(3), 4);
        assert_eq!(family.snap(0), 2);
        assert_eq!(family.snap(1_000), 98);
        assert!(spec.family(3).is_err());
    }

    #[test]
    fn invalid_deserialized_models_fail_validation() {
        let spec = ScenarioSpec::two_species(sd_model(), "jump-chain");
        let mut text = serde::json::to_string(&spec);
        text = text.replace("1.0", "-1.0");
        let hostile: ScenarioSpec = serde::json::from_str(&text).unwrap();
        assert!(hostile.validated().is_err());
    }
}
