//! The serving loop: TCP or Unix-socket listener, thread-per-connection,
//! graceful drain on shutdown.
//!
//! Connection lifecycle: the client opens with a `Hello` frame; the server
//! always answers with its own `Hello` (so a mismatched client can read
//! why), rejects mismatched schema versions with an error response, then
//! serves one response per request frame until the client closes. A
//! malformed frame — bad magic, oversized declaration, truncation, broken
//! JSON — costs that connection an error response and a drop; the listener
//! and every other connection keep serving.
//!
//! A `Shutdown` request flips the stop flag: the acceptor stops accepting,
//! in-flight connections drain, and (when configured) the cache is written
//! to the snapshot path for the next warm start.

use crate::error::ServiceError;
use crate::proto::{Hello, Request, Response};
use crate::service::ThresholdService;
use crate::wire::{read_message, write_message, WireError, MAX_FRAME_BYTES};
use std::io::{Read, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Where a server listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindAddr {
    /// A TCP address like `127.0.0.1:7878` (port 0 picks an ephemeral one).
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

/// A bound, not-yet-serving server.
pub struct Server {
    service: Arc<ThresholdService>,
    listener: Listener,
    snapshot_path: Option<PathBuf>,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener (Unix sockets: a stale socket file is removed
    /// first).
    pub fn bind(service: ThresholdService, addr: &BindAddr) -> Result<Self, ServiceError> {
        let listener = match addr {
            BindAddr::Tcp(spec) => {
                let listener = TcpListener::bind(spec)?;
                listener.set_nonblocking(true)?;
                Listener::Tcp(listener)
            }
            BindAddr::Unix(path) => {
                if path.exists() {
                    let _ = std::fs::remove_file(path);
                }
                let listener = UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                Listener::Unix(listener, path.clone())
            }
        };
        Ok(Server {
            service: Arc::new(service),
            listener,
            snapshot_path: None,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// Writes the cache to `path` on graceful shutdown.
    pub fn with_snapshot_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.snapshot_path = Some(path.into());
        self
    }

    /// The bound address, rendered (useful after binding port 0).
    pub fn local_addr(&self) -> String {
        match &self.listener {
            Listener::Tcp(listener) => listener
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_default(),
            Listener::Unix(_, path) => path.display().to_string(),
        }
    }

    /// A handle that flips the server's stop flag from another thread.
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// The shared service (for warm-path testing against the same cache).
    pub fn service(&self) -> Arc<ThresholdService> {
        Arc::clone(&self.service)
    }

    /// Serves until a `Shutdown` request (or the stop handle) flips the
    /// stop flag, then drains in-flight connections and snapshots.
    pub fn serve(self) -> Result<(), ServiceError> {
        let workers: Mutex<Vec<std::thread::JoinHandle<()>>> = Mutex::new(Vec::new());
        loop {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            // Connection reads poll the stop flag between frames, so an
            // idle keep-alive client cannot stall a graceful drain.
            let accepted: Option<Box<dyn Conn>> = match &self.listener {
                Listener::Tcp(listener) => match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        let _ = stream.set_read_timeout(Some(IDLE_POLL));
                        Some(Box::new(stream))
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                    Err(e) if is_transient_accept_error(&e) => None,
                    Err(e) => return Err(e.into()),
                },
                Listener::Unix(listener, _) => match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        let _ = stream.set_read_timeout(Some(IDLE_POLL));
                        Some(Box::new(stream))
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                    Err(e) if is_transient_accept_error(&e) => None,
                    Err(e) => return Err(e.into()),
                },
            };
            match accepted {
                Some(conn) => {
                    let service = Arc::clone(&self.service);
                    let stop = Arc::clone(&self.stop);
                    let handle = std::thread::spawn(move || {
                        serve_connection(conn, &service, &stop);
                    });
                    let mut workers = crate::sync::lock(&workers);
                    workers.push(handle);
                    workers.retain(|h| !h.is_finished());
                }
                None => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        // Drain: every accepted connection finishes its in-flight work.
        for handle in crate::sync::into_inner(workers) {
            let _ = handle.join();
        }
        if let Some(path) = &self.snapshot_path {
            let text = serde::json::to_string(&self.service.snapshot());
            std::fs::write(path, text)?;
        }
        if let Listener::Unix(_, path) = &self.listener {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

/// How often an idle connection wakes to poll the stop flag.
const IDLE_POLL: Duration = Duration::from_millis(50);

/// Accept errors that condemn one pending connection, not the listener.
fn is_transient_accept_error(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::Interrupted
    )
}

/// The read+write face of one accepted connection.
trait Conn: Read + Write + Send {}
impl<T: Read + Write + Send> Conn for T {}

/// Serves one connection to completion. All failure paths degrade to "send
/// an error response if possible, then drop this connection" — never to a
/// panic or a dead server. `Idle` wakeups (the stream's read timeout at a
/// frame boundary) re-check the stop flag, so a client that holds its
/// connection open without sending cannot stall the drain.
fn serve_connection(mut conn: Box<dyn Conn>, service: &ThresholdService, stop: &AtomicBool) {
    // Handshake: read the client's Hello, always answer with ours.
    let hello = loop {
        match read_message::<_, Hello>(&mut conn, MAX_FRAME_BYTES) {
            Ok(hello) => break hello,
            Err(WireError::Idle) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e) => {
                let _ = write_message(&mut conn, &Response::Error(ServiceError::from(e).into()));
                return;
            }
        }
    };
    if write_message(&mut conn, &Hello::current()).is_err() {
        return;
    }
    if let Err(e) = hello.check() {
        let _ = write_message(&mut conn, &Response::Error(e.into()));
        return;
    }

    loop {
        let request: Request = match read_message(&mut conn, MAX_FRAME_BYTES) {
            Ok(request) => request,
            Err(WireError::Eof) => return,
            Err(WireError::Idle) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(e) => {
                // Malformed frame: answer with a typed error, drop the
                // connection, keep the server alive.
                let _ = write_message(&mut conn, &Response::Error(ServiceError::from(e).into()));
                return;
            }
        };
        let shutdown = matches!(request, Request::Shutdown);
        let response = service.handle(&request);
        if write_message(&mut conn, &response).is_err() {
            return;
        }
        if shutdown {
            stop.store(true, Ordering::SeqCst);
            return;
        }
    }
}
