//! Worker-death recovery, isolated in its own test process because the
//! `LV_WORKER_EXIT_AFTER` hook is process-environment state (the pool
//! forwards it to its first worker only).

use lv_lotka::{CompetitionKind, LvModel};
use lv_server::{InProcessExecutor, ScenarioSpec, TrialExecutor, WorkerPool};
use lv_sim::Seed;

const SERVE_BIN: &str = env!("CARGO_BIN_EXE_lv-serve");

fn spec() -> ScenarioSpec {
    ScenarioSpec::two_species(
        LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0),
        "jump-chain",
    )
}

#[test]
fn worker_death_is_retried_on_survivors() {
    // The hook makes the pool's first worker exit after one served range;
    // its remaining chunks must be requeued on the second worker and the
    // result must stay bit-identical to in-process execution.
    std::env::set_var("LV_WORKER_EXIT_AFTER", "1");
    let pool = WorkerPool::new(SERVE_BIN, 2);
    let bits = pool
        .run_range(&spec(), 96, 8, Seed::new(2024), 0, 120)
        .unwrap();
    let reference = InProcessExecutor::new(1)
        .run_range(&spec(), 96, 8, Seed::new(2024), 0, 120)
        .unwrap();
    assert_eq!(bits, reference, "death-retry changed the outcome");
}
