//! The cache contract of the threshold-surface service:
//!
//! * a repeated identical `Estimate` is a pure cache hit (zero fresh
//!   trials, identical posterior);
//! * a tighter re-query *extends* the cell's RNG stream — fresh trials are
//!   exactly the trial-count difference, and the refined posterior is
//!   bit-identical to one uninterrupted run of the same length;
//! * concurrent identical requests coalesce: N threads spend the fresh
//!   trials of exactly one;
//! * the served half-width never widens across requests, whatever budgets
//!   the requests impose (the property test);
//! * a snapshot warm-starts a new service into pure hits;
//! * off-lattice queries interpolate honestly or refuse.

use lv_lotka::{CompetitionKind, LvModel};
use lv_server::{
    EstimateRequest, InProcessExecutor, ScenarioSpec, ServiceConfig, SurfaceSnapshot, SweepRequest,
    ThresholdRequest, ThresholdService, TrialExecutor,
};
use lv_server::{Request, Response};
use lv_sim::Seed;
use proptest::prelude::*;
use std::sync::Arc;

fn spec() -> ScenarioSpec {
    ScenarioSpec::two_species(
        LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0),
        "jump-chain",
    )
}

fn service() -> ThresholdService {
    ThresholdService::new(
        Box::new(InProcessExecutor::new(2)),
        ServiceConfig::default(),
    )
}

fn estimate(n: u64, gap: u64, target_ci: f64, max_trials: u64) -> EstimateRequest {
    EstimateRequest {
        spec: spec(),
        n,
        gap,
        target_ci,
        max_trials,
    }
}

#[test]
fn repeated_estimates_are_pure_cache_hits() {
    let service = service();
    let first = service.estimate(&estimate(128, 8, 0.08, 0)).unwrap();
    assert!(!first.cache_hit);
    assert!(first.fresh_trials > 0);
    assert!(first.half_width <= 0.08);
    assert_eq!(
        first.trials, first.fresh_trials,
        "cold cell: all trials fresh"
    );

    let second = service.estimate(&estimate(128, 8, 0.08, 0)).unwrap();
    assert!(second.cache_hit, "identical re-query must hit the cache");
    assert_eq!(
        second.fresh_trials, 0,
        "a cache hit spends zero fresh trials"
    );
    assert_eq!(second.successes, first.successes);
    assert_eq!(second.trials, first.trials);
    assert_eq!(second.point, first.point);
    assert_eq!(second.half_width, first.half_width);

    let stats = service.cache_stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.cells, 1);
}

#[test]
fn tighter_requeries_spend_only_incremental_trials() {
    // Gap 2 at n = 128 sits near ρ ≈ ½, where tightening the interval
    // genuinely requires more trials (an extreme-ρ cell can overshoot a
    // tighter target in the first planned batch).
    let service = service();
    let loose = service.estimate(&estimate(128, 2, 0.10, 0)).unwrap();
    let tight = service.estimate(&estimate(128, 2, 0.04, 0)).unwrap();
    assert!(!tight.cache_hit);
    assert!(tight.trials > loose.trials);
    assert_eq!(
        tight.fresh_trials,
        tight.trials - loose.trials,
        "refinement must spend exactly the trial-count difference"
    );
    assert!(tight.half_width <= 0.04);

    // The extended posterior is bit-identical to one uninterrupted run of
    // the same length over the cell's RNG stream: the cache resumed the
    // stream, it did not restart it.
    let canonical = spec().validated().unwrap();
    let seed = Seed::new(canonical.fingerprint())
        .derive("surface")
        .derive("n=128")
        .derive("gap=2");
    let bits = InProcessExecutor::new(1)
        .run_range(&canonical, 128, 2, seed, 0, tight.trials)
        .unwrap();
    let successes = bits.iter().filter(|&&b| b).count() as u64;
    assert_eq!(
        tight.successes, successes,
        "refined cell must equal an uninterrupted run of equal length"
    );
}

#[test]
fn concurrent_identical_estimates_spend_the_trials_of_one() {
    let shared = Arc::new(service());
    let request = estimate(100, 6, 0.06, 0);
    let responses: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let request = request.clone();
                scope.spawn(move || shared.estimate(&request).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Control: the same request against a fresh service.
    let control = service().estimate(&request).unwrap();
    let total_fresh: u64 = responses.iter().map(|r| r.fresh_trials).sum();
    assert_eq!(
        total_fresh, control.fresh_trials,
        "8 concurrent identical requests must spend the trials of exactly one"
    );
    assert_eq!(
        responses.iter().filter(|r| r.fresh_trials > 0).count(),
        1,
        "exactly one request does the work"
    );
    for response in &responses {
        assert_eq!(response.successes, control.successes);
        assert_eq!(response.trials, control.trials);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cache monotonicity: across any sequence of requests with arbitrary
    /// targets and (possibly starving) budgets, the served half-width
    /// never widens.
    #[test]
    fn served_half_width_never_widens(
        targets in proptest::collection::vec((1u32..30, 1u64..400), 2..6),
    ) {
        let service = service();
        let mut last_hw = f64::INFINITY;
        for (milli, max_trials) in targets {
            let target_ci = milli as f64 / 100.0;
            let response = service
                .estimate(&estimate(64, 4, target_ci, max_trials))
                .unwrap();
            prop_assert!(
                response.half_width <= last_hw + 1e-12,
                "half-width widened: {} after {}",
                response.half_width,
                last_hw
            );
            last_hw = response.half_width;
        }
    }
}

#[test]
fn snapshots_warm_start_into_pure_hits() {
    let cold = service();
    let first = cold.estimate(&estimate(96, 4, 0.07, 0)).unwrap();
    assert!(first.fresh_trials > 0);

    // Round-trip the snapshot through its JSON form, as `--cache-snapshot`
    // does across server restarts.
    let text = serde::json::to_string(&cold.snapshot());
    let snapshot: SurfaceSnapshot = serde::json::from_str(&text).unwrap();
    let warm = service().with_snapshot(&snapshot);
    let replay = warm.estimate(&estimate(96, 4, 0.07, 0)).unwrap();
    assert!(replay.cache_hit, "warm-started cache must serve directly");
    assert_eq!(replay.fresh_trials, 0);
    assert_eq!(replay.successes, first.successes);
    assert_eq!(replay.trials, first.trials);

    // And a tighter query against the warm service still only spends the
    // increment: the stream resumes across the snapshot boundary.
    let tighter = warm.estimate(&estimate(96, 4, 0.035, 0)).unwrap();
    assert_eq!(tighter.fresh_trials, tighter.trials - first.trials);
}

#[test]
fn off_lattice_queries_interpolate_honestly_or_refuse() {
    let service = service();
    // Populate the four corners around the query (even n: even gaps).
    let mut widest_corner: f64 = 0.0;
    for n in [100u64, 200] {
        for gap in [4u64, 8] {
            let corner = service.estimate(&estimate(n, gap, 0.08, 0)).unwrap();
            widest_corner = widest_corner.max(corner.half_width);
        }
    }
    // Gap 5 is parity-infeasible at n = 150; the corners bracket it.
    let mid = service.estimate(&estimate(150, 5, 0.08, 0)).unwrap();
    assert!(mid.interpolated);
    assert!(mid.cache_hit);
    assert_eq!(mid.fresh_trials, 0, "interpolation must not run trials");
    assert!(
        mid.half_width >= widest_corner,
        "interpolated interval ({}) must be at least as wide as the widest corner ({})",
        mid.half_width,
        widest_corner
    );
    assert!(mid.point > 0.0 && mid.point < 1.0);
    assert!(mid.ci_low >= 0.0 && mid.ci_high <= 1.0);

    // Outside the probed hull the service refuses instead of extrapolating.
    let err = service.estimate(&estimate(400, 5, 0.08, 0)).unwrap_err();
    assert_eq!(err.code(), "off-lattice");
}

#[test]
fn threshold_searches_are_memoized_cell_by_cell() {
    let service = service();
    let request = ThresholdRequest {
        spec: spec(),
        n: 128,
        target: 0.0,
        trials: 48,
    };
    let first = service.threshold(&request).unwrap();
    assert!(first.fresh_trials > 0);
    assert!(!first.result.probes.is_empty());
    assert!(first.result.threshold >= 2);
    assert_eq!(first.result.backend, "jump-chain");

    let second = service.threshold(&request).unwrap();
    assert_eq!(
        second.fresh_trials, 0,
        "a repeated search must re-read every probe from cache"
    );
    assert_eq!(second.result, first.result);
}

#[test]
fn sweeps_snap_dedupe_and_memoize() {
    let service = service();
    let request = SweepRequest {
        spec: spec(),
        n_lattice: vec![64, 128],
        gap_lattice: vec![2, 5, 6],
        target_ci: 0.15,
    };
    let first = service.sweep(&request).unwrap();
    // Gap 5 snaps up to 6 on the even lattice, deduplicating with the
    // explicit 6: two distinct cells per n.
    assert_eq!(first.cells.len(), 4, "snapped duplicates must merge");
    assert!(first.fresh_trials > 0);
    for cell in &first.cells {
        assert_eq!(cell.gap % 2, 0, "even n: probed gaps must be even");
        assert!(cell.half_width <= 0.15);
    }
    let second = service.sweep(&request).unwrap();
    assert_eq!(second.fresh_trials, 0);
    assert_eq!(second.cells, first.cells);
}

#[test]
fn invalid_requests_fail_with_typed_codes_and_the_service_survives() {
    let service = service();
    let err = service.estimate(&estimate(128, 8, 0.0, 0)).unwrap_err();
    assert_eq!(err.code(), "bad-request");
    let err = service.estimate(&estimate(3, 1, 0.1, 0)).unwrap_err();
    assert_eq!(err.code(), "bad-request");
    let mut bad = estimate(128, 8, 0.1, 0);
    bad.spec.backend = "no-such-backend".to_string();
    let err = service.estimate(&bad).unwrap_err();
    assert_eq!(err.code(), "unknown-backend");
    let err = service
        .threshold(&ThresholdRequest {
            spec: spec(),
            n: 128,
            target: 1.5,
            trials: 48,
        })
        .unwrap_err();
    assert_eq!(err.code(), "bad-request");

    // `handle` wraps every failure as an error response and keeps serving.
    let response = service.handle(&Request::Estimate(estimate(128, 8, -1.0, 0)));
    assert!(matches!(response, Response::Error(_)));
    let response = service.handle(&Request::Estimate(estimate(128, 8, 0.2, 0)));
    assert!(matches!(response, Response::Estimate(_)));
}
