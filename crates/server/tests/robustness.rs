//! End-to-end server hardening: a live server must survive truncated,
//! oversized, garbage and wrong-version frames — each malformed peer costs
//! one connection (answered with a typed error where possible), never the
//! server — and a graceful shutdown must drain and snapshot.

use lv_lotka::{CompetitionKind, LvModel};
use lv_server::wire::{read_message, write_frame, write_message, MAGIC, MAX_FRAME_BYTES};
use lv_server::{
    BindAddr, Client, EstimateRequest, Hello, InProcessExecutor, Request, Response, ScenarioSpec,
    Server, ServiceConfig, ServiceError, SweepRequest, ThresholdService, TrialExecutor,
};
use std::io::Write;
use std::net::TcpStream;

fn spec() -> ScenarioSpec {
    ScenarioSpec::two_species(
        LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0),
        "jump-chain",
    )
}

fn estimate_request() -> Request {
    Request::Estimate(EstimateRequest {
        spec: spec(),
        n: 64,
        gap: 4,
        target_ci: 0.2,
        max_trials: 0,
    })
}

/// Starts a TCP server on an ephemeral port, returning its address and the
/// serving thread (joined by sending `Shutdown`).
fn start_server() -> (String, std::thread::JoinHandle<()>) {
    let service = ThresholdService::new(
        Box::new(InProcessExecutor::new(2)),
        ServiceConfig::default(),
    );
    let server = Server::bind(service, &BindAddr::Tcp("127.0.0.1:0".to_string())).unwrap();
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.serve().unwrap());
    (addr, handle)
}

fn shutdown(addr: &str, handle: std::thread::JoinHandle<()>) {
    let mut client = Client::connect_tcp(addr).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Sends raw bytes after a valid handshake and returns whatever single
/// response (if any) comes back before the server drops the connection.
fn send_raw_after_handshake(addr: &str, payload: &[u8]) -> Option<Response> {
    let mut stream = TcpStream::connect(addr).unwrap();
    write_message(&mut stream, &Hello::current()).unwrap();
    let _server_hello: Hello = read_message(&mut stream, MAX_FRAME_BYTES).unwrap();
    stream.write_all(payload).unwrap();
    stream.flush().unwrap();
    let _ = stream.shutdown(std::net::Shutdown::Write);
    read_message::<_, Response>(&mut stream, MAX_FRAME_BYTES).ok()
}

#[test]
fn malformed_frames_drop_the_connection_not_the_server() {
    let (addr, handle) = start_server();

    // 1. Garbage bytes instead of a frame (bad magic).
    let response = send_raw_after_handshake(&addr, b"\xde\xad\xbe\xefgarbage");
    if let Some(Response::Error(e)) = response {
        assert_eq!(e.code, "io");
    }

    // 2. An oversized length declaration.
    let mut oversized = Vec::from(MAGIC);
    oversized.extend_from_slice(&u32::MAX.to_be_bytes());
    let response = send_raw_after_handshake(&addr, &oversized);
    if let Some(Response::Error(e)) = response {
        assert_eq!(e.code, "io");
    }

    // 3. A truncated frame: header promises more payload than arrives.
    let mut truncated = Vec::new();
    write_frame(&mut truncated, b"0123456789").unwrap();
    truncated.truncate(truncated.len() - 4);
    let response = send_raw_after_handshake(&addr, &truncated);
    if let Some(Response::Error(e)) = response {
        assert_eq!(e.code, "io");
    }

    // 4. A well-framed payload that is not valid JSON.
    let mut garbage_json = Vec::new();
    write_frame(&mut garbage_json, b"{\"type\": not json").unwrap();
    let response = send_raw_after_handshake(&addr, &garbage_json);
    match response {
        Some(Response::Error(e)) => assert_eq!(e.code, "codec"),
        other => panic!("expected a codec error response, got {other:?}"),
    }

    // 5. Valid JSON, unknown request tag.
    let mut unknown = Vec::new();
    write_frame(&mut unknown, br#"{"type":"frobnicate","body":null}"#).unwrap();
    let response = send_raw_after_handshake(&addr, &unknown);
    match response {
        Some(Response::Error(e)) => assert_eq!(e.code, "codec"),
        other => panic!("expected a codec error response, got {other:?}"),
    }

    // After all that abuse, a fresh well-behaved client is served normally.
    let mut client = Client::connect_tcp(&addr).unwrap();
    let status = client.status().unwrap();
    assert!(status.served >= 1);
    match client.request(&estimate_request()).unwrap() {
        Response::Estimate(r) => assert!(r.trials > 0),
        other => panic!("expected an estimate, got {other:?}"),
    }
    shutdown(&addr, handle);
}

#[test]
fn wrong_schema_versions_are_rejected_with_a_typed_error() {
    let (addr, handle) = start_server();
    let mut stream = TcpStream::connect(&addr).unwrap();
    write_message(&mut stream, &Hello { schema_version: 99 }).unwrap();
    let server_hello: Hello = read_message(&mut stream, MAX_FRAME_BYTES).unwrap();
    assert_eq!(server_hello, Hello::current());
    let response: Response = read_message(&mut stream, MAX_FRAME_BYTES).unwrap();
    match response {
        Response::Error(e) => assert_eq!(e.code, "version-mismatch"),
        other => panic!("expected a version-mismatch error, got {other:?}"),
    }
    // The connection is dropped afterwards...
    assert!(read_message::<_, Response>(&mut stream, MAX_FRAME_BYTES).is_err());
    // ...but the server still serves compliant clients.
    let mut client = Client::connect_tcp(&addr).unwrap();
    client.status().unwrap();
    shutdown(&addr, handle);
}

#[test]
fn unix_socket_serving_cache_and_graceful_snapshot() {
    let dir = std::env::temp_dir().join(format!("lv-server-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("lv.sock");
    let snapshot_path = dir.join("surface.json");

    let service = ThresholdService::new(
        Box::new(InProcessExecutor::new(2)),
        ServiceConfig::default(),
    );
    let server = Server::bind(service, &BindAddr::Unix(socket.clone()))
        .unwrap()
        .with_snapshot_path(&snapshot_path);
    let handle = std::thread::spawn(move || server.serve().unwrap());

    let mut client = Client::connect_unix(&socket).unwrap();
    let request = EstimateRequest {
        spec: spec(),
        n: 96,
        gap: 6,
        target_ci: 0.1,
        max_trials: 0,
    };
    let first = client.estimate(request.clone()).unwrap();
    assert!(!first.cache_hit);
    let second = client.estimate(request.clone()).unwrap();
    assert!(second.cache_hit);
    assert_eq!(second.fresh_trials, 0);

    let sweep = client
        .sweep(SweepRequest {
            spec: spec(),
            n_lattice: vec![64],
            gap_lattice: vec![2, 4],
            target_ci: 0.2,
        })
        .unwrap();
    assert_eq!(sweep.cells.len(), 2);

    client.shutdown().unwrap();
    handle.join().unwrap();
    assert!(!socket.exists(), "socket file must be removed on shutdown");

    // The snapshot was written on shutdown; a warm restart serves the same
    // cell from cache.
    let text = std::fs::read_to_string(&snapshot_path).unwrap();
    let snapshot: lv_server::SurfaceSnapshot = serde::json::from_str(&text).unwrap();
    let warm_service = ThresholdService::new(
        Box::new(InProcessExecutor::new(2)),
        ServiceConfig::default(),
    )
    .with_snapshot(&snapshot);
    let warm = Server::bind(warm_service, &BindAddr::Unix(socket.clone())).unwrap();
    let warm_handle = std::thread::spawn(move || warm.serve().unwrap());
    let mut client = Client::connect_unix(&socket).unwrap();
    let replay = client.estimate(request).unwrap();
    assert!(
        replay.cache_hit,
        "warm restart must serve from the snapshot"
    );
    assert_eq!(replay.trials, first.trials);
    client.shutdown().unwrap();
    warm_handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Delegates to the in-process executor except at `gap == 2`, where it
/// panics mid-request — simulating a handler blowing up while the service
/// holds internal locks.
struct PanicAtGapTwo(InProcessExecutor);

impl TrialExecutor for PanicAtGapTwo {
    fn run_range(
        &self,
        spec: &ScenarioSpec,
        n: u64,
        gap: u64,
        seed: lv_sim::Seed,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<bool>, ServiceError> {
        if gap == 2 {
            panic!("executor panic injected by test");
        }
        self.0.run_range(spec, n, gap, seed, lo, hi)
    }

    fn describe(&self) -> String {
        "panic-at-gap-two".to_string()
    }
}

/// A request whose handler panics costs that request an `internal` error
/// frame — not the connection, not the server: the same client and a
/// fresh client are both served real answers afterwards.
#[test]
fn handler_panic_answers_an_error_frame_and_keeps_serving() {
    let service = ThresholdService::new(
        Box::new(PanicAtGapTwo(InProcessExecutor::new(2))),
        ServiceConfig::default(),
    );
    let server = Server::bind(service, &BindAddr::Tcp("127.0.0.1:0".to_string())).unwrap();
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.serve().unwrap());

    let mut client = Client::connect_tcp(&addr).unwrap();
    let poisoned = EstimateRequest {
        spec: spec(),
        n: 64,
        gap: 2,
        target_ci: 0.2,
        max_trials: 0,
    };
    let err = client.estimate(poisoned).unwrap_err();
    assert_eq!(err.code(), "internal");
    assert!(err.message().contains("executor panic injected by test"));

    // The same connection keeps working...
    match client.request(&estimate_request()).unwrap() {
        Response::Estimate(r) => assert!(r.trials > 0),
        other => panic!("expected an estimate, got {other:?}"),
    }
    // ...and so does a fresh one.
    let mut fresh = Client::connect_tcp(&addr).unwrap();
    match fresh.request(&estimate_request()).unwrap() {
        Response::Estimate(r) => assert!(r.trials > 0),
        other => panic!("expected an estimate, got {other:?}"),
    }
    shutdown(&addr, handle);
}

#[test]
fn concurrent_clients_share_one_coalesced_computation() {
    let (addr, handle) = start_server();
    let request = EstimateRequest {
        spec: spec(),
        n: 100,
        gap: 4,
        target_ci: 0.08,
        max_trials: 0,
    };
    let responses: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                let request = request.clone();
                scope.spawn(move || {
                    Client::connect_tcp(&addr)
                        .unwrap()
                        .estimate(request)
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(
        responses.iter().filter(|r| r.fresh_trials > 0).count(),
        1,
        "exactly one of the concurrent clients does the work"
    );
    for response in &responses {
        assert_eq!(response.trials, responses[0].trials);
        assert_eq!(response.successes, responses[0].successes);
    }
    shutdown(&addr, handle);
}
