//! Multi-process execution: the [`WorkerPool`] must be bit-identical to
//! the in-process executor at every worker count (workers rebuild the
//! scenario from the fingerprinted spec and run `rng_for_trial(i)` for the
//! same absolute indices), and a worker death mid-batch must cost only a
//! retry on the survivors.

use lv_lotka::{CompetitionKind, LvModel};
use lv_server::{InProcessExecutor, ScenarioSpec, TrialExecutor, WorkerPool};
use lv_sim::Seed;

const SERVE_BIN: &str = env!("CARGO_BIN_EXE_lv-serve");

fn spec() -> ScenarioSpec {
    ScenarioSpec::two_species(
        LvModel::neutral(CompetitionKind::SelfDestructive, 1.0, 1.0, 1.0),
        "jump-chain",
    )
}

#[test]
fn worker_pools_are_bit_identical_to_in_process_at_any_width() {
    let seed = Seed::new(2024);
    let reference = InProcessExecutor::new(2)
        .run_range(&spec(), 96, 8, seed, 0, 120)
        .unwrap();
    assert_eq!(reference.len(), 120);
    for workers in [1usize, 2, 4] {
        let pool = WorkerPool::new(SERVE_BIN, workers);
        let bits = pool.run_range(&spec(), 96, 8, seed, 0, 120).unwrap();
        assert_eq!(
            bits, reference,
            "{workers}-worker pool diverged from in-process execution"
        );
    }
}

#[test]
fn worker_pools_honour_range_offsets() {
    let seed = Seed::new(7);
    let pool = WorkerPool::new(SERVE_BIN, 2);
    let whole = pool.run_range(&spec(), 64, 4, seed, 0, 60).unwrap();
    let tail = pool.run_range(&spec(), 64, 4, seed, 25, 60).unwrap();
    assert_eq!(tail, whole[25..], "offset ranges must resume the stream");
}

#[test]
fn a_worker_reports_semantic_errors_instead_of_dying() {
    let mut bad = spec();
    bad.backend = "no-such-backend".to_string();
    let pool = WorkerPool::new(SERVE_BIN, 1);
    let err = pool.run_range(&bad, 64, 4, Seed::new(1), 0, 8).unwrap_err();
    assert_eq!(err.code(), "worker");
    assert!(
        err.message().contains("unknown backend"),
        "the worker's own error must surface: {err}"
    );
}
