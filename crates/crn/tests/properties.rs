//! Property-based tests for the CRN substrate.

use lv_crn::prelude::*;
use lv_crn::{propensity, total_propensity};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy for small two-species Lotka–Volterra-like networks with arbitrary
/// non-negative rates.
fn lv_rates() -> impl Strategy<Value = (f64, f64, f64, f64)> {
    (0.0f64..5.0, 0.0f64..5.0, 0.0f64..5.0, 0.0f64..5.0)
}

fn build_lv(beta: f64, delta: f64, alpha: f64, gamma: f64) -> ValidatedNetwork {
    let mut net = ReactionNetwork::new();
    let x0 = net.add_species("X0");
    let x1 = net.add_species("X1");
    for (a, b) in [(x0, x1), (x1, x0)] {
        net.add_reaction(Reaction::new(beta).reactant(a, 1).product(a, 2));
        net.add_reaction(Reaction::new(delta).reactant(a, 1));
        net.add_reaction(Reaction::new(alpha).reactant(a, 1).reactant(b, 1));
        net.add_reaction(Reaction::new(gamma).reactant(a, 2));
    }
    net.validate().expect("generated network is well-formed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Propensities are always non-negative and finite.
    #[test]
    fn propensities_are_non_negative((beta, delta, alpha, gamma) in lv_rates(),
                                     a in 0u64..500, b in 0u64..500) {
        let net = build_lv(beta, delta, alpha, gamma);
        let state = State::from(vec![a, b]);
        for reaction in net.reactions() {
            let p = propensity(reaction, &state);
            prop_assert!(p >= 0.0 && p.is_finite());
        }
        let total = total_propensity(&net, &state);
        prop_assert!(total >= 0.0 && total.is_finite());
    }

    /// The total propensity matches the closed-form φ(x0, x1) of Section 1.3.
    #[test]
    fn total_propensity_matches_closed_form((beta, delta, alpha, gamma) in lv_rates(),
                                            a in 0u64..300, b in 0u64..300) {
        let net = build_lv(beta, delta, alpha, gamma);
        let state = State::from(vec![a, b]);
        let (af, bf) = (a as f64, b as f64);
        let expected = 2.0 * alpha * af * bf
            + (beta + delta) * (af + bf)
            + gamma * (af * (af - 1.0) + bf * (bf - 1.0)) / 2.0;
        let actual = total_propensity(&net, &state);
        prop_assert!((actual - expected).abs() <= 1e-9 * expected.max(1.0),
                     "actual {} expected {}", actual, expected);
    }

    /// Jump-chain transition probabilities form a probability distribution in
    /// every non-absorbing state.
    #[test]
    fn jump_chain_probabilities_normalise((beta, delta, alpha, gamma) in lv_rates(),
                                          a in 1u64..200, b in 1u64..200) {
        // Ensure at least one reaction has positive rate so the state is not absorbing.
        prop_assume!(beta + delta + alpha + gamma > 0.0);
        let net = build_lv(beta.max(0.01), delta, alpha, gamma);
        let mut sim = JumpChain::new(&net, State::from(vec![a, b]), StdRng::seed_from_u64(0));
        let probs = sim.transition_probabilities();
        let sum: f64 = probs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "sum {}", sum);
        prop_assert!(probs.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
    }

    /// Applying any enabled reaction preserves non-negativity, and the state
    /// change matches the reaction's net stoichiometry.
    #[test]
    fn reaction_application_is_consistent(a in 0u64..100, b in 0u64..100, idx in 0usize..8) {
        let net = build_lv(1.0, 1.0, 1.0, 1.0);
        let state = State::from(vec![a, b]);
        let reaction = &net.reactions()[idx];
        if state.can_apply(reaction) {
            let next = state.applying(reaction).unwrap();
            for sp in [SpeciesId::new(0), SpeciesId::new(1)] {
                let before = state.count(sp) as i64;
                let after = next.count(sp) as i64;
                prop_assert_eq!(after - before, reaction.net_change(sp));
                prop_assert!(after >= 0);
            }
        } else {
            prop_assert!(state.applying(reaction).is_err());
            prop_assert_eq!(propensity(reaction, &state), 0.0);
        }
    }

    /// A jump-chain run with an event budget never exceeds the budget and
    /// never produces negative counts.
    #[test]
    fn jump_chain_respects_budget_and_positivity(seed in 0u64..1000,
                                                 a in 1u64..100, b in 1u64..100) {
        let net = build_lv(1.0, 1.0, 1.0, 0.0);
        let mut sim = JumpChain::new(&net, State::from(vec![a, b]), StdRng::seed_from_u64(seed));
        let outcome = sim.run(&StopCondition::any_species_extinct().with_max_events(500));
        prop_assert!(outcome.events <= 500);
        prop_assert!(outcome.final_state.counts().iter().all(|&c| c < u64::MAX / 2));
        if outcome.stopped_by_condition() {
            prop_assert!(outcome.final_state.any_extinct());
        }
    }

    /// Exponential samples are non-negative; Poisson samples have the right
    /// support.
    #[test]
    fn distribution_samples_have_correct_support(seed in 0u64..1000, rate in 0.01f64..100.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let e = lv_crn::distributions::sample_exponential(&mut rng, rate);
        prop_assert!(e >= 0.0);
        let p = lv_crn::distributions::sample_poisson(&mut rng, rate);
        prop_assert!(p < u64::MAX);
    }
}
