//! Cross-simulator integration tests: the exact simulators must agree in
//! distribution, and the approximate one must agree on coarse statistics.

use lv_crn::prelude::*;
use lv_crn::StopCondition;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// The self-destructive Lotka–Volterra network of Eq. (1) with unit rates and
/// no intraspecific competition.
fn lv_self_destructive() -> (ValidatedNetwork, SpeciesId, SpeciesId) {
    let mut net = ReactionNetwork::new();
    let x0 = net.add_species("X0");
    let x1 = net.add_species("X1");
    for (a, b) in [(x0, x1), (x1, x0)] {
        net.add_reaction(Reaction::new(1.0).reactant(a, 1).product(a, 2));
        net.add_reaction(Reaction::new(1.0).reactant(a, 1));
        net.add_reaction(Reaction::new(1.0).reactant(a, 1).reactant(b, 1));
    }
    (net.validate().unwrap(), x0, x1)
}

/// Estimates the probability that species `x0` wins majority consensus from
/// the initial state `(a, b)` under the given simulator constructor.
fn majority_probability<F>(trials: u64, a: u64, b: u64, mut run: F) -> f64
where
    F: FnMut(State, StdRng) -> State,
{
    let mut wins = 0u64;
    for t in 0..trials {
        let final_state = run(State::from(vec![a, b]), rng(10_000 + t));
        if final_state.count(SpeciesId::new(0)) > 0 && final_state.count(SpeciesId::new(1)) == 0 {
            wins += 1;
        }
    }
    wins as f64 / trials as f64
}

#[test]
fn direct_and_jump_chain_agree_on_majority_probability() {
    let (net, _, _) = lv_self_destructive();
    let stop = StopCondition::any_species_extinct().with_max_events(1_000_000);
    let trials = 300;

    let p_direct = majority_probability(trials, 30, 20, |initial, r| {
        let mut sim = GillespieDirect::new(&net, initial, r);
        sim.run(&stop).final_state
    });
    let p_jump = majority_probability(trials, 30, 20, |initial, r| {
        let mut sim = JumpChain::new(&net, initial, r);
        sim.run(&stop).final_state
    });

    assert!(
        (p_direct - p_jump).abs() < 0.12,
        "direct {p_direct} vs jump chain {p_jump}"
    );
    // Majority should win well over half the time with a 50% relative gap.
    assert!(
        p_direct > 0.6,
        "direct method majority probability {p_direct}"
    );
    assert!(p_jump > 0.6, "jump chain majority probability {p_jump}");
}

#[test]
fn next_reaction_agrees_with_direct_on_consensus_events() {
    let (net, _, _) = lv_self_destructive();
    let stop = StopCondition::any_species_extinct().with_max_events(1_000_000);
    let trials = 200;

    let mean_events = |which: &str| -> f64 {
        let mut total = 0u64;
        for t in 0..trials {
            let initial = State::from(vec![25, 15]);
            let outcome = match which {
                "direct" => {
                    let mut sim = GillespieDirect::new(&net, initial, rng(500 + t));
                    sim.run(&stop)
                }
                _ => {
                    let mut sim = NextReaction::new(&net, initial, rng(500 + t));
                    sim.run(&stop)
                }
            };
            total += outcome.events;
        }
        total as f64 / trials as f64
    };

    let direct = mean_events("direct");
    let next = mean_events("next");
    let relative = (direct - next).abs() / direct.max(next);
    assert!(
        relative < 0.15,
        "mean consensus events differ: direct {direct}, next-reaction {next}"
    );
}

#[test]
fn tau_leaping_tracks_exact_mean_population() {
    // Logistic-like growth: birth plus intraspecific death keeps the
    // population near a carrying capacity; tau-leaping should agree with the
    // exact simulator on the mean population at a fixed time.
    let mut net = ReactionNetwork::new();
    let a = net.add_species("A");
    net.add_reaction(Reaction::new(1.0).reactant(a, 1).product(a, 2));
    net.add_reaction(Reaction::new(0.002).reactant(a, 2).product(a, 1));
    let net = net.validate().unwrap();

    let horizon = 5.0;
    let trials = 40;
    let mean_final = |exact: bool| -> f64 {
        let mut total = 0.0;
        for t in 0..trials {
            let initial = State::from(vec![50]);
            let stop = StopCondition::never().with_max_time(horizon);
            let final_state = if exact {
                let mut sim = GillespieDirect::new(&net, initial, rng(900 + t));
                sim.run(&stop).final_state
            } else {
                let mut sim = TauLeaping::new(&net, initial, 0.02, rng(900 + t));
                sim.run(&stop).final_state
            };
            total += final_state.counts()[0] as f64;
        }
        total / trials as f64
    };

    let exact = mean_final(true);
    let approx = mean_final(false);
    let relative = (exact - approx).abs() / exact;
    assert!(
        relative < 0.1,
        "exact mean {exact} vs tau-leaping mean {approx}"
    );
}

#[test]
fn trajectory_gap_series_starts_at_initial_gap() {
    let (net, x0, x1) = lv_self_destructive();
    let mut sim = JumpChain::new(&net, State::from(vec![70, 30]), rng(42));
    let (_, trajectory) = sim.run_recording(&StopCondition::any_species_extinct());
    let gaps = trajectory.gap_series(x0, x1);
    assert_eq!(gaps.first().unwrap().1, 40);
    // The gap changes by at most 1 per event under self-destructive
    // competition with individual births/deaths.
    for w in gaps.windows(2) {
        assert!((w[0].1 - w[1].1).abs() <= 1);
    }
}
