//! Integration coverage for the `StopCondition` combinators across *all four*
//! stochastic simulators: `or`-composition, the `max_events`/`max_time`
//! interaction, and predicate conditions must be honored identically no
//! matter which simulator drives the run.

use lv_crn::prelude::*;
use lv_crn::{RunOutcome, SpeciesId, StopCondition, StopReason};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Two-species self-destructive LV network with unit rates.
fn lv_network() -> ValidatedNetwork {
    let mut net = ReactionNetwork::new();
    let x0 = net.add_species("X0");
    let x1 = net.add_species("X1");
    for (a, b) in [(x0, x1), (x1, x0)] {
        net.add_reaction(Reaction::new(1.0).reactant(a, 1).product(a, 2));
        net.add_reaction(Reaction::new(1.0).reactant(a, 1));
        net.add_reaction(Reaction::new(1.0).reactant(a, 1).reactant(b, 1));
    }
    net.validate().unwrap()
}

/// Supercritical single-species birth–death network (grows on average).
fn growth_network() -> ValidatedNetwork {
    let mut net = ReactionNetwork::new();
    let a = net.add_species("A");
    net.add_reaction(Reaction::new(2.0).reactant(a, 1).product(a, 2));
    net.add_reaction(Reaction::new(1.0).reactant(a, 1));
    net.validate().unwrap()
}

/// Runs `stop` on every simulator over `network` from `initial` and returns
/// `(simulator name, outcome)` for each.
fn run_all(
    network: &ValidatedNetwork,
    initial: &[u64],
    stop: &StopCondition,
    seed: u64,
) -> Vec<(&'static str, RunOutcome)> {
    let state = || State::from(initial.to_vec());
    vec![
        (
            "jump-chain",
            JumpChain::new(network, state(), rng(seed)).run(stop),
        ),
        (
            "gillespie-direct",
            GillespieDirect::new(network, state(), rng(seed)).run(stop),
        ),
        (
            "next-reaction",
            NextReaction::new(network, state(), rng(seed)).run(stop),
        ),
        (
            "tau-leaping",
            TauLeaping::new(network, state(), 1e-3, rng(seed)).run(stop),
        ),
    ]
}

#[test]
fn or_composition_stops_every_simulator_at_the_first_met_condition() {
    // Consensus OR population explosion: each simulator must terminate with
    // `ConditionMet` and a final state satisfying the disjunction.
    let network = lv_network();
    let stop = StopCondition::any_species_extinct()
        .or(StopCondition::total_at_least(400))
        .with_max_events(10_000_000);
    for (name, outcome) in run_all(&network, &[60, 40], &stop, 1) {
        assert_eq!(outcome.reason, StopReason::ConditionMet, "{name}");
        let state = &outcome.final_state;
        assert!(
            state.any_extinct() || state.total() >= 400,
            "{name} stopped in {state} with neither condition met"
        );
        assert!(stop.is_met(state), "{name} outcome contradicts is_met");
    }
}

#[test]
fn or_composition_takes_the_tighter_budget_on_every_simulator() {
    // `or` keeps the minimum of both event budgets: 40, not 5000.
    let network = lv_network();
    let a = StopCondition::any_species_extinct().with_max_events(5_000);
    let b = StopCondition::total_at_least(1_000_000).with_max_events(40);
    let stop = a.or(b);
    assert_eq!(stop.max_events(), Some(40));
    for (name, outcome) in run_all(&network, &[500, 500], &stop, 2) {
        assert_eq!(outcome.reason, StopReason::MaxEventsReached, "{name}");
        assert!(
            outcome.events >= 40,
            "{name} stopped after only {} events",
            outcome.events
        );
        if name != "tau-leaping" {
            // Exact simulators fire one reaction per step, so the budget is
            // exact; tau-leaping may overshoot within its final leap.
            assert_eq!(outcome.events, 40, "{name}");
        }
    }
}

#[test]
fn max_events_and_max_time_interact_first_budget_wins() {
    let network = growth_network();
    // Generous time, tight events: the event budget binds.
    let stop = StopCondition::never()
        .with_max_events(25)
        .with_max_time(1e9);
    for (name, outcome) in run_all(&network, &[100], &stop, 3) {
        assert_eq!(outcome.reason, StopReason::MaxEventsReached, "{name}");
        assert!(outcome.truncated(), "{name}");
    }
    // Generous events, vanishing time: the time budget binds. (The jump
    // chain's clock counts events, so time 1e-9 < 1 stops it after its first
    // pre-step check; continuous simulators accumulate real waiting times.)
    let stop = StopCondition::never()
        .with_max_events(1_000_000)
        .with_max_time(1e-9);
    for (name, outcome) in run_all(&network, &[100], &stop, 4) {
        assert_eq!(outcome.reason, StopReason::MaxTimeReached, "{name}");
        assert!(outcome.truncated(), "{name}");
        assert!(
            outcome.events <= 1,
            "{name} fired {} events before a 1e-9 time budget",
            outcome.events
        );
    }
}

#[test]
fn predicate_conditions_are_honored_by_every_simulator() {
    let network = growth_network();
    let threshold = 200u64;
    let stop =
        StopCondition::predicate(move |state: &State| state.count(SpeciesId::new(0)) >= threshold)
            .with_max_events(10_000_000);
    for (name, outcome) in run_all(&network, &[100], &stop, 5) {
        assert_eq!(outcome.reason, StopReason::ConditionMet, "{name}");
        assert!(
            outcome.final_state.count(SpeciesId::new(0)) >= threshold,
            "{name} stopped below the predicate threshold at {}",
            outcome.final_state
        );
    }
}

#[test]
fn predicate_or_extinction_whichever_happens_first() {
    // Subcritical death-dominated network: extinction wins the race against
    // an unreachable growth predicate, on every simulator.
    let mut net = ReactionNetwork::new();
    let a = net.add_species("A");
    net.add_reaction(Reaction::new(0.2).reactant(a, 1).product(a, 2));
    net.add_reaction(Reaction::new(2.0).reactant(a, 1));
    let network = net.validate().unwrap();
    let stop = StopCondition::predicate(|state: &State| state.count(SpeciesId::new(0)) >= 10_000)
        .or(StopCondition::any_species_extinct())
        .with_max_events(1_000_000);
    for (name, outcome) in run_all(&network, &[50], &stop, 6) {
        assert_eq!(outcome.reason, StopReason::ConditionMet, "{name}");
        assert!(outcome.final_state.any_extinct(), "{name}");
    }
}

#[test]
fn never_with_budgets_only_truncates() {
    let network = lv_network();
    let stop = StopCondition::never().with_max_events(10);
    for (name, outcome) in run_all(&network, &[30, 30], &stop, 7) {
        assert!(
            outcome.truncated(),
            "{name} ended with {:?} instead of truncation",
            outcome.reason
        );
    }
}
