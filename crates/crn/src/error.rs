use std::error::Error;
use std::fmt;

/// Errors produced when constructing or simulating a reaction network.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CrnError {
    /// A reaction refers to a species id that is not part of the network.
    UnknownSpecies {
        /// The offending species index.
        species: usize,
        /// Number of species in the network.
        species_count: usize,
    },
    /// A reaction has a negative or non-finite rate constant.
    InvalidRate {
        /// The offending rate.
        rate: f64,
    },
    /// A reaction has no reactants and no products.
    EmptyReaction,
    /// The network has no reactions.
    NoReactions,
    /// The network has no species.
    NoSpecies,
    /// The initial state has the wrong number of species counts.
    StateDimensionMismatch {
        /// Number of counts provided.
        provided: usize,
        /// Number of species expected.
        expected: usize,
    },
    /// A reaction could not be applied because a reactant count would go negative.
    InsufficientReactants {
        /// The reaction that failed to apply.
        reaction: usize,
        /// The species with too few individuals.
        species: usize,
    },
    /// A numeric parameter was outside its domain (e.g. negative tau).
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        what: &'static str,
    },
}

impl fmt::Display for CrnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrnError::UnknownSpecies {
                species,
                species_count,
            } => write!(
                f,
                "reaction refers to species {species} but the network has only {species_count} species"
            ),
            CrnError::InvalidRate { rate } => {
                write!(f, "reaction rate {rate} is not a finite non-negative number")
            }
            CrnError::EmptyReaction => write!(f, "reaction has neither reactants nor products"),
            CrnError::NoReactions => write!(f, "network has no reactions"),
            CrnError::NoSpecies => write!(f, "network has no species"),
            CrnError::StateDimensionMismatch { provided, expected } => write!(
                f,
                "state has {provided} species counts but the network has {expected} species"
            ),
            CrnError::InsufficientReactants { reaction, species } => write!(
                f,
                "cannot apply reaction {reaction}: species {species} has too few individuals"
            ),
            CrnError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl Error for CrnError {}

/// Result alias for CRN operations.
pub type Result<T> = std::result::Result<T, CrnError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(CrnError, &str)> = vec![
            (
                CrnError::UnknownSpecies {
                    species: 3,
                    species_count: 2,
                },
                "species 3",
            ),
            (CrnError::InvalidRate { rate: -1.0 }, "-1"),
            (CrnError::EmptyReaction, "neither"),
            (CrnError::NoReactions, "no reactions"),
            (CrnError::NoSpecies, "no species"),
            (
                CrnError::StateDimensionMismatch {
                    provided: 1,
                    expected: 2,
                },
                "1 species counts",
            ),
            (
                CrnError::InsufficientReactants {
                    reaction: 0,
                    species: 1,
                },
                "too few individuals",
            ),
            (
                CrnError::InvalidParameter {
                    what: "tau must be positive",
                },
                "tau must be positive",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "message {msg:?} lacks {needle:?}");
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error>() {}
        assert_error::<CrnError>();
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CrnError>();
    }
}
