//! # lv-crn — chemical reaction networks with stochastic mass-action kinetics
//!
//! This crate implements the chemical-reaction-network (CRN) substrate used by
//! the reproduction of *“Majority consensus thresholds in competitive
//! Lotka–Volterra populations”* (Függer, Nowak, Rybicki; PODC 2024).
//!
//! The paper formalises its population models as CRNs with mass-action
//! stochastic kinetics (Section 1.3): in a configuration `x`, every reaction
//! `R` has a *propensity* `φ_R(x)`; the time to the next reaction is
//! exponential with rate `φ(x) = Σ_R φ_R(x)` and reaction `R` fires next with
//! probability `φ_R(x)/φ(x)`. The paper then analyses the embedded
//! discrete-time *jump chain*. This crate provides:
//!
//! * the network formalism ([`ReactionNetwork`], [`Reaction`], [`Species`],
//!   [`State`]) with validation and mass-action [`propensity`] evaluation;
//! * exact simulators: the Gillespie direct method
//!   ([`simulators::GillespieDirect`]), the next-reaction method
//!   ([`simulators::NextReaction`]) and the discrete-time jump chain
//!   ([`simulators::JumpChain`]);
//! * an approximate tau-leaping simulator ([`simulators::TauLeaping`]) for
//!   large populations;
//! * stop conditions ([`StopCondition`]), trajectory recording
//!   ([`Trajectory`]) and the small sampling utilities the simulators need
//!   ([`distributions`]).
//!
//! # Example
//!
//! Build the self-destructive Lotka–Volterra network of Eq. (1) in the paper
//! and simulate its jump chain until one species goes extinct:
//!
//! ```
//! use lv_crn::{ReactionNetwork, Reaction, State, StopCondition};
//! use lv_crn::simulators::{JumpChain, StochasticSimulator};
//! use rand::SeedableRng;
//!
//! let mut net = ReactionNetwork::new();
//! let x0 = net.add_species("X0");
//! let x1 = net.add_species("X1");
//! let (beta, delta, alpha) = (1.0, 1.0, 1.0);
//! for (s, o) in [(x0, x1), (x1, x0)] {
//!     net.add_reaction(Reaction::new(beta).reactant(s, 1).product(s, 2));
//!     net.add_reaction(Reaction::new(delta).reactant(s, 1));
//!     net.add_reaction(Reaction::new(alpha).reactant(s, 1).reactant(o, 1));
//! }
//! let net = net.validate().expect("well-formed network");
//!
//! let rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut sim = JumpChain::new(&net, State::from(vec![60, 40]), rng);
//! let outcome = sim.run(&StopCondition::any_species_extinct());
//! assert!(outcome.stopped_by_condition());
//! assert!(sim.state().count(x0) == 0 || sim.state().count(x1) == 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod distributions;
mod error;
mod network;
mod propensity;
mod reaction;
pub mod simulators;
mod species;
mod state;
mod stop;
mod trajectory;

pub use error::{CrnError, Result};
pub use network::{ReactionNetwork, ValidatedNetwork};
pub use propensity::{propensity, total_propensity, PropensityCache, ReactionDependencies};
pub use reaction::{Reaction, ReactionId, Stoichiometry};
pub use species::{Species, SpeciesId};
pub use state::State;
pub use stop::{RunOutcome, StopCondition, StopReason};
pub use trajectory::{TimePoint, Trajectory};

/// Convenience prelude importing the most commonly used items.
pub mod prelude {
    pub use crate::simulators::{
        GillespieDirect, JumpChain, NextReaction, StochasticSimulator, TauLeaping,
    };
    pub use crate::{
        propensity, total_propensity, Reaction, ReactionId, ReactionNetwork, Species, SpeciesId,
        State, StopCondition, Trajectory, ValidatedNetwork,
    };
}
