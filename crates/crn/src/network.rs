use crate::error::{CrnError, Result};
use crate::reaction::{Reaction, ReactionId};
use crate::species::{Species, SpeciesId};
use crate::state::State;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A chemical reaction network under construction: a set of named species and
/// a list of mass-action reactions over them.
///
/// Networks are built incrementally and then checked with
/// [`ReactionNetwork::validate`], which returns a [`ValidatedNetwork`] — the
/// type accepted by all simulators. This two-step construction keeps the
/// builder flexible while guaranteeing that simulators never observe a
/// malformed network.
///
/// ```
/// use lv_crn::{ReactionNetwork, Reaction};
/// let mut net = ReactionNetwork::new();
/// let a = net.add_species("A");
/// net.add_reaction(Reaction::new(2.0).reactant(a, 1).product(a, 2));
/// let net = net.validate()?;
/// assert_eq!(net.species_count(), 1);
/// assert_eq!(net.reaction_count(), 1);
/// # Ok::<(), lv_crn::CrnError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReactionNetwork {
    species: Vec<Species>,
    reactions: Vec<Reaction>,
}

impl ReactionNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        ReactionNetwork::default()
    }

    /// Adds a species with the given name and returns its id.
    pub fn add_species(&mut self, name: impl Into<String>) -> SpeciesId {
        let id = SpeciesId::new(self.species.len());
        self.species.push(Species::new(id, name));
        id
    }

    /// Adds a reaction and returns its id.
    pub fn add_reaction(&mut self, reaction: Reaction) -> ReactionId {
        let id = ReactionId::new(self.reactions.len());
        self.reactions.push(reaction);
        id
    }

    /// The species added so far.
    pub fn species(&self) -> &[Species] {
        &self.species
    }

    /// The reactions added so far.
    pub fn reactions(&self) -> &[Reaction] {
        &self.reactions
    }

    /// Number of species.
    pub fn species_count(&self) -> usize {
        self.species.len()
    }

    /// Number of reactions.
    pub fn reaction_count(&self) -> usize {
        self.reactions.len()
    }

    /// Checks the network for well-formedness and freezes it.
    ///
    /// # Errors
    ///
    /// * [`CrnError::NoSpecies`] / [`CrnError::NoReactions`] if either list is
    ///   empty.
    /// * [`CrnError::UnknownSpecies`] if a reaction refers to a species id not
    ///   added to this network.
    /// * [`CrnError::InvalidRate`] if a rate constant is negative, NaN or
    ///   infinite.
    /// * [`CrnError::EmptyReaction`] if a reaction has no reactants and no
    ///   products.
    pub fn validate(self) -> Result<ValidatedNetwork> {
        if self.species.is_empty() {
            return Err(CrnError::NoSpecies);
        }
        if self.reactions.is_empty() {
            return Err(CrnError::NoReactions);
        }
        for reaction in &self.reactions {
            if !reaction.rate().is_finite() || reaction.rate() < 0.0 {
                return Err(CrnError::InvalidRate {
                    rate: reaction.rate(),
                });
            }
            if reaction.is_empty() {
                return Err(CrnError::EmptyReaction);
            }
            if let Some(max) = reaction.max_species_index() {
                if max >= self.species.len() {
                    return Err(CrnError::UnknownSpecies {
                        species: max,
                        species_count: self.species.len(),
                    });
                }
            }
        }
        Ok(ValidatedNetwork { inner: self })
    }
}

impl fmt::Display for ReactionNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "reaction network with {} species, {} reactions",
            self.species.len(),
            self.reactions.len()
        )?;
        for r in &self.reactions {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

/// A reaction network that has passed validation and can be simulated.
///
/// Obtained from [`ReactionNetwork::validate`]. All simulators borrow a
/// `ValidatedNetwork`, so a single network can drive many concurrent
/// simulations (it is `Send + Sync`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidatedNetwork {
    inner: ReactionNetwork,
}

impl ValidatedNetwork {
    /// The species of the network.
    pub fn species(&self) -> &[Species] {
        self.inner.species()
    }

    /// The reactions of the network.
    pub fn reactions(&self) -> &[Reaction] {
        self.inner.reactions()
    }

    /// A reaction by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this network.
    pub fn reaction(&self, id: ReactionId) -> &Reaction {
        &self.inner.reactions[id.index()]
    }

    /// Number of species.
    pub fn species_count(&self) -> usize {
        self.inner.species_count()
    }

    /// Number of reactions.
    pub fn reaction_count(&self) -> usize {
        self.inner.reaction_count()
    }

    /// Checks that a state has the right dimension for this network.
    ///
    /// # Errors
    ///
    /// Returns [`CrnError::StateDimensionMismatch`] when it does not.
    pub fn check_state(&self, state: &State) -> Result<()> {
        if state.species_count() != self.species_count() {
            return Err(CrnError::StateDimensionMismatch {
                provided: state.species_count(),
                expected: self.species_count(),
            });
        }
        Ok(())
    }

    /// Looks up a species id by name.
    pub fn species_by_name(&self, name: &str) -> Option<SpeciesId> {
        self.inner
            .species
            .iter()
            .find(|s| s.name() == name)
            .map(|s| s.id())
    }

    /// Gives back the underlying builder, e.g. to add further reactions.
    pub fn into_inner(self) -> ReactionNetwork {
        self.inner
    }
}

impl AsRef<ReactionNetwork> for ValidatedNetwork {
    fn as_ref(&self) -> &ReactionNetwork {
        &self.inner
    }
}

impl fmt::Display for ValidatedNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn birth_death_network() -> ReactionNetwork {
        let mut net = ReactionNetwork::new();
        let a = net.add_species("A");
        net.add_reaction(Reaction::new(1.0).reactant(a, 1).product(a, 2));
        net.add_reaction(Reaction::new(0.5).reactant(a, 1));
        net
    }

    #[test]
    fn add_species_assigns_sequential_ids() {
        let mut net = ReactionNetwork::new();
        assert_eq!(net.add_species("A").index(), 0);
        assert_eq!(net.add_species("B").index(), 1);
        assert_eq!(net.species_count(), 2);
        assert_eq!(net.species()[1].name(), "B");
    }

    #[test]
    fn validate_accepts_well_formed_network() {
        let net = birth_death_network().validate().unwrap();
        assert_eq!(net.species_count(), 1);
        assert_eq!(net.reaction_count(), 2);
        assert_eq!(net.species_by_name("A"), Some(SpeciesId::new(0)));
        assert_eq!(net.species_by_name("missing"), None);
    }

    #[test]
    fn validate_rejects_empty_species() {
        let mut net = ReactionNetwork::new();
        net.add_reaction(Reaction::new(1.0).reactant(SpeciesId::new(0), 1));
        assert_eq!(net.validate().unwrap_err(), CrnError::NoSpecies);
    }

    #[test]
    fn validate_rejects_empty_reactions() {
        let mut net = ReactionNetwork::new();
        net.add_species("A");
        assert_eq!(net.validate().unwrap_err(), CrnError::NoReactions);
    }

    #[test]
    fn validate_rejects_unknown_species() {
        let mut net = ReactionNetwork::new();
        net.add_species("A");
        net.add_reaction(Reaction::new(1.0).reactant(SpeciesId::new(5), 1));
        assert!(matches!(
            net.validate().unwrap_err(),
            CrnError::UnknownSpecies {
                species: 5,
                species_count: 1
            }
        ));
    }

    #[test]
    fn validate_rejects_bad_rates() {
        for rate in [-1.0, f64::NAN, f64::INFINITY] {
            let mut net = ReactionNetwork::new();
            let a = net.add_species("A");
            net.add_reaction(Reaction::new(rate).reactant(a, 1));
            assert!(matches!(
                net.validate().unwrap_err(),
                CrnError::InvalidRate { .. }
            ));
        }
    }

    #[test]
    fn validate_rejects_empty_reaction() {
        let mut net = ReactionNetwork::new();
        net.add_species("A");
        net.add_reaction(Reaction::new(1.0));
        assert_eq!(net.validate().unwrap_err(), CrnError::EmptyReaction);
    }

    #[test]
    fn check_state_dimension() {
        let net = birth_death_network().validate().unwrap();
        assert!(net.check_state(&State::from(vec![5])).is_ok());
        assert!(matches!(
            net.check_state(&State::from(vec![5, 5])).unwrap_err(),
            CrnError::StateDimensionMismatch {
                provided: 2,
                expected: 1
            }
        ));
    }

    #[test]
    fn display_lists_reactions() {
        let net = birth_death_network();
        let text = net.to_string();
        assert!(text.contains("1 species"));
        assert!(text.contains("2 reactions"));
        assert!(text.contains("-->"));
    }

    #[test]
    fn validated_network_roundtrips_to_builder() {
        let net = birth_death_network().validate().unwrap();
        let rebuilt = net.clone().into_inner();
        assert_eq!(rebuilt.reaction_count(), 2);
        assert_eq!(net.as_ref().reaction_count(), 2);
    }

    #[test]
    fn validated_network_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ValidatedNetwork>();
    }
}
