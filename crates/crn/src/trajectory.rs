use crate::species::SpeciesId;
use crate::state::State;
use serde::{Deserialize, Serialize};

/// A `(time, state)` sample along a simulated trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimePoint {
    /// Continuous simulation time (or the event index for discrete-time
    /// simulators).
    pub time: f64,
    /// The configuration at that time.
    pub state: State,
}

/// A recorded stochastic trajectory: an ordered list of `(time, state)`
/// samples.
///
/// Trajectories are recorded by the simulators when asked (see
/// [`StochasticSimulator::run_recording`](crate::simulators::StochasticSimulator::run_recording))
/// and are the raw material for the gap-trajectory and noise-decomposition
/// observables computed in `lv-lotka`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    points: Vec<TimePoint>,
}

impl Trajectory {
    /// Creates an empty trajectory.
    pub fn new() -> Self {
        Trajectory::default()
    }

    /// Appends a sample.
    pub fn push(&mut self, time: f64, state: State) {
        self.points.push(TimePoint { time, state });
    }

    /// The recorded samples in order.
    pub fn points(&self) -> &[TimePoint] {
        &self.points
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The last recorded sample, if any.
    pub fn last(&self) -> Option<&TimePoint> {
        self.points.last()
    }

    /// The time series of a single species' counts.
    pub fn species_series(&self, species: SpeciesId) -> Vec<(f64, u64)> {
        self.points
            .iter()
            .map(|p| (p.time, p.state.count(species)))
            .collect()
    }

    /// The time series of the signed gap `count(a) − count(b)`.
    ///
    /// For the two-species Lotka–Volterra chains this is the paper's gap
    /// process `∆_t = S_{t,0} − S_{t,1}`.
    pub fn gap_series(&self, a: SpeciesId, b: SpeciesId) -> Vec<(f64, i64)> {
        self.points
            .iter()
            .map(|p| (p.time, p.state.count(a) as i64 - p.state.count(b) as i64))
            .collect()
    }

    /// The state at the latest sample with `time <= t`, if any (trajectories
    /// are piecewise constant between events).
    pub fn state_at(&self, t: f64) -> Option<&State> {
        self.points
            .iter()
            .rev()
            .find(|p| p.time <= t)
            .map(|p| &p.state)
    }

    /// Iterates over the recorded samples.
    pub fn iter(&self) -> std::slice::Iter<'_, TimePoint> {
        self.points.iter()
    }
}

impl IntoIterator for Trajectory {
    type Item = TimePoint;
    type IntoIter = std::vec::IntoIter<TimePoint>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trajectory {
    type Item = &'a TimePoint;
    type IntoIter = std::slice::Iter<'a, TimePoint>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

impl FromIterator<(f64, State)> for Trajectory {
    fn from_iter<T: IntoIterator<Item = (f64, State)>>(iter: T) -> Self {
        let mut trajectory = Trajectory::new();
        for (time, state) in iter {
            trajectory.push(time, state);
        }
        trajectory
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: usize) -> SpeciesId {
        SpeciesId::new(i)
    }

    fn example() -> Trajectory {
        vec![
            (0.0, State::from(vec![5, 5])),
            (0.5, State::from(vec![6, 5])),
            (1.5, State::from(vec![6, 4])),
            (2.0, State::from(vec![6, 3])),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn push_and_len() {
        let mut t = Trajectory::new();
        assert!(t.is_empty());
        t.push(0.0, State::from(vec![1]));
        t.push(1.0, State::from(vec![2]));
        assert_eq!(t.len(), 2);
        assert_eq!(t.last().unwrap().time, 1.0);
    }

    #[test]
    fn species_series_extracts_counts() {
        let t = example();
        let series = t.species_series(s(1));
        assert_eq!(series, vec![(0.0, 5), (0.5, 5), (1.5, 4), (2.0, 3)]);
    }

    #[test]
    fn gap_series_is_signed_difference() {
        let t = example();
        let gaps = t.gap_series(s(0), s(1));
        assert_eq!(gaps, vec![(0.0, 0), (0.5, 1), (1.5, 2), (2.0, 3)]);
        // Reversed order gives the negated gap.
        let gaps_rev = t.gap_series(s(1), s(0));
        assert_eq!(gaps_rev[3].1, -3);
    }

    #[test]
    fn state_at_uses_piecewise_constant_semantics() {
        let t = example();
        assert_eq!(t.state_at(0.0).unwrap().counts(), &[5, 5]);
        assert_eq!(t.state_at(0.7).unwrap().counts(), &[6, 5]);
        assert_eq!(t.state_at(10.0).unwrap().counts(), &[6, 3]);
        assert!(t.state_at(-0.1).is_none());
    }

    #[test]
    fn iteration_works_by_ref_and_by_value() {
        let t = example();
        assert_eq!((&t).into_iter().count(), 4);
        assert_eq!(t.iter().count(), 4);
        assert_eq!(t.into_iter().count(), 4);
    }
}
