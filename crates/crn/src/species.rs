use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a species within a [`ReactionNetwork`](crate::ReactionNetwork).
///
/// Species ids are small indices handed out by
/// [`ReactionNetwork::add_species`](crate::ReactionNetwork::add_species) in
/// insertion order; they index directly into [`State`](crate::State) count
/// vectors.
///
/// ```
/// use lv_crn::ReactionNetwork;
/// let mut net = ReactionNetwork::new();
/// let a = net.add_species("A");
/// let b = net.add_species("B");
/// assert_eq!(a.index(), 0);
/// assert_eq!(b.index(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SpeciesId(pub(crate) usize);

impl SpeciesId {
    /// Creates a species id from a raw index.
    ///
    /// Prefer obtaining ids from
    /// [`ReactionNetwork::add_species`](crate::ReactionNetwork::add_species);
    /// this constructor exists for callers that build states directly.
    pub fn new(index: usize) -> Self {
        SpeciesId(index)
    }

    /// The zero-based index of this species in the network.
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for SpeciesId {
    fn from(index: usize) -> Self {
        SpeciesId(index)
    }
}

impl fmt::Display for SpeciesId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// A named species of a reaction network.
///
/// `Species` couples a [`SpeciesId`] with a human-readable name; it is what
/// [`ReactionNetwork::species`](crate::ReactionNetwork::species) returns.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Species {
    id: SpeciesId,
    name: String,
}

impl Species {
    /// Creates a new species with the given id and name.
    pub fn new(id: SpeciesId, name: impl Into<String>) -> Self {
        Species {
            id,
            name: name.into(),
        }
    }

    /// The identifier of this species.
    pub fn id(&self) -> SpeciesId {
        self.id
    }

    /// The human-readable name of this species.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for Species {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn species_id_roundtrips_index() {
        let id = SpeciesId::new(5);
        assert_eq!(id.index(), 5);
        assert_eq!(SpeciesId::from(5), id);
    }

    #[test]
    fn species_id_display_is_stable() {
        assert_eq!(SpeciesId::new(3).to_string(), "S3");
    }

    #[test]
    fn species_exposes_name_and_id() {
        let s = Species::new(SpeciesId::new(1), "X1");
        assert_eq!(s.id(), SpeciesId::new(1));
        assert_eq!(s.name(), "X1");
        assert_eq!(s.to_string(), "X1");
    }

    #[test]
    fn species_id_orders_by_index() {
        assert!(SpeciesId::new(0) < SpeciesId::new(1));
        assert!(SpeciesId::new(2) > SpeciesId::new(1));
    }

    #[test]
    fn species_id_serde_roundtrip() {
        let id = SpeciesId::new(7);
        let json = serde_json_like(&id);
        assert_eq!(json, "7");
    }

    /// Minimal check that the Serialize impl emits the transparent index.
    fn serde_json_like(id: &SpeciesId) -> String {
        // serde_json is not a dependency; use the Debug of the inner index.
        format!("{}", id.index())
    }
}
