use crate::species::SpeciesId;
use crate::state::State;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A condition under which a simulation run stops.
///
/// Stop conditions are evaluated after every simulated event. Several simple
/// conditions are provided; arbitrary predicates over the state can be
/// supplied with [`StopCondition::predicate`], and conditions can be combined
/// with [`StopCondition::or`].
///
/// The paper's central stopping time is the *consensus time*
/// `T(S) = inf{t : S_t has reached consensus}`, i.e. the first time some
/// species count hits zero — that is [`StopCondition::any_species_extinct`].
#[derive(Clone)]
pub struct StopCondition {
    kinds: Vec<StopKind>,
    max_events: Option<u64>,
    max_time: Option<f64>,
}

#[derive(Clone)]
enum StopKind {
    AnySpeciesExtinct,
    SpeciesExtinct(SpeciesId),
    TotalAtLeast(u64),
    TotalIsZero,
    AtMostOneAlive,
    Predicate(Arc<dyn Fn(&State) -> bool + Send + Sync>),
}

impl fmt::Debug for StopCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StopCondition")
            .field("conditions", &self.kinds.len())
            .field("max_events", &self.max_events)
            .field("max_time", &self.max_time)
            .finish()
    }
}

impl StopCondition {
    fn from_kind(kind: StopKind) -> Self {
        StopCondition {
            kinds: vec![kind],
            max_events: None,
            max_time: None,
        }
    }

    /// Stop as soon as any species count reaches zero (the paper's consensus
    /// time).
    pub fn any_species_extinct() -> Self {
        StopCondition::from_kind(StopKind::AnySpeciesExtinct)
    }

    /// Stop as soon as the given species count reaches zero.
    pub fn species_extinct(species: SpeciesId) -> Self {
        StopCondition::from_kind(StopKind::SpeciesExtinct(species))
    }

    /// Stop as soon as the total population reaches at least `threshold`.
    pub fn total_at_least(threshold: u64) -> Self {
        StopCondition::from_kind(StopKind::TotalAtLeast(threshold))
    }

    /// Stop when every species is extinct (the whole population has died out).
    pub fn total_extinction() -> Self {
        StopCondition::from_kind(StopKind::TotalIsZero)
    }

    /// Stop as soon as at most one species is still alive — *plurality
    /// consensus* for `k`-species populations. For two species this is
    /// equivalent to [`StopCondition::any_species_extinct`]; for `k > 2` a
    /// single extinction does not end the contest, this condition does.
    pub fn consensus() -> Self {
        StopCondition::from_kind(StopKind::AtMostOneAlive)
    }

    /// Stop when the given predicate over the state becomes true.
    pub fn predicate(f: impl Fn(&State) -> bool + Send + Sync + 'static) -> Self {
        StopCondition::from_kind(StopKind::Predicate(Arc::new(f)))
    }

    /// A condition that never triggers on the state; combine with
    /// [`with_max_events`](StopCondition::with_max_events) or
    /// [`with_max_time`](StopCondition::with_max_time) to build pure budget
    /// limits.
    pub fn never() -> Self {
        StopCondition {
            kinds: Vec::new(),
            max_events: None,
            max_time: None,
        }
    }

    /// Additionally stop after at most `events` simulated events (a safety
    /// budget; the run is then marked as truncated).
    pub fn with_max_events(mut self, events: u64) -> Self {
        self.max_events = Some(events);
        self
    }

    /// Additionally stop once the simulated (continuous) time exceeds `time`.
    pub fn with_max_time(mut self, time: f64) -> Self {
        self.max_time = Some(time);
        self
    }

    /// Combines two conditions; the run stops when either triggers.
    pub fn or(mut self, other: StopCondition) -> Self {
        self.kinds.extend(other.kinds);
        self.max_events = match (self.max_events, other.max_events) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max_time = match (self.max_time, other.max_time) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self
    }

    /// Whether the state-based part of the condition holds in `state`.
    pub fn is_met(&self, state: &State) -> bool {
        self.kinds.iter().any(|kind| match kind {
            StopKind::AnySpeciesExtinct => state.any_extinct(),
            StopKind::SpeciesExtinct(s) => state.is_extinct(*s),
            StopKind::TotalAtLeast(t) => state.total() >= *t,
            StopKind::TotalIsZero => state.total() == 0,
            StopKind::AtMostOneAlive => {
                state.counts().iter().filter(|&&count| count > 0).count() <= 1
            }
            StopKind::Predicate(f) => f(state),
        })
    }

    /// The event budget, if any.
    pub fn max_events(&self) -> Option<u64> {
        self.max_events
    }

    /// The simulated-time budget, if any.
    pub fn max_time(&self) -> Option<f64> {
        self.max_time
    }
}

/// Why a simulation run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The state-based stop condition was met.
    ConditionMet,
    /// The event budget was exhausted before the condition was met.
    MaxEventsReached,
    /// The simulated-time budget was exhausted before the condition was met.
    MaxTimeReached,
    /// The process became absorbed: no reaction has positive propensity.
    Absorbed,
}

/// Summary of a completed simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Why the run stopped.
    pub reason: StopReason,
    /// Number of events (reactions fired) during the run.
    pub events: u64,
    /// Continuous simulation time at the end of the run (0 for pure
    /// discrete-time simulators).
    pub time: f64,
    /// Final state of the run.
    pub final_state: State,
}

impl RunOutcome {
    /// Whether the run stopped because the stop condition was met.
    pub fn stopped_by_condition(&self) -> bool {
        self.reason == StopReason::ConditionMet
    }

    /// Whether the run stopped because the process was absorbed (no reaction
    /// can fire), e.g. the whole population went extinct.
    pub fn absorbed(&self) -> bool {
        self.reason == StopReason::Absorbed
    }

    /// Whether the run exhausted an event or time budget without meeting the
    /// condition.
    pub fn truncated(&self) -> bool {
        matches!(
            self.reason,
            StopReason::MaxEventsReached | StopReason::MaxTimeReached
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_species_extinct_triggers_on_zero_count() {
        let cond = StopCondition::any_species_extinct();
        assert!(!cond.is_met(&State::from(vec![2, 3])));
        assert!(cond.is_met(&State::from(vec![0, 3])));
    }

    #[test]
    fn species_extinct_targets_one_species() {
        let cond = StopCondition::species_extinct(SpeciesId::new(1));
        assert!(!cond.is_met(&State::from(vec![0, 3])));
        assert!(cond.is_met(&State::from(vec![5, 0])));
    }

    #[test]
    fn total_at_least_and_total_extinction() {
        assert!(StopCondition::total_at_least(10).is_met(&State::from(vec![6, 4])));
        assert!(!StopCondition::total_at_least(11).is_met(&State::from(vec![6, 4])));
        assert!(StopCondition::total_extinction().is_met(&State::from(vec![0, 0])));
        assert!(!StopCondition::total_extinction().is_met(&State::from(vec![0, 1])));
    }

    #[test]
    fn consensus_triggers_when_at_most_one_species_lives() {
        let cond = StopCondition::consensus();
        assert!(!cond.is_met(&State::from(vec![2, 3])));
        assert!(cond.is_met(&State::from(vec![0, 3])));
        // For k > 2 a single extinction is not consensus.
        assert!(!cond.is_met(&State::from(vec![0, 3, 1])));
        assert!(cond.is_met(&State::from(vec![0, 3, 0])));
        assert!(cond.is_met(&State::from(vec![0, 0, 0])));
    }

    #[test]
    fn predicate_condition() {
        let cond = StopCondition::predicate(|s: &State| s.count(SpeciesId::new(0)) > 100);
        assert!(!cond.is_met(&State::from(vec![100])));
        assert!(cond.is_met(&State::from(vec![101])));
    }

    #[test]
    fn never_condition_with_budgets() {
        let cond = StopCondition::never()
            .with_max_events(10)
            .with_max_time(2.0);
        assert!(!cond.is_met(&State::from(vec![0, 0])));
        assert_eq!(cond.max_events(), Some(10));
        assert_eq!(cond.max_time(), Some(2.0));
    }

    #[test]
    fn or_combines_conditions_and_tightens_budgets() {
        let a = StopCondition::any_species_extinct().with_max_events(100);
        let b = StopCondition::total_at_least(1000)
            .with_max_events(50)
            .with_max_time(7.0);
        let combined = a.or(b);
        assert!(combined.is_met(&State::from(vec![0, 5])));
        assert!(combined.is_met(&State::from(vec![600, 500])));
        assert!(!combined.is_met(&State::from(vec![600, 300])));
        assert_eq!(combined.max_events(), Some(50));
        assert_eq!(combined.max_time(), Some(7.0));
    }

    #[test]
    fn outcome_classification() {
        let base = RunOutcome {
            reason: StopReason::ConditionMet,
            events: 5,
            time: 1.0,
            final_state: State::from(vec![0, 1]),
        };
        assert!(base.stopped_by_condition());
        assert!(!base.truncated());
        let truncated = RunOutcome {
            reason: StopReason::MaxEventsReached,
            ..base.clone()
        };
        assert!(truncated.truncated());
        let absorbed = RunOutcome {
            reason: StopReason::Absorbed,
            ..base
        };
        assert!(absorbed.absorbed());
    }

    #[test]
    fn stop_condition_debug_is_nonempty() {
        let cond = StopCondition::any_species_extinct().with_max_events(3);
        let text = format!("{cond:?}");
        assert!(text.contains("StopCondition"));
    }
}
