//! Small sampling utilities used by the stochastic simulators.
//!
//! The workspace deliberately restricts third-party dependencies to a small
//! offline set; `rand_distr` is not among them, so the few distributions the
//! simulators need (exponential waiting times for Gillespie-style methods,
//! Poisson event counts for tau-leaping) are implemented here with standard
//! textbook algorithms.

use rand::Rng;

/// Samples an exponential random variable with the given rate via inverse
/// transform sampling.
///
/// Returns `f64::INFINITY` when `rate <= 0`, mirroring the convention that a
/// reaction with zero propensity never fires.
///
/// # Panics
///
/// Panics if `rate` is NaN.
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = lv_crn::distributions::sample_exponential(&mut rng, 2.0);
/// assert!(x >= 0.0);
/// ```
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(!rate.is_nan(), "exponential rate must not be NaN");
    if rate <= 0.0 {
        return f64::INFINITY;
    }
    // u ∈ (0, 1]: avoid ln(0).
    let u: f64 = 1.0 - rng.gen::<f64>();
    -u.ln() / rate
}

/// Means at or above this bound use the PTRS rejection sampler; below it
/// Knuth's product-of-uniforms loop is both exact and cheaper (its expected
/// iteration count is `mean + 1`).
const PTRS_MIN_MEAN: f64 = 10.0;

/// `ln k!` for the PTRS acceptance test: process-wide table for `k < 1024`
/// (covers every tau-leaping firing count up to means of several hundred),
/// Stirling series — one `ln` call, relative error `< 1e-12` — beyond.
fn ln_factorial(k: u64) -> f64 {
    static TABLE: std::sync::OnceLock<Vec<f64>> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = vec![0.0f64; 1024];
        for i in 2..table.len() {
            table[i] = table[i - 1] + (i as f64).ln();
        }
        table
    });
    if let Some(&value) = table.get(k as usize) {
        return value;
    }
    let x = k as f64;
    let inv = 1.0 / x;
    let inv3 = inv * inv * inv;
    (x + 0.5) * x.ln() - x + 0.918_938_533_204_672_7 + inv / 12.0 - inv3 / 360.0
        + inv3 * inv * inv / 1260.0
}

/// Samples a Poisson random variable with the given mean, exact in law at
/// **all** means: Knuth's product-of-uniforms method below mean 10 and the
/// PTRS transformed-rejection sampler (Hörmann) — constant expected
/// iterations, no normal approximation — above.
///
/// One-shot convenience over [`PoissonSampler`]; tau-leaping loops that draw
/// many counts at slowly-changing propensities should prepare the sampler
/// once per distinct mean.
///
/// # Panics
///
/// Panics if `mean` is negative or NaN.
pub fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    PoissonSampler::new(mean).sample(rng)
}

/// The per-mean kernel of a [`PoissonSampler`].
#[derive(Debug, Clone, Copy, PartialEq)]
enum PoissonKernel {
    /// `mean == 0`: always zero, consumes no randomness.
    Zero,
    /// Knuth's product-of-uniforms loop with the cached threshold
    /// `e^{-mean}`.
    Knuth { threshold: f64 },
    /// Hörmann's PTRS transformed rejection (mean ≥ 10): constant expected
    /// iterations independent of the mean.
    Ptrs {
        mean: f64,
        log_mean: f64,
        /// Hat slope parameter.
        a: f64,
        /// Hat width parameter `0.931 + 2.53·√mean`.
        b: f64,
        /// Inverse hat normalization `1.1239 + 1.1328/(b − 3.4)`.
        inv_alpha: f64,
        /// Squeeze acceptance bound on `v`.
        v_r: f64,
    },
}

/// A prepared Poisson sampler: the kernel choice and its setup constants
/// (threshold for Knuth, hat/squeeze parameters for PTRS) are computed once
/// in [`PoissonSampler::new`], after which every
/// [`sample`](PoissonSampler::sample) runs in constant expected time for
/// means ≥ 10 and `O(mean)` below. Equal in distribution — and bit-equal in
/// RNG stream — to the one-shot [`sample_poisson`], which delegates here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonSampler {
    mean: f64,
    kernel: PoissonKernel,
}

impl PoissonSampler {
    /// Prepares a sampler for `Poisson(mean)`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is negative or NaN.
    pub fn new(mean: f64) -> Self {
        assert!(mean >= 0.0, "Poisson mean must be non-negative");
        let kernel = if mean == 0.0 {
            PoissonKernel::Zero
        } else if mean < PTRS_MIN_MEAN {
            PoissonKernel::Knuth {
                threshold: (-mean).exp(),
            }
        } else {
            let b = 0.931 + 2.53 * mean.sqrt();
            PoissonKernel::Ptrs {
                mean,
                log_mean: mean.ln(),
                a: -0.059 + 0.02483 * b,
                b,
                inv_alpha: 1.1239 + 1.1328 / (b - 3.4),
                v_r: 0.9277 - 3.6224 / (b - 2.0),
            }
        };
        PoissonSampler { mean, kernel }
    }

    /// The mean this sampler was prepared for.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Whether this sampler was prepared for exactly this mean.
    #[inline]
    pub fn matches(&self, mean: f64) -> bool {
        self.mean == mean
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match self.kernel {
            PoissonKernel::Zero => 0,
            PoissonKernel::Knuth { threshold } => {
                // Knuth: multiply uniforms until the product drops below
                // e^{-mean}.
                let mut count = 0u64;
                let mut product = 1.0;
                loop {
                    product *= rng.gen::<f64>();
                    if product <= threshold {
                        return count;
                    }
                    count += 1;
                }
            }
            PoissonKernel::Ptrs {
                mean,
                log_mean,
                a,
                b,
                inv_alpha,
                v_r,
            } => loop {
                let u: f64 = rng.gen::<f64>() - 0.5;
                let v: f64 = rng.gen();
                let us = 0.5 - u.abs();
                let kf = ((2.0 * a / us + b) * u + mean + 0.43).floor();
                // Squeeze acceptance: most iterations end here.
                if us >= 0.07 && v <= v_r {
                    return kf as u64;
                }
                if kf < 0.0 || (us < 0.013 && v > us) {
                    continue;
                }
                let k = kf as u64;
                if (v * inv_alpha / (a / (us * us) + b)).ln()
                    <= kf * log_mean - mean - ln_factorial(k)
                {
                    return k;
                }
            },
        }
    }
}

/// Samples a standard normal random variable using the Box–Muller transform.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 ∈ (0, 1] so that ln(u1) is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples an index proportionally to the given non-negative weights.
///
/// Returns `None` if all weights are zero (or the slice is empty).
pub fn sample_weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
    if total <= 0.0 {
        return None;
    }
    let target = rng.gen::<f64>() * total;
    let mut acc = 0.0;
    let mut last_positive = None;
    for (i, &w) in weights.iter().enumerate() {
        if w > 0.0 {
            acc += w;
            last_positive = Some(i);
            if target < acc {
                return Some(i);
            }
        }
    }
    last_positive
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut r = rng(11);
        let rate = 4.0;
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| sample_exponential(&mut r, rate))
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 0.01,
            "empirical mean {mean} far from {}",
            1.0 / rate
        );
    }

    #[test]
    fn exponential_zero_rate_is_infinite() {
        let mut r = rng(1);
        assert!(sample_exponential(&mut r, 0.0).is_infinite());
        assert!(sample_exponential(&mut r, -1.0).is_infinite());
    }

    #[test]
    fn exponential_samples_are_non_negative() {
        let mut r = rng(2);
        for _ in 0..1000 {
            assert!(sample_exponential(&mut r, 0.5) >= 0.0);
        }
    }

    #[test]
    fn poisson_small_mean_matches_moments() {
        let mut r = rng(3);
        let mean = 3.5;
        let n = 20_000;
        let samples: Vec<u64> = (0..n).map(|_| sample_poisson(&mut r, mean)).collect();
        let m: f64 = samples.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / n as f64;
        assert!((m - mean).abs() < 0.1, "mean {m}");
        assert!((var - mean).abs() < 0.25, "variance {var}");
    }

    #[test]
    fn poisson_large_mean_matches_moments_through_ptrs() {
        let mut r = rng(4);
        let mean = 400.0;
        let n = 5_000;
        let samples: Vec<u64> = (0..n).map(|_| sample_poisson(&mut r, mean)).collect();
        let m: f64 = samples.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / n as f64;
        assert!((m - mean).abs() < 3.0, "mean {m}");
        assert!((var - mean).abs() < 0.1 * mean, "variance {var}");
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut r = rng(5);
        assert_eq!(sample_poisson(&mut r, 0.0), 0);
    }

    /// χ² of the sampler against the exact pmf at means straddling the
    /// Knuth → PTRS threshold (10), pinning both kernels to the same law.
    #[test]
    fn poisson_distribution_matches_exact_pmf_across_the_kernel_threshold() {
        for (seed, mean) in [(21u64, 8.0f64), (22, 10.0), (23, 12.0), (24, 40.0)] {
            let mut r = rng(seed);
            let trials = 60_000u64;
            let cap = (mean + 10.0 * mean.sqrt()) as usize + 2;
            let mut observed = vec![0u64; cap];
            for _ in 0..trials {
                let k = sample_poisson(&mut r, mean) as usize;
                if k < cap {
                    observed[k] += 1;
                }
            }
            // pmf by the recurrence p(k) = p(k−1)·mean/k from p(0) = e^{−mean}.
            let mut chi2 = 0.0;
            let mut dof = 0usize;
            let mut pmf = (-mean).exp();
            for (k, &count) in observed.iter().enumerate() {
                if k > 0 {
                    pmf *= mean / k as f64;
                }
                let expected = pmf * trials as f64;
                if expected >= 5.0 {
                    chi2 += (count as f64 - expected).powi(2) / expected;
                    dof += 1;
                }
            }
            assert!(
                chi2 < 2.0 * dof as f64 + 20.0,
                "mean {mean}: χ² = {chi2} over {dof} cells"
            );
        }
    }

    #[test]
    fn prepared_poisson_matches_one_shot_stream_bit_for_bit() {
        for mean in [0.0f64, 3.5, 9.9, 10.0, 400.0] {
            let sampler = PoissonSampler::new(mean);
            assert!(sampler.matches(mean));
            assert_eq!(sampler.mean(), mean);
            let mut r1 = rng(31);
            let mut r2 = rng(31);
            for _ in 0..500 {
                assert_eq!(sampler.sample(&mut r1), sample_poisson(&mut r2, mean));
            }
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng(6);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut r)).collect();
        let m: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n as f64;
        assert!(m.abs() < 0.02, "mean {m}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = rng(7);
        let weights = [1.0, 0.0, 3.0];
        let n = 40_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[sample_weighted_index(&mut r, &weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let frac0 = counts[0] as f64 / n as f64;
        assert!((frac0 - 0.25).abs() < 0.02, "fraction {frac0}");
    }

    #[test]
    fn weighted_index_none_for_zero_weights() {
        let mut r = rng(8);
        assert_eq!(sample_weighted_index(&mut r, &[0.0, 0.0]), None);
        assert_eq!(sample_weighted_index(&mut r, &[]), None);
    }
}
