//! Small sampling utilities used by the stochastic simulators.
//!
//! The workspace deliberately restricts third-party dependencies to a small
//! offline set; `rand_distr` is not among them, so the few distributions the
//! simulators need (exponential waiting times for Gillespie-style methods,
//! Poisson event counts for tau-leaping) are implemented here with standard
//! textbook algorithms.

use rand::Rng;

/// Samples an exponential random variable with the given rate via inverse
/// transform sampling.
///
/// Returns `f64::INFINITY` when `rate <= 0`, mirroring the convention that a
/// reaction with zero propensity never fires.
///
/// # Panics
///
/// Panics if `rate` is NaN.
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = lv_crn::distributions::sample_exponential(&mut rng, 2.0);
/// assert!(x >= 0.0);
/// ```
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(!rate.is_nan(), "exponential rate must not be NaN");
    if rate <= 0.0 {
        return f64::INFINITY;
    }
    // u ∈ (0, 1]: avoid ln(0).
    let u: f64 = 1.0 - rng.gen::<f64>();
    -u.ln() / rate
}

/// Samples a Poisson random variable with the given mean.
///
/// Uses Knuth's product-of-uniforms method for small means and a
/// normal approximation (rounded, clamped at zero) for large means, which is
/// accurate to within the tau-leaping error budget for `mean > 64`.
///
/// # Panics
///
/// Panics if `mean` is negative or NaN.
pub fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    assert!(mean >= 0.0, "Poisson mean must be non-negative");
    if mean == 0.0 {
        return 0;
    }
    if mean <= 64.0 {
        // Knuth: multiply uniforms until the product drops below e^{-mean}.
        let threshold = (-mean).exp();
        let mut count = 0u64;
        let mut product = 1.0;
        loop {
            product *= rng.gen::<f64>();
            if product <= threshold {
                return count;
            }
            count += 1;
        }
    } else {
        // Normal approximation with continuity correction.
        let z = sample_standard_normal(rng);
        let value = mean + mean.sqrt() * z + 0.5;
        if value <= 0.0 {
            0
        } else {
            value.floor() as u64
        }
    }
}

/// Samples a standard normal random variable using the Box–Muller transform.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 ∈ (0, 1] so that ln(u1) is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples an index proportionally to the given non-negative weights.
///
/// Returns `None` if all weights are zero (or the slice is empty).
pub fn sample_weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
    if total <= 0.0 {
        return None;
    }
    let target = rng.gen::<f64>() * total;
    let mut acc = 0.0;
    let mut last_positive = None;
    for (i, &w) in weights.iter().enumerate() {
        if w > 0.0 {
            acc += w;
            last_positive = Some(i);
            if target < acc {
                return Some(i);
            }
        }
    }
    last_positive
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut r = rng(11);
        let rate = 4.0;
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| sample_exponential(&mut r, rate))
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 0.01,
            "empirical mean {mean} far from {}",
            1.0 / rate
        );
    }

    #[test]
    fn exponential_zero_rate_is_infinite() {
        let mut r = rng(1);
        assert!(sample_exponential(&mut r, 0.0).is_infinite());
        assert!(sample_exponential(&mut r, -1.0).is_infinite());
    }

    #[test]
    fn exponential_samples_are_non_negative() {
        let mut r = rng(2);
        for _ in 0..1000 {
            assert!(sample_exponential(&mut r, 0.5) >= 0.0);
        }
    }

    #[test]
    fn poisson_small_mean_matches_moments() {
        let mut r = rng(3);
        let mean = 3.5;
        let n = 20_000;
        let samples: Vec<u64> = (0..n).map(|_| sample_poisson(&mut r, mean)).collect();
        let m: f64 = samples.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / n as f64;
        assert!((m - mean).abs() < 0.1, "mean {m}");
        assert!((var - mean).abs() < 0.25, "variance {var}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_approximation() {
        let mut r = rng(4);
        let mean = 400.0;
        let n = 5_000;
        let samples: Vec<u64> = (0..n).map(|_| sample_poisson(&mut r, mean)).collect();
        let m: f64 = samples.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        assert!((m - mean).abs() < 3.0, "mean {m}");
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut r = rng(5);
        assert_eq!(sample_poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng(6);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut r)).collect();
        let m: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n as f64;
        assert!(m.abs() < 0.02, "mean {m}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = rng(7);
        let weights = [1.0, 0.0, 3.0];
        let n = 40_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[sample_weighted_index(&mut r, &weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let frac0 = counts[0] as f64 / n as f64;
        assert!((frac0 - 0.25).abs() < 0.02, "fraction {frac0}");
    }

    #[test]
    fn weighted_index_none_for_zero_weights() {
        let mut r = rng(8);
        assert_eq!(sample_weighted_index(&mut r, &[0.0, 0.0]), None);
        assert_eq!(sample_weighted_index(&mut r, &[]), None);
    }
}
