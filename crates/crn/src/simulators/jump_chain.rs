use crate::network::ValidatedNetwork;
use crate::propensity::{PropensityCache, ReactionDependencies};
use crate::reaction::ReactionId;
use crate::simulators::{Event, StochasticSimulator};
use crate::state::State;
use rand::Rng;
use std::fmt;

/// The embedded discrete-time jump chain of the stochastic kinetics.
///
/// This is the chain `S = (S_t)_{t ≥ 0}` the paper analyses (Section 1.3): at
/// each step the next reaction `R` is chosen with probability
/// `φ_R(x)/φ(x)`, without sampling the exponential holding time. The
/// [`time`](StochasticSimulator::time) of this simulator is therefore the
/// number of reactions fired so far — `S_t` represents the counts after `t`
/// reactions.
///
/// Jump-chain sampling and the Gillespie direct method visit the same sequence
/// of states in distribution; only the clock differs. For questions about the
/// *number of events* before consensus (the paper's `T(S)`, `I(S)`, `K(S)`,
/// `J(S)`), the jump chain is the natural simulator and is what `lv-lotka`
/// uses by default.
///
/// Propensity maintenance is *reaction-local* (Gibson–Bruck style), exactly
/// as in [`GillespieDirect`](crate::simulators::GillespieDirect): after a
/// firing only the propensities in the fired reaction's
/// [`ReactionDependencies`] set are recomputed, which is bit-identical to a
/// full recomputation and therefore perturbs no RNG stream.
pub struct JumpChain<'a, R> {
    network: &'a ValidatedNetwork,
    state: State,
    events: u64,
    rng: R,
    cache: PropensityCache,
    dependencies: ReactionDependencies,
    /// The reaction fired by the previous step, whose dependency set is the
    /// only part of the cache that can be stale. `None` before the first
    /// step (full refresh required).
    last_fired: Option<usize>,
}

impl<'a, R: fmt::Debug> fmt::Debug for JumpChain<'a, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JumpChain")
            .field("state", &self.state)
            .field("events", &self.events)
            .finish()
    }
}

impl<'a, R: Rng> JumpChain<'a, R> {
    /// Creates a jump-chain simulator for the network starting in `initial`.
    ///
    /// # Panics
    ///
    /// Panics if the state dimension does not match the network.
    pub fn new(network: &'a ValidatedNetwork, initial: State, rng: R) -> Self {
        network
            .check_state(&initial)
            .expect("initial state must match the network dimension");
        JumpChain {
            network,
            state: initial,
            events: 0,
            rng,
            cache: PropensityCache::new(),
            dependencies: ReactionDependencies::new(network),
            last_fired: None,
        }
    }

    /// The network being simulated.
    pub fn network(&self) -> &'a ValidatedNetwork {
        self.network
    }

    /// The transition probability `P(x, ·)` of each reaction from the current
    /// state, in network reaction order. All zeros when the state is
    /// absorbing.
    pub fn transition_probabilities(&mut self) -> Vec<f64> {
        let total = self.cache.refresh(self.network, &self.state);
        if total <= 0.0 {
            return vec![0.0; self.network.reaction_count()];
        }
        self.cache.values().iter().map(|v| v / total).collect()
    }
}

impl<'a, R: Rng> StochasticSimulator for JumpChain<'a, R> {
    fn state(&self) -> &State {
        &self.state
    }

    /// For the jump chain, time is the number of steps taken.
    fn time(&self) -> f64 {
        self.events as f64
    }

    fn events(&self) -> u64 {
        self.events
    }

    fn step(&mut self) -> Option<Event> {
        let total = match self.last_fired {
            Some(fired) => self.cache.refresh_affected(
                self.network,
                &self.state,
                self.dependencies.affected(fired),
            ),
            None => self.cache.refresh(self.network, &self.state),
        };
        if total <= 0.0 {
            return None;
        }
        let target = self.rng.gen::<f64>() * total;
        let index = self.cache.select(target)?;
        let reaction = &self.network.reactions()[index];
        self.state
            .apply(reaction)
            .expect("selected reaction must be applicable: propensity was positive");
        self.last_fired = Some(index);
        self.events += 1;
        Some(Event::fired(ReactionId::new(index), self.events as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ReactionNetwork;
    use crate::reaction::Reaction;
    use crate::stop::StopCondition;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// Two-species self-destructive LV network with unit rates.
    fn lv_network() -> crate::ValidatedNetwork {
        let mut net = ReactionNetwork::new();
        let x0 = net.add_species("X0");
        let x1 = net.add_species("X1");
        for (a, b) in [(x0, x1), (x1, x0)] {
            net.add_reaction(Reaction::new(1.0).reactant(a, 1).product(a, 2));
            net.add_reaction(Reaction::new(1.0).reactant(a, 1));
            net.add_reaction(Reaction::new(1.0).reactant(a, 1).reactant(b, 1));
        }
        net.validate().unwrap()
    }

    #[test]
    fn time_equals_event_count() {
        // Start large enough that no species can go extinct within the 50
        // observed steps (each event removes at most two individuals), so the
        // test is robust to the RNG stream.
        let net = lv_network();
        let mut sim = JumpChain::new(&net, State::from(vec![300, 200]), rng(1));
        for expected in 1..=50u64 {
            let event = sim.step().unwrap();
            assert_eq!(event.time, expected as f64);
            assert_eq!(sim.events(), expected);
            assert_eq!(sim.time(), expected as f64);
        }
    }

    #[test]
    fn transition_probabilities_sum_to_one() {
        let net = lv_network();
        let mut sim = JumpChain::new(&net, State::from(vec![10, 7]), rng(2));
        let probs = sim.transition_probabilities();
        let sum: f64 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "sum {sum}");
        assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn transition_probabilities_zero_in_absorbing_state() {
        let net = lv_network();
        let mut sim = JumpChain::new(&net, State::from(vec![0, 0]), rng(3));
        let probs = sim.transition_probabilities();
        assert!(probs.iter().all(|&p| p == 0.0));
        assert!(sim.step().is_none());
    }

    #[test]
    fn per_step_transition_probabilities_match_paper_formula() {
        // In state (a, b) with all rates one:
        //   birth of X0: a / φ, death of X0: a / φ, competition (X0+X1): ab / φ, ...
        // with φ = 2(a + b) + 2ab.
        let net = lv_network();
        let mut sim = JumpChain::new(&net, State::from(vec![6, 3]), rng(4));
        let probs = sim.transition_probabilities();
        let (a, b) = (6.0, 3.0);
        let phi = 2.0 * (a + b) + 2.0 * a * b;
        // Reaction order: birth0, death0, comp01, birth1, death1, comp10.
        let expected = [a / phi, a / phi, a * b / phi, b / phi, b / phi, a * b / phi];
        for (p, e) in probs.iter().zip(expected.iter()) {
            assert!((p - e).abs() < 1e-12, "probability {p} expected {e}");
        }
    }

    #[test]
    fn reaches_consensus_from_unbalanced_start() {
        let net = lv_network();
        let mut sim = JumpChain::new(&net, State::from(vec![200, 2]), rng(5));
        let outcome = sim.run(&StopCondition::any_species_extinct());
        assert!(outcome.stopped_by_condition());
        assert!(outcome.final_state.any_extinct());
        assert!(outcome.events > 0);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let net = lv_network();
        let run = |seed| {
            let mut sim = JumpChain::new(&net, State::from(vec![40, 30]), rng(seed));
            let outcome = sim.run(&StopCondition::any_species_extinct().with_max_events(100_000));
            (outcome.events, outcome.final_state)
        };
        assert_eq!(run(7), run(7));
    }

    /// The reaction-local propensity path must be bit-identical to a naive
    /// full-recompute reference on the same RNG stream (the same pinning the
    /// direct method carries).
    #[test]
    fn reaction_local_updates_match_full_recompute_reference() {
        let mut net = ReactionNetwork::new();
        let species: Vec<_> = (0..4).map(|i| net.add_species(format!("X{i}"))).collect();
        for (i, &s) in species.iter().enumerate() {
            net.add_reaction(Reaction::new(1.0).reactant(s, 1).product(s, 2));
            net.add_reaction(Reaction::new(1.0).reactant(s, 1));
            let other = species[(i + 1) % 4];
            net.add_reaction(Reaction::new(0.5).reactant(s, 1).reactant(other, 1));
        }
        let net = net.validate().unwrap();

        // Reference: full refresh before every step, same sampling order.
        let mut reference_rng = rng(42);
        let mut reference_state = State::from(vec![30, 25, 20, 15]);
        let mut reference_cache = crate::propensity::PropensityCache::new();
        let mut reference: Vec<usize> = Vec::new();
        for _ in 0..500 {
            let total = reference_cache.refresh(&net, &reference_state);
            if total <= 0.0 {
                break;
            }
            let target = reference_rng.gen::<f64>() * total;
            let Some(index) = reference_cache.select(target) else {
                break;
            };
            reference_state.apply(&net.reactions()[index]).unwrap();
            reference.push(index);
        }
        assert!(reference.len() > 100, "reference run ended early");

        let mut sim = JumpChain::new(&net, State::from(vec![30, 25, 20, 15]), rng(42));
        for (step, &expected_reaction) in reference.iter().enumerate() {
            let event = sim.step().expect("simulator died before the reference");
            assert_eq!(
                event.reaction,
                Some(ReactionId::new(expected_reaction)),
                "diverged at step {step}"
            );
        }
        assert_eq!(sim.state(), &reference_state);
    }
}
