use crate::distributions::sample_exponential;
use crate::network::ValidatedNetwork;
use crate::propensity::PropensityCache;
use crate::reaction::ReactionId;
use crate::simulators::{Event, StochasticSimulator};
use crate::state::State;
use rand::Rng;
use std::fmt;

/// The Gillespie direct method: exact continuous-time stochastic simulation.
///
/// At each step the simulator computes all propensities, samples an
/// exponential waiting time with rate equal to the total propensity `φ(x)`,
/// and selects the firing reaction with probability proportional to its
/// propensity (Section 1.3 of the paper; Gillespie 1977).
///
/// ```
/// use lv_crn::{ReactionNetwork, Reaction, State, StopCondition};
/// use lv_crn::simulators::{GillespieDirect, StochasticSimulator};
/// use rand::SeedableRng;
///
/// let mut net = ReactionNetwork::new();
/// let a = net.add_species("A");
/// net.add_reaction(Reaction::new(1.0).reactant(a, 1)); // pure death
/// let net = net.validate()?;
/// let mut sim = GillespieDirect::new(&net, State::from(vec![10]),
///     rand::rngs::StdRng::seed_from_u64(1));
/// let outcome = sim.run(&StopCondition::any_species_extinct());
/// assert_eq!(outcome.events, 10);
/// # Ok::<(), lv_crn::CrnError>(())
/// ```
pub struct GillespieDirect<'a, R> {
    network: &'a ValidatedNetwork,
    state: State,
    time: f64,
    events: u64,
    rng: R,
    cache: PropensityCache,
}

impl<'a, R: fmt::Debug> fmt::Debug for GillespieDirect<'a, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GillespieDirect")
            .field("state", &self.state)
            .field("time", &self.time)
            .field("events", &self.events)
            .finish()
    }
}

impl<'a, R: Rng> GillespieDirect<'a, R> {
    /// Creates a simulator for the network starting in `initial` at time 0.
    ///
    /// # Panics
    ///
    /// Panics if the state dimension does not match the network; use
    /// [`ValidatedNetwork::check_state`] to validate states from untrusted
    /// input first.
    pub fn new(network: &'a ValidatedNetwork, initial: State, rng: R) -> Self {
        network
            .check_state(&initial)
            .expect("initial state must match the network dimension");
        GillespieDirect {
            network,
            state: initial,
            time: 0.0,
            events: 0,
            rng,
            cache: PropensityCache::new(),
        }
    }

    /// The network being simulated.
    pub fn network(&self) -> &'a ValidatedNetwork {
        self.network
    }
}

impl<'a, R: Rng> StochasticSimulator for GillespieDirect<'a, R> {
    fn state(&self) -> &State {
        &self.state
    }

    fn time(&self) -> f64 {
        self.time
    }

    fn events(&self) -> u64 {
        self.events
    }

    fn step(&mut self) -> Option<Event> {
        let total = self.cache.refresh(self.network, &self.state);
        if total <= 0.0 {
            return None;
        }
        let wait = sample_exponential(&mut self.rng, total);
        let target = self.rng.gen::<f64>() * total;
        let index = self.cache.select(target)?;
        let reaction = &self.network.reactions()[index];
        self.state
            .apply(reaction)
            .expect("selected reaction must be applicable: propensity was positive");
        self.time += wait;
        self.events += 1;
        Some(Event {
            reaction: ReactionId::new(index),
            time: self.time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ReactionNetwork;
    use crate::reaction::Reaction;
    use crate::species::SpeciesId;
    use crate::stop::StopCondition;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// Immigration–death process A: ∅ -> A at rate λ, A -> ∅ at rate μ per
    /// capita. Stationary distribution is Poisson(λ/μ).
    fn immigration_death(lambda: f64, mu: f64) -> (crate::ValidatedNetwork, SpeciesId) {
        let mut net = ReactionNetwork::new();
        let a = net.add_species("A");
        net.add_reaction(Reaction::new(lambda).product(a, 1));
        net.add_reaction(Reaction::new(mu).reactant(a, 1));
        (net.validate().unwrap(), a)
    }

    #[test]
    fn pure_death_takes_exactly_n_events() {
        let mut net = ReactionNetwork::new();
        let a = net.add_species("A");
        net.add_reaction(Reaction::new(2.0).reactant(a, 1));
        let net = net.validate().unwrap();
        let mut sim = GillespieDirect::new(&net, State::from(vec![25]), rng(1));
        let outcome = sim.run(&StopCondition::any_species_extinct());
        assert_eq!(outcome.events, 25);
        assert_eq!(outcome.final_state.counts(), &[0]);
        assert!(outcome.time > 0.0);
    }

    #[test]
    fn time_advances_monotonically() {
        let (net, _) = immigration_death(3.0, 1.0);
        let mut sim = GillespieDirect::new(&net, State::from(vec![0]), rng(2));
        let mut last = 0.0;
        for _ in 0..200 {
            let event = sim.step().unwrap();
            assert!(event.time > last);
            last = event.time;
        }
        assert_eq!(sim.events(), 200);
    }

    #[test]
    fn immigration_death_stationary_mean_matches() {
        // With λ = 8, μ = 1 the stationary mean is 8. Run long, then
        // time-average the count.
        let (net, a) = immigration_death(8.0, 1.0);
        let mut sim = GillespieDirect::new(&net, State::from(vec![0]), rng(3));
        // Burn in.
        for _ in 0..2_000 {
            sim.step();
        }
        let mut weighted = 0.0;
        let mut duration = 0.0;
        let mut last_time = sim.time();
        let mut last_count = sim.state().count(a) as f64;
        for _ in 0..30_000 {
            let event = sim.step().unwrap();
            weighted += last_count * (event.time - last_time);
            duration += event.time - last_time;
            last_time = event.time;
            last_count = sim.state().count(a) as f64;
        }
        let mean = weighted / duration;
        assert!((mean - 8.0).abs() < 0.6, "time-averaged mean {mean}");
    }

    #[test]
    fn absorbed_process_returns_none_and_keeps_state() {
        let mut net = ReactionNetwork::new();
        let a = net.add_species("A");
        net.add_reaction(Reaction::new(1.0).reactant(a, 2)); // needs two individuals
        let net = net.validate().unwrap();
        let mut sim = GillespieDirect::new(&net, State::from(vec![1]), rng(4));
        assert!(sim.step().is_none());
        assert_eq!(sim.state().counts(), &[1]);
        assert_eq!(sim.events(), 0);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let (net, _) = immigration_death(2.0, 1.0);
        let run = |seed| {
            let mut sim = GillespieDirect::new(&net, State::from(vec![5]), rng(seed));
            let outcome = sim.run(&StopCondition::never().with_max_events(500));
            (outcome.events, outcome.final_state, outcome.time)
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99).2, run(100).2);
    }

    #[test]
    #[should_panic(expected = "initial state must match")]
    fn mismatched_state_dimension_panics() {
        let (net, _) = immigration_death(1.0, 1.0);
        let _ = GillespieDirect::new(&net, State::from(vec![1, 2]), rng(5));
    }
}
