use crate::distributions::sample_exponential;
use crate::network::ValidatedNetwork;
use crate::propensity::{PropensityCache, ReactionDependencies};
use crate::reaction::ReactionId;
use crate::simulators::{Event, StochasticSimulator};
use crate::state::State;
use rand::Rng;
use std::fmt;

/// The Gillespie direct method: exact continuous-time stochastic simulation.
///
/// At each step the simulator samples an exponential waiting time with rate
/// equal to the total propensity `φ(x)` and selects the firing reaction with
/// probability proportional to its propensity (Section 1.3 of the paper;
/// Gillespie 1977). Propensity maintenance is *reaction-local*: after a
/// firing, only the propensities in the fired reaction's
/// [`ReactionDependencies`] set are recomputed — bit-identical to a full
/// recomputation (unaffected propensities are pure functions of unchanged
/// counts, and the total is re-summed in index order), so seeded runs produce
/// exactly the same trajectories as the naive implementation.
///
/// ```
/// use lv_crn::{ReactionNetwork, Reaction, State, StopCondition};
/// use lv_crn::simulators::{GillespieDirect, StochasticSimulator};
/// use rand::SeedableRng;
///
/// let mut net = ReactionNetwork::new();
/// let a = net.add_species("A");
/// net.add_reaction(Reaction::new(1.0).reactant(a, 1)); // pure death
/// let net = net.validate()?;
/// let mut sim = GillespieDirect::new(&net, State::from(vec![10]),
///     rand::rngs::StdRng::seed_from_u64(1));
/// let outcome = sim.run(&StopCondition::any_species_extinct());
/// assert_eq!(outcome.events, 10);
/// # Ok::<(), lv_crn::CrnError>(())
/// ```
pub struct GillespieDirect<'a, R> {
    network: &'a ValidatedNetwork,
    state: State,
    time: f64,
    events: u64,
    rng: R,
    cache: PropensityCache,
    dependencies: ReactionDependencies,
    /// The reaction fired by the previous step, whose dependency set is the
    /// only part of the cache that can be stale. `None` before the first
    /// step (full refresh required).
    last_fired: Option<usize>,
}

impl<'a, R: fmt::Debug> fmt::Debug for GillespieDirect<'a, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GillespieDirect")
            .field("state", &self.state)
            .field("time", &self.time)
            .field("events", &self.events)
            .finish()
    }
}

impl<'a, R: Rng> GillespieDirect<'a, R> {
    /// Creates a simulator for the network starting in `initial` at time 0.
    ///
    /// # Panics
    ///
    /// Panics if the state dimension does not match the network; use
    /// [`ValidatedNetwork::check_state`] to validate states from untrusted
    /// input first.
    pub fn new(network: &'a ValidatedNetwork, initial: State, rng: R) -> Self {
        network
            .check_state(&initial)
            .expect("initial state must match the network dimension");
        GillespieDirect {
            network,
            state: initial,
            time: 0.0,
            events: 0,
            rng,
            cache: PropensityCache::new(),
            dependencies: ReactionDependencies::new(network),
            last_fired: None,
        }
    }

    /// The network being simulated.
    pub fn network(&self) -> &'a ValidatedNetwork {
        self.network
    }
}

impl<'a, R: Rng> StochasticSimulator for GillespieDirect<'a, R> {
    fn state(&self) -> &State {
        &self.state
    }

    fn time(&self) -> f64 {
        self.time
    }

    fn events(&self) -> u64 {
        self.events
    }

    fn step(&mut self) -> Option<Event> {
        let total = match self.last_fired {
            Some(fired) => self.cache.refresh_affected(
                self.network,
                &self.state,
                self.dependencies.affected(fired),
            ),
            None => self.cache.refresh(self.network, &self.state),
        };
        if total <= 0.0 {
            return None;
        }
        let wait = sample_exponential(&mut self.rng, total);
        let target = self.rng.gen::<f64>() * total;
        let index = self.cache.select(target)?;
        let reaction = &self.network.reactions()[index];
        self.state
            .apply(reaction)
            .expect("selected reaction must be applicable: propensity was positive");
        self.last_fired = Some(index);
        self.time += wait;
        self.events += 1;
        Some(Event::fired(ReactionId::new(index), self.time))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ReactionNetwork;
    use crate::reaction::Reaction;
    use crate::species::SpeciesId;
    use crate::stop::StopCondition;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// Immigration–death process A: ∅ -> A at rate λ, A -> ∅ at rate μ per
    /// capita. Stationary distribution is Poisson(λ/μ).
    fn immigration_death(lambda: f64, mu: f64) -> (crate::ValidatedNetwork, SpeciesId) {
        let mut net = ReactionNetwork::new();
        let a = net.add_species("A");
        net.add_reaction(Reaction::new(lambda).product(a, 1));
        net.add_reaction(Reaction::new(mu).reactant(a, 1));
        (net.validate().unwrap(), a)
    }

    #[test]
    fn pure_death_takes_exactly_n_events() {
        let mut net = ReactionNetwork::new();
        let a = net.add_species("A");
        net.add_reaction(Reaction::new(2.0).reactant(a, 1));
        let net = net.validate().unwrap();
        let mut sim = GillespieDirect::new(&net, State::from(vec![25]), rng(1));
        let outcome = sim.run(&StopCondition::any_species_extinct());
        assert_eq!(outcome.events, 25);
        assert_eq!(outcome.final_state.counts(), &[0]);
        assert!(outcome.time > 0.0);
    }

    #[test]
    fn time_advances_monotonically() {
        let (net, _) = immigration_death(3.0, 1.0);
        let mut sim = GillespieDirect::new(&net, State::from(vec![0]), rng(2));
        let mut last = 0.0;
        for _ in 0..200 {
            let event = sim.step().unwrap();
            assert!(event.time > last);
            last = event.time;
        }
        assert_eq!(sim.events(), 200);
    }

    #[test]
    fn immigration_death_stationary_mean_matches() {
        // With λ = 8, μ = 1 the stationary mean is 8. Run long, then
        // time-average the count.
        let (net, a) = immigration_death(8.0, 1.0);
        let mut sim = GillespieDirect::new(&net, State::from(vec![0]), rng(3));
        // Burn in.
        for _ in 0..2_000 {
            sim.step();
        }
        let mut weighted = 0.0;
        let mut duration = 0.0;
        let mut last_time = sim.time();
        let mut last_count = sim.state().count(a) as f64;
        for _ in 0..30_000 {
            let event = sim.step().unwrap();
            weighted += last_count * (event.time - last_time);
            duration += event.time - last_time;
            last_time = event.time;
            last_count = sim.state().count(a) as f64;
        }
        let mean = weighted / duration;
        assert!((mean - 8.0).abs() < 0.6, "time-averaged mean {mean}");
    }

    #[test]
    fn absorbed_process_returns_none_and_keeps_state() {
        let mut net = ReactionNetwork::new();
        let a = net.add_species("A");
        net.add_reaction(Reaction::new(1.0).reactant(a, 2)); // needs two individuals
        let net = net.validate().unwrap();
        let mut sim = GillespieDirect::new(&net, State::from(vec![1]), rng(4));
        assert!(sim.step().is_none());
        assert_eq!(sim.state().counts(), &[1]);
        assert_eq!(sim.events(), 0);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let (net, _) = immigration_death(2.0, 1.0);
        let run = |seed| {
            let mut sim = GillespieDirect::new(&net, State::from(vec![5]), rng(seed));
            let outcome = sim.run(&StopCondition::never().with_max_events(500));
            (outcome.events, outcome.final_state, outcome.time)
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99).2, run(100).2);
    }

    #[test]
    #[should_panic(expected = "initial state must match")]
    fn mismatched_state_dimension_panics() {
        let (net, _) = immigration_death(1.0, 1.0);
        let _ = GillespieDirect::new(&net, State::from(vec![1, 2]), rng(5));
    }

    /// The reaction-local propensity path must be bit-identical to a naive
    /// full-recompute reference on the same RNG stream.
    #[test]
    fn reaction_local_updates_match_full_recompute_reference() {
        let mut net = ReactionNetwork::new();
        let species: Vec<_> = (0..3).map(|i| net.add_species(format!("X{i}"))).collect();
        for (i, &s) in species.iter().enumerate() {
            net.add_reaction(Reaction::new(1.0).reactant(s, 1).product(s, 2));
            net.add_reaction(Reaction::new(1.0).reactant(s, 1));
            let other = species[(i + 1) % 3];
            net.add_reaction(Reaction::new(0.5).reactant(s, 1).reactant(other, 1));
        }
        let net = net.validate().unwrap();

        // Reference: full refresh before every step, same sampling order.
        let mut reference_rng = rng(42);
        let mut reference_state = State::from(vec![30, 25, 20]);
        let mut reference_cache = crate::propensity::PropensityCache::new();
        let mut reference: Vec<(usize, u64)> = Vec::new();
        let mut reference_time = 0.0f64;
        for _ in 0..500 {
            let total = reference_cache.refresh(&net, &reference_state);
            if total <= 0.0 {
                break;
            }
            let wait = crate::distributions::sample_exponential(&mut reference_rng, total);
            let target = reference_rng.gen::<f64>() * total;
            let Some(index) = reference_cache.select(target) else {
                break;
            };
            reference_state.apply(&net.reactions()[index]).unwrap();
            reference_time += wait;
            reference.push((index, reference_time.to_bits()));
        }
        assert!(reference.len() > 100, "reference run ended early");

        let mut sim = GillespieDirect::new(&net, State::from(vec![30, 25, 20]), rng(42));
        for &(expected_reaction, expected_time) in &reference {
            let event = sim.step().expect("simulator died before the reference");
            assert_eq!(event.reaction, Some(ReactionId::new(expected_reaction)));
            assert_eq!(event.time.to_bits(), expected_time);
        }
        assert_eq!(sim.state(), &reference_state);
    }
}
