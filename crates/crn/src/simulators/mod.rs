//! Stochastic simulators for validated reaction networks.
//!
//! Four simulators are provided, all driving the same network formalism:
//!
//! * [`GillespieDirect`] — the exact continuous-time stochastic simulation
//!   algorithm (Gillespie 1977 direct method): exponential waiting times and
//!   propensity-proportional reaction selection.
//! * [`NextReaction`] — the exact next-reaction formulation keeping one
//!   exponential clock per reaction; statistically equivalent to the direct
//!   method, useful as a cross-check and faster when only a few propensities
//!   change per event.
//! * [`JumpChain`] — the embedded discrete-time jump chain
//!   `P(x, y) = Q(x, y)/φ(x)`, which is the object the paper actually
//!   analyses; it tracks the number of reactions, not continuous time.
//! * [`TauLeaping`] — approximate accelerated simulation firing Poisson
//!   numbers of reactions per fixed leap; useful for very large populations
//!   where exact methods are too slow.
//!
//! All simulators implement [`StochasticSimulator`], which supplies the
//! high-level [`run`](StochasticSimulator::run) /
//! [`run_recording`](StochasticSimulator::run_recording) drivers on top of the
//! single-step primitive.

mod direct;
mod jump_chain;
mod next_reaction;
mod tau_leaping;

pub use direct::GillespieDirect;
pub use jump_chain::JumpChain;
pub use next_reaction::NextReaction;
pub use tau_leaping::TauLeaping;

use crate::reaction::ReactionId;
use crate::state::State;
use crate::stop::{RunOutcome, StopCondition, StopReason};
use crate::trajectory::Trajectory;

/// A single simulated event: which reaction fired and at what time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// The reaction that fired. `None` marks an *empty step*: an accepted
    /// tau-leap in which no reaction fired, which advances the clock but
    /// changes no counts. Per-event simulators always report `Some`.
    pub reaction: Option<ReactionId>,
    /// The simulation time immediately after the event. For discrete-time
    /// simulators this is the event index.
    pub time: f64,
}

impl Event {
    /// An event reporting a firing of `reaction` at `time`.
    pub fn fired(reaction: ReactionId, time: f64) -> Event {
        Event {
            reaction: Some(reaction),
            time,
        }
    }

    /// An empty step (no reaction fired; the clock advanced to `time`).
    pub fn empty(time: f64) -> Event {
        Event {
            reaction: None,
            time,
        }
    }
}

/// Common interface of all stochastic simulators.
///
/// A simulator owns a current [`State`], a clock and a random number
/// generator; [`step`](StochasticSimulator::step) advances the simulation by
/// one event (or one leap for tau-leaping) and returns `None` when the process
/// is absorbed (no reaction has positive propensity).
pub trait StochasticSimulator {
    /// The current configuration.
    fn state(&self) -> &State;

    /// The current simulation time. Continuous-time simulators report
    /// physical time; the jump chain reports the number of steps taken.
    fn time(&self) -> f64;

    /// The number of reaction events fired so far.
    fn events(&self) -> u64;

    /// Advances the simulation by one event.
    ///
    /// Returns the event that fired, or `None` if the process is absorbed
    /// (every reaction has zero propensity), in which case the state is left
    /// unchanged.
    fn step(&mut self) -> Option<Event>;

    /// Runs the simulation until the stop condition triggers, the process is
    /// absorbed, or an event/time budget is exhausted.
    fn run(&mut self, stop: &StopCondition) -> RunOutcome
    where
        Self: Sized,
    {
        self.run_with_observer(stop, |_, _| {})
    }

    /// Like [`run`](StochasticSimulator::run), but also records the full
    /// trajectory (initial state plus the state after every event).
    fn run_recording(&mut self, stop: &StopCondition) -> (RunOutcome, Trajectory)
    where
        Self: Sized,
    {
        let mut trajectory = Trajectory::new();
        trajectory.push(self.time(), self.state().clone());
        let outcome = self.run_with_observer(stop, |time, state| {
            trajectory.push(time, state.clone());
        });
        (outcome, trajectory)
    }

    /// Like [`run`](StochasticSimulator::run), invoking `observe(time, state)`
    /// after every event. This is the allocation-free way to compute custom
    /// statistics along a run.
    fn run_with_observer<F>(&mut self, stop: &StopCondition, mut observe: F) -> RunOutcome
    where
        F: FnMut(f64, &State),
        Self: Sized,
    {
        let start_events = self.events();
        loop {
            if stop.is_met(self.state()) {
                return self.outcome(StopReason::ConditionMet, start_events);
            }
            if let Some(max_events) = stop.max_events() {
                if self.events() - start_events >= max_events {
                    return self.outcome(StopReason::MaxEventsReached, start_events);
                }
            }
            if let Some(max_time) = stop.max_time() {
                if self.time() >= max_time {
                    return self.outcome(StopReason::MaxTimeReached, start_events);
                }
            }
            match self.step() {
                Some(event) => observe(event.time, self.state()),
                None => return self.outcome(StopReason::Absorbed, start_events),
            }
        }
    }

    /// Builds the outcome summary for the current simulator state.
    #[doc(hidden)]
    fn outcome(&self, reason: StopReason, start_events: u64) -> RunOutcome {
        RunOutcome {
            reason,
            events: self.events() - start_events,
            time: self.time(),
            final_state: self.state().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{ReactionNetwork, ValidatedNetwork};
    use crate::reaction::Reaction;
    use crate::species::SpeciesId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Pure-death network: a single species that only dies. Every simulator
    /// must drive it to extinction in exactly `n` events.
    fn pure_death() -> ValidatedNetwork {
        let mut net = ReactionNetwork::new();
        let a = net.add_species("A");
        net.add_reaction(Reaction::new(1.0).reactant(a, 1));
        net.validate().unwrap()
    }

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn run_stops_immediately_if_condition_already_met() {
        let net = pure_death();
        let mut sim = GillespieDirect::new(&net, State::from(vec![0]), rng(1));
        let outcome = sim.run(&StopCondition::any_species_extinct());
        assert_eq!(outcome.reason, StopReason::ConditionMet);
        assert_eq!(outcome.events, 0);
    }

    #[test]
    fn run_reports_absorption_when_no_reaction_can_fire() {
        let net = pure_death();
        // Condition never met, but the chain is absorbed at zero.
        let mut sim = GillespieDirect::new(&net, State::from(vec![3]), rng(2));
        let outcome = sim.run(&StopCondition::total_at_least(100));
        assert_eq!(outcome.reason, StopReason::Absorbed);
        assert_eq!(outcome.events, 3);
        assert_eq!(outcome.final_state.counts(), &[0]);
    }

    #[test]
    fn run_respects_event_budget() {
        let net = pure_death();
        let mut sim = GillespieDirect::new(&net, State::from(vec![100]), rng(3));
        let outcome = sim.run(&StopCondition::any_species_extinct().with_max_events(10));
        assert_eq!(outcome.reason, StopReason::MaxEventsReached);
        assert_eq!(outcome.events, 10);
        assert_eq!(outcome.final_state.counts(), &[90]);
    }

    #[test]
    fn run_respects_time_budget() {
        let net = pure_death();
        let mut sim = GillespieDirect::new(&net, State::from(vec![1_000]), rng(4));
        let outcome = sim.run(&StopCondition::any_species_extinct().with_max_time(1e-6));
        assert_eq!(outcome.reason, StopReason::MaxTimeReached);
        assert!(outcome.events < 1_000);
    }

    #[test]
    fn run_recording_captures_every_event() {
        let net = pure_death();
        let mut sim = JumpChain::new(&net, State::from(vec![5]), rng(5));
        let (outcome, trajectory) = sim.run_recording(&StopCondition::any_species_extinct());
        assert_eq!(outcome.events, 5);
        // Initial state plus one point per event.
        assert_eq!(trajectory.len(), 6);
        let series = trajectory.species_series(SpeciesId::new(0));
        let counts: Vec<u64> = series.iter().map(|&(_, c)| c).collect();
        assert_eq!(counts, vec![5, 4, 3, 2, 1, 0]);
    }

    #[test]
    fn observer_sees_monotone_event_times() {
        let net = pure_death();
        let mut sim = GillespieDirect::new(&net, State::from(vec![50]), rng(6));
        let mut last = 0.0;
        let outcome = sim.run_with_observer(&StopCondition::any_species_extinct(), |t, _| {
            assert!(t >= last);
            last = t;
        });
        assert!(outcome.stopped_by_condition());
        assert!(last > 0.0);
    }
}
