use crate::distributions::sample_exponential;
use crate::network::ValidatedNetwork;
use crate::propensity::propensity;
use crate::reaction::ReactionId;
use crate::simulators::{Event, StochasticSimulator};
use crate::state::State;
use rand::Rng;
use std::fmt;

/// The next-reaction formulation of exact stochastic simulation.
///
/// Each reaction keeps a putative absolute firing time, exponentially
/// distributed with its current propensity; the earliest clock fires. Because
/// the Lotka–Volterra networks in this workspace are tiny (a handful of
/// reactions) and *every* propensity depends on the species counts touched by
/// every reaction, all clocks are redrawn after each event. This keeps the
/// method exact and statistically identical to [`GillespieDirect`]
/// (it is then Gillespie's first-reaction method, the degenerate case of the
/// Gibson–Bruck next-reaction method when the dependency graph is complete)
/// while exercising an independent code path — useful as a cross-validation
/// oracle in tests.
///
/// [`GillespieDirect`]: crate::simulators::GillespieDirect
pub struct NextReaction<'a, R> {
    network: &'a ValidatedNetwork,
    state: State,
    time: f64,
    events: u64,
    rng: R,
    clocks: Vec<f64>,
}

impl<'a, R: fmt::Debug> fmt::Debug for NextReaction<'a, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NextReaction")
            .field("state", &self.state)
            .field("time", &self.time)
            .field("events", &self.events)
            .finish()
    }
}

impl<'a, R: Rng> NextReaction<'a, R> {
    /// Creates a simulator for the network starting in `initial` at time 0.
    ///
    /// # Panics
    ///
    /// Panics if the state dimension does not match the network.
    pub fn new(network: &'a ValidatedNetwork, initial: State, rng: R) -> Self {
        network
            .check_state(&initial)
            .expect("initial state must match the network dimension");
        let clocks = vec![f64::INFINITY; network.reaction_count()];
        NextReaction {
            network,
            state: initial,
            time: 0.0,
            events: 0,
            rng,
            clocks,
        }
    }

    /// The network being simulated.
    pub fn network(&self) -> &'a ValidatedNetwork {
        self.network
    }

    fn redraw_clocks(&mut self) {
        for (i, reaction) in self.network.reactions().iter().enumerate() {
            let a = propensity(reaction, &self.state);
            self.clocks[i] = if a > 0.0 {
                self.time + sample_exponential(&mut self.rng, a)
            } else {
                f64::INFINITY
            };
        }
    }
}

impl<'a, R: Rng> StochasticSimulator for NextReaction<'a, R> {
    fn state(&self) -> &State {
        &self.state
    }

    fn time(&self) -> f64 {
        self.time
    }

    fn events(&self) -> u64 {
        self.events
    }

    fn step(&mut self) -> Option<Event> {
        self.redraw_clocks();
        let (index, &fire_time) = self
            .clocks
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("clock times are never NaN"))?;
        if !fire_time.is_finite() {
            return None;
        }
        let reaction = &self.network.reactions()[index];
        self.state
            .apply(reaction)
            .expect("selected reaction must be applicable: propensity was positive");
        self.time = fire_time;
        self.events += 1;
        Some(Event {
            reaction: ReactionId::new(index),
            time: self.time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ReactionNetwork;
    use crate::reaction::Reaction;
    use crate::simulators::GillespieDirect;
    use crate::stop::StopCondition;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn birth_death(beta: f64, delta: f64) -> crate::ValidatedNetwork {
        let mut net = ReactionNetwork::new();
        let a = net.add_species("A");
        net.add_reaction(Reaction::new(beta).reactant(a, 1).product(a, 2));
        net.add_reaction(Reaction::new(delta).reactant(a, 1));
        net.validate().unwrap()
    }

    #[test]
    fn pure_death_fires_n_events() {
        let net = birth_death(0.0, 1.0);
        let mut sim = NextReaction::new(&net, State::from(vec![12]), rng(1));
        let outcome = sim.run(&StopCondition::any_species_extinct());
        assert_eq!(outcome.events, 12);
        assert_eq!(outcome.final_state.counts(), &[0]);
    }

    #[test]
    fn time_is_strictly_increasing() {
        let net = birth_death(1.0, 2.0);
        let mut sim = NextReaction::new(&net, State::from(vec![50]), rng(2));
        let mut last = 0.0;
        while let Some(event) = sim.step() {
            assert!(event.time > last);
            last = event.time;
            if sim.events() > 300 {
                break;
            }
        }
    }

    #[test]
    fn absorbed_state_returns_none() {
        let net = birth_death(1.0, 1.0);
        let mut sim = NextReaction::new(&net, State::from(vec![0]), rng(3));
        assert!(sim.step().is_none());
    }

    #[test]
    fn extinction_probability_agrees_with_direct_method() {
        // Subcritical birth-death chain (β < δ) started at 3 individuals goes
        // extinct with probability 1; compare mean extinction *events* between
        // the two exact simulators as a distributional cross-check.
        let net = birth_death(0.5, 1.0);
        let trials = 400;
        let mean_events = |use_direct: bool| -> f64 {
            let mut total = 0u64;
            for t in 0..trials {
                let stop = StopCondition::any_species_extinct().with_max_events(100_000);
                let events = if use_direct {
                    let mut sim = GillespieDirect::new(&net, State::from(vec![3]), rng(1_000 + t));
                    sim.run(&stop).events
                } else {
                    let mut sim = NextReaction::new(&net, State::from(vec![3]), rng(1_000 + t));
                    sim.run(&stop).events
                };
                total += events;
            }
            total as f64 / trials as f64
        };
        let direct = mean_events(true);
        let next = mean_events(false);
        let relative = (direct - next).abs() / direct.max(next);
        assert!(
            relative < 0.15,
            "direct {direct} vs next-reaction {next} differ by {relative}"
        );
    }
}
