use crate::distributions::sample_exponential;
use crate::network::ValidatedNetwork;
use crate::propensity::{propensity, ReactionDependencies};
use crate::reaction::ReactionId;
use crate::simulators::{Event, StochasticSimulator};
use crate::state::State;
use rand::Rng;
use std::fmt;

/// The next-reaction formulation of exact stochastic simulation
/// (Gibson–Bruck 2000).
///
/// Each reaction keeps a putative absolute firing time, exponentially
/// distributed with its current propensity; the earliest clock fires. After a
/// firing, only the clocks of the reactions in the fired reaction's
/// [`ReactionDependencies`] set are redrawn — every other reaction's
/// propensity is a pure function of unchanged species counts, so by
/// memorylessness its putative absolute time remains exactly distributed and
/// can be kept as is. (The classic Gibson–Bruck method *rescales* surviving
/// affected clocks to reuse randomness; redrawing them instead is equally
/// exact and keeps the implementation free of per-clock bookkeeping.)
///
/// For the `k`-species Lotka–Volterra networks only `O(k)` of the `O(k²)`
/// reactions are affected per firing, so both the propensity updates and the
/// exponential draws drop from `O(k²)` to `O(k)` per event. The method stays
/// statistically identical to [`GillespieDirect`] and is exercised as a
/// cross-validation oracle in tests.
///
/// [`GillespieDirect`]: crate::simulators::GillespieDirect
pub struct NextReaction<'a, R> {
    network: &'a ValidatedNetwork,
    state: State,
    time: f64,
    events: u64,
    rng: R,
    clocks: Vec<f64>,
    /// For each reaction `r`, the sorted set of clocks to redraw after `r`
    /// fires: `affected(r) ∪ {r}` (the fired clock must always be redrawn,
    /// even for a net-zero catalytic reaction whose propensity is unchanged).
    /// Propensities are computed on demand for exactly these reactions —
    /// unaffected propensities are never read, so no cache (and no total
    /// re-sum) is maintained at all.
    redraw_sets: Vec<Vec<u32>>,
    /// The reaction fired by the previous step; `None` before the first step
    /// (all clocks need drawing).
    last_fired: Option<usize>,
}

impl<'a, R: fmt::Debug> fmt::Debug for NextReaction<'a, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NextReaction")
            .field("state", &self.state)
            .field("time", &self.time)
            .field("events", &self.events)
            .finish()
    }
}

impl<'a, R: Rng> NextReaction<'a, R> {
    /// Creates a simulator for the network starting in `initial` at time 0.
    ///
    /// # Panics
    ///
    /// Panics if the state dimension does not match the network.
    pub fn new(network: &'a ValidatedNetwork, initial: State, rng: R) -> Self {
        network
            .check_state(&initial)
            .expect("initial state must match the network dimension");
        let dependencies = ReactionDependencies::new(network);
        let redraw_sets = (0..network.reaction_count())
            .map(|r| {
                let mut set: Vec<u32> = dependencies.affected(r).to_vec();
                if let Err(slot) = set.binary_search(&(r as u32)) {
                    set.insert(slot, r as u32);
                }
                set
            })
            .collect();
        let clocks = vec![f64::INFINITY; network.reaction_count()];
        NextReaction {
            network,
            state: initial,
            time: 0.0,
            events: 0,
            rng,
            clocks,
            redraw_sets,
            last_fired: None,
        }
    }

    /// The network being simulated.
    pub fn network(&self) -> &'a ValidatedNetwork {
        self.network
    }
}

impl<'a, R: Rng> StochasticSimulator for NextReaction<'a, R> {
    fn state(&self) -> &State {
        &self.state
    }

    fn time(&self) -> f64 {
        self.time
    }

    fn events(&self) -> u64 {
        self.events
    }

    fn step(&mut self) -> Option<Event> {
        let reactions = self.network.reactions();
        match self.last_fired {
            Some(fired) => {
                for &index in &self.redraw_sets[fired] {
                    let index = index as usize;
                    let a = propensity(&reactions[index], &self.state);
                    self.clocks[index] = if a > 0.0 {
                        self.time + sample_exponential(&mut self.rng, a)
                    } else {
                        f64::INFINITY
                    };
                }
            }
            None => {
                for (clock, reaction) in self.clocks.iter_mut().zip(reactions) {
                    let a = propensity(reaction, &self.state);
                    *clock = if a > 0.0 {
                        self.time + sample_exponential(&mut self.rng, a)
                    } else {
                        f64::INFINITY
                    };
                }
            }
        }
        let (index, &fire_time) = self
            .clocks
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("clock times are never NaN"))?;
        if !fire_time.is_finite() {
            return None;
        }
        let reaction = &self.network.reactions()[index];
        self.state
            .apply(reaction)
            .expect("selected reaction must be applicable: propensity was positive");
        self.time = fire_time;
        self.events += 1;
        self.last_fired = Some(index);
        Some(Event::fired(ReactionId::new(index), self.time))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ReactionNetwork;
    use crate::reaction::Reaction;
    use crate::simulators::GillespieDirect;
    use crate::stop::StopCondition;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn birth_death(beta: f64, delta: f64) -> crate::ValidatedNetwork {
        let mut net = ReactionNetwork::new();
        let a = net.add_species("A");
        net.add_reaction(Reaction::new(beta).reactant(a, 1).product(a, 2));
        net.add_reaction(Reaction::new(delta).reactant(a, 1));
        net.validate().unwrap()
    }

    #[test]
    fn pure_death_fires_n_events() {
        let net = birth_death(0.0, 1.0);
        let mut sim = NextReaction::new(&net, State::from(vec![12]), rng(1));
        let outcome = sim.run(&StopCondition::any_species_extinct());
        assert_eq!(outcome.events, 12);
        assert_eq!(outcome.final_state.counts(), &[0]);
    }

    #[test]
    fn time_is_strictly_increasing() {
        let net = birth_death(1.0, 2.0);
        let mut sim = NextReaction::new(&net, State::from(vec![50]), rng(2));
        let mut last = 0.0;
        while let Some(event) = sim.step() {
            assert!(event.time > last);
            last = event.time;
            if sim.events() > 300 {
                break;
            }
        }
    }

    #[test]
    fn absorbed_state_returns_none() {
        let net = birth_death(1.0, 1.0);
        let mut sim = NextReaction::new(&net, State::from(vec![0]), rng(3));
        assert!(sim.step().is_none());
    }

    #[test]
    fn extinction_probability_agrees_with_direct_method() {
        // Subcritical birth-death chain (β < δ) started at 3 individuals goes
        // extinct with probability 1; compare mean extinction *events* between
        // the two exact simulators as a distributional cross-check.
        let net = birth_death(0.5, 1.0);
        let trials = 400;
        let mean_events = |use_direct: bool| -> f64 {
            let mut total = 0u64;
            for t in 0..trials {
                let stop = StopCondition::any_species_extinct().with_max_events(100_000);
                let events = if use_direct {
                    let mut sim = GillespieDirect::new(&net, State::from(vec![3]), rng(1_000 + t));
                    sim.run(&stop).events
                } else {
                    let mut sim = NextReaction::new(&net, State::from(vec![3]), rng(1_000 + t));
                    sim.run(&stop).events
                };
                total += events;
            }
            total as f64 / trials as f64
        };
        let direct = mean_events(true);
        let next = mean_events(false);
        let relative = (direct - next).abs() / direct.max(next);
        assert!(
            relative < 0.15,
            "direct {direct} vs next-reaction {next} differ by {relative}"
        );
    }

    /// Clock reuse must preserve the continuous-time law: the time-averaged
    /// count of an immigration–death process matches its Poisson(λ/μ)
    /// stationary mean.
    #[test]
    fn immigration_death_stationary_mean_matches() {
        let mut net = ReactionNetwork::new();
        let a = net.add_species("A");
        net.add_reaction(Reaction::new(8.0).product(a, 1));
        net.add_reaction(Reaction::new(1.0).reactant(a, 1));
        let net = net.validate().unwrap();
        let mut sim = NextReaction::new(&net, State::from(vec![0]), rng(9));
        for _ in 0..2_000 {
            sim.step();
        }
        let mut weighted = 0.0;
        let mut duration = 0.0;
        let mut last_time = sim.time();
        let mut last_count = sim.state().counts()[0] as f64;
        for _ in 0..30_000 {
            let event = sim.step().unwrap();
            weighted += last_count * (event.time - last_time);
            duration += event.time - last_time;
            last_time = event.time;
            last_count = sim.state().counts()[0] as f64;
        }
        let mean = weighted / duration;
        assert!((mean - 8.0).abs() < 0.6, "time-averaged mean {mean}");
    }

    /// The reaction-local propensity maintenance behind the clock redraws
    /// must be bit-identical to recomputing every propensity from scratch on
    /// the same RNG stream: same firing sequence, same clock values.
    #[test]
    fn reaction_local_updates_match_full_recompute_reference() {
        let mut net = ReactionNetwork::new();
        let species: Vec<_> = (0..3).map(|i| net.add_species(format!("X{i}"))).collect();
        for (i, &s) in species.iter().enumerate() {
            net.add_reaction(Reaction::new(1.0).reactant(s, 1).product(s, 2));
            net.add_reaction(Reaction::new(1.0).reactant(s, 1));
            let other = species[(i + 1) % 3];
            net.add_reaction(Reaction::new(0.5).reactant(s, 1).reactant(other, 1));
        }
        let net = net.validate().unwrap();
        let deps = ReactionDependencies::new(&net);

        // Reference stepper: identical clock-redraw schedule, but every
        // propensity is recomputed from scratch each step (the incremental
        // path must not drift from it by even a bit).
        let mut reference_rng = rng(24);
        let mut reference_state = State::from(vec![90, 75, 60]);
        let mut reference_clocks = vec![f64::INFINITY; net.reaction_count()];
        let mut reference_time = 0.0f64;
        let mut reference_last: Option<usize> = None;
        let mut reference: Vec<(usize, u64)> = Vec::new();
        'outer: for _ in 0..400 {
            let all: Vec<f64> = net
                .reactions()
                .iter()
                .map(|r| crate::propensity::propensity(r, &reference_state))
                .collect();
            let redraw: Vec<usize> = match reference_last {
                Some(fired) => {
                    let mut set: Vec<u32> = deps.affected(fired).to_vec();
                    if let Err(slot) = set.binary_search(&(fired as u32)) {
                        set.insert(slot, fired as u32);
                    }
                    set.into_iter().map(|i| i as usize).collect()
                }
                None => (0..net.reaction_count()).collect(),
            };
            for index in redraw {
                reference_clocks[index] = if all[index] > 0.0 {
                    reference_time + sample_exponential(&mut reference_rng, all[index])
                } else {
                    f64::INFINITY
                };
            }
            let (index, &fire_time) = reference_clocks
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
                .unwrap();
            if !fire_time.is_finite() {
                break 'outer;
            }
            reference_state.apply(&net.reactions()[index]).unwrap();
            reference_time = fire_time;
            reference_last = Some(index);
            reference.push((index, fire_time.to_bits()));
        }
        assert!(reference.len() > 100, "reference run ended early");

        let mut sim = NextReaction::new(&net, State::from(vec![90, 75, 60]), rng(24));
        for &(expected_reaction, expected_time) in &reference {
            let event = sim.step().expect("simulator died before the reference");
            assert_eq!(event.reaction, Some(ReactionId::new(expected_reaction)));
            assert_eq!(event.time.to_bits(), expected_time);
        }
        assert_eq!(sim.state(), &reference_state);
    }

    /// A net-zero (purely catalytic) reaction leaves every propensity
    /// unchanged, but its own clock must still be redrawn after it fires —
    /// otherwise the simulator would replay the same firing time forever.
    #[test]
    fn catalytic_reactions_redraw_their_own_clock() {
        let mut net = ReactionNetwork::new();
        let a = net.add_species("A");
        net.add_reaction(Reaction::new(1.0).reactant(a, 1).product(a, 1));
        let net = net.validate().unwrap();
        let mut sim = NextReaction::new(&net, State::from(vec![5]), rng(4));
        let mut last = 0.0;
        for _ in 0..50 {
            let event = sim.step().expect("catalysis never absorbs");
            assert!(event.time > last, "clock stuck at {last}");
            last = event.time;
        }
        assert_eq!(sim.events(), 50);
        assert_eq!(sim.state().counts(), &[5]);
    }
}
